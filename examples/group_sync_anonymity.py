#!/usr/bin/env python
"""Group synchronization and anonymity demo.

Two properties of Section III are shown here:

* **Group sync** — a peer that registers later catches up from the
  contract's event log and converges on the same membership root; a
  publisher proving against a *slightly stale* root is still accepted
  (routers keep a window of recent roots).
* **Anonymity** — the wire encoding of a signal contains neither the
  sender's key material nor its tree position, and two different
  members' signals are structurally indistinguishable.

Run:  python examples/group_sync_anonymity.py
"""

from repro.core import WakuRlnRelayNetwork
from repro.core.peer import WakuRlnRelayPeer
from repro.rln import RlnSignal
from repro.waku.message import WakuMessage


def main() -> None:
    net = WakuRlnRelayNetwork(peer_count=8, seed=5)
    net.register_all()
    net.start()
    net.run(2.0)

    # --- group synchronization -------------------------------------------
    print("== group synchronization ==")
    late = WakuRlnRelayPeer(
        node_id="latecomer",
        network=net.network,
        chain=net.chain,
        contract_address=net.contract.address,
        config=net.config,
        proving_key=net.proving_key,
        verifying_key=net.verifying_key,
        rng=net.simulator.rng,
    )
    for neighbor in net.peers[:3]:
        net.network.connect("latecomer", neighbor.node_id)
    late.register()
    net.chain.mine_block(timestamp=net.simulator.now)
    late.sync()
    for peer in net.peers:
        peer.sync()
    same_root = int(late.group.root) == int(net.peer(0).group.root)
    print(f"latecomer registered at leaf {late.leaf_index}; "
          f"root agrees with network: {same_root}")

    # Stale-root tolerance: capture a proof, let the group change, publish.
    publisher = net.peer(2)
    stale_proof = publisher.group.merkle_proof(publisher.leaf_index)
    signal = publisher.prover.create_signal(
        b"proved against yesterday's root",
        publisher.epoch_tracker.current_epoch,
        stale_proof,
    )
    router = net.peer(4)
    outcome = router.validator.validate(signal)
    print(f"signal proved against pre-latecomer root -> {outcome.outcome.value}")

    # --- anonymity ----------------------------------------------------------
    print("\n== anonymity ==")
    alice, bob = net.peer(0), net.peer(1)
    sig_a = alice.prover.create_signal(
        b"the same payload", 42, alice.group.merkle_proof(alice.leaf_index)
    )
    sig_b = bob.prover.create_signal(
        b"the same payload", 42, bob.group.merkle_proof(bob.leaf_index)
    )
    wire_a, wire_b = sig_a.to_bytes(), sig_b.to_bytes()
    print(f"signal sizes identical:        {len(wire_a) == len(wire_b)}")
    leaks = (
        alice.keypair.secret.to_bytes() in wire_a
        or alice.keypair.commitment.to_bytes() in wire_a
    )
    print(f"sender key material on wire:   {leaks}")
    message = WakuMessage(payload=b"x", rate_limit_proof=wire_a)
    fields = sorted(WakuMessage.__dataclass_fields__)
    print(f"WakuMessage fields:            {fields}  (no sender, no signature)")
    decoded = RlnSignal.from_bytes(message.rate_limit_proof)
    print(f"nullifier reveals member? it is H(H(sk,epoch)) = "
          f"{hex(int(decoded.internal_nullifier))[:14]}… (one-way)")


if __name__ == "__main__":
    main()
