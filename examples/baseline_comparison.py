#!/usr/bin/env python
"""Baseline comparison: the same flood against four systems.

Reproduces the paper's Section I argument in one run: proof-of-work and
peer scoring do not provide *global* spam protection — a resourceful or
Sybil attacker keeps spamming — while Waku-RLN-Relay removes the
attacker identity network-wide and makes it pay.

Run:  python examples/baseline_comparison.py        (takes ~1 min)
"""

from repro.analysis import (
    format_experiment,
    routing_overhead_experiment,
    spam_protection_experiment,
)


def main() -> None:
    headers, rows = spam_protection_experiment(peer_count=30)
    print(
        format_experiment(
            "Spam reach under the same attack (30 honest peers)",
            headers,
            rows,
            note=(
                "RLN bounds spam to one message per epoch per identity and\n"
                "removes the spammer permanently; the baselines either relay\n"
                "everything or only throttle individual connections."
            ),
        )
    )
    headers, rows = routing_overhead_experiment()
    print(
        format_experiment(
            "Per-message computational cost by device class",
            headers,
            rows,
            note=(
                "PoW must be mined for EVERY message and is prohibitive on\n"
                "weak devices; RLN proves once per epoch and verification\n"
                "is constant-time — the paper's resource-restriction claim."
            ),
        )
    )


if __name__ == "__main__":
    main()
