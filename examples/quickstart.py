#!/usr/bin/env python
"""Quickstart: a 10-peer Waku-RLN-Relay network in ~40 lines.

Spins up the whole stack — simulated Ethereum chain, membership
registry contract, RLN trusted setup, GossipSub overlay — registers
every peer, publishes a message and shows it reaching everyone
anonymously.

Run:  python examples/quickstart.py
"""

from repro.core import WakuRlnRelayNetwork


def main() -> None:
    # One object assembles chain + contract + peers + overlay.
    net = WakuRlnRelayNetwork(peer_count=10, seed=7)

    # Every peer stakes 1 ETH and registers its identity commitment.
    net.register_all()
    print(f"registered members: {net.registered_count}")
    print(f"membership root:    {hex(int(net.peer(0).group.root))[:18]}…")

    # Record every delivery (note: handlers receive *no sender field* —
    # the network is anonymous by construction).
    deliveries = net.collect_deliveries()

    # Start gossip heartbeats, periodic group sync and the block miner.
    net.start()
    net.run(5.0)

    # Publish one rate-limited message from peer 3.
    msg_id = net.peer(3).publish(b"hello, spam-protected world!")
    print(f"published message:  {msg_id}")

    net.run(10.0)

    received = sum(
        1 for msgs in deliveries.values()
        if b"hello, spam-protected world!" in msgs
    )
    print(f"peers that received it: {received}/{len(net.peers)}")

    # The local rate limiter refuses a second message in the same epoch.
    try:
        net.peer(3).publish(b"a second message, same epoch")
    except Exception as exc:
        print(f"second publish in one epoch -> {type(exc).__name__}: {exc}")


if __name__ == "__main__":
    main()
