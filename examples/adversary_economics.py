#!/usr/bin/env python
"""The closed economic loop: an adaptive attacker vs the network.

A rotating sybil on a fixed budget spams, gets slashed on-chain
mid-run, buys fresh identities until broke — and the attack report
shows what every delivered spam message cost it. This is the paper's
central claim made runnable: spam is not impossible, it is *priced*.

Run:  python examples/adversary_economics.py
"""

from repro.scenarios import (
    AdversaryGroup,
    AdversaryMix,
    ScenarioSpec,
    TrafficModel,
    run_scenario,
)


def main() -> None:
    spec = ScenarioSpec(
        name="example-rotating-sybil",
        description="one rotating sybil on a 4-stake budget",
        peers=30,
        duration=90.0,
        block_interval=5.0,
        traffic=TrafficModel(messages_per_epoch=0.5, active_fraction=0.3),
        adversaries=AdversaryMix(
            groups=(
                AdversaryGroup(
                    strategy="rotating-sybil",
                    count=1,
                    budget_stakes=4,
                    burst=4,
                ),
            ),
        ),
        config_overrides={"verification_cache_size": 65536},
    )
    result = run_scenario(spec)
    print(result.format())
    stake = spec.build_config().stake_wei
    print()
    print(
        f"The attacker bought {result.series['registrations'][-1]:.0f} "
        f"identities ({result.attacker_spend / stake:.0f} stakes), "
        f"rotated {result.identity_rotations}x, and was slashed "
        f"{result.members_slashed}x — burning "
        f"{result.stake_burnt / stake:.1f} stakes — to deliver "
        f"{result.spam_delivered} spam messages."
    )


if __name__ == "__main__":
    main()
