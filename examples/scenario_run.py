"""Run built-in scenarios and a custom multi-topic one.

Usage::

    PYTHONPATH=src python examples/scenario_run.py

Demonstrates (1) running a registered scenario at reduced scale,
(2) declaring and registering a custom multi-topic scenario with a
topic-targeted adversary, (3) comparing the two performance
switches (shared verification cache, batched gossip bookkeeping)
on identical workloads, and (4) a tiny cut of ``million-id-city``:
a dormant genesis population on a sharded registry with epoch-grid
nullifier GC and streaming metrics.

Equivalent CLI commands (same engine, same deterministic results)::

    PYTHONPATH=src python -m repro.analysis list-scenarios
    PYTHONPATH=src python -m repro.analysis list-strategies
    PYTHONPATH=src python -m repro.analysis run-scenario burst-spammer --peers 60
    PYTHONPATH=src python -m repro.analysis run-scenario multi-topic-churn --json

``result.format()`` prints the full report: delivery/spam counters,
the slashing economics settled on-chain during the run
(``stake_burnt``, ``reporter_rewards``, ``attacker_spend``,
``identity_rotations``), the per-epoch cost-of-attack series, a
per-topic breakdown for multi-topic runs, and the deterministic
``fingerprint``.
"""

from dataclasses import replace

from repro.gossipsub.params import GossipSubParams
from repro.scenarios import (
    AdversaryGroup,
    AdversaryMix,
    ChurnModel,
    ScenarioSpec,
    TopicSpec,
    TrafficModel,
    register_scenario,
    run_scenario,
    scenario,
)


def main() -> None:
    # 1. A built-in scenario, scaled down for a quick local run. The
    # report includes the adversary-engine economics (attacker_spend,
    # identity_rotations, the cost-of-attack series).
    result = run_scenario(scenario("burst-spammer"), peers=60, duration=60)
    print(result.format())
    print()

    # 2. A custom multi-topic scenario: two topics over one mesh, a
    # rotating sybil aimed at the busy one, churn underneath. The
    # result's per-topic breakdown shows where traffic and spam landed.
    custom = register_scenario(
        ScenarioSpec(
            name="example-market-attack",
            description="topic-targeted sybil + churn on a 2-topic mesh",
            peers=50,
            duration=80.0,
            traffic=TrafficModel(messages_per_epoch=0.5, active_fraction=0.4),
            topics=(
                TopicSpec("/waku/2/market/proto", traffic_weight=3.0,
                          subscribe_fraction=0.7),
                TopicSpec("/waku/2/telemetry/proto", traffic_weight=0.5,
                          subscribe_fraction=0.3, rln_protected=False),
            ),
            adversaries=AdversaryMix(
                groups=(
                    AdversaryGroup(
                        "rotating-sybil",
                        count=1,
                        budget_stakes=4,
                        burst=4,
                        target_topics=("/waku/2/market/proto",),
                    ),
                ),
            ),
            churn=ChurnModel(join_interval=9.0, max_joins=5),
            config_overrides={"verification_cache_size": 16384},
        ),
        replace=True,
    )
    result = run_scenario(custom)
    print(result.format())
    market = result.topics["/waku/2/market/proto"]
    print(
        f"\n  market topic: {market['spam_delivered']:.0f} spam delivered "
        f"to {market['subscribers']:.0f} subscribers; "
        f"delivery rate {market['delivery_rate']:.3f}"
    )
    print()

    # 3. The performance switches on the same workload: outcomes are
    # bit-identical, only the work (and wall clock) changes.
    base = scenario("burst-spammer").scaled(peers=60, duration=60)
    for label, cache, batched in (
        ("naive everything", 0, False),
        ("cache + batched bookkeeping", 65536, True),
    ):
        spec = replace(
            base,
            config_overrides={
                "verification_cache_size": cache,
                "gossip": GossipSubParams(batched_bookkeeping=batched),
            },
        )
        r = run_scenario(spec)
        print(
            f"{label:>28}: {r.proof_verifications} proof verifications, "
            f"{r.verification_cache_hits} cache hits, "
            f"{r.wall_clock_seconds:.2f}s wall clock, "
            f"slashed={r.members_slashed}"
        )
    print()

    # 4. million-id-city, scaled way down: the dormant population
    # shrinks with the peer count (here ~19 genesis identities per
    # live peer), the depth-20 registry only materialises the
    # sub-trees traffic actually touches, and the nullifier GC /
    # streaming-metrics bounds keep state flat in run length.
    r = run_scenario(scenario("million-id-city"), peers=25, duration=60)
    print(
        f"{'million-id-city (tiny)':>28}: "
        f"{r.extras['membership_subtrees_materialized']:.0f} of 1024 "
        f"sub-trees materialised, "
        f"{r.extras['nullifier_entries_pruned']:.0f} nullifier entries "
        f"GC'd ({r.extras['nullifier_entries_live']:.0f} live), "
        f"delivery rate {r.delivery_rate:.3f}"
    )


if __name__ == "__main__":
    main()
