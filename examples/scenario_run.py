"""Run built-in scenarios and a custom one from the scenario harness.

Usage::

    PYTHONPATH=src python examples/scenario_run.py

Demonstrates (1) running a registered scenario at reduced scale,
(2) declaring and registering a custom scenario, and (3) comparing the
batched verification fast path against naive per-message verification.
"""

from dataclasses import replace

from repro.scenarios import (
    AdversaryMix,
    ChurnModel,
    ScenarioSpec,
    TrafficModel,
    register_scenario,
    run_scenario,
    scenario,
)


def main() -> None:
    # 1. A built-in scenario, scaled down for a quick local run.
    result = run_scenario(scenario("burst-spammer"), peers=60, duration=60)
    print(result.format())
    print()

    # 2. A custom scenario: two spammers under churn, small root window.
    custom = register_scenario(
        ScenarioSpec(
            name="example-churny-spam",
            description="spammers + churn + tight root window",
            peers=50,
            duration=80.0,
            traffic=TrafficModel(messages_per_epoch=0.5, active_fraction=0.4),
            adversaries=AdversaryMix(spammer_count=2, burst=4, epochs=2),
            churn=ChurnModel(join_interval=9.0, max_joins=5),
            config_overrides={
                "root_window": 4,
                "verification_cache_size": 16384,
            },
        ),
        replace=True,
    )
    print(run_scenario(custom).format())
    print()

    # 3. Batched vs naive verification on the same workload.
    for label, size in (("naive", 0), ("batched", 65536)):
        spec = replace(
            scenario("burst-spammer").scaled(peers=60, duration=60),
            config_overrides={"verification_cache_size": size},
        )
        r = run_scenario(spec)
        print(
            f"{label:>8}: {r.proof_verifications} proof verifications, "
            f"{r.verification_cache_hits} cache hits, "
            f"{r.wall_clock_seconds:.2f}s wall clock"
        )


if __name__ == "__main__":
    main()
