#!/usr/bin/env python
"""Slashing economics: what an attack costs, who gets paid.

The paper's incentive design (Sections I/IV): registration requires a
stake (Sybil mitigation); each detected double-signal burns part of the
spammer's stake and rewards the reporter. This demo runs several
attacker identities through the network and prints the flow of funds,
plus the gas-cost comparison between the paper's registry contract and
the original on-chain-tree design.

Run:  python examples/slashing_economics.py
"""

from repro.analysis import (
    economics_experiment,
    format_experiment,
    gas_cost_experiment,
    gas_vs_depth_experiment,
)


def main() -> None:
    headers, rows = economics_experiment(spammer_count=3, peer_count=20)
    print(
        format_experiment(
            "Flow of funds after 3 attacker identities double-signal",
            headers,
            rows,
            note=(
                "Every attacking identity loses its full stake: half burnt,\n"
                "half to the first reporter — the paper's cryptographically\n"
                "guaranteed economic incentive."
            ),
        )
    )

    headers, rows = gas_cost_experiment(member_counts=(0, 16, 64))
    print(
        format_experiment(
            "Gas: registry (paper design) vs on-chain tree (original RLN)",
            headers,
            rows,
            note="Registry cost is constant in the group size.",
        )
    )

    headers, rows = gas_vs_depth_experiment(depths=(10, 20, 32))
    print(
        format_experiment(
            "Gas vs tree depth",
            headers,
            rows,
            note=(
                "The on-chain tree pays one circuit-hash + storage write per\n"
                "level; the registry never touches a tree — the paper's\n"
                "'order of magnitude' gas optimization."
            ),
        )
    )


if __name__ == "__main__":
    main()
