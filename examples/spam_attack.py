#!/usr/bin/env python
"""Spam attack demo: a registered member floods the network and is
caught, financially slashed and globally removed.

Walks through the paper's core mechanism step by step:

1. the spammer publishes several *different* messages in one epoch;
2. every message after the first carries a second Shamir share of the
   spammer's secret key (same internal nullifier, different share);
3. any routing peer that sees two shares reconstructs the key and
   submits it to the membership contract;
4. the contract removes the member, burns half the stake and pays the
   rest to the reporter — spam stops network-wide, permanently.

Run:  python examples/spam_attack.py
"""

from repro.attacks import RlnSpammer
from repro.core import WakuRlnRelayNetwork, build_report


def main() -> None:
    net = WakuRlnRelayNetwork(peer_count=20, seed=99)
    initial_balances = {p.node_id: p.balance for p in net.peers}
    net.register_all()
    deliveries = net.collect_deliveries()
    net.start()
    net.run(2.0)

    spammer = RlnSpammer(net.peer(0), burst=5)
    print(f"spammer: {spammer.peer.node_id} "
          f"(staked {net.config.stake_wei / 1e18:.1f} ETH)")

    spammer.run(net, epochs=4)  # 5 msgs/epoch for 4 epochs — if it lasts
    net.run(4 * net.config.epoch_length + 30.0)

    spam_per_peer = [
        sum(1 for m in msgs if m.startswith(b"SPAM"))
        for nid, msgs in deliveries.items()
        if nid != spammer.peer.node_id
    ]
    print(f"spam messages sent:                {spammer.sent}")
    print(f"max spam accepted by any peer:     {max(spam_per_peer)}")
    print(f"slash transactions submitted:      "
          f"{sum(p.slashes_submitted for p in net.peers)}")
    print(f"spammer still a member?            {spammer.peer.is_registered}")

    report = build_report(net.chain, net.contract, net.peers, initial_balances)
    spammer_flow = report.ledger(spammer.peer.node_id).net_flow
    print(f"spammer net loss:                  {-spammer_flow / 1e18:.2f} ETH")
    print(f"burnt:                             "
          f"{report.total_burnt / 1e18:.2f} ETH")
    reporters = [
        l.node_id
        for l in report.ledgers
        if l.net_flow > -net.config.stake_wei
        and l.node_id != spammer.peer.node_id
    ]
    print(f"rewarded reporter:                 {reporters}")

    # Honest traffic continues unaffected.
    honest = net.peer(5)
    honest.publish(b"normal message after the attack")
    net.run(10.0)
    delivered = sum(
        1 for msgs in deliveries.values()
        if b"normal message after the attack" in msgs
    )
    print(f"honest message delivered to:       {delivered}/{len(net.peers)} peers")


if __name__ == "__main__":
    main()
