"""E6 — message propagation: off-chain gossip vs on-chain mining
(paper §III: "higher message propagation speed as opposed to the
on-chain case where messages should be mined")."""

import pytest

from repro.analysis import propagation_experiment
from repro.baselines.onchain_messaging import OnChainMessagingSystem
from repro.core import WakuRlnRelayNetwork


@pytest.fixture(scope="module")
def running_network():
    net = WakuRlnRelayNetwork(peer_count=30, seed=6)
    net.register_all()
    net.start()
    net.run(5.0)
    return net


def test_gossip_round_simulated(benchmark, running_network):
    """Wall-clock cost of simulating one full propagation round."""
    net = running_network
    counter = iter(range(10**9))

    def one_round():
        publisher = net.peers[next(counter) % len(net.peers)]
        try:
            publisher.publish(f"bench-{next(counter)}".encode())
        except Exception:
            pass  # rate-limited this epoch; the run()-cost still counts
        net.run(net.config.epoch_length)

    benchmark.pedantic(one_round, rounds=5, iterations=1)


def test_onchain_post_and_mine(benchmark):
    system = OnChainMessagingSystem(block_interval=13.0)
    counter = iter(range(1, 10**9))

    def post_and_mine():
        seq = next(counter)
        system.post(payload_hash=seq, epoch=seq, now=float(seq))
        system.mine(now=float(seq) + 13.0)

    benchmark(post_and_mine)


def test_regenerate_e6_table(record_table):
    headers, rows = propagation_experiment(
        peer_count=50, messages=20, block_interval=13.0
    )
    record_table(
        "e6_propagation",
        "E6: propagation latency, off-chain gossip vs on-chain mining",
        headers,
        rows,
        note=(
            "Gossip latency includes the modeled 0.5 s proving and 30 ms\n"
            "verification costs; on-chain latency is dominated by waiting\n"
            "for the next block."
        ),
    )
    gossip_mean = rows[0][1]
    onchain_mean = rows[1][1]
    # The paper's claim: off-chain propagation is faster.
    assert gossip_mean < onchain_mean
    assert rows[0][4] > 0 and rows[1][4] > 0
