"""Circuit-level benchmarks: R1CS synthesis cost and constraint counts.

Supplementary to E1: the RLN circuit's structure (what the 0.5 s of
Groth16 proving actually pays for) — per-gadget constraint counts and
pure-Python synthesis/witness-check throughput.
"""

import random

import pytest

from repro.crypto.field import Fr
from repro.crypto.hashing import set_hash_backend
from repro.crypto.keys import MembershipKeyPair
from repro.crypto.merkle import MerkleTree
from repro.crypto.zksnark.gadgets import poseidon_hash_gadget
from repro.crypto.zksnark.r1cs import ConstraintSystem
from repro.crypto.zksnark.timing import (
    CONSTRAINTS_PER_MERKLE_LEVEL,
    RLN_BASE_CONSTRAINTS,
    rln_constraint_count,
)
from repro.rln.circuit import RlnStatement


@pytest.fixture
def poseidon_statement(poseidon_backend_module):
    rng = random.Random(44)
    tree = MerkleTree(8)
    pair = MembershipKeyPair.generate(rng)
    index = tree.insert(pair.commitment.element)
    return RlnStatement.build(
        secret=pair.secret.element,
        ext_nullifier=Fr(3),
        x=Fr(777),
        merkle_proof=tree.proof(index),
    )


@pytest.fixture(scope="module")
def poseidon_backend_module():
    set_hash_backend("poseidon")
    yield
    set_hash_backend("blake2b")


def test_poseidon_gadget_synthesis(benchmark, poseidon_backend_module):
    def synthesize():
        cs = ConstraintSystem()
        a = cs.alloc("a", Fr(1))
        b = cs.alloc("b", Fr(2))
        poseidon_hash_gadget(cs, [a, b])
        return cs

    cs = benchmark(synthesize)
    assert cs.num_constraints == 243


def test_rln_circuit_synthesis_depth8(benchmark, poseidon_statement):
    cs = benchmark(poseidon_statement.synthesize)
    assert cs.num_constraints == rln_constraint_count(8)


def test_rln_witness_check_depth8(benchmark, poseidon_statement):
    cs = poseidon_statement.synthesize()
    assert benchmark(cs.is_satisfied)


def test_regenerate_constraint_count_table(record_table):
    headers = ("component", "constraints")
    rows = [
        ("Poseidon t=2 (pk, phi)", 216),
        ("Poseidon t=3 (a1, tree node)", 243),
        ("Merkle level (bool + swap + hash)", CONSTRAINTS_PER_MERKLE_LEVEL),
        ("RLN circuit base (pk + a1 + phi + share)", RLN_BASE_CONSTRAINTS),
        ("RLN circuit @ depth 20", rln_constraint_count(20)),
        ("RLN circuit @ depth 32", rln_constraint_count(32)),
    ]
    record_table(
        "circuit_constraints",
        "RLN circuit constraint counts (genuine R1CS gadgets)",
        headers,
        rows,
        note="Groth16 proving cost is linear in the constraint count.",
    )
    assert rln_constraint_count(20) == (
        RLN_BASE_CONSTRAINTS + 20 * CONSTRAINTS_PER_MERKLE_LEVEL
    )
