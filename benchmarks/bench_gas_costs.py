"""E5 — registration/deletion gas: registry (paper) vs on-chain tree
(original RLN). Paper §III: constant vs logarithmic complexity,
"optimizing gas consumption by an order of magnitude"."""

import random

import pytest

from repro.analysis import gas_cost_experiment, gas_vs_depth_experiment
from repro.crypto.keys import MembershipKeyPair
from repro.eth.chain import Blockchain
from repro.eth.contracts import MembershipRegistry, OnChainTreeContract

STAKE = 10**18


def _bench_registration(benchmark, contract):
    chain = Blockchain()
    chain.deploy(contract)
    rng = random.Random(7)
    counter = iter(range(10**9))

    def register_once():
        i = next(counter)
        account = f"user-{i}"
        chain.create_account(account, balance=2 * STAKE)
        pair = MembershipKeyPair.generate(rng)
        receipt = chain.call_now(
            account,
            contract.address,
            "register",
            int(pair.commitment.element),
            value=STAKE,
        )
        assert receipt.success
        return receipt.gas_used

    return benchmark(register_once)


def test_registry_registration(benchmark):
    gas = _bench_registration(
        benchmark, MembershipRegistry("m", stake_wei=STAKE)
    )
    assert gas < 100_000


def test_onchain_tree_registration(benchmark):
    gas = _bench_registration(
        benchmark, OnChainTreeContract("m", depth=20, stake_wei=STAKE)
    )
    assert gas > 1_000_000


def test_regenerate_e5_table(record_table):
    headers, rows = gas_cost_experiment(member_counts=(0, 16, 64, 256))
    record_table(
        "e5_gas_costs",
        "E5: registration/deletion gas, registry vs on-chain tree",
        headers,
        rows,
        note="ratio = tree registration gas / registry registration gas.",
    )
    # Order-of-magnitude claim at every group size.
    assert all(row[5] >= 10 for row in rows)
    # Registry cost constant once "count" is warm.
    registry_costs = {row[1] for row in rows[1:]}
    assert len(registry_costs) == 1


def test_regenerate_e5b_table(record_table):
    headers, rows = gas_vs_depth_experiment(depths=(10, 16, 20, 26, 32))
    record_table(
        "e5b_gas_vs_depth",
        "E5b: on-chain tree gas grows with depth; registry does not",
        headers,
        rows,
    )
    tree_costs = [row[2] for row in rows]
    assert tree_costs == sorted(tree_costs)
    registry_costs = {row[1] for row in rows}
    assert len(registry_costs) == 1
