"""Full-stack parallel sharding: equivalence matrix, wall-clock, RSS.

Three measurements around ``parallel_workers`` mode (window-isolated
workers with barrier-synced chain replicas):

* the **equivalence matrix** — the flagship ``multi-topic-5k`` profile
  executed on every interesting (shards, workers) cell, including the
  forked cells where chain state is reassembled from pickled op
  streams. Every cell must fingerprint bit-identically to the mode's
  serial (1, 1) reference. This is the benchmark twin of
  ``tests/scenarios/test_parallel_matrix.py`` and runs in tier-1's
  ``--bench-quick`` smoke, so the parallel path cannot rot;
* the **speedup** table — serial vs 4 forked workers at scale. The
  acceptance target (>=2x at 4 workers) only means anything with
  cores to overlap on, so the assertion is gated on ``host_cpus``;
  single-core hosts record the honest fork+pickle overhead instead;
* the **per-worker memory** table — build-per-worker (each forked
  worker constructs only its owned shards) against the fork-after-build
  baseline (one process building and running the whole network, which
  is what every worker used to fork from). Both sides are measured as
  peak RSS in fresh subprocesses so neither inherits the test runner's
  footprint; the acceptance check is worst worker <= 0.5x baseline at
  full scale.

Run with ``pytest benchmarks/bench_parallel_stack.py -s``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.scenarios import run_scenario, scenario

#: Matrix cells: the serial reference, a sharded-but-serial cell, the
#: smallest truly forked cell, and the widest one.
MATRIX = ((1, 1), (2, 1), (2, 2), (4, 4))


def _cell(spec, shards, workers):
    start = time.perf_counter()
    result = run_scenario(spec, shards=shards, parallel_workers=workers)
    return result, time.perf_counter() - start


def test_parallel_stack_equivalence_matrix(record_table, bench_scale):
    """multi-topic-5k across the shard/worker matrix: one fingerprint."""
    spec = scenario("multi-topic-5k").scaled(
        peers=bench_scale.n(1000, 24),
        duration=bench_scale.n(20.0, 8.0),
    )

    rows = []
    reference = None
    for shards, workers in MATRIX:
        result, elapsed = _cell(spec, shards, workers)
        if reference is None:
            reference = result
        # The tentpole property, at every scale: the partition is
        # invisible — forked replicas included.
        assert result.fingerprint() == reference.fingerprint(), (
            f"cell ({shards}, {workers}) diverged from serial reference"
        )
        assert result.events_processed == reference.events_processed
        rows.append(
            (
                shards,
                workers,
                "forked" if workers > 1 else "in-process",
                result.fingerprint(),
                result.events_processed,
                f"{elapsed:.2f}",
            )
        )

    record_table(
        "bench_parallel_stack_matrix",
        "multi-topic-5k on the parallel full stack (shard x worker matrix)",
        ("shards", "workers", "mode", "fingerprint", "events", "wall s"),
        rows,
        note=(
            "Every cell runs the whole protocol stack — RLN peers, "
            "chain, adversaries — on the window-isolated kernel; "
            "workers > 1 forks OS processes that exchange barrier "
            "packets and chain-op streams. Identical fingerprints mean "
            "the partition is pure execution machinery."
        ),
        meta={
            "peers": spec.peers,
            "duration": spec.duration,
            "host_cpus": os.cpu_count(),
            "cells": len(rows),
            "fingerprint": reference.fingerprint(),
            "events_processed": reference.events_processed,
        },
    )


def test_parallel_stack_speedup(record_table, bench_scale):
    """Serial vs 4 forked workers on the flagship profile."""
    spec = scenario("multi-topic-5k").scaled(
        peers=bench_scale.n(5000, 24),
        duration=bench_scale.n(60.0, 8.0),
    )

    serial, serial_s = _cell(spec, 4, 1)
    forked, forked_s = _cell(spec, 4, 4)
    assert forked.fingerprint() == serial.fingerprint()

    speedup = serial_s / forked_s if forked_s else 0.0
    cores = os.cpu_count() or 1
    if not bench_scale.quick and cores >= 4:
        # The PR's acceptance target. On fewer cores the forked mode
        # cannot overlap shard execution and the table records the
        # fork+pickle overhead honestly instead of asserting fiction.
        assert speedup >= 2.0, (
            f"4 forked workers only {speedup:.2f}x over serial "
            f"({forked_s:.1f}s vs {serial_s:.1f}s on {cores} cpus)"
        )

    record_table(
        "bench_parallel_stack_speedup",
        "multi-topic-5k: serial vs forked parallel workers (4 shards)",
        ("mode", "workers", "fingerprint", "wall s", "speedup"),
        [
            ("in-process", 1, serial.fingerprint(), f"{serial_s:.2f}", "1.00"),
            (
                "forked",
                4,
                forked.fingerprint(),
                f"{forked_s:.2f}",
                f"{speedup:.2f}",
            ),
        ],
        note=(
            "Same barrier protocol in both modes; the forked row adds "
            "fork, pipe and pickle costs and buys true multi-core "
            "overlap. The >=2x acceptance check applies at full scale "
            "on hosts with >=4 cpus (see host_cpus)."
        ),
        meta={
            "peers": spec.peers,
            "duration": spec.duration,
            "host_cpus": cores,
            "wall_clock_serial_s": round(serial_s, 3),
            "wall_clock_forked_s": round(forked_s, 3),
            # Meaningful only at full scale on a multi-core host.
            "speedup_4_workers": (
                round(speedup, 2)
                if not bench_scale.quick and cores >= 4
                else None
            ),
        },
    )


# -- per-worker memory --------------------------------------------------------

#: Peak-RSS probe for the fresh-process scripts. ``ru_maxrss`` is
#: poisoned here: Linux folds the pre-exec mm's high-water mark into
#: the rusage counter at execve, so a subprocess spawned from a large
#: test runner reports the *runner's* peak. ``VmHWM`` is per-mm and
#: resets on exec, which is exactly the fresh-image peak we want.
_PEAK_KIB = """\
def peak_kib():
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    import resource
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
"""

#: Footprint floor: a fresh interpreter with the package imported.
_INTERPRETER_RSS = _PEAK_KIB + """\
import repro.scenarios.runner  # noqa: F401 - import cost is the point
print(peak_kib())
"""

#: Whole-network build: one process materialises every shard and
#: stops — the address space fork-after-build handed each worker at
#: fork time, before any execution.
_FULL_BUILD_RSS = _PEAK_KIB + """\
import sys
from repro.scenarios import scenario
from repro.scenarios.runner import ScenarioRunner
spec = scenario(sys.argv[1]).scaled(
    peers=int(sys.argv[2]), duration=float(sys.argv[3])
)
ScenarioRunner(spec)  # serial ctor materialises every shard
print(peak_kib())
"""

#: Fork-after-build baseline: the whole-network single process through
#: build *and* run — the process the old mode forked, and the peak its
#: address space reached. Per-worker RSS under build-per-worker is
#: compared against this: the point of the refactor is that no process
#: ever holds the whole network again.
_FULL_RUN_RSS = _PEAK_KIB + """\
import sys
from repro.scenarios import run_scenario, scenario
spec = scenario(sys.argv[1]).scaled(
    peers=int(sys.argv[2]), duration=float(sys.argv[3])
)
run_scenario(spec, shards=int(sys.argv[4]), parallel_workers=1)
print(peak_kib())
"""

#: Build-per-worker: a forked run whose children each construct only
#: their owned shards; ``LAST_RUN_WORKER_RSS`` carries each child's
#: ``ru_maxrss``. Children fork before the coordinator materialises its
#: ghost-only view, so they inherit a lean interpreter, not a build.
_WORKER_RSS = """\
import json, sys
from repro.scenarios import parallel, run_scenario, scenario
spec = scenario(sys.argv[1]).scaled(
    peers=int(sys.argv[2]), duration=float(sys.argv[3])
)
run_scenario(
    spec, shards=int(sys.argv[4]), parallel_workers=int(sys.argv[5])
)
print(json.dumps(parallel.LAST_RUN_WORKER_RSS))
"""


def _fresh_process(script, *args):
    """Run ``script`` in a clean interpreter; parse its last stdout line."""
    import repro

    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1]) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["PYTHONHASHSEED"] = "0"
    proc = subprocess.run(
        [sys.executable, "-c", script, *map(str, args)],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _mib(ru_maxrss_kib):
    return round(ru_maxrss_kib / 1024.0, 1)


def test_parallel_stack_worker_memory(record_table, bench_scale):
    """city-scale-50k: build-per-worker vs the fork-after-build floor."""
    name = "city-scale-50k"
    peers = bench_scale.n(10000, 24)
    duration = bench_scale.n(3.0, 4.0)
    shards = workers = 4

    interpreter = _fresh_process(_INTERPRETER_RSS)
    build_only = _fresh_process(_FULL_BUILD_RSS, name, peers, duration)
    baseline = _fresh_process(
        _FULL_RUN_RSS, name, peers, duration, shards
    )
    per_worker = _fresh_process(
        _WORKER_RSS, name, peers, duration, shards, workers
    )
    assert len(per_worker) == workers
    worst = max(per_worker)
    ratio = worst / baseline
    if not bench_scale.quick:
        # The PR's acceptance target: no worker ever holds the whole
        # network, so its peak stays under half the single-process one.
        assert worst <= 0.5 * baseline, (
            f"worst worker {_mib(worst)} MiB vs fork-after-build "
            f"baseline {_mib(baseline)} MiB ({ratio:.2f}x)"
        )

    rows = [("interpreter floor", "-", _mib(interpreter), "-")]
    rows.append(
        ("whole-network build only", "-", _mib(build_only), "-")
    )
    rows.append(
        ("fork-after-build (build + run)", "-", _mib(baseline), "1.00")
    )
    for index, rss in enumerate(per_worker):
        rows.append(
            (
                "build-per-worker",
                f"worker {index}",
                _mib(rss),
                f"{rss / baseline:.2f}",
            )
        )
    record_table(
        "bench_parallel_stack_memory",
        f"Per-worker peak RSS: {name} at {peers} peers "
        f"({shards} shards, {workers} forked workers)",
        ("mode", "process", "peak RSS MiB", "vs baseline"),
        rows,
        note=(
            "Every row is the peak RSS (VmHWM) of a fresh process, so "
            "nothing inherits the test runner's footprint (ru_maxrss "
            "would: Linux folds the pre-exec image's peak into it at "
            "execve). The baseline row is the whole-network single "
            "process through build and run — the process fork-after-"
            "build forked, and the peak every worker's address space "
            "tracked through COW. The build-per-worker rows fork "
            "first and construct only their owned shards (shard 0's "
            "owner also carries the pinned adversaries and "
            "watchtowers); their residual floor is the interpreter "
            "plus per-worker global state (chain replica, committed "
            "verification memo, ghost roster), which no partition "
            "removes."
        ),
        meta={
            "peers": peers,
            "duration": duration,
            "shards": shards,
            "workers": workers,
            "host_cpus": os.cpu_count(),
            "interpreter_rss_kib": interpreter,
            "full_build_rss_kib": build_only,
            "fork_after_build_rss_kib": baseline,
            # Max-merged across workers; the per-worker values are rows.
            "worker_rss_max_kib": worst,
            "worker_rss_min_kib": min(per_worker),
            "worker_rss_sum_kib": sum(per_worker),
            "worst_worker_over_baseline": round(ratio, 3),
        },
    )


def test_no_builtin_scenario_rejected_at_two_workers():
    """Feature-parity tripwire, in tier-1 via ``--bench-quick``: every
    built-in scenario must construct for parallel mode at workers=2.
    Constructing is the assertion — an incompatible feature raises the
    typed ``ScenarioSpecError`` straight out of ``scaled``."""
    from repro.scenarios.registry import all_scenarios

    for spec in all_scenarios():
        scaled = spec.scaled(parallel_workers=2)
        assert scaled.parallel_rejections() == (), spec.name
