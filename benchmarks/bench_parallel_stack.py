"""Full-stack parallel sharding: equivalence matrix and wall-clock.

Two measurements around ``parallel_workers`` mode (window-isolated
workers with barrier-synced chain replicas):

* the **equivalence matrix** — the flagship ``multi-topic-5k`` profile
  executed on every interesting (shards, workers) cell, including the
  forked cells where chain state is reassembled from pickled op
  streams. Every cell must fingerprint bit-identically to the mode's
  serial (1, 1) reference. This is the benchmark twin of
  ``tests/scenarios/test_parallel_matrix.py`` and runs in tier-1's
  ``--bench-quick`` smoke, so the parallel path cannot rot;
* the **speedup** table — serial vs 4 forked workers at scale. The
  acceptance target (>=2x at 4 workers) only means anything with
  cores to overlap on, so the assertion is gated on ``host_cpus``;
  single-core hosts record the honest fork+pickle overhead instead.

Run with ``pytest benchmarks/bench_parallel_stack.py -s``.
"""

from __future__ import annotations

import os
import time

from repro.scenarios import run_scenario, scenario

#: Matrix cells: the serial reference, a sharded-but-serial cell, the
#: smallest truly forked cell, and the widest one.
MATRIX = ((1, 1), (2, 1), (2, 2), (4, 4))


def _cell(spec, shards, workers):
    start = time.perf_counter()
    result = run_scenario(spec, shards=shards, parallel_workers=workers)
    return result, time.perf_counter() - start


def test_parallel_stack_equivalence_matrix(record_table, bench_scale):
    """multi-topic-5k across the shard/worker matrix: one fingerprint."""
    spec = scenario("multi-topic-5k").scaled(
        peers=bench_scale.n(1000, 24),
        duration=bench_scale.n(20.0, 8.0),
    )

    rows = []
    reference = None
    for shards, workers in MATRIX:
        result, elapsed = _cell(spec, shards, workers)
        if reference is None:
            reference = result
        # The tentpole property, at every scale: the partition is
        # invisible — forked replicas included.
        assert result.fingerprint() == reference.fingerprint(), (
            f"cell ({shards}, {workers}) diverged from serial reference"
        )
        assert result.events_processed == reference.events_processed
        rows.append(
            (
                shards,
                workers,
                "forked" if workers > 1 else "in-process",
                result.fingerprint(),
                result.events_processed,
                f"{elapsed:.2f}",
            )
        )

    record_table(
        "bench_parallel_stack_matrix",
        "multi-topic-5k on the parallel full stack (shard x worker matrix)",
        ("shards", "workers", "mode", "fingerprint", "events", "wall s"),
        rows,
        note=(
            "Every cell runs the whole protocol stack — RLN peers, "
            "chain, adversaries — on the window-isolated kernel; "
            "workers > 1 forks OS processes that exchange barrier "
            "packets and chain-op streams. Identical fingerprints mean "
            "the partition is pure execution machinery."
        ),
        meta={
            "peers": spec.peers,
            "duration": spec.duration,
            "host_cpus": os.cpu_count(),
            "cells": len(rows),
            "fingerprint": reference.fingerprint(),
            "events_processed": reference.events_processed,
        },
    )


def test_parallel_stack_speedup(record_table, bench_scale):
    """Serial vs 4 forked workers on the flagship profile."""
    spec = scenario("multi-topic-5k").scaled(
        peers=bench_scale.n(5000, 24),
        duration=bench_scale.n(60.0, 8.0),
    )

    serial, serial_s = _cell(spec, 4, 1)
    forked, forked_s = _cell(spec, 4, 4)
    assert forked.fingerprint() == serial.fingerprint()

    speedup = serial_s / forked_s if forked_s else 0.0
    cores = os.cpu_count() or 1
    if not bench_scale.quick and cores >= 4:
        # The PR's acceptance target. On fewer cores the forked mode
        # cannot overlap shard execution and the table records the
        # fork+pickle overhead honestly instead of asserting fiction.
        assert speedup >= 2.0, (
            f"4 forked workers only {speedup:.2f}x over serial "
            f"({forked_s:.1f}s vs {serial_s:.1f}s on {cores} cpus)"
        )

    record_table(
        "bench_parallel_stack_speedup",
        "multi-topic-5k: serial vs forked parallel workers (4 shards)",
        ("mode", "workers", "fingerprint", "wall s", "speedup"),
        [
            ("in-process", 1, serial.fingerprint(), f"{serial_s:.2f}", "1.00"),
            (
                "forked",
                4,
                forked.fingerprint(),
                f"{forked_s:.2f}",
                f"{speedup:.2f}",
            ),
        ],
        note=(
            "Same barrier protocol in both modes; the forked row adds "
            "fork, pipe and pickle costs and buys true multi-core "
            "overlap. The >=2x acceptance check applies at full scale "
            "on hosts with >=4 cpus (see host_cpus)."
        ),
        meta={
            "peers": spec.peers,
            "duration": spec.duration,
            "host_cpus": cores,
            "wall_clock_serial_s": round(serial_s, 3),
            "wall_clock_forked_s": round(forked_s, 3),
            # Meaningful only at full scale on a multi-core host.
            "speedup_4_workers": (
                round(speedup, 2)
                if not bench_scale.quick and cores >= 4
                else None
            ),
        },
    )
