"""E8 — light computational overhead / resource-restricted suitability
(paper §I, §IV). Compares per-message publisher and router costs of
RLN against Whisper PoW across device classes."""

import random

import pytest

from repro.analysis import routing_overhead_experiment
from repro.baselines.pow import PHONE, mine_envelope, verify_envelope
from repro.core.epoch import EpochTracker
from repro.core.nullifier_map import NullifierMap
from repro.core.validator import RlnMessageValidator, ValidationOutcome
from repro.crypto.keys import MembershipKeyPair
from repro.rln.membership import LocalGroup
from repro.rln.prover import RlnProver, rln_keys
from repro.rln.verifier import RlnVerifier
from repro.sim.simulator import Simulator


@pytest.fixture(scope="module")
def validation_stack():
    rng = random.Random(11)
    pk, vk = rln_keys(seed=b"bench-e8")
    group = LocalGroup(depth=16)
    pair = MembershipKeyPair.generate(rng)
    index = group.apply_registration(pair.commitment, 0)
    prover = RlnProver(keypair=pair, proving_key=pk)
    validator = RlnMessageValidator(
        verifier=RlnVerifier(vk, group.is_acceptable_root),
        epoch_tracker=EpochTracker(Simulator(), 10.0),
        nullifier_map=NullifierMap(thr=2),
    )
    return prover, group, index, validator


def test_full_validation_pipeline(benchmark, validation_stack):
    """Router-side cost: proof check + epoch window + nullifier map."""
    prover, group, index, validator = validation_stack
    counter = iter(range(10**9))
    proof = group.merkle_proof(index)

    def validate_fresh():
        # Fresh map per message: two distinct messages from one member
        # in one epoch would otherwise be (correctly!) flagged as spam.
        validator.nullifier_map = NullifierMap(thr=2)
        signal = prover.create_signal(
            f"v-{next(counter)}".encode(), 0, proof
        )
        return validator.validate_bytes(signal.to_bytes())

    report = benchmark(validate_fresh)
    assert report.outcome is ValidationOutcome.RELAY


def test_pow_verification(benchmark):
    envelope, _ = mine_envelope(b"bench", 8, rng=random.Random(5))
    assert benchmark(verify_envelope, envelope, 8)


def test_pow_mining_is_publisher_bottleneck(benchmark):
    rng = random.Random(6)
    counter = iter(range(10**9))
    benchmark(
        lambda: mine_envelope(f"m{next(counter)}".encode(), 10, rng=rng)
    )


def test_regenerate_e8_table(record_table):
    headers, rows = routing_overhead_experiment()
    record_table(
        "e8_routing_overhead",
        "E8: per-message computational overhead by device class",
        headers,
        rows,
        note=(
            "RLN: one proof per epoch, constant verification. PoW: one\n"
            "nonce search per message, cost exploding on weak devices."
        ),
    )
    by_system = {row[0]: row for row in rows}
    phone_pow = by_system["Whisper PoW 18 bits (phone)"][1]
    rln_model = by_system["RLN (paper model, phone)"][1]
    # On a phone, PoW costs more per message than an RLN proof —
    # and the RLN proof happens at most once per epoch.
    assert phone_pow > rln_model
    iot_pow = by_system["Whisper PoW 18 bits (iot)"][1]
    assert iot_pow > 10  # unusable on IoT, the paper's point
