"""Network-size scaling sweep: latency grows like the overlay diameter
(O(log N)), coverage stays complete — the gossip scalability story the
paper's open-network setting depends on."""

import pytest

from repro.analysis.scaling import network_scaling_experiment
from repro.core import WakuRlnRelayNetwork


def test_simulation_cost_scales(benchmark):
    """Wall-clock of building + settling a 40-peer deployment."""

    def build():
        net = WakuRlnRelayNetwork(peer_count=40, seed=51, degree=6)
        net.register_all()
        net.start()
        net.run(5.0)
        return net

    net = benchmark.pedantic(build, rounds=3, iterations=1)
    assert net.registered_count == 40


def test_regenerate_scaling_table(record_table, bench_scale):
    headers, rows = network_scaling_experiment(
        peer_counts=bench_scale.n((10, 20, 40, 80), (10, 20))
    )
    record_table(
        "scaling_network_size",
        "Scaling: propagation vs network size (degree-6 overlay)",
        headers,
        rows,
        note="latency should track the diameter (log N), not N.",
    )
    latencies = [row[2] for row in rows]
    sizes = [row[0] for row in rows]
    if not bench_scale.quick:
        # Sub-linear growth: 8x the peers costs far less than 8x latency.
        assert latencies[-1] < latencies[0] * (sizes[-1] / sizes[0]) / 2
    # Full coverage at every size.
    assert all(row[4] == "100.0%" for row in rows)
