"""E4 — membership-tree storage: 67 MB naive vs ~0.1 KB optimized
(paper §IV, citing reference [9])."""

import pytest

from repro.analysis import merkle_storage_experiment
from repro.crypto.field import Fr
from repro.crypto.merkle import MerkleTree
from repro.crypto.merkle_optimized import FrontierMerkleTree


def test_full_tree_insert(benchmark):
    tree = MerkleTree(20)
    counter = iter(range(1, 10**9))
    benchmark(lambda: tree.insert(Fr(next(counter))))


def test_frontier_tree_insert(benchmark):
    tree = FrontierMerkleTree(20)
    counter = iter(range(1, 10**9))
    benchmark(lambda: tree.insert(Fr(next(counter))))


def test_regenerate_e4_table(record_table):
    headers, rows = merkle_storage_experiment(depths=(10, 16, 20, 24))
    record_table(
        "e4_merkle_storage",
        "E4: membership tree storage (paper: 67 MB vs 0.128 KB at depth 20)",
        headers,
        rows,
        note=(
            "Our frontier stores depth+1 words (672 B at depth 20) vs the\n"
            "paper's 0.128 KB variant — same order, and ~100,000x below\n"
            "the naive store either way."
        ),
    )
    depth20 = next(row for row in rows if row[0] == 20)
    # The paper's 67 MB figure, reproduced exactly by the formula.
    assert depth20[1] == pytest.approx(67e6, rel=0.01)
    # Frontier storage is 5 orders of magnitude smaller.
    assert depth20[3] > 10**4


def test_frontier_equals_full_root():
    full, frontier = MerkleTree(12), FrontierMerkleTree(12)
    for i in range(100):
        full.insert(Fr(i + 1))
        frontier.insert(Fr(i + 1))
    assert full.root == frontier.root
