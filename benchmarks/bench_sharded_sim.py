"""Sharded simulation core: invariance, accounting and wall-clock.

Two measurements around the sharded kernel:

* the flagship scenario — ``multi-topic-5k`` executed on the sharded
  kernel at 1 and 4 shards. The runs must be **bit-identical**
  (fingerprint equality is the tentpole property: sharding is pure
  execution machinery), and the table records wall-clock plus the
  cross-shard traffic accounting that bounds what window-isolated
  parallelism could save;
* the parallel runner — the shard-confined ``UniformRelayWorkload``
  driven through :class:`~repro.sim.shards.ParallelShardRunner`
  serially and on forked workers. Results must match exactly; the
  wall-clock columns show what process parallelism buys *on this
  host* (``host_cpus`` in the meta — on a single-core container the
  forked mode pays fork+pickle overhead for no overlap, and the
  numbers record that honestly rather than extrapolating).

Run with ``pytest benchmarks/bench_sharded_sim.py -s``.
"""

from __future__ import annotations

import os
import time

from repro.scenarios import scenario
from repro.scenarios.runner import ScenarioRunner
from repro.sim.shards import ParallelShardRunner, UniformRelayWorkload

#: multi-topic-5k wall-clock on the reference single-core host before
#: the PR-6 hot-path work (GC quiescence, seen-cache dedup, score
#: gating), measured at the growth seed. The acceptance floor below is
#: anchored to a real measurement, not an aspiration.
PRE_PR6_BASELINE_S = 1126.0


def _run_sharded(spec, shards):
    runner = ScenarioRunner(spec.scaled(shards=shards))
    start = time.perf_counter()
    result = runner.run()
    elapsed = time.perf_counter() - start
    stats = (
        runner.net.simulator.shard_stats()
        if shards > 1
        else {
            "barriers": 0,
            "cross_shard_scheduled": 0,
            "cross_shard_fraction": 0.0,
        }
    )
    return result, elapsed, stats


def test_multi_topic_5k_sharded_invariance(record_table, bench_scale):
    """The flagship 5k-peer scenario on 1 vs 4 shards: identical
    fingerprints, recorded wall-clock and partition accounting."""
    spec = scenario("multi-topic-5k").scaled(
        peers=bench_scale.n(5000, 60),
        duration=bench_scale.n(60.0, 10.0),
    )
    shard_counts = (1, 2, 4) if bench_scale.quick else (1, 4)

    rows = []
    outcomes = {}
    for shards in shard_counts:
        result, elapsed, stats = _run_sharded(spec, shards)
        outcomes[shards] = result
        rows.append(
            (
                shards,
                result.fingerprint(),
                result.events_processed,
                f"{elapsed:.1f}",
                stats["cross_shard_scheduled"],
                f"{stats['cross_shard_fraction']:.3f}",
                stats["barriers"],
            )
        )

    # The tentpole property holds at any scale: sharding never changes
    # the simulation, only how its queue is organised.
    fingerprints = {r.fingerprint() for r in outcomes.values()}
    assert len(fingerprints) == 1, f"shard-variant results: {rows}"
    baseline = outcomes[shard_counts[0]]
    assert all(
        r.events_processed == baseline.events_processed
        for r in outcomes.values()
    )

    wall = {row[0]: float(row[3]) for row in rows}
    if not bench_scale.quick:
        # Acceptance floor: at least 2x over the pre-PR-6 seed
        # measurement. The slimming currently lands 2.5x (~450 s);
        # the five-minute aspiration stays open on the ROADMAP for
        # multi-core shard workers.
        assert wall[1] < PRE_PR6_BASELINE_S / 2, (
            f"multi-topic-5k too slow: {wall[1]:.0f}s (acceptance needs "
            f">=2x over the {PRE_PR6_BASELINE_S:.0f}s pre-PR-6 baseline)"
        )

    record_table(
        "bench_sharded_sim_multi_topic_5k",
        "multi-topic-5k on the sharded kernel (fingerprint-invariant)",
        (
            "shards",
            "fingerprint",
            "events",
            "wall s",
            "cross-shard",
            "x-frac",
            "barriers",
        ),
        rows,
        note=(
            "Identical fingerprints by construction: per-shard queues "
            "merge on the global (time, seq) order. Wall-clock differs "
            "only by merge overhead; x-frac is the share of events one "
            "shard scheduled onto another — the coupling that bounds "
            "window-isolated parallel execution of the full stack."
        ),
        meta={
            "peers": spec.peers,
            "duration": spec.duration,
            "host_cpus": os.cpu_count(),
            **{
                f"wall_clock_shards_{count}": seconds
                for count, seconds in wall.items()
            },
            "fingerprint": baseline.fingerprint(),
            "events_processed": baseline.events_processed,
            "baseline_pre_pr6_s": PRE_PR6_BASELINE_S,
            # Only meaningful against the full-scale workload: dividing
            # the real baseline by a smoke-run wall-clock would record a
            # fantasy speedup (or divide by a 0.0-rounded duration).
            "speedup_vs_baseline": (
                round(PRE_PR6_BASELINE_S / wall[1], 2)
                if not bench_scale.quick and wall[1]
                else None
            ),
        },
    )


def test_parallel_relay_runner(record_table, bench_scale):
    """Shard-confined relay fanout through the parallel runner:
    serial vs forked workers, identical results required."""
    nodes = bench_scale.n(2000, 48)
    until = bench_scale.n(30.0, 4.0)
    workload = UniformRelayWorkload(
        node_count=nodes, interval=1.0, fanout=4, latency=0.3
    )

    def run(shards, processes):
        runner = ParallelShardRunner(
            workload.build, shard_count=shards, seed=11, window=0.25
        )
        start = time.perf_counter()
        snapshots = runner.run(until=until, processes=processes)
        elapsed = time.perf_counter() - start
        published = sum(s["published"] for s in snapshots)
        delivered = sum(
            sum(s["delivered"].values()) for s in snapshots
        )
        return (published, delivered), elapsed, runner.packets_exchanged

    rows = []
    reference = None
    for shards, processes, label in (
        (1, False, "serial"),
        (4, False, "serial"),
        (4, True, "forked"),
    ):
        totals, elapsed, packets = run(shards, processes)
        if reference is None:
            reference = totals
        # Correctness at every scale: shard count and worker processes
        # must never change what was published or delivered.
        assert totals == reference, f"divergent results at {shards} shards"
        rows.append(
            (shards, label, totals[0], totals[1], packets, f"{elapsed:.2f}")
        )

    record_table(
        "bench_sharded_sim_parallel_relay",
        "shard-confined relay workload: serial vs forked lockstep windows",
        ("shards", "mode", "published", "delivered", "packets", "wall s"),
        rows,
        note=(
            "Per-node RNG streams make the workload shard-invariant; "
            "cross-shard deliveries cross at barrier windows in "
            "(time, origin, seq) order, so forked execution is "
            "bit-deterministic. Wall-clock speedup requires cores: "
            "see host_cpus in meta."
        ),
        meta={
            "nodes": nodes,
            "until": until,
            "host_cpus": os.cpu_count(),
            "published": reference[0],
            "delivered": reference[1],
        },
    )
