"""E1 — proof generation vs group size (paper §IV: ≈0.5 s at 2^32).

Regenerates the proof-generation row of the paper's performance
analysis: modeled latency scales with the circuit's constraint count
(Merkle depth), calibrated so depth 32 = 0.5 s on the reference phone.
"""

import random

import pytest

from repro.analysis import proof_generation_experiment
from repro.crypto.keys import MembershipKeyPair
from repro.crypto.merkle import MerkleTree
from repro.rln.prover import RlnProver, rln_keys


@pytest.fixture(scope="module")
def prover_setup():
    rng = random.Random(1)
    pk, _vk = rln_keys(seed=b"bench-e1")
    tree = MerkleTree(20)
    pair = MembershipKeyPair.generate(rng)
    index = tree.insert(pair.commitment.element)
    prover = RlnProver(keypair=pair, proving_key=pk)
    return prover, tree, index


def test_native_proof_generation_depth20(benchmark, prover_setup):
    """Wall-clock of one native-mode signal creation (depth-20 tree)."""
    prover, tree, index = prover_setup
    proof = tree.proof(index)
    counter = iter(range(10**9))

    def make_signal():
        return prover.create_signal(
            f"bench-{next(counter)}".encode(), 1, proof
        )

    signal = benchmark(make_signal)
    assert signal.proof.size_bytes == 128


def test_merkle_proof_extraction(benchmark, prover_setup):
    """Cost of extracting the authentication path (publisher side)."""
    _prover, tree, index = prover_setup
    proof = benchmark(tree.proof, index)
    assert proof.depth == 20


def test_regenerate_e1_table(record_table, bench_scale):
    depths = bench_scale.n((10, 16, 20, 26, 32), (10, 16))
    headers, rows = proof_generation_experiment(depths=depths)
    record_table(
        "e1_proof_generation",
        "E1: proof generation vs group size (paper: ~0.5 s at 2^32)",
        headers,
        rows,
        note=(
            "modeled = calibrated PerformanceModel (iPhone 8); "
            "measured = this Python implementation."
        ),
    )
    # Shape assertions: monotone growth with depth, 0.5 s anchor at 32.
    modeled = [row[3] for row in rows]
    assert modeled == sorted(modeled)
    if not bench_scale.quick:
        assert modeled[-1] == pytest.approx(0.5)
