"""E2 — proof verification constant in group size (paper §IV: ≈30 ms)."""

import random

import pytest

from repro.analysis import proof_verification_experiment
from repro.crypto.keys import MembershipKeyPair
from repro.crypto.merkle import MerkleTree
from repro.rln.prover import RlnProver, rln_keys
from repro.rln.verifier import RlnVerifier


@pytest.fixture(scope="module", params=[10, 20, 32])
def verification_setup(request):
    depth = request.param
    rng = random.Random(2)
    pk, vk = rln_keys(seed=b"bench-e2")
    tree = MerkleTree(depth)
    pair = MembershipKeyPair.generate(rng)
    index = tree.insert(pair.commitment.element)
    prover = RlnProver(keypair=pair, proving_key=pk)
    signal = prover.create_signal(b"bench", 1, tree.proof(index))
    verifier = RlnVerifier(
        verifying_key=vk, root_predicate=lambda r, t=tree: r == t.root
    )
    return verifier, signal, depth


def test_signal_verification(benchmark, verification_setup):
    """One full signal check (proof + root + share binding) per depth."""
    verifier, signal, depth = verification_setup
    assert benchmark(verifier.is_valid, signal)


def test_regenerate_e2_table(record_table):
    headers, rows = proof_verification_experiment(depths=(10, 16, 20, 26, 32))
    record_table(
        "e2_proof_verification",
        "E2: proof verification, constant in group size (paper: ~30 ms)",
        headers,
        rows,
        note="verification cost must not grow with the membership size.",
    )
    measured = [row[3] for row in rows]
    # Constancy: no growth trend beyond 3x noise between extremes.
    assert max(measured) < 3 * min(measured) + 1e-4
    modeled = {row[2] for row in rows}
    assert modeled == {0.03}
