"""Adversary engine at scale: spam throughput and slash latency.

Two measurements at 1000 peers:

* attack pressure — how much spam each strategy pushes into the
  network, how much of it honest peers actually see, and what the
  attacker pays per delivered message (the cost-of-attack headline);
* enforcement latency — simulated seconds from a strategy's first rate
  violation to its on-chain removal, across every identity it burns.

Run with ``pytest benchmarks/bench_adversaries.py -s`` (each strategy
simulates a 1000-peer network; expect a few minutes total).
"""

from __future__ import annotations

import time

from repro.scenarios import (
    AdversaryGroup,
    AdversaryMix,
    ScenarioSpec,
    TrafficModel,
    ScenarioRunner,
)

PEERS = 1000
DURATION = 60.0

STRATEGIES = (
    ("burst-flood", {"epochs": 6}, 4),
    ("rotating-sybil", {}, 6),
    ("low-and-slow", {"probe_every": 2}, 4),
    ("adaptive-backoff", {}, 6),
)


def _spec(
    strategy: str, params: dict, budget_stakes: int, peers: int,
    duration: float,
) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"bench-{strategy}",
        description=f"attack benchmark for {strategy} at {peers} peers",
        peers=peers,
        duration=duration,
        block_interval=5.0,
        traffic=TrafficModel(messages_per_epoch=0.25, active_fraction=0.05),
        adversaries=AdversaryMix(
            groups=(
                AdversaryGroup(
                    strategy=strategy,
                    count=2,
                    budget_stakes=budget_stakes,
                    burst=6,
                    params=params,
                ),
            ),
        ),
        config_overrides={"verification_cache_size": 65536},
    )


def test_adversary_strategies_at_1k_peers(record_table, bench_scale):
    peers = bench_scale.n(PEERS, 25)
    duration = bench_scale.n(DURATION, 40.0)
    rows = []
    for strategy, params, budget_stakes in STRATEGIES:
        started = time.perf_counter()
        spec = _spec(strategy, params, budget_stakes, peers, duration)
        result = ScenarioRunner(spec).run()
        wall = time.perf_counter() - started
        latency = result.extras.get("mean_slash_latency")
        stake = spec.build_config().stake_wei
        rows.append(
            (
                strategy,
                result.spam_published,
                result.spam_delivered,
                result.members_slashed,
                result.identity_rotations,
                f"{result.attacker_spend / stake:.0f}",
                f"{result.stake_burnt / stake:.1f}",
                f"{latency:.1f}" if latency is not None else "n/a",
                f"{result.spam_published / result.sim_time:.2f}",
                f"{wall:.1f}",
            )
        )
        # Enforcement must have engaged for every violating strategy.
        assert result.members_slashed > 0
        assert result.stake_burnt > 0
    record_table(
        "bench_adversaries_1k_peers",
        f"Adversary engine at {peers} peers, {duration:.0f}s simulated "
        "(2 agents per strategy)",
        (
            "strategy",
            "spam sent",
            "delivered",
            "slashes",
            "rotations",
            "spend (stakes)",
            "burnt (stakes)",
            "slash latency s",
            "spam msg/s",
            "wall s",
        ),
        rows,
        note=(
            "slash latency = mean simulated seconds from a rate "
            "violation to on-chain removal; spend counts every stake "
            "the attacker registered (locked or lost)."
        ),
    )
