"""Membership sync at scale: shared copy-on-write store vs replicas.

The paper's "every peer maintains the Merkle tree locally" means a
mid-run membership event (registration or slash) re-hashes an O(depth)
path in every replica — O(peers x topics x depth) hashes network-wide
per event. The shared store (``ProtocolConfig.shared_membership_store``)
records each event once on the canonical tree; every other replica's
application is a pointer advance.

Two measurements:

* a replica-grid microbenchmark — 1k peers x 8 topic domains, a burst
  of mid-run registrations and slashes applied to every replica, with
  sharing on and off: network-wide hash count (the process-global
  :func:`repro.crypto.hashing.hash_call_count` probe) and wall clock.
  Sharing must cut hashes by >=10x (in practice it is ~peers x);
* an end-to-end equivalence check — the ``multi-topic-churn`` scenario
  (mid-run joins = mid-run registrations) with the store on and off,
  asserting **bit-identical** behaviour: the toggle only changes the
  work done, never a protocol decision.

Run with ``pytest benchmarks/bench_membership_sync.py -s``.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import List

from repro.crypto.field import Fr
from repro.crypto.hashing import hash_call_count
from repro.crypto.keys import MembershipKeyPair
from repro.rln.membership import LocalGroup, MembershipStore
from repro.scenarios import run_scenario, scenario

DEPTH = 20


def _bootstrap_population(
    peers: int, domains: List[str], members, shared: bool
):
    """peers x domains replicas, pre-synced to ``members`` registrations.

    Bootstrap replicates one synced reference per domain (the
    ``register_all`` fast path), so the measured section isolates the
    *mid-run* event cost.
    """
    store = MembershipStore(depth=DEPTH) if shared else None
    grid: List[List[LocalGroup]] = []
    references = {}
    for domain in domains:
        reference = (
            store.local_group(domain) if shared else LocalGroup(DEPTH)
        )
        for event, pair in enumerate(members):
            reference.apply_registration(pair.commitment, event)
        references[domain] = reference
    for _ in range(peers):
        row = []
        for domain in domains:
            group = (
                store.local_group(domain) if shared else LocalGroup(DEPTH)
            )
            group.replicate_from(references[domain])
            row.append(group)
        grid.append(row)
    return store, grid


def _apply_midrun_events(grid, newcomers, base_event: int) -> None:
    """Interleave registrations and slashes across every replica."""
    event = base_event
    for round_index, pair in enumerate(newcomers):
        for row in grid:
            for group in row:
                group.apply_registration(pair.commitment, event)
        event += 1
        if round_index % 2:  # slash an early member every other round
            victim = round_index // 2
            for row in grid:
                for group in row:
                    group.apply_removal(victim, event)
            event += 1


def test_midrun_membership_events_shared_vs_independent(
    record_table, bench_scale
):
    peers = bench_scale.n(1000, 20)
    topics = bench_scale.n(8, 2)
    bootstrap_members = bench_scale.n(64, 8)
    midrun_registrations = bench_scale.n(8, 3)

    import random

    rng = random.Random(42)
    members = [
        MembershipKeyPair.generate(rng) for _ in range(bootstrap_members)
    ]
    newcomers = [
        MembershipKeyPair.generate(rng)
        for _ in range(midrun_registrations)
    ]
    domains = [f"/bench/topic-{t}" for t in range(topics)]

    rows = []
    measured = {}
    stores = {}
    grids = {}
    for label, shared in (("independent", False), ("shared", True)):
        store, grid = _bootstrap_population(peers, domains, members, shared)
        hashes_before = hash_call_count()
        start = time.perf_counter()
        _apply_midrun_events(grid, newcomers, base_event=bootstrap_members)
        elapsed = time.perf_counter() - start
        hashes = hash_call_count() - hashes_before
        events = len(newcomers) + len(newcomers) // 2
        measured[label] = (hashes, elapsed)
        stores[label] = store
        grids[label] = grid
        rows.append(
            (
                label,
                peers,
                topics,
                events,
                hashes,
                round(hashes / (events * topics), 1),
                round(elapsed, 3),
            )
        )

    # Equivalence: every replica in both populations converged to the
    # same roots and windows, domain by domain.
    for row_shared, row_indep in zip(grids["shared"], grids["independent"]):
        for group_shared, group_indep in zip(row_shared, row_indep):
            assert group_shared.root == group_indep.root
            assert group_shared.recent_roots() == group_indep.recent_roots()

    hash_reduction = measured["independent"][0] / measured["shared"][0]
    wall_reduction = measured["independent"][1] / measured["shared"][1]
    stats = stores["shared"].stats()
    record_table(
        "bench_membership_sync",
        f"Mid-run membership events, {peers} peers x {topics} topics "
        f"(depth {DEPTH})",
        (
            "mode",
            "peers",
            "topics",
            "events",
            "network-wide hashes",
            "hashes / event / domain",
            "wall clock (s)",
        ),
        rows,
        note=(
            f"sharing: {hash_reduction:.0f}x fewer hashes, "
            f"{wall_reduction:.1f}x wall clock; "
            f"{stats['events_deduped']} replica applications deduped, "
            f"{stats['forks']} forks"
        ),
        meta={
            "scale_peers": peers,
            "scale_topics": topics,
            "depth": DEPTH,
            "hash_reduction": round(hash_reduction, 1),
            "wall_clock_reduction": round(wall_reduction, 2),
            "events_deduped": stats["events_deduped"],
            "forks": stats["forks"],
        },
    )
    assert stats["forks"] == 0
    if not bench_scale.quick:
        assert hash_reduction >= 10.0, (
            f"shared store must cut network-wide hashes >=10x, "
            f"got {hash_reduction:.1f}x"
        )
        assert wall_reduction >= 3.0, (
            f"shared store must cut wall clock >=3x, "
            f"got {wall_reduction:.1f}x"
        )


def _behaviour_fingerprint(result) -> dict:
    """Every protocol outcome of a run (not the work counters)."""
    return {
        "honest_published": result.honest_published,
        "honest_delivered": result.honest_delivered,
        "delivery_rate": round(result.delivery_rate, 9),
        "spam_published": result.spam_published,
        "spam_delivered": result.spam_delivered,
        "slashes_submitted": result.slashes_submitted,
        "members_slashed": result.members_slashed,
        "stake_burnt": result.stake_burnt,
        "reporter_rewards": result.reporter_rewards,
        "attacker_spend": result.attacker_spend,
        "identity_rotations": result.identity_rotations,
        "joined": result.joined,
        "left": result.left,
        "topics": result.topics,
    }


def test_scenario_outcomes_identical_with_store_on_and_off(
    record_table, bench_scale
):
    """multi-topic-churn (mid-run joins, slashing, rotation) must be
    bit-identical with the shared store on and off."""
    peers = bench_scale.n(200, 20)
    duration = bench_scale.n(90.0, 40.0)
    base = scenario("multi-topic-churn").scaled(
        peers=peers, duration=duration
    )

    rows = []
    behaviours = {}
    dedup = {}
    for label, shared in (("shared", True), ("independent", False)):
        spec = replace(
            base,
            config_overrides={
                **dict(base.config_overrides),
                "shared_membership_store": shared,
            },
        )
        result = run_scenario(spec)
        behaviours[label] = _behaviour_fingerprint(result)
        dedup[label] = result.extras.get("membership_events_deduped", 0.0)
        rows.append(
            (
                label,
                round(result.wall_clock_seconds, 2),
                result.joined,
                result.members_slashed,
                round(result.delivery_rate, 4),
                int(dedup[label]),
            )
        )

    record_table(
        "bench_membership_sync_equivalence",
        f"multi-topic-churn at {peers} peers: store on vs off",
        (
            "mode",
            "wall clock (s)",
            "joined",
            "slashed",
            "delivery rate",
            "events deduped",
        ),
        rows,
        note="Behaviour fingerprints must be identical; only the "
        "membership hashing differs.",
        meta={
            "scale_peers": peers,
            "events_deduped_shared": int(dedup["shared"]),
        },
    )
    assert behaviours["shared"] == behaviours["independent"]
    assert dedup["shared"] > 0
