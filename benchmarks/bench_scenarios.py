"""Scenario-harness throughput: batched vs naive proof verification.

Two measurements:

* a hot-path microbenchmark — one signal stream validated by many
  independent routers, with and without the shared verification cache
  (the per-router work the cache collapses into a dict lookup);
* an end-to-end 1k-peer ``burst-spammer`` scenario run both ways,
  asserting the batched path is faster and behaviourally identical.

Run with ``pytest benchmarks/bench_scenarios.py -s`` (the end-to-end
comparison simulates a 1000-peer network and takes a few minutes).
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.core.config import ProtocolConfig
from repro.core.epoch import EpochTracker
from repro.core.nullifier_map import NullifierMap
from repro.core.validator import RlnMessageValidator
from repro.crypto.keys import MembershipKeyPair
from repro.crypto.merkle import MerkleTree
from repro.rln.prover import RlnProver, rln_keys
from repro.rln.verifier import RlnVerifier, VerificationCache
from repro.scenarios import run_scenario, scenario
from repro.sim.simulator import Simulator

import random


def _make_validators(vk, tree_root, simulator, routers, cache):
    validators = []
    for _ in range(routers):
        verifier = RlnVerifier(
            verifying_key=vk,
            root_predicate=lambda r, root=tree_root: r == root,
            cache=cache,
        )
        validators.append(
            RlnMessageValidator(
                verifier=verifier,
                epoch_tracker=EpochTracker(simulator, 10.0),
                nullifier_map=NullifierMap(thr=2),
            )
        )
    return validators


def test_validation_throughput_batched_vs_naive(record_table, bench_scale):
    """Hot path in isolation: every router validates every signal."""
    routers = bench_scale.n(200, 20)
    senders = bench_scale.n(30, 5)
    pk, vk = rln_keys(seed=b"bench-scenarios")
    rng = random.Random(7)
    tree = MerkleTree(16)
    provers = []
    for _ in range(senders):
        pair = MembershipKeyPair.generate(rng)
        index = tree.insert(pair.commitment.element)
        provers.append((RlnProver(keypair=pair, proving_key=pk), index))
    raw_signals = [
        prover.create_signal(f"m{i}".encode(), 0, tree.proof(index)).to_bytes()
        for i, (prover, index) in enumerate(provers)
    ]

    rows = []
    results = {}
    for label, cache in (
        ("naive (per-router verification)", None),
        ("batched (shared verification cache)", VerificationCache(4096)),
    ):
        simulator = Simulator(seed=0)
        validators = _make_validators(vk, tree.root, simulator, routers, cache)
        start = time.perf_counter()
        outcomes = [
            validator.validate_bytes(raw).outcome.value
            for raw in raw_signals
            for validator in validators
        ]
        elapsed = time.perf_counter() - start
        checked = len(raw_signals) * routers
        results[label] = (elapsed, outcomes)
        rows.append(
            (
                label,
                checked,
                round(elapsed, 4),
                int(checked / elapsed),
            )
        )

    record_table(
        "bench_scenarios_hot_path",
        "Scenario hot path: signal validations/second, "
        f"{routers} routers x {senders} signals",
        ("mode", "validations", "seconds", "validations/s"),
        rows,
        note="The shared cache verifies each distinct signal once network-wide.",
    )
    (naive_t, naive_out), (batched_t, batched_out) = results.values()
    assert batched_out == naive_out  # caching never changes outcomes
    if not bench_scale.quick:
        assert batched_t < naive_t


def test_1k_peer_scenario_batched_beats_naive(record_table, bench_scale):
    """End-to-end: the full burst-spammer scenario at 1000 peers."""
    base = scenario("burst-spammer").scaled(
        peers=bench_scale.n(1000, 40), duration=30.0
    )
    base = replace(
        base,
        traffic=replace(
            base.traffic, messages_per_epoch=0.5, active_fraction=0.2
        ),
    )
    rows = []
    results = {}
    for label, cache_size in (("naive", 0), ("batched", 65536)):
        spec = replace(
            base, config_overrides={"verification_cache_size": cache_size}
        )
        result = run_scenario(spec)
        results[label] = result
        rows.append(
            (
                label,
                round(result.wall_clock_seconds, 1),
                result.proof_verifications,
                result.verification_cache_hits,
                round(result.delivery_rate, 4),
                result.spam_delivered,
                result.members_slashed,
            )
        )

    record_table(
        "bench_scenarios_1k_peers",
        "burst-spammer at 1000 peers: batched vs naive verification",
        (
            "mode",
            "wall clock (s)",
            "proof verifications",
            "cache hits",
            "delivery rate",
            "spam delivered",
            "slashed",
        ),
        rows,
        note="Same seed; identical protocol outcomes, less verification work.",
    )
    naive, batched = results["naive"], results["batched"]
    # Behaviour must be identical; only the work may differ.
    for field in (
        "honest_published",
        "honest_delivered",
        "spam_published",
        "spam_delivered",
        "slashes_submitted",
        "members_slashed",
    ):
        assert getattr(naive, field) == getattr(batched, field)
    assert batched.proof_verifications < naive.proof_verifications
    if not bench_scale.quick:
        assert batched.proof_verifications < naive.proof_verifications / 100
        assert batched.wall_clock_seconds < naive.wall_clock_seconds
