"""E9 — nullifier-map memory is bounded by the Thr window (paper §III:
"the nulliﬁer map sufﬁces to hold messages that belong to the last Thr
epochs")."""

import random

import pytest

from repro.analysis import nullifier_map_experiment
from repro.core.nullifier_map import NullifierCheck, NullifierMap
from repro.crypto.keys import MembershipKeyPair
from repro.crypto.merkle import MerkleTree
from repro.rln.prover import RlnProver, rln_keys


@pytest.fixture(scope="module")
def signal_stream():
    """1000 pre-built signals from 50 members across 20 epochs."""
    rng = random.Random(12)
    pk, _vk = rln_keys(seed=b"bench-e9")
    tree = MerkleTree(10)
    provers = []
    for _ in range(50):
        pair = MembershipKeyPair.generate(rng)
        index = tree.insert(pair.commitment.element)
        provers.append((RlnProver(keypair=pair, proving_key=pk), index))
    signals = []
    for epoch in range(20):
        for prover, index in provers:
            signals.append(
                prover.create_signal(
                    f"e{epoch}".encode(), epoch, tree.proof(index)
                )
            )
    return signals


def test_observe_throughput(benchmark, signal_stream):
    state = {"map": NullifierMap(thr=2), "i": 0}

    def observe_one():
        signal = signal_stream[state["i"] % len(signal_stream)]
        state["i"] += 1
        if state["i"] % len(signal_stream) == 0:
            state["map"] = NullifierMap(thr=2)  # reset between passes
        return state["map"].observe(signal)

    check, _prior = benchmark(observe_one)
    assert check in (NullifierCheck.NEW, NullifierCheck.DUPLICATE)


def test_prune_cost(benchmark, signal_stream):
    nmap = NullifierMap(thr=2)
    for signal in signal_stream:
        nmap.observe(signal)
    benchmark(nmap.prune, 19)


def test_regenerate_e9_table(record_table):
    headers, rows = nullifier_map_experiment(
        epochs=40, senders_per_epoch=30, thr=2
    )
    record_table(
        "e9_nullifier_map",
        "E9: nullifier-map memory bounded by Thr window (thr=2)",
        headers,
        rows,
        note="without pruning, the map grows linearly forever.",
    )
    # Steady state: pruned map holds exactly (thr+1) epochs of entries.
    steady = [row[1] for row in rows[1:]]
    assert len(set(steady)) == 1
    assert steady[0] == 3 * 30
    # The unpruned map keeps growing.
    unbounded = [row[3] for row in rows]
    assert unbounded == sorted(unbounded)
    assert unbounded[-1] > 10 * steady[0]
