"""E9 — nullifier-map memory is bounded by the Thr window (paper §III:
"the nulliﬁer map sufﬁces to hold messages that belong to the last Thr
epochs")."""

import random

import pytest

from repro.analysis import nullifier_map_experiment
from repro.core.nullifier_map import NullifierCheck, NullifierMap
from repro.crypto.keys import MembershipKeyPair
from repro.crypto.merkle import MerkleTree
from repro.rln.prover import RlnProver, rln_keys


@pytest.fixture(scope="module")
def signal_stream():
    """1000 pre-built signals from 50 members across 20 epochs."""
    rng = random.Random(12)
    pk, _vk = rln_keys(seed=b"bench-e9")
    tree = MerkleTree(10)
    provers = []
    for _ in range(50):
        pair = MembershipKeyPair.generate(rng)
        index = tree.insert(pair.commitment.element)
        provers.append((RlnProver(keypair=pair, proving_key=pk), index))
    signals = []
    for epoch in range(20):
        for prover, index in provers:
            signals.append(
                prover.create_signal(
                    f"e{epoch}".encode(), epoch, tree.proof(index)
                )
            )
    return signals


def test_observe_throughput(benchmark, signal_stream):
    state = {"map": NullifierMap(thr=2), "i": 0}

    def observe_one():
        signal = signal_stream[state["i"] % len(signal_stream)]
        state["i"] += 1
        if state["i"] % len(signal_stream) == 0:
            state["map"] = NullifierMap(thr=2)  # reset between passes
        return state["map"].observe(signal)

    check, _prior = benchmark(observe_one)
    assert check in (NullifierCheck.NEW, NullifierCheck.DUPLICATE)


def test_prune_cost(benchmark, signal_stream):
    nmap = NullifierMap(thr=2)
    for signal in signal_stream:
        nmap.observe(signal)
    benchmark(nmap.prune, 19)


def test_gc_vs_unbounded_memory(record_table, bench_scale):
    """Epoch-grid GC (auto_prune) vs an unpruned map over a long run.

    Streams ``epochs`` x ``senders`` signals through both maps and
    tracks live entries / modeled bytes; the GC'd map must plateau at
    (2*thr + 1) epochs of entries while the unbounded map grows
    linearly. tracemalloc peak over the whole stream goes into
    ``meta.peak_memory_bytes`` (the schema's well-known footprint
    field).
    """
    import tracemalloc

    epochs = bench_scale.n(200, 12)
    senders = bench_scale.n(40, 5)
    thr = 2
    rng = random.Random(29)
    pk, _vk = rln_keys(seed=b"bench-e9-gc")
    tree = MerkleTree(10)
    provers = []
    for _ in range(senders):
        pair = MembershipKeyPair.generate(rng)
        index = tree.insert(pair.commitment.element)
        provers.append((RlnProver(keypair=pair, proving_key=pk), index))

    gc_map = NullifierMap(thr=thr, auto_prune=True)
    unbounded = NullifierMap(thr=thr)
    rows = []
    report_at = {1, epochs // 4, epochs // 2, 3 * epochs // 4, epochs - 1}
    tracemalloc.start()
    for epoch in range(epochs):
        for prover, index in provers:
            signal = prover.create_signal(
                f"e{epoch}".encode(), epoch, tree.proof(index)
            )
            gc_map.observe(signal)
            unbounded.observe(signal)
        if epoch in report_at:
            rows.append(
                (
                    epoch,
                    gc_map.entry_count,
                    gc_map.storage_bytes(),
                    unbounded.entry_count,
                    unbounded.storage_bytes(),
                )
            )
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    record_table(
        "e9_nullifier_gc_memory",
        f"E9b: epoch-grid GC vs unbounded map "
        f"({senders} senders x {epochs} epochs, thr={thr})",
        (
            "epoch",
            "entries (gc)",
            "bytes (gc)",
            "entries (unbounded)",
            "bytes (unbounded)",
        ),
        rows,
        note="auto_prune drops buckets the moment a new latest epoch "
        "appears; live state is bounded by (2*thr+1) epochs while the "
        "unpruned map grows linearly with run length.",
        meta={
            "epochs": epochs,
            "senders_per_epoch": senders,
            "thr": thr,
            "gc_final_entries": gc_map.entry_count,
            "gc_pruned_entries": gc_map.auto_pruned_entries,
            "unbounded_final_entries": unbounded.entry_count,
            "peak_memory_bytes": int(peak),
        },
    )
    # GC'd map plateaus: steady state holds exactly (thr+1) epochs'
    # worth (epochs behind the head beyond thr are dropped, future
    # epochs have not happened).
    steady = [row[1] for row in rows[1:]]
    assert len(set(steady)) == 1
    assert steady[0] == (thr + 1) * senders
    assert gc_map.epoch_count <= 2 * thr + 1
    # Conservation: every observed entry is either live or GC'd.
    assert (
        gc_map.entry_count + gc_map.auto_pruned_entries
        == unbounded.entry_count
    )
    unbounded_growth = [row[3] for row in rows]
    assert unbounded_growth == sorted(unbounded_growth)
    if not bench_scale.quick:
        assert unbounded.entry_count > 10 * gc_map.entry_count


def test_regenerate_e9_table(record_table):
    headers, rows = nullifier_map_experiment(
        epochs=40, senders_per_epoch=30, thr=2
    )
    record_table(
        "e9_nullifier_map",
        "E9: nullifier-map memory bounded by Thr window (thr=2)",
        headers,
        rows,
        note="without pruning, the map grows linearly forever.",
    )
    # Steady state: pruned map holds exactly (thr+1) epochs of entries.
    steady = [row[1] for row in rows[1:]]
    assert len(set(steady)) == 1
    assert steady[0] == 3 * 30
    # The unpruned map keeps growing.
    unbounded = [row[3] for row in rows]
    assert unbounded == sorted(unbounded)
    assert unbounded[-1] > 10 * steady[0]
