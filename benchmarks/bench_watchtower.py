"""Delegated enforcement: watchtower economics and crash recovery.

Two measurements around the event-sourced watchtower service:

* an end-to-end comparison of the ``delegated-enforcement`` scenario
  against the identical attack with self-enforcing peers — the paper's
  slashing race means *every* honest router submits a claim for the
  same offender (all but one revert on-chain as "unknown member"),
  while a delegated network concentrates enforcement into exactly one
  transaction per offender;
* a recovery-kernel microbenchmark — the exact work a crashed
  watchtower performs on restart (replay the membership event log into
  a fresh replica, advance and commit the persisted cursor) measured
  over growing backlogs, bounding how long a tower stays blind after a
  fault.

Run with ``pytest benchmarks/bench_watchtower.py -s``.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.crypto.field import Fr
from repro.crypto.keys import IdentityCommitment
from repro.eth.chain import Blockchain, Contract, Event
from repro.eth.cursor import EventCursor
from repro.rln.membership import LocalGroup
from repro.scenarios import run_scenario, scenario
from repro.watchtower import WatchtowerStore

DEPTH = 20


def test_delegated_vs_self_enforcement(record_table, bench_scale):
    """Same attack, two enforcement regimes: every peer for itself
    (the slashing race) vs one watchtower acting for all delegators."""
    peers = bench_scale.n(150, 20)
    duration = bench_scale.n(150.0, 40.0)
    base = scenario("delegated-enforcement").scaled(
        peers=peers, duration=duration
    )

    rows = []
    results = {}
    for label, spec in (
        ("delegated", base),
        ("self-enforcing", replace(base, watchtowers=None, faults=())),
    ):
        result = run_scenario(spec)
        results[label] = result
        wasted = result.slashes_submitted - result.members_slashed
        rows.append(
            (
                label,
                result.members_slashed,
                result.slashes_submitted,
                wasted,
                result.watchtower_rewards,
                result.delegation_fees,
                round(result.wall_clock_seconds, 2),
            )
        )

    delegated = results["delegated"]
    selfish = results["self-enforcing"]
    record_table(
        "bench_watchtower",
        f"Enforcement regimes under rotating sybils, {peers} peers",
        (
            "mode",
            "slashed",
            "slash txs",
            "wasted txs",
            "watchtower rewards (wei)",
            "delegation fees (wei)",
            "wall clock (s)",
        ),
        rows,
        note=(
            "Self-enforcement races every honest router for the same "
            "reward (losing claims revert on-chain); delegation "
            "concentrates each offender into one transaction."
        ),
        meta={
            "scale_peers": peers,
            "delegated_slash_txs": delegated.slashes_submitted,
            "self_enforcing_slash_txs": selfish.slashes_submitted,
            "delegated_missed_slashes": delegated.missed_slashes,
            "watchtower_rewards_wei": delegated.watchtower_rewards,
        },
    )
    assert delegated.members_slashed > 0
    assert selfish.members_slashed > 0
    # Delegation: exactly one slash transaction per settled offender,
    # and nothing the network detected went unslashed.
    assert delegated.slashes_submitted == delegated.members_slashed
    assert delegated.missed_slashes == 0
    assert delegated.watchtower_rewards > 0
    if not bench_scale.quick:
        # The race is real: self-enforcement burns extra transactions.
        assert selfish.slashes_submitted > selfish.members_slashed


def _membership_log(events: int) -> list:
    """A synthetic contract event log: registrations with a slash
    every 16th event — the stream a recovering watchtower replays."""
    log = []
    registered = 0
    for index in range(events):
        if index % 16 == 15:
            log.append(
                Event(
                    name="MemberRemoved",
                    args={"pk": registered - 1, "index": registered - 1},
                    contract="rln",
                    block_number=index // 50,
                    log_index=index,
                )
            )
        else:
            log.append(
                Event(
                    name="MemberRegistered",
                    args={"pk": 1 + index, "index": registered},
                    contract="rln",
                    block_number=index // 50,
                    log_index=index,
                )
            )
            registered += 1
    return log


def _replay(log, store) -> LocalGroup:
    """The restart path: rebuild the replica from genesis, advance the
    cursor past the backlog, commit both atomically."""
    chain = Blockchain()
    chain.deploy(Contract("rln"))
    chain.event_log.extend(log)
    group = LocalGroup(DEPTH)
    cursor = EventCursor(chain, "rln")
    applied = 0
    store.begin()
    for event in cursor.poll():
        if event.name == "MemberRegistered":
            group.apply_registration(
                IdentityCommitment(Fr(event.args["pk"])), applied
            )
        else:
            group.apply_removal(event.args["index"], applied)
        applied += 1
    store.commit_cursor(cursor.log_index)
    store.commit()
    assert cursor.caught_up
    return group


def test_recovery_replay_kernel(record_table, bench_scale, tmp_path):
    """Restart cost as a function of missed-event backlog."""
    backlogs = bench_scale.n((100, 1000, 5000), (20, 60))

    rows = []
    throughputs = {}
    for backlog in backlogs:
        log = _membership_log(backlog)
        store = WatchtowerStore(str(tmp_path / f"replay-{backlog}.sqlite"))
        start = time.perf_counter()
        group = _replay(log, store)
        elapsed = time.perf_counter() - start
        committed = store.cursor()
        store.close()
        assert committed == backlog
        # Correctness: the replayed replica matches a directly built one.
        reference = LocalGroup(DEPTH)
        for index, event in enumerate(log):
            if event.name == "MemberRegistered":
                reference.apply_registration(
                    IdentityCommitment(Fr(event.args["pk"])), index
                )
            else:
                reference.apply_removal(event.args["index"], index)
        assert int(group.root) == int(reference.root)
        throughputs[backlog] = backlog / elapsed if elapsed else 0.0
        rows.append(
            (
                backlog,
                round(elapsed * 1000, 2),
                round(throughputs[backlog], 0),
            )
        )

    largest = backlogs[-1]
    record_table(
        "bench_watchtower_recovery",
        f"Watchtower restart: membership replay over a missed-event "
        f"backlog (depth {DEPTH})",
        ("backlog (events)", "replay (ms)", "events / s"),
        rows,
        note=(
            "Replay rebuilds the replica from genesis and commits the "
            "advanced cursor in one SQLite transaction — the window a "
            "restarted tower stays blind scales linearly with the "
            "backlog."
        ),
        meta={
            "largest_backlog": largest,
            "events_per_second": round(throughputs[largest], 0),
        },
    )
    if not bench_scale.quick:
        assert throughputs[largest] > 500.0, (
            f"recovery replay too slow: "
            f"{throughputs[largest]:.0f} events/s"
        )
