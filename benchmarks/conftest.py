"""Shared helpers for the benchmark suite.

Every ``bench_*`` module regenerates one experiment of DESIGN.md's
index. Tables are printed (visible with ``pytest -s``) and written to
``benchmarks/results/*.txt`` so EXPERIMENTS.md can cite them.

Quick mode
----------

``pytest benchmarks --bench-quick`` runs every benchmark at a tiny
scale: each script still imports, builds its rig and completes one
iteration, but with sizes shrunk through the :func:`bench_scale`
fixture and with performance *assertions* relaxed (timing comparisons
are meaningless at toy sizes). The tier-1 suite runs this mode as a
smoke job (``tests/benchmarks/test_bench_quick_smoke.py``) so bench
scripts cannot silently rot as the APIs underneath them move.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--bench-quick",
        action="store_true",
        default=False,
        help="run benchmarks at smoke scale (one tiny iteration, "
        "timing assertions relaxed)",
    )


@dataclass(frozen=True)
class BenchScale:
    """Scale selector handed to every benchmark.

    ``quick`` is True under ``--bench-quick``; ``n(full, quick)`` picks
    the matching size. Benchmarks must keep *assertions about timing*
    behind ``if not scale.quick`` — correctness assertions stay on.
    """

    quick: bool

    def n(self, full, quick):
        return quick if self.quick else full


@pytest.fixture(scope="session")
def bench_scale(request) -> BenchScale:
    return BenchScale(quick=request.config.getoption("--bench-quick"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir, bench_scale):
    """Write (and echo) one experiment table, plus its JSON twin.

    Every table is also emitted as a schema-validated JSON payload
    (``benchmarks/results/<name>.json``) so perf numbers accumulate as
    a machine-readable trajectory; ``meta`` carries key figures (scale,
    wall-clock, hash counts, cache hit rates) a tracker should not have
    to re-parse out of table cells.

    Under ``--bench-quick`` the table is printed and the payload is
    still schema-validated, but nothing is persisted: smoke-scale
    numbers must never overwrite the recorded full-scale results that
    EXPERIMENTS.md cites.
    """

    def write(
        name: str,
        title: str,
        headers,
        rows,
        note: str = "",
        meta: dict = None,
    ) -> str:
        import json

        from repro.analysis import experiment_payload, format_experiment

        text = format_experiment(title, headers, rows, note)
        payload = experiment_payload(
            name, title, headers, rows, note, meta
        )
        if not bench_scale.quick:
            (results_dir / f"{name}.txt").write_text(text)
            (results_dir / f"{name}.json").write_text(
                json.dumps(payload, indent=2) + "\n"
            )
        print("\n" + text)
        return text

    return write
