"""Shared helpers for the benchmark suite.

Every ``bench_*`` module regenerates one experiment of DESIGN.md's
index. Tables are printed (visible with ``pytest -s``) and written to
``benchmarks/results/*.txt`` so EXPERIMENTS.md can cite them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """Write (and echo) one experiment table."""

    def write(name: str, title: str, headers, rows, note: str = "") -> str:
        from repro.analysis import format_experiment

        text = format_experiment(title, headers, rows, note)
        (results_dir / f"{name}.txt").write_text(text)
        print("\n" + text)
        return text

    return write
