"""E10 — economic incentives: spammers pay, reporters earn
(paper §I: "spammers are financially punished and those who find
spammers are rewarded")."""

import random

import pytest

from repro.analysis import economics_experiment
from repro.crypto.keys import MembershipKeyPair
from repro.eth.chain import Blockchain
from repro.eth.contracts import MembershipRegistry

STAKE = 10**18


def test_slash_transaction_cost(benchmark):
    """Gas-metered wall-clock of one register+slash round."""
    chain = Blockchain()
    chain.deploy(MembershipRegistry("m", stake_wei=STAKE))
    rng = random.Random(13)
    counter = iter(range(10**9))

    def register_and_slash():
        i = next(counter)
        victim, reporter = f"v{i}", f"r{i}"
        chain.create_account(victim, balance=2 * STAKE)
        chain.create_account(reporter, balance=STAKE)
        pair = MembershipKeyPair.generate(rng)
        assert chain.call_now(
            victim, "m", "register",
            int(pair.commitment.element), value=STAKE,
        ).success
        receipt = chain.call_now(
            reporter, "m", "slash", int(pair.secret.element)
        )
        assert receipt.success
        return receipt

    receipt = benchmark(register_and_slash)
    assert receipt.gas_used > 0


def test_regenerate_e10_table(record_table):
    headers, rows = economics_experiment(spammer_count=3, peer_count=20)
    record_table(
        "e10_economics",
        "E10: slashing economics (3 attacker identities)",
        headers,
        rows,
        note=(
            "attacker loss = stakes forfeited; burnt + rewards = loss;\n"
            "Sybil attacks therefore cost the attacker stake per identity."
        ),
    )
    by_name = {row[0]: row[1] for row in rows}
    stake = by_name["stake per member"]
    assert by_name["total attacker loss"] == 3 * stake
    assert (
        by_name["total burnt"] + by_name["total reporter rewards"]
        == by_name["total attacker loss"]
    )
