"""E7 — global spam protection vs the Section I baselines.

Runs the same flooding adversary against Waku-RLN-Relay, a plain relay,
gossipsub peer scoring (Sybil botnet and single-IP variants) and
Whisper PoW, and compares how much spam honest peers accept and whether
the attacker is removed.
"""

import pytest

from repro.analysis import spam_protection_experiment
from repro.attacks import RlnSpammer
from repro.core import WakuRlnRelayNetwork


def test_rln_attack_round(benchmark):
    """Wall-clock of simulating one full attack+slash round."""

    def attack_round():
        net = WakuRlnRelayNetwork(peer_count=15, seed=31)
        net.register_all()
        net.start()
        net.run(2.0)
        spammer = RlnSpammer(net.peer(0), burst=3)
        spammer.flood_epoch()
        net.run(30.0)
        return net

    net = benchmark.pedantic(attack_round, rounds=3, iterations=1)
    assert not net.peer(0).is_registered


def test_regenerate_e7_table(record_table, bench_scale):
    headers, rows = spam_protection_experiment(
        peer_count=bench_scale.n(40, 15),
        attack_epochs=bench_scale.n(5, 2),
    )
    record_table(
        "e7_spam_protection",
        "E7: spam reach under attack, vs PoW / peer-scoring / plain",
        headers,
        rows,
        note=(
            "Only Waku-RLN-Relay both bounds spam per identity and removes\n"
            "the attacker globally with a financial penalty."
        ),
    )
    by_system = {row[0]: row for row in rows}
    rln = by_system["Waku-RLN-Relay"]
    plain = by_system["plain relay (no protection)"]
    botnet = by_system["peer scoring + Sybil botnet"]
    pow_row = next(r for r in rows if r[0].startswith("Whisper PoW"))

    # RLN: attacker removed, spam per peer bounded by ~1 per epoch seen.
    assert "yes" in rln[4]
    assert rln[3] <= 3
    # Baselines: attacker persists.
    assert "no" in plain[4] and "no" in botnet[4] and "no" in pow_row[4]
    if not bench_scale.quick:
        # ...and spam flows freely (ratios only meaningful at scale).
        assert plain[3] > 10 * rln[3]
        assert botnet[3] > 10 * rln[3]
        assert pow_row[3] > 10 * rln[3]
