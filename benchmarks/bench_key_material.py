"""E3 — key/proof material sizes (paper §IV: 32 B keys, 3.89 MB prover
key, constant-size proofs)."""

import random

import pytest

from repro.analysis import key_material_experiment
from repro.crypto.keys import MembershipKeyPair
from repro.crypto.merkle import MerkleTree
from repro.rln.prover import RlnProver, rln_keys
from repro.rln.signal import RlnSignal


@pytest.fixture(scope="module")
def signal():
    rng = random.Random(3)
    pk, _vk = rln_keys(seed=b"bench-e3")
    tree = MerkleTree(16)
    pair = MembershipKeyPair.generate(rng)
    index = tree.insert(pair.commitment.element)
    prover = RlnProver(keypair=pair, proving_key=pk)
    return prover.create_signal(b"serialize me", 7, tree.proof(index))


def test_signal_serialization(benchmark, signal):
    data = benchmark(signal.to_bytes)
    assert len(data) == 4 + len(signal.message) + signal.overhead_bytes


def test_signal_deserialization(benchmark, signal):
    data = signal.to_bytes()
    decoded = benchmark(RlnSignal.from_bytes, data)
    assert decoded == signal


def test_keypair_generation(benchmark):
    rng = random.Random(4)
    pair = benchmark(MembershipKeyPair.generate, rng)
    assert pair.secret.size_bytes == 32


def test_regenerate_e3_table(record_table):
    headers, rows = key_material_experiment()
    record_table(
        "e3_key_material",
        "E3: key material sizes (paper: 32 B keys, 3.89 MB prover key)",
        headers,
        rows,
    )
    by_name = {row[0]: row[1] for row in rows}
    assert by_name["identity secret key"] == 32
    assert by_name["identity public key"] == 32
    assert by_name["zkSNARK proof"] == 128
    # Modeled prover key within 1% of the paper's 3.89 MB.
    assert by_name["prover key (modeled, depth 20)"] == pytest.approx(
        3.89 * 1024 * 1024, rel=0.01
    )
