"""Ablations of the design choices DESIGN.md §5 calls out: epoch
length, root window, flood-publish, mesh degree."""

import pytest

from repro.analysis.ablations import (
    epoch_length_ablation,
    flood_publish_ablation,
    mesh_degree_ablation,
    root_window_ablation,
)


def test_regenerate_epoch_length_ablation(record_table):
    headers, rows = epoch_length_ablation()
    record_table(
        "ablation_epoch_length",
        "Ablation: epoch length T (D = 20 s fixed)",
        headers,
        rows,
        note=(
            "shorter epochs raise honest throughput but grow the epoch\n"
            "acceptance window Thr = D/T and the nullifier-map footprint."
        ),
    )
    thr = [row[1] for row in rows]
    throughput = [row[2] for row in rows]
    assert thr == sorted(thr, reverse=True)
    assert throughput == sorted(throughput, reverse=True)


def test_regenerate_root_window_ablation(record_table):
    headers, rows = root_window_ablation(windows=(1, 2, 4, 8))
    record_table(
        "ablation_root_window",
        "Ablation: router root-window vs proof staleness",
        headers,
        rows,
        note=(
            "window w accepts proofs up to w-1 membership events stale;\n"
            "window 1 drops every in-flight proof that raced a registration."
        ),
    )
    by_window = {row[0]: row[1:] for row in rows}
    # Window 1: only perfectly fresh proofs pass.
    assert by_window[1][0] == "accept"
    assert all(v == "drop" for v in by_window[1][1:])
    # Window 8 tolerates all tested staleness levels.
    assert all(v == "accept" for v in by_window[8])
    # Monotone: larger windows accept at least as much.
    accepted = {w: sum(1 for v in vals if v == "accept")
                for w, vals in by_window.items()}
    windows = sorted(accepted)
    assert all(
        accepted[a] <= accepted[b]
        for a, b in zip(windows, windows[1:])
    )


def test_regenerate_flood_publish_ablation(record_table):
    headers, rows = flood_publish_ablation(peer_count=30)
    record_table(
        "ablation_flood_publish",
        "Ablation: flood-publish vs mesh-only publishing",
        headers,
        rows,
    )
    flood, mesh_only = rows
    assert flood[1] <= mesh_only[1] * 1.5  # flood at least as fast
    assert flood[1] > 0 and mesh_only[1] > 0


def test_regenerate_mesh_degree_ablation(record_table):
    headers, rows = mesh_degree_ablation(degrees=(3, 6, 10))
    record_table(
        "ablation_mesh_degree",
        "Ablation: mesh degree D (mesh-only publishing)",
        headers,
        rows,
        note="denser meshes trade duplicate traffic for latency.",
    )
    assert all(row[1] > 0 for row in rows)


def test_epoch_ablation_cost(benchmark):
    benchmark(epoch_length_ablation)
