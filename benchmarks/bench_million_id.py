"""Million-identity membership: tree-of-trees registry at 1M leaves.

Three measurements behind the `million-id-city` scenario:

* registration throughput — a 1M-identity genesis batch folded into
  the sharded :class:`~repro.crypto.merkle_forest.CanonicalShardedTree`
  (bottom-up sub-tree folds, ~1 hash/leaf, no per-event journal) vs
  the flat canonical tree's one-by-one journaled path (O(depth)
  hashes/leaf). Root equivalence is asserted at matched scale;
* proof + verify cost — two-level membership proofs out of the sharded
  registry vs flat proofs at matched capacity: identical depth,
  identical verify cost, byte-identical flattened path;
* memory flatness over epochs — the scenario (scaled down) run at
  increasing durations: live nullifier state must stay window-flat
  while cumulative signals grow ~16x, and the tracemalloc peak's
  per-epoch growth must decline (bounded caches warming, not
  per-epoch state accumulating).

Run with ``pytest benchmarks/bench_million_id.py -s``; tier-1 smokes
it tiny via ``--bench-quick``.
"""

from __future__ import annotations

import random
import time
import tracemalloc
from dataclasses import replace

from repro.core.protocol import genesis_commitments
from repro.crypto.hashing import hash_call_count
from repro.rln.membership import MembershipStore
from repro.scenarios import TrafficModel, run_scenario, scenario

#: Matched-capacity flat reference size: big enough that per-leaf hash
#: counts are stable, small enough that the O(depth)/leaf path finishes
#: in seconds (a 1M-leaf flat build would take ~20M hashes).
FLAT_REFERENCE = 50_000


def _registration_run(depth, sub_depth, values):
    """Build one registry and batch-register ``values``; returns stats."""
    store = MembershipStore(depth=depth, sub_depth=sub_depth)
    group = store.local_group()
    hashes = hash_call_count()
    start = time.perf_counter()
    group.apply_registration_batch(values, event_index=0)
    wall = time.perf_counter() - start
    hashes = hash_call_count() - hashes
    return store, group, wall, hashes


def test_registration_throughput(record_table, bench_scale):
    total = bench_scale.n(1_000_000, 600)
    depth = bench_scale.n(20, 10)
    sub_depth = bench_scale.n(10, 4)
    flat_n = min(bench_scale.n(FLAT_REFERENCE, 600), total)
    values = genesis_commitments(total)

    tracemalloc.start()
    store, group, wall_sharded, hashes_sharded = _registration_run(
        depth, sub_depth, values
    )
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    _, flat_group, wall_flat, hashes_flat = _registration_run(
        depth, None, values[:flat_n]
    )
    # Root equivalence at matched scale: the sharded registry is the
    # same tree, just decomposed.
    _, sharded_ref, _, _ = _registration_run(depth, sub_depth, values[:flat_n])
    assert sharded_ref.root == flat_group.root
    assert sharded_ref.recent_roots() == flat_group.recent_roots()

    rows = [
        (
            "sharded genesis",
            total,
            round(wall_sharded, 3),
            hashes_sharded,
            round(hashes_sharded / total, 2),
            int(total / wall_sharded),
        ),
        (
            "flat one-by-one",
            flat_n,
            round(wall_flat, 3),
            hashes_flat,
            round(hashes_flat / flat_n, 2),
            int(flat_n / wall_flat),
        ),
    ]
    record_table(
        "bench_million_id_registration",
        f"Million-id registry: genesis batch at depth {depth} "
        f"(sub-trees of 2^{sub_depth})",
        ("mode", "leaves", "wall s", "hashes", "hashes/leaf", "leaves/s"),
        rows,
        note="sharded genesis folds each sub-tree bottom-up (~1 hash "
        "per leaf, journal-free); the flat path re-hashes an O(depth) "
        "branch per registration. Roots are asserted equal at matched "
        "scale.",
        meta={
            "identities": total,
            "depth": depth,
            "sub_depth": sub_depth,
            "hashes_per_leaf_sharded": hashes_sharded / total,
            "hashes_per_leaf_flat": hashes_flat / flat_n,
            "materialized_subtrees": store.stats()["materialized_subtrees"],
            "peak_memory_bytes": int(peak),
        },
    )
    assert group.member_count == total
    # The genesis fold must beat the journaled path per leaf by ~depth.
    assert hashes_sharded / total < hashes_flat / flat_n
    if not bench_scale.quick:
        assert hashes_sharded / total <= 2.0


def test_proof_and_verify_cost(record_table, bench_scale):
    n = bench_scale.n(20_000, 300)
    depth = bench_scale.n(20, 10)
    sub_depth = bench_scale.n(10, 4)
    samples = bench_scale.n(400, 20)
    values = genesis_commitments(n, seed=7)
    _, sharded, _, _ = _registration_run(depth, sub_depth, values)
    _, flat, _, _ = _registration_run(depth, None, values)
    rng = random.Random(41)
    indices = [rng.randrange(n) for _ in range(samples)]

    start = time.perf_counter()
    flat_proofs = [flat.merkle_proof(i) for i in indices]
    flat_prove = time.perf_counter() - start
    start = time.perf_counter()
    two_level = [sharded.two_level_proof(i) for i in indices]
    sharded_prove = time.perf_counter() - start

    root = flat.root
    start = time.perf_counter()
    ok_flat = all(p.verify(root) for p in flat_proofs)
    flat_verify = time.perf_counter() - start
    start = time.perf_counter()
    ok_two = all(p.verify(sharded.root) for p in two_level)
    sharded_verify = time.perf_counter() - start
    assert ok_flat and ok_two
    # Two-level proofs are the same branch, split: flattening one must
    # reproduce the flat proof's siblings exactly.
    for i, proof in zip(indices, two_level):
        assert proof.depth == depth
        assert proof.leaf_index == i
        flat_again = proof.flatten()
        assert flat_again.siblings == flat.merkle_proof(i).siblings

    rows = [
        (
            "flat",
            samples,
            round(1e6 * flat_prove / samples, 1),
            round(1e6 * flat_verify / samples, 1),
        ),
        (
            "two-level",
            samples,
            round(1e6 * sharded_prove / samples, 1),
            round(1e6 * sharded_verify / samples, 1),
        ),
    ]
    record_table(
        "bench_million_id_proofs",
        f"Membership proofs: flat vs two-level at {n} members "
        f"(depth {depth})",
        ("proof", "samples", "prove us", "verify us"),
        rows,
        note="a two-level proof carries the identical sibling branch "
        "(depth_sub + depth_top = depth), so *verify* cost matches the "
        "flat tree bit for bit; proving pays extra dict lookups to "
        "assemble the branch from lazily-materialised sub-tree state.",
        meta={
            "members": n,
            "depth": depth,
            "sub_depth": sub_depth,
            "verify_ratio": sharded_verify / flat_verify
            if flat_verify
            else 1.0,
        },
    )


def _peak_for_run(spec, peers, duration):
    tracemalloc.start()
    result = run_scenario(spec, peers=peers, duration=duration)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak, result


def test_memory_flatness_over_epochs(record_table, bench_scale):
    """Peak memory and live nullifier state vs run length.

    Same scenario, same peers, 16x the epochs. The bounded
    configuration (epoch-grid GC + streaming metrics) must show (a)
    live nullifier state that is window-flat — O(active x window) at
    any instant, however long the run — and (b) a whole-process
    tracemalloc peak whose per-epoch growth *declines* as the run gets
    longer: what still grows is bounded per-peer caches (decode,
    mcache) warming toward their caps plus chain history, not
    per-epoch state.

    Two deliberate honesty notes. The lazy default is *also*
    window-pruned — peers' periodic housekeeping timer calls
    ``NullifierMap.prune`` every epoch — so at scenario level the
    eager flag buys determinism (bounded at every instant, no timer
    reliance), not steady-state bytes; the truly-unbounded byte
    contrast is measured in isolation in ``e9_nullifier_gc_memory``
    (bench_nullifier_map). And whole-process peaks are dominated by
    transient caches identical across configurations, which is why the
    asserts target the growth *shape* and the directly-measured
    nullifier state rather than variant-vs-variant peak deltas.
    """
    # Overlay a busy traffic model: million-id-city's slow-tier rates
    # (0.04 active x 0.1 msg/epoch) generate too few signals for the
    # state under test to be visible at a measurable number of peers.
    busy = TrafficModel(messages_per_epoch=1.0, active_fraction=0.1)
    spec = replace(
        scenario("million-id-city"), name="million-id-memcurve",
        traffic=busy,
    )
    lazy_overrides = {
        k: v
        for k, v in spec.config_overrides.items()
        if k != "eager_nullifier_gc"
    }
    lazy = replace(
        spec,
        name="million-id-memcurve-lazy",
        streaming_metrics=False,
        config_overrides=lazy_overrides,
    )
    peers = bench_scale.n(200, 12)
    durations = bench_scale.n((50.0, 200.0, 800.0), (6.0, 12.0))

    rows = []
    peaks = []
    live = []
    pruned = []
    for duration in durations:
        peak_b, result = _peak_for_run(spec, peers, duration)
        peak_l, _ = _peak_for_run(lazy, peers, duration)
        peaks.append(peak_b)
        live.append(int(result.extras.get("nullifier_entries_live", 0)))
        pruned.append(
            int(result.extras.get("nullifier_entries_pruned", 0))
        )
        rows.append(
            (int(duration), peak_b, peak_l, live[-1], pruned[-1])
        )

    record_table(
        "bench_million_id_memory",
        f"Memory flatness over epochs ({peers} peers, scaled "
        "million-id-city, busy traffic)",
        ("epochs", "peak bytes (bounded)", "peak bytes (lazy/exact)",
         "nullifiers live", "nullifiers pruned"),
        rows,
        note="bounded = epoch-grid nullifier GC + streaming metrics; "
        "lazy/exact = timer-pruned nullifier maps + full-sample "
        "histograms/series. Live nullifier state is window-flat while "
        "cumulative pruned entries grow with the run; peaks converge "
        "as bounded per-peer caches (decode, mcache) finish warming — "
        "the truly-unbounded nullifier byte curve is recorded in "
        "e9_nullifier_gc_memory.",
        meta={
            "peers": peers,
            "max_epochs": int(durations[-1]),
            "nullifiers_live_final": live[-1],
            "nullifiers_pruned_final": pruned[-1],
            "peak_memory_bytes": int(max(peaks)),
        },
    )
    if not bench_scale.quick:
        # Live nullifier state is bounded by the window, not run
        # length: 16x the epochs (and ~16x the cumulative signals,
        # witnessed by the pruned counter) must leave live state flat.
        assert pruned[-1] > 10 * max(live[-1], 1)
        assert live[-1] < 3 * max(live[0], 1) + peers
        # Peak growth per epoch declines as caches reach their caps —
        # the curve is a plateau, not a line.
        early = (peaks[1] - peaks[0]) / (durations[1] - durations[0])
        late = (peaks[2] - peaks[1]) / (durations[2] - durations[1])
        assert late < early


def test_city_parallel_speedup(record_table, bench_scale):
    """million-id-city through the windowed parallel path: the flagship
    scenario's whole feature set (sharded registry, genesis population,
    eager nullifier GC, streaming metrics) runs on forked workers now,
    and the run fact — fingerprint plus the registry/GC extras — must
    not notice. Wall clock is recorded serial vs 4 workers; the >=2x
    acceptance check applies at full scale on hosts with >=4 cpus."""
    import os

    spec = scenario("million-id-city").scaled(
        peers=bench_scale.n(1000, 24),
        duration=bench_scale.n(30.0, 6.0),
    )

    start = time.perf_counter()
    serial = run_scenario(spec, parallel_workers=1)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    forked = run_scenario(spec, parallel_workers=4)
    forked_s = time.perf_counter() - start

    assert forked.fingerprint() == serial.fingerprint()
    assert (
        forked.extras["membership_subtrees_materialized"]
        == serial.extras["membership_subtrees_materialized"]
    )
    assert (
        forked.extras["nullifier_entries_pruned"]
        == serial.extras["nullifier_entries_pruned"]
    )

    speedup = serial_s / forked_s if forked_s else 0.0
    cores = os.cpu_count() or 1
    if not bench_scale.quick and cores >= 4:
        # On fewer cores the forked mode cannot overlap shard
        # execution; the table records the honest overhead instead.
        assert speedup >= 2.0, (
            f"4 forked workers only {speedup:.2f}x over serial "
            f"({forked_s:.1f}s vs {serial_s:.1f}s on {cores} cpus)"
        )

    rows = [
        ("in-process", 1, serial.fingerprint(), f"{serial_s:.2f}", "1.00"),
        ("forked", 4, forked.fingerprint(), f"{forked_s:.2f}",
         f"{speedup:.2f}"),
    ]
    record_table(
        "bench_million_id_parallel",
        f"million-id-city on the parallel stack ({spec.peers} peers, "
        f"{spec.shards} shards)",
        ("mode", "workers", "fingerprint", "wall s", "speedup"),
        rows,
        note=(
            "Scaled profile of the flagship scenario with every "
            "feature live: pre-registered genesis identities folded "
            "into the sharded registry, eager nullifier GC, streaming "
            "metrics merged at the final barrier. Fingerprints and the "
            "registry/GC extras are asserted equal across modes; the "
            ">=2x speedup check applies at full scale on >=4-cpu "
            "hosts (see host_cpus)."
        ),
        meta={
            "peers": spec.peers,
            "duration": spec.duration,
            "shards": spec.shards,
            "pre_registered": spec.pre_registered,
            "host_cpus": cores,
            "wall_clock_serial_s": round(serial_s, 3),
            "wall_clock_forked_s": round(forked_s, 3),
            "subtrees_materialized": serial.extras[
                "membership_subtrees_materialized"
            ],
            "speedup_4_workers": (
                round(speedup, 2)
                if not bench_scale.quick and cores >= 4
                else None
            ),
        },
    )
