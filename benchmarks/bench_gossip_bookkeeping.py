"""Gossip heartbeat bookkeeping: batched vs reference sweeps.

Two measurements around ``GossipSubParams.batched_bookkeeping``:

* a heartbeat microbenchmark — 1000 routers multiplexing several
  topics over one overlay, timed across a window of simulated seconds
  with batched bookkeeping on and off. Batched mode must cut the
  heartbeat cost by at least 3x (in practice it is >10x: lazy score
  decay on a global clock, dirty-topic mesh maintenance, heap-expired
  backoffs, per-topic mcache indexes);
* an end-to-end equivalence matrix — the ``multi-topic-churn``
  scenario run in all four (verification cache on/off) x (batched
  bookkeeping on/off) combinations, asserting **bit-identical**
  delivery and slashing outcomes: both switches only change the work
  done, never a protocol decision.

Run with ``pytest benchmarks/bench_gossip_bookkeeping.py -s``.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.gossipsub.params import GossipSubParams
from repro.gossipsub.router import GossipSubRouter
from repro.net.network import Network
from repro.net.topology import connect_random_regular
from repro.scenarios import run_scenario, scenario
from repro.sim.simulator import Simulator


def _build_overlay(batched: bool, peers: int, topics: int, degree: int):
    sim = Simulator(seed=1)
    net = Network(simulator=sim)
    params = GossipSubParams(batched_bookkeeping=batched)
    routers = [GossipSubRouter(f"p{i}", net, params) for i in range(peers)]
    connect_random_regular(net, [r.node_id for r in routers], degree, seed=1)
    names = [f"/bench/topic-{t}" for t in range(topics)]
    for router in routers:
        for name in names:
            router.subscribe(name)
    for router in routers:
        router.start()
    sim.run_for(3.0)  # mesh formation warm-up
    return sim, routers


def test_heartbeat_cost_batched_vs_legacy(record_table, bench_scale):
    """Pure heartbeat cost at scale (no RLN, no traffic): the
    per-(peer, topic) bookkeeping the batched mode amortises away."""
    peers = bench_scale.n(1000, 40)
    topics = bench_scale.n(8, 3)
    window = bench_scale.n(20.0, 5.0)

    rows = []
    results = {}
    for label, batched in (("legacy sweep", False), ("batched", True)):
        sim, routers = _build_overlay(batched, peers, topics, degree=8)
        start = time.perf_counter()
        sim.run_for(window)
        elapsed = time.perf_counter() - start
        heartbeats = sim.events_processed
        results[label] = elapsed
        mesh_sizes = [
            len(r.mesh.get("/bench/topic-0", ())) for r in routers
        ]
        rows.append(
            (
                label,
                peers,
                topics,
                round(elapsed, 3),
                round(elapsed / window * 1000, 1),
                round(sum(mesh_sizes) / len(mesh_sizes), 1),
            )
        )

    speedup = results["legacy sweep"] / results["batched"]
    record_table(
        "bench_gossip_bookkeeping_heartbeat",
        f"Heartbeat bookkeeping, {peers} routers x {topics} topics",
        (
            "mode",
            "peers",
            "topics",
            "wall clock (s)",
            "ms per simulated s",
            "mean mesh size",
        ),
        rows,
        note=f"batched speedup: {speedup:.1f}x "
        "(lazy decay + dirty-topic maintenance + heap backoffs)",
    )
    if not bench_scale.quick:
        assert speedup >= 3.0, (
            f"batched bookkeeping must be >=3x cheaper, got {speedup:.2f}x"
        )


def _behaviour_fingerprint(result) -> dict:
    """Every protocol outcome of a run — everything except the *work*
    counters (proof verifications / cache hits) the switches change."""
    return {
        "honest_published": result.honest_published,
        "honest_delivered": result.honest_delivered,
        "delivery_rate": round(result.delivery_rate, 9),
        "spam_published": result.spam_published,
        "spam_delivered": result.spam_delivered,
        "slashes_submitted": result.slashes_submitted,
        "members_slashed": result.members_slashed,
        "stake_burnt": result.stake_burnt,
        "reporter_rewards": result.reporter_rewards,
        "attacker_spend": result.attacker_spend,
        "identity_rotations": result.identity_rotations,
        "joined": result.joined,
        "left": result.left,
        "topics": result.topics,
    }


def test_multi_topic_outcomes_identical_across_modes(
    record_table, bench_scale
):
    """Cache on/off x batched on/off: four runs, one behaviour."""
    peers = bench_scale.n(150, 20)
    duration = bench_scale.n(90.0, 40.0)
    base = scenario("multi-topic-churn").scaled(
        peers=peers, duration=duration
    )

    rows = []
    behaviours = {}
    wall = {}
    for cache_label, cache_size in (("cache", 65536), ("no-cache", 0)):
        for book_label, batched in (("batched", True), ("legacy", False)):
            spec = replace(
                base,
                config_overrides={
                    "verification_cache_size": cache_size,
                    "gossip": GossipSubParams(batched_bookkeeping=batched),
                },
            )
            result = run_scenario(spec)
            key = f"{cache_label}+{book_label}"
            behaviours[key] = _behaviour_fingerprint(result)
            wall[key] = result.wall_clock_seconds
            rows.append(
                (
                    key,
                    round(result.wall_clock_seconds, 2),
                    result.proof_verifications,
                    round(result.delivery_rate, 4),
                    result.spam_delivered,
                    result.members_slashed,
                )
            )

    record_table(
        "bench_gossip_bookkeeping_equivalence",
        f"multi-topic-churn at {peers} peers: outcome equivalence matrix",
        (
            "mode",
            "wall clock (s)",
            "proof verifications",
            "delivery rate",
            "spam delivered",
            "slashed",
        ),
        rows,
        note="All four behaviour fingerprints must be identical; only "
        "the work differs.",
    )
    reference = behaviours["cache+batched"]
    for key, behaviour in behaviours.items():
        assert behaviour == reference, f"{key} diverged from cache+batched"
    if not bench_scale.quick:
        # The fast configuration must actually be the fast one.
        assert wall["cache+batched"] < wall["no-cache+legacy"]
