"""Setuptools shim: enables legacy editable installs in offline
environments that lack the `wheel` package (pip falls back to
`setup.py develop`, which does not build a wheel)."""

from setuptools import setup

setup()
