"""The window-isolated kernel: RNG streams, ordering keys, ports,
windows, and the coupling drop it buys over the lockstep-merge kernel.
"""

from __future__ import annotations

import random

import pytest

from repro.core.protocol import WakuRlnRelayNetwork
from repro.errors import SimulationError
from repro.scenarios.parallel import barrier_times, contiguous_groups
from repro.sim.parallel_stack import BUILD_ORIGIN, WindowedStackSimulator
from repro.sim.shards import ShardPlan
from repro.sim.simulator import Simulator


def make_sim(shards=2, seed=7, window=0.25, pins=None):
    keys = [f"peer-{i}" for i in range(8)]
    plan = ShardPlan.blocked(keys, shards, pins=pins)
    return WindowedStackSimulator(seed=seed, plan=plan, window=window)


class TestEntityRngStreams:
    def test_streams_are_isolated(self):
        """Entity A's draws must not depend on whether entity B drew
        in between — the property that frees the hot path from the
        shared-RNG total order."""
        sim = make_sim()
        solo = [sim.entity_rng("peer-0").random() for _ in range(5)]

        other = make_sim()
        interleaved = []
        for _ in range(5):
            other.entity_rng("peer-1").random()  # B draws between A's
            interleaved.append(other.entity_rng("peer-0").random())
        assert solo == interleaved

    def test_streams_are_seed_deterministic(self):
        draws = [make_sim(seed=3).entity_rng("x").random() for _ in (0, 1)]
        assert draws[0] == draws[1]
        assert make_sim(seed=4).entity_rng("x").random() != draws[0]

    def test_distinct_entities_get_distinct_streams(self):
        sim = make_sim()
        assert (
            sim.entity_rng("peer-0").random()
            != sim.entity_rng("peer-1").random()
        )
        assert sim.entity_rng("peer-0") is sim.entity_rng("peer-0")

    def test_windowed_kernel_is_entity_isolated_legacy_is_not(self):
        sim = make_sim()
        assert sim.entity_isolated
        assert isinstance(sim.entity_rng("a"), random.Random)
        legacy = Simulator(seed=1)
        assert not legacy.entity_isolated
        # Legacy kernels alias every entity to the shared stream —
        # the historical behaviour, bit for bit.
        assert legacy.entity_rng("a") is legacy.rng
        assert legacy.entity_rng("b") is legacy.rng


class TestOrderingAndWindows:
    def test_context_inheritance_and_order_keys(self):
        sim = make_sim()
        keys = []

        def handler(s):
            keys.append(s.consume_order_key())

        sim.schedule(0.1, handler, shard="peer-0")
        sim.schedule(0.1, handler, shard="peer-1")
        sim.run_window(0.25)
        # Each event executed under its own entity's context: origins
        # differ, per-origin counters start at their own histories.
        assert keys[0][1] == "peer-0"
        assert keys[1][1] == "peer-1"
        assert sim._context == BUILD_ORIGIN

    def test_event_exactly_on_window_boundary(self):
        """A boundary event belongs to the *next* window — except at
        the final barrier, which is inclusive (matching
        ``Simulator.run(until)``)."""
        sim = make_sim(window=0.5)
        fired = []
        sim.schedule(0.5, lambda s: fired.append(s.now))
        sim.run_window(0.5)
        assert fired == []  # t == t_end stays queued
        sim.run_window(1.0)
        assert fired == [0.5]

        sim2 = make_sim(window=0.5)
        sim2.schedule(0.5, lambda s: fired.append("final"))
        sim2.run_window(0.5, final=True)
        assert fired[-1] == "final"

    def test_intra_window_cross_shard_event_raises(self):
        sim = make_sim(window=0.25)

        def too_soon(s):
            # peer-1 hashes/blocks to a different shard than peer-0 at
            # shard_count=2 with blocked assignment of 8 peers.
            s.schedule(0.01, lambda _: None, shard="peer-7")

        sim.schedule(0.1, too_soon, shard="peer-0")
        with pytest.raises(SimulationError, match="inside the current"):
            sim.run_window(0.25)

    def test_cross_shard_event_landing_at_window_end_is_legal(self):
        sim = make_sim(window=0.25)
        fired = []

        def at_boundary(s):
            s.schedule(0.15, lambda _: fired.append(s.now), shard="peer-7")

        sim.schedule(0.1, at_boundary, shard="peer-0")
        sim.run_window(0.25)
        sim.run_window(0.5)
        assert len(fired) == 1

    def test_run_is_disabled(self):
        with pytest.raises(SimulationError, match="run_window"):
            make_sim().run(10.0)

    def test_barrier_times_cover_duration_exactly_once(self):
        windows = list(barrier_times(1.0, 0.3))
        assert windows[0][0] == 0.0
        assert windows[-1][1] == 1.0
        assert windows[-1][2] is True
        assert all(not final for _, _, final in windows[:-1])
        for (_, end_a, _), (start_b, _, _) in zip(windows, windows[1:]):
            assert end_a == start_b

    def test_contiguous_groups_partition_all_shards(self):
        groups = contiguous_groups(5, 2)
        assert [list(g) for g in groups] == [[0, 1, 2], [3, 4]]
        assert contiguous_groups(4, 4) == [range(i, i + 1) for i in range(4)]


class TestPortsAndOwnership:
    def test_foreign_closure_schedule_rejected_after_restrict(self):
        sim = make_sim()
        sim.restrict_to(frozenset({0}))

        def evil(s):
            s.schedule(1.0, lambda _: None, shard="peer-7")

        sim.schedule(0.1, evil, shard="peer-0")
        with pytest.raises(SimulationError, match="schedule_port"):
            sim.run_window(0.25)

    def test_port_packets_export_and_inject_identically(self):
        """The same port event executes under the same key whether its
        destination is owned (local schedule) or foreign (exported,
        then injected by the owner) — ownership is invisible."""
        seen_local = []
        sim_all = make_sim()
        sim_all.register_port("t", lambda payload: seen_local.append(payload))

        def send(s):
            s.schedule_port(0.2, "t", "hello", shard="peer-7")

        sim_all.schedule(0.05, send, shard="peer-0")
        sim_all.run_window(0.25)
        sim_all.run_window(0.5)
        assert seen_local == ["hello"]
        assert sim_all.drain_exports() == []

        seen_foreign = []
        sim_own0 = make_sim()
        sim_own0.register_port(
            "t", lambda payload: seen_foreign.append(payload)
        )
        sim_own0.restrict_to(frozenset({0}))
        sim_own0.schedule(0.05, send, shard="peer-0")
        sim_own0.run_window(0.25)
        exports = sim_own0.drain_exports()
        assert len(exports) == 1
        dst, dst_key, time, origin, _seq, port, payload, _label = exports[0]
        assert (dst_key, port, payload) == ("peer-7", "t", "hello")
        assert origin == "peer-0" and time == pytest.approx(0.25)

        sim_own1 = make_sim()
        sim_own1.register_port(
            "t", lambda payload: seen_foreign.append(payload)
        )
        sim_own1.restrict_to(frozenset({1}))
        sim_own1.inject(exports)
        sim_own1.run_window(0.25)
        sim_own1.run_window(0.5)
        assert seen_foreign == ["hello"]

    def test_inject_rejects_misrouted_packet(self):
        sim = make_sim()
        sim.restrict_to(frozenset({0}))
        packet = (1, "peer-7", 0.5, "peer-0", 0, "t", "x", "")
        with pytest.raises(SimulationError, match="wrong worker"):
            sim.inject([packet])

    def test_restrict_to_only_narrows(self):
        sim = make_sim()
        sim.restrict_to(frozenset({1}))
        with pytest.raises(SimulationError, match="narrow"):
            sim.restrict_to(frozenset({0, 1}))

    def test_shard_pins_override_assignment(self):
        plan = ShardPlan.blocked(
            [f"peer-{i}" for i in range(8)], 2, pins={"peer-7": 0}
        )
        assert plan.shard_of("peer-7") == 0
        assert plan.shard_of("peer-4") == 1


class TestRuntimeDials:
    """Runtime ``Network.connect`` under window isolation (the gossip
    Peer-Exchange path). A synchronous write to the remote endpoint's
    adjacency would be invisible to the worker that owns it, so only
    the dialer's half commits in place; the remote half travels as a
    ``net.link_up`` port event — identical on every layout."""

    class _Node:
        def __init__(self, node_id):
            self.node_id = node_id

        def deliver(self, from_peer, packet):  # pragma: no cover
            pass

    def _net(self, sim):
        from repro.net.network import Network
        from repro.sim.latency import UniformLatency

        net = Network(
            sim,
            latency=UniformLatency(base_seconds=0.3, spread_seconds=0.1),
        )
        for nid in ("peer-0", "peer-7"):
            net.attach(self._Node(nid))
        return net

    def test_build_time_connect_stays_symmetric(self):
        """Pre-fork wiring runs identically on every worker, so the
        build phase keeps the historical symmetric connect."""
        sim = make_sim()
        net = self._net(sim)
        net.connect("peer-0", "peer-7")
        assert net.are_connected("peer-0", "peer-7")
        assert net.are_connected("peer-7", "peer-0")

    def test_runtime_dial_commits_remote_half_via_port(self):
        sim = make_sim()
        net = self._net(sim)

        def dial(_sim):
            net.connect("peer-0", "peer-7")
            # The dialer sees its half at once; the remote half is
            # still in flight.
            assert net.are_connected("peer-0", "peer-7")
            assert not net.are_connected("peer-7", "peer-0")

        sim.schedule(0.1, dial, shard="peer-0")
        sim.run_window(0.25)
        assert not net.are_connected("peer-7", "peer-0")
        for t_end in (0.5, 0.75):
            sim.run_window(t_end)
        assert net.are_connected("peer-7", "peer-0")
        # Redialling an established link consumes nothing.
        count = net.link_count()
        sim.schedule(0.1, lambda s: net.connect("peer-0", "peer-7"))
        sim.run_window(1.0, final=True)
        assert net.link_count() == count

    def test_runtime_dial_to_foreign_shard_exports_link_up(self):
        sim = make_sim()
        net = self._net(sim)
        sim.restrict_to(frozenset({0}))
        sim.schedule(
            0.1, lambda s: net.connect("peer-0", "peer-7"), shard="peer-0"
        )
        sim.run_window(0.25)
        exports = sim.drain_exports()
        assert [p[5] for p in exports] == ["net.link_up"]
        assert exports[0][6] == ("peer-7", "peer-0")

        # The worker owning shard 1 injects the packet and its copy of
        # peer-7 learns the link; its (stale) copy of peer-0 is never
        # consulted by peer-7's own sends.
        other = make_sim()
        other_net = self._net(other)
        other.restrict_to(frozenset({1}))
        other.inject(exports)
        for t_end in (0.25, 0.5, 0.75):
            other.run_window(t_end)
        assert other_net.are_connected("peer-7", "peer-0")


class TestCouplingDrop:
    def test_windowed_mode_eliminates_intra_window_coupling(self):
        """Regression pin for the tentpole's claim: the lockstep
        kernel observes cross-shard events landing inside the current
        window (each one a would-be synchronization point); the
        windowed kernel forbids them by construction, so its coupling
        fraction is exactly zero."""
        sharded_net = WakuRlnRelayNetwork(peer_count=16, seed=5, shards=2)
        sharded_net.register_all()
        sharded_net.start()
        sharded_net.run(10.0)
        sharded_net.stop()
        sharded_stats = sharded_net.simulator.shard_stats()
        assert sharded_stats["cross_shard_intra_window"] > 0

        windowed_net = WakuRlnRelayNetwork(
            peer_count=16, seed=5, shards=2, parallel=True
        )
        windowed_net.register_all()
        windowed_net.start()
        sim = windowed_net.simulator
        for _t, t_end, final in barrier_times(10.0, sim.window):
            sim.run_window(t_end, final=final)
        windowed_net.stop()
        stats = sim.shard_stats()
        assert stats["cross_shard_intra_window"] == 0
        assert stats["cross_shard_scheduled"] > 0  # traffic still flows
        assert stats["barriers"] > 0
        assert sum(stats["events_by_shard"]) == sim.events_processed
        # The drop is strict, not a tie between two zeros.
        assert (
            stats["cross_shard_intra_window"]
            < sharded_stats["cross_shard_intra_window"]
        )
