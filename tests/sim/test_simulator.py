"""Tests for the discrete-event kernel, latency models and metrics."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.latency import LatencyModel, LogNormalLatency, UniformLatency
from repro.sim.metrics import Histogram, MetricsRegistry
from repro.sim.simulator import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda s: order.append("c"))
        sim.schedule(1.0, lambda s: order.append("a"))
        sim.schedule(2.0, lambda s: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_schedule_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda s: order.append(1))
        sim.schedule(1.0, lambda s: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(2.5, lambda s: times.append(s.now))
        sim.run()
        assert times == [2.5]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda s: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: None)
        sim.run()
        hits = []
        sim.schedule_at(5.0, lambda s: hits.append(s.now))
        sim.run()
        assert hits == [5.0]

    def test_handlers_can_schedule_followups(self):
        sim = Simulator()
        hits = []

        def first(s):
            hits.append(s.now)
            s.schedule(1.0, lambda s2: hits.append(s2.now))

        sim.schedule(1.0, first)
        sim.run()
        assert hits == [1.0, 2.0]

    def test_cancellation(self):
        sim = Simulator()
        hits = []
        handle = sim.schedule(1.0, lambda s: hits.append(1))
        handle.cancel()
        sim.run()
        assert hits == []
        assert handle.cancelled


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, lambda s: hits.append(1))
        sim.schedule(10.0, lambda s: hits.append(10))
        sim.run(until=5.0)
        assert hits == [1]
        assert sim.now == 5.0
        sim.run()
        assert hits == [1, 10]

    def test_run_for_advances_relative(self):
        sim = Simulator()
        sim.run_for(3.0)
        assert sim.now == 3.0
        sim.run_for(2.0)
        assert sim.now == 5.0

    def test_event_budget_exhaustion_raises_loudly(self):
        """A cut-short run must raise, never report plausible metrics."""
        sim = Simulator()
        for _ in range(3):
            sim.schedule(1.0, lambda s: None)
        with pytest.raises(SimulationError):
            sim.run(until=5.0, max_events=2)

    def test_cancelled_head_does_not_mask_truncation(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda s: None)
        sim.schedule(2.0, lambda s: None)  # real pending work
        sim.schedule(0.5, lambda s: None)
        handle.cancel()
        with pytest.raises(SimulationError):
            sim.run(until=10.0, max_events=1)

    def test_budget_not_triggered_by_events_beyond_until(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: None)
        sim.schedule(100.0, lambda s: None)  # outside the window
        sim.run(until=5.0, max_events=1)
        assert sim.now == 5.0


class TestPeriodic:
    def test_periodic_fires_repeatedly(self):
        sim = Simulator()
        hits = []
        sim.schedule_periodic(1.0, lambda s: hits.append(s.now))
        sim.run(until=5.5)
        assert hits == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_periodic_cancel(self):
        sim = Simulator()
        hits = []
        cancel = sim.schedule_periodic(1.0, lambda s: hits.append(s.now))
        sim.run(until=2.5)
        cancel()
        sim.run(until=10.0)
        assert hits == [1.0, 2.0]

    def test_zero_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_periodic(0.0, lambda s: None)

    def test_jitter_stays_bounded(self):
        sim = Simulator(seed=3)
        hits = []
        sim.schedule_periodic(1.0, lambda s: hits.append(s.now), jitter=0.1)
        sim.run(until=20.0)
        gaps = [b - a for a, b in zip(hits, hits[1:])]
        assert all(1.0 <= gap <= 1.1001 for gap in gaps)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def trace(seed):
            sim = Simulator(seed=seed)
            values = []
            sim.schedule_periodic(
                1.0, lambda s: values.append(s.rng.random()), jitter=0.5
            )
            sim.run(until=10.0)
            return values

        assert trace(7) == trace(7)
        assert trace(7) != trace(8)


class TestLatencyModels:
    def test_constant_model(self):
        model = LatencyModel(base_seconds=0.2)
        assert model.sample_latency(random.Random(0)) == 0.2

    def test_uniform_bounds(self):
        model = UniformLatency(base_seconds=0.1, spread_seconds=0.2)
        rng = random.Random(0)
        for _ in range(100):
            sample = model.sample_latency(rng)
            assert 0.1 <= sample <= 0.3

    def test_lognormal_clamped(self):
        model = LogNormalLatency(base_seconds=0.05, sigma=2.0, max_seconds=1.0)
        rng = random.Random(0)
        assert all(model.sample_latency(rng) <= 1.0 for _ in range(200))

    def test_loss_probability(self):
        model = LatencyModel(loss_probability=1.0)
        assert model.sample_loss(random.Random(0))
        lossless = LatencyModel(loss_probability=0.0)
        assert not lossless.sample_loss(random.Random(0))


class TestMetrics:
    def test_histogram_stats(self):
        hist = Histogram()
        for v in [1.0, 2.0, 3.0, 4.0]:
            hist.observe(v)
        assert hist.count == 4
        assert hist.mean == 2.5
        assert hist.minimum == 1.0
        assert hist.maximum == 4.0
        assert hist.percentile(50) == 2.5
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 4.0

    def test_empty_histogram(self):
        hist = Histogram()
        assert hist.mean == 0.0
        assert hist.percentile(99) == 0.0
        assert hist.stddev == 0.0

    def test_registry(self):
        metrics = MetricsRegistry()
        metrics.increment("x")
        metrics.increment("x", 4)
        metrics.observe("lat", 0.5)
        assert metrics.counter("x") == 5
        assert metrics.counter("missing") == 0
        assert metrics.histogram("lat").count == 1
        assert "lat.mean" in metrics.summary()
