"""Tests for the discrete-event kernel, latency models and metrics."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.latency import LatencyModel, LogNormalLatency, UniformLatency
from repro.sim.metrics import Histogram, MetricsRegistry
from repro.sim.simulator import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda s: order.append("c"))
        sim.schedule(1.0, lambda s: order.append("a"))
        sim.schedule(2.0, lambda s: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_schedule_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda s: order.append(1))
        sim.schedule(1.0, lambda s: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(2.5, lambda s: times.append(s.now))
        sim.run()
        assert times == [2.5]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda s: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: None)
        sim.run()
        hits = []
        sim.schedule_at(5.0, lambda s: hits.append(s.now))
        sim.run()
        assert hits == [5.0]

    def test_handlers_can_schedule_followups(self):
        sim = Simulator()
        hits = []

        def first(s):
            hits.append(s.now)
            s.schedule(1.0, lambda s2: hits.append(s2.now))

        sim.schedule(1.0, first)
        sim.run()
        assert hits == [1.0, 2.0]

    def test_cancellation(self):
        sim = Simulator()
        hits = []
        handle = sim.schedule(1.0, lambda s: hits.append(1))
        handle.cancel()
        sim.run()
        assert hits == []
        assert handle.cancelled


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, lambda s: hits.append(1))
        sim.schedule(10.0, lambda s: hits.append(10))
        sim.run(until=5.0)
        assert hits == [1]
        assert sim.now == 5.0
        sim.run()
        assert hits == [1, 10]

    def test_run_for_advances_relative(self):
        sim = Simulator()
        sim.run_for(3.0)
        assert sim.now == 3.0
        sim.run_for(2.0)
        assert sim.now == 5.0

    def test_event_budget_exhaustion_raises_loudly(self):
        """A cut-short run must raise, never report plausible metrics."""
        sim = Simulator()
        for _ in range(3):
            sim.schedule(1.0, lambda s: None)
        with pytest.raises(SimulationError):
            sim.run(until=5.0, max_events=2)

    def test_cancelled_head_does_not_mask_truncation(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda s: None)
        sim.schedule(2.0, lambda s: None)  # real pending work
        sim.schedule(0.5, lambda s: None)
        handle.cancel()
        with pytest.raises(SimulationError):
            sim.run(until=10.0, max_events=1)

    def test_budget_not_triggered_by_events_beyond_until(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: None)
        sim.schedule(100.0, lambda s: None)  # outside the window
        sim.run(until=5.0, max_events=1)
        assert sim.now == 5.0


class TestPeriodic:
    def test_periodic_fires_repeatedly(self):
        sim = Simulator()
        hits = []
        sim.schedule_periodic(1.0, lambda s: hits.append(s.now))
        sim.run(until=5.5)
        assert hits == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_periodic_cancel(self):
        sim = Simulator()
        hits = []
        cancel = sim.schedule_periodic(1.0, lambda s: hits.append(s.now))
        sim.run(until=2.5)
        cancel()
        sim.run(until=10.0)
        assert hits == [1.0, 2.0]

    def test_zero_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_periodic(0.0, lambda s: None)

    def test_jitter_stays_bounded(self):
        sim = Simulator(seed=3)
        hits = []
        sim.schedule_periodic(1.0, lambda s: hits.append(s.now), jitter=0.1)
        sim.run(until=20.0)
        gaps = [b - a for a, b in zip(hits, hits[1:])]
        assert all(1.0 <= gap <= 1.1001 for gap in gaps)

    def test_jitter_contract_includes_first_firing(self):
        """Every firing, the first included, lands ``interval`` plus a
        draw from ``[0, jitter)`` after the previous one — the first
        firing must not use a different (wider) distribution."""
        sim = Simulator(seed=11)
        hits = []
        sim.schedule_periodic(2.0, lambda s: hits.append(s.now), jitter=0.5)
        sim.run(until=30.0)
        assert 2.0 <= hits[0] < 2.5
        gaps = [b - a for a, b in zip(hits, hits[1:])]
        assert all(2.0 <= gap < 2.5 for gap in gaps)

    def test_jitter_firing_times_pinned_under_fixed_seed(self):
        """The documented contract, checked bit-for-bit: each delay is
        ``interval + rng.uniform(0, jitter)`` drawn from the shared
        stream, so a mirror of the same seed predicts every firing."""
        sim = Simulator(seed=5)
        hits = []
        sim.schedule_periodic(1.0, lambda s: hits.append(s.now), jitter=0.25)
        sim.run(until=10.0)

        mirror = random.Random(5)
        expected = []
        t = 0.0
        while True:
            t += 1.0 + mirror.uniform(0, 0.25)
            if t > 10.0:
                break
            expected.append(t)
        assert hits == expected

    def test_stagger_draws_phase_from_interval(self):
        """``stagger=True`` opts in to a first firing anywhere in
        ``[0, interval)`` (desyncs fleets of identical timers); gaps
        after that follow the normal jitter contract."""
        sim = Simulator(seed=9)
        hits = []
        sim.schedule_periodic(
            1.0, lambda s: hits.append(s.now), jitter=0.1, stagger=True
        )
        sim.run(until=15.0)
        assert 0.0 <= hits[0] < 1.0
        gaps = [b - a for a, b in zip(hits, hits[1:])]
        assert all(1.0 <= gap < 1.1 for gap in gaps)

    def test_periodic_private_rng_leaves_shared_stream_alone(self):
        sim = Simulator(seed=1)
        before = sim.rng.getstate()
        sim.schedule_periodic(
            1.0, lambda s: None, jitter=0.5, rng=random.Random(42)
        )
        sim.run(until=5.0)
        assert sim.rng.getstate() == before


class TestHeapHygiene:
    def test_cancel_heavy_loop_keeps_heap_bounded(self):
        """Cancelled events must be compacted out, not accumulate: a
        workload that perpetually schedules-then-cancels (gossip
        backoffs under churn) keeps a small heap."""
        sim = Simulator()
        pending = []

        def churn(s):
            for handle in pending:
                handle.cancel()
            pending.clear()
            for i in range(50):
                pending.append(s.schedule(100.0, lambda s2: None))

        sim.schedule_periodic(1.0, churn)
        sim.run(until=400.0)
        # 20k schedule/cancel pairs happened; without compaction the
        # heap would hold ~20k dead entries.
        assert len(sim._queue) < 4 * 50 + Simulator.COMPACT_MIN_CANCELLED
        assert sim.queue_depth() == 50 + 1  # survivors + the timer

    def test_compaction_preserves_order_and_liveness(self):
        sim = Simulator()
        sim.COMPACT_MIN_CANCELLED = 4  # force compaction early
        hits = []
        keep = [sim.schedule(float(i), lambda s, i=i: hits.append(i))
                for i in (5, 3, 8)]
        doomed = [sim.schedule(1.0, lambda s: hits.append("dead"))
                  for _ in range(16)]
        for handle in doomed:
            handle.cancel()
        sim.run()
        assert hits == [3, 5, 8]
        assert all(h.cancelled for h in doomed)
        assert not any(h.cancelled for h in keep)

    def test_stale_handle_cannot_cancel_recycled_record(self):
        """After an event fires, its record returns to the free list and
        may be reused; a lingering handle to the fired event must not
        cancel the unrelated reincarnation."""
        sim = Simulator()
        hits = []
        stale = sim.schedule(1.0, lambda s: hits.append("first"))
        sim.run()
        assert hits == ["first"]
        sim.schedule(1.0, lambda s: hits.append("second"))
        stale.cancel()  # must be a no-op for the new event
        sim.run()
        assert hits == ["first", "second"]

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda s: None)
        handle.cancel()
        handle.cancel()
        assert sim._cancelled_pending == 1
        sim.run()
        assert sim._cancelled_pending == 0

    def test_queue_depth_excludes_cancelled(self):
        sim = Simulator()
        handles = [sim.schedule(1.0, lambda s: None) for _ in range(10)]
        assert sim.queue_depth() == 10
        for handle in handles[:4]:
            handle.cancel()
        assert sim.queue_depth() == 6


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def trace(seed):
            sim = Simulator(seed=seed)
            values = []
            sim.schedule_periodic(
                1.0, lambda s: values.append(s.rng.random()), jitter=0.5
            )
            sim.run(until=10.0)
            return values

        assert trace(7) == trace(7)
        assert trace(7) != trace(8)


class TestLatencyModels:
    def test_constant_model(self):
        model = LatencyModel(base_seconds=0.2)
        assert model.sample_latency(random.Random(0)) == 0.2

    def test_uniform_bounds(self):
        model = UniformLatency(base_seconds=0.1, spread_seconds=0.2)
        rng = random.Random(0)
        for _ in range(100):
            sample = model.sample_latency(rng)
            assert 0.1 <= sample <= 0.3

    def test_lognormal_clamped(self):
        model = LogNormalLatency(base_seconds=0.05, sigma=2.0, max_seconds=1.0)
        rng = random.Random(0)
        assert all(model.sample_latency(rng) <= 1.0 for _ in range(200))

    def test_loss_probability(self):
        model = LatencyModel(loss_probability=1.0)
        assert model.sample_loss(random.Random(0))
        lossless = LatencyModel(loss_probability=0.0)
        assert not lossless.sample_loss(random.Random(0))


class TestMetrics:
    def test_histogram_stats(self):
        hist = Histogram()
        for v in [1.0, 2.0, 3.0, 4.0]:
            hist.observe(v)
        assert hist.count == 4
        assert hist.mean == 2.5
        assert hist.minimum == 1.0
        assert hist.maximum == 4.0
        assert hist.percentile(50) == 2.5
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 4.0

    def test_empty_histogram(self):
        hist = Histogram()
        assert hist.mean == 0.0
        assert hist.percentile(99) == 0.0
        assert hist.stddev == 0.0

    def test_cached_stats_match_naive_recomputation(self):
        """The cached running stats must be bit-identical to recomputing
        from scratch after every single observation — interleaving
        reads (which warm the caches) with writes (which invalidate)."""
        rng = random.Random(1234)
        hist = Histogram()
        for i in range(500):
            hist.observe(rng.uniform(-1e6, 1e6))
            if i % 7 == 0:  # exercise read-after-write invalidation
                naive = sorted(hist.samples)
                n = len(naive)
                assert hist.mean == sum(hist.samples) / n
                assert hist.minimum == naive[0]
                assert hist.maximum == naive[-1]
                for q in (0, 25, 50, 90, 99, 100):
                    rank = (q / 100.0) * (n - 1)
                    import math
                    low, high = math.floor(rank), math.ceil(rank)
                    if low == high:
                        expected = naive[low]
                    else:
                        w = rank - low
                        expected = naive[low] * (1 - w) + naive[high] * w
                    assert hist.percentile(q) == expected
                mean = sum(hist.samples) / n
                if n >= 2:
                    var = sum((s - mean) ** 2 for s in hist.samples) / (n - 1)
                    assert hist.stddev == math.sqrt(var)

    def test_direct_samples_append_detected(self):
        """Bypassing observe() (legacy callers mutate ``samples``
        directly) must still yield correct statistics."""
        hist = Histogram()
        hist.observe(1.0)
        hist.samples.append(100.0)
        hist.samples.append(-5.0)
        assert hist.mean == (1.0 + 100.0 - 5.0) / 3
        assert hist.minimum == -5.0
        assert hist.maximum == 100.0
        assert hist.percentile(100) == 100.0

    def test_histogram_constructed_with_samples(self):
        hist = Histogram(samples=[3.0, 1.0, 2.0])
        assert hist.mean == 2.0
        assert hist.minimum == 1.0
        assert hist.percentile(50) == 2.0

    def test_histogram_equality_still_compares_samples(self):
        a = Histogram(samples=[1.0, 2.0])
        b = Histogram(samples=[1.0, 2.0])
        _ = a.percentile(50)  # warm a's cache, not b's
        assert a == b

    def test_registry(self):
        metrics = MetricsRegistry()
        metrics.increment("x")
        metrics.increment("x", 4)
        metrics.observe("lat", 0.5)
        assert metrics.counter("x") == 5
        assert metrics.counter("missing") == 0
        assert metrics.histogram("lat").count == 1
        assert "lat.mean" in metrics.summary()
