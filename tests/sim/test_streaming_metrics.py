"""Streaming metrics: bounded accumulators vs exact histograms."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.metrics import (
    BoundedSeries,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
    StreamingHistogram,
)

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestStreamingHistogramParity:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(finite_floats, min_size=1, max_size=200))
    def test_moments_match_exact_histogram(self, samples):
        exact = Histogram()
        streaming = StreamingHistogram()
        for value in samples:
            exact.observe(value)
            streaming.observe(value)
        assert streaming.count == exact.count
        assert streaming.minimum == exact.minimum
        assert streaming.maximum == exact.maximum
        assert streaming.mean == pytest.approx(exact.mean, rel=1e-9, abs=1e-6)
        assert streaming.stddev == pytest.approx(
            exact.stddev, rel=1e-6, abs=1e-6
        )
        # Endpoint percentiles are exact by construction.
        assert streaming.percentile(0) == exact.minimum
        assert streaming.percentile(100) == exact.maximum

    def test_percentiles_within_sketch_error(self):
        rng = random.Random(5)
        exact = Histogram()
        streaming = StreamingHistogram()
        for _ in range(5000):
            value = rng.expovariate(1 / 40.0) + 1.0
            exact.observe(value)
            streaming.observe(value)
        for q in (10, 50, 90, 99):
            reference = exact.percentile(q)
            assert streaming.percentile(q) == pytest.approx(
                reference, rel=0.05
            )

    def test_empty_histogram_reads_zero(self):
        streaming = StreamingHistogram()
        assert streaming.count == 0
        assert streaming.mean == 0.0
        assert streaming.stddev == 0.0
        assert streaming.percentile(50) == 0.0

    def test_state_is_bounded(self):
        streaming = StreamingHistogram()
        for i in range(100_000):
            streaming.observe(float(i % 997) + 0.5)
        # A 100k-sample stream must not hold 100k samples' worth of
        # state: the sketch bucket count is capped by the value range,
        # not the stream length.
        assert streaming.sketch.bucket_count < 1000
        assert streaming.storage_bytes() < 20_000

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(finite_floats, min_size=1, max_size=80),
        st.lists(finite_floats, min_size=1, max_size=80),
    )
    def test_merge_equals_single_stream(self, left, right):
        merged = StreamingHistogram()
        for value in left:
            merged.observe(value)
        other = StreamingHistogram()
        for value in right:
            other.observe(value)
        merged.merge(other)
        combined = StreamingHistogram()
        for value in left + right:
            combined.observe(value)
        assert merged.count == combined.count
        assert merged.minimum == combined.minimum
        assert merged.maximum == combined.maximum
        assert merged.mean == pytest.approx(combined.mean, abs=1e-6)
        assert merged.stddev == pytest.approx(combined.stddev, abs=1e-6)
        assert merged.sketch.count == combined.sketch.count


class TestQuantileSketch:
    def test_relative_error_bound(self):
        sketch = QuantileSketch(gamma=1.02)
        values = [1.0 + i * 0.37 for i in range(2000)]
        for value in values:
            sketch.observe(value)
        ordered = sorted(values)
        for q in (1, 25, 50, 75, 99):
            rank = math.floor((q / 100) * (len(ordered) - 1))
            reference = ordered[rank]
            assert sketch.quantile(q) == pytest.approx(reference, rel=0.03)

    def test_negative_and_zero_values(self):
        sketch = QuantileSketch()
        for value in (-10.0, -1.0, 0.0, 0.0, 1.0, 10.0):
            sketch.observe(value)
        assert sketch.count == 6
        assert sketch.quantile(0) == pytest.approx(-10.0, rel=0.03)
        assert sketch.quantile(50) == 0.0
        assert sketch.quantile(100) == pytest.approx(10.0, rel=0.03)

    def test_merge_requires_matching_gamma(self):
        with pytest.raises(ValueError):
            QuantileSketch(gamma=1.02).merge(QuantileSketch(gamma=1.05))
        with pytest.raises(ValueError):
            QuantileSketch(gamma=1.0)

    def test_determinism_under_reordering(self):
        values = [math.exp(i / 50.0) for i in range(300)]
        forward = QuantileSketch()
        backward = QuantileSketch()
        for value in values:
            forward.observe(value)
        for value in reversed(values):
            backward.observe(value)
        assert forward.quantile(50) == backward.quantile(50)
        assert forward.bucket_count == backward.bucket_count


class TestBoundedSeries:
    def test_cap_and_uniform_decimation(self):
        series = BoundedSeries(max_points=8)
        for i in range(1000):
            series.append(i)
        assert 4 <= len(series) <= 8
        assert series.offered == 1000
        retained = list(series)
        # Uniform stride: consecutive retained points are equally spaced.
        gaps = {b - a for a, b in zip(retained, retained[1:])}
        assert len(gaps) == 1

    def test_short_series_keeps_everything(self):
        series = BoundedSeries(max_points=16)
        for i in range(10):
            series.append(i)
        assert list(series) == list(range(10))
        assert series[3] == 3

    def test_decimation_is_deterministic(self):
        a = BoundedSeries(max_points=8)
        b = BoundedSeries(max_points=8)
        for i in range(777):
            a.append(i)
            b.append(i)
        assert list(a) == list(b)

    def test_minimum_cap(self):
        with pytest.raises(ValueError):
            BoundedSeries(max_points=3)


class TestRegistrySwitch:
    def test_use_streaming_swaps_default_factory(self):
        registry = MetricsRegistry()
        registry.use_streaming()
        registry.observe("latency", 1.0)
        assert isinstance(
            registry.histogram("latency"), StreamingHistogram
        )
        assert isinstance(registry.histogram("fresh"), StreamingHistogram)
        assert registry.histogram("latency").count == 1

    def test_use_streaming_refuses_after_samples(self):
        registry = MetricsRegistry()
        registry.observe("latency", 1.0)
        with pytest.raises(ValueError):
            registry.use_streaming()

    def test_counters_unaffected(self):
        registry = MetricsRegistry()
        registry.increment("events", 3)
        registry.use_streaming()
        registry.increment("events", 2)
        assert registry.counter("events") == 5
        registry.observe("x", 2.0)
        summary = registry.summary()
        assert summary["events"] == 5
        assert summary["x.mean"] == 2.0
