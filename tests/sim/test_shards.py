"""Sharded kernel: plans, merge-order invariance, barriers, parallel runner."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.shards import (
    CrossShardPacket,
    ParallelShardRunner,
    ShardedSimulator,
    ShardPlan,
    UniformRelayWorkload,
)
from repro.sim.simulator import Simulator


class TestShardPlan:
    def test_hash_plan_is_stable_and_in_range(self):
        plan = ShardPlan.hashed(4)
        for key in (f"peer-{i}" for i in range(200)):
            shard = plan.shard_of(key)
            assert 0 <= shard < 4
            assert plan.shard_of(key) == shard  # stable

    def test_hash_plan_spreads_keys(self):
        plan = ShardPlan.hashed(4)
        counts = [0] * 4
        for i in range(400):
            counts[plan.shard_of(f"peer-{i}")] += 1
        assert all(count > 50 for count in counts)

    def test_block_plan_contiguous(self):
        keys = [f"peer-{i}" for i in range(10)]
        plan = ShardPlan.blocked(keys, 2)
        assert [plan.shard_of(k) for k in keys] == [0] * 5 + [1] * 5

    def test_block_plan_unknown_key_falls_back_to_hash(self):
        plan = ShardPlan.blocked(["a", "b"], 2)
        assert 0 <= plan.shard_of("joined-later") < 2

    def test_none_key_maps_to_shard_zero(self):
        assert ShardPlan.hashed(4).shard_of(None) == 0

    def test_single_shard_short_circuits(self):
        assert ShardPlan.hashed(1).shard_of("anything") == 0

    def test_invalid_plans_rejected(self):
        with pytest.raises(SimulationError):
            ShardPlan.hashed(0)
        with pytest.raises(SimulationError):
            ShardPlan(2, strategy="nope")
        with pytest.raises(SimulationError):
            ShardPlan(2, strategy="block")  # no keys


def _mixed_workload(sim, events):
    """A workload exercising timers, cancels and cross-entity sends,
    all through the shared rng so execution order matters."""
    rng = sim.rng
    nodes = [f"peer-{i}" for i in range(12)]
    cancels = []

    def beat(node):
        def handler(s):
            events.append((round(s.now, 9), "beat", node))
            target = rng.choice(nodes)
            s.schedule(
                rng.uniform(0.01, 0.3),
                lambda s2, t=target: events.append(
                    (round(s2.now, 9), "recv", t)
                ),
                label=f"deliver:{target}",
                shard=target,
            )

        return handler

    for node in nodes:
        cancels.append(
            sim.schedule_periodic(
                0.7,
                beat(node),
                label=f"heartbeat:{node}",
                jitter=0.2,
                stagger=True,
                shard=node,
            )
        )
    # churn: cancel some timers mid-run
    sim.schedule(3.0, lambda s: [c() for c in cancels[:4]], shard=nodes[0])
    return cancels


class TestShardedMergeInvariance:
    def test_fingerprint_invariant_across_shard_counts(self):
        """The tentpole property: the merged execution order equals the
        single-queue order, so the same seed gives the same trace at
        shards=1, 2 and 4 — and on the unsharded base kernel."""
        traces = {}
        for shards, make in {
            "base": lambda: Simulator(seed=42),
            1: lambda: ShardedSimulator(seed=42, shards=1),
            2: lambda: ShardedSimulator(seed=42, shards=2),
            4: lambda: ShardedSimulator(seed=42, shards=4),
        }.items():
            sim = make()
            events = []
            _mixed_workload(sim, events)
            sim.run(until=10.0)
            traces[shards] = (events, sim.events_processed)
        assert traces["base"] == traces[1] == traces[2] == traces[4]

    def test_cross_shard_accounting(self):
        sim = ShardedSimulator(seed=1, shards=4, window=0.5)
        events = []
        _mixed_workload(sim, events)
        sim.run(until=10.0)
        stats = sim.shard_stats()
        assert stats["shards"] == 4
        assert stats["barriers"] >= 19  # ~10s / 0.5s windows
        assert stats["cross_shard_scheduled"] > 0
        assert (
            stats["cross_shard_intra_window"]
            <= stats["cross_shard_scheduled"]
        )
        assert sum(stats["events_by_shard"]) == sim.events_processed
        assert 0.0 < stats["cross_shard_fraction"] < 1.0

    def test_single_shard_has_no_cross_traffic(self):
        sim = ShardedSimulator(seed=1, shards=1)
        events = []
        _mixed_workload(sim, events)
        sim.run(until=5.0)
        assert sim.shard_stats()["cross_shard_scheduled"] == 0

    def test_cancel_and_compaction_across_shards(self):
        sim = ShardedSimulator(seed=0, shards=4)
        pending = []

        def churn(s):
            for handle in pending:
                handle.cancel()
            pending.clear()
            for i in range(40):
                pending.append(
                    s.schedule(50.0, lambda s2: None, shard=f"peer-{i}")
                )

        sim.schedule_periodic(1.0, churn, shard="peer-0")
        sim.run(until=200.0)
        total = sum(len(q) for q in sim._queues)
        assert total < 4 * 40 + sim.COMPACT_MIN_CANCELLED
        assert sim.queue_depth() == 40 + 1

    def test_event_budget_guard_still_raises(self):
        sim = ShardedSimulator(seed=0, shards=2)
        for i in range(5):
            sim.schedule(1.0, lambda s: None, shard=f"peer-{i}")
        with pytest.raises(SimulationError):
            sim.run(until=5.0, max_events=2)

    def test_stream_is_per_entity_and_stable(self):
        sim = ShardedSimulator(seed=9, shards=2)
        a = [sim.stream("peer-1").random() for _ in range(3)]
        assert sim.stream("peer-1") is sim.stream("peer-1")
        other = ShardedSimulator(seed=9, shards=4)
        b = [other.stream("peer-1").random() for _ in range(3)]
        assert a == b  # same seed + key => same draws at any shard count
        assert ShardedSimulator(seed=10).stream("peer-1").random() != a[0]

    def test_plan_shard_count_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            ShardedSimulator(shards=4, plan=ShardPlan.hashed(2))


class TestBarrierRouting:
    def _packet(self, time, origin, seq, dst=0):
        return CrossShardPacket(
            time=time,
            origin_shard=origin,
            origin_seq=seq,
            dst_shard=dst,
            dst_key="0",
            payload=None,
        )

    def test_route_orders_packets_deterministically(self):
        """Property test: whatever interleaving the workers returned
        packets in, routing sorts them on (time, origin_shard,
        origin_seq) — delivery order never depends on scheduling."""
        runner = ParallelShardRunner(
            build=lambda i, n, s: None, shard_count=2, window=0.5
        )
        rng = random.Random(1234)
        for _ in range(25):
            packets = [
                self._packet(
                    time=1.0 + rng.random(),
                    origin=rng.randrange(2),
                    seq=rng.randrange(1000),
                    dst=rng.randrange(2),
                )
                for _ in range(30)
            ]
            reference = None
            for _ in range(4):
                shuffled = packets[:]
                rng.shuffle(shuffled)
                inboxes = runner._route(shuffled, t_end=1.0)
                ordered = [p.sort_key for box in inboxes for p in box]
                if reference is None:
                    reference = ordered
                assert ordered == reference
            for box in inboxes:
                assert box == sorted(box, key=lambda p: p.sort_key)

    def test_causality_violation_raises(self):
        runner = ParallelShardRunner(
            build=lambda i, n, s: None, shard_count=2, window=0.5
        )
        late = self._packet(time=0.4, origin=0, seq=1)
        with pytest.raises(SimulationError, match="causality"):
            runner._route([late], t_end=0.5)

    def test_unknown_destination_shard_raises(self):
        runner = ParallelShardRunner(
            build=lambda i, n, s: None, shard_count=2, window=0.5
        )
        lost = self._packet(time=1.0, origin=0, seq=1, dst=7)
        with pytest.raises(SimulationError, match="routed"):
            runner._route([lost], t_end=0.5)


def _relay_totals(snapshots):
    published = sum(s["published"] for s in snapshots)
    delivered = {}
    for snap in snapshots:
        delivered.update(snap["delivered"])
    return published, tuple(sorted(delivered.items()))


class TestParallelShardRunner:
    def test_relay_workload_invariant_across_shard_counts(self):
        """Window-isolated execution: per-node streams make the relay
        workload's results identical at 1, 2 and 4 shards."""
        workload = UniformRelayWorkload(
            node_count=24, interval=0.8, fanout=3, latency=0.3
        )
        results = []
        for shards in (1, 2, 4):
            runner = ParallelShardRunner(
                workload.build, shard_count=shards, seed=7, window=0.25
            )
            results.append(_relay_totals(runner.run(until=6.0)))
        assert results[0] == results[1] == results[2]
        published, delivered = results[0]
        assert published > 0
        assert sum(count for _, count in delivered) > 0

    def test_forked_matches_serial(self):
        workload = UniformRelayWorkload(
            node_count=16, interval=0.8, fanout=3, latency=0.3
        )
        serial = ParallelShardRunner(
            workload.build, shard_count=2, seed=3, window=0.25
        )
        forked = ParallelShardRunner(
            workload.build, shard_count=2, seed=3, window=0.25
        )
        serial_result = _relay_totals(serial.run(until=4.0))
        forked_result = _relay_totals(
            forked.run(until=4.0, processes=True)
        )
        assert serial_result == forked_result
        assert forked.barriers == serial.barriers

    def test_worker_failure_surfaces(self):
        class Exploding:
            def __init__(self, *a):
                pass

            def run_window(self, t_end, inbox):
                raise RuntimeError("boom")

            def snapshot(self):
                return {}

        runner = ParallelShardRunner(
            build=lambda i, n, s: Exploding(),
            shard_count=2,
            window=0.5,
        )
        with pytest.raises((SimulationError, RuntimeError)):
            runner.run(until=1.0, processes=True)

    def test_latency_below_window_is_rejected_not_reordered(self):
        workload = UniformRelayWorkload(
            node_count=16, interval=0.5, fanout=3, latency=0.1
        )
        runner = ParallelShardRunner(
            workload.build, shard_count=2, seed=0, window=0.25
        )
        with pytest.raises(SimulationError, match="causality"):
            runner.run(until=4.0)

    def test_runner_parameter_validation(self):
        with pytest.raises(SimulationError):
            ParallelShardRunner(lambda i, n, s: None, shard_count=0)
        with pytest.raises(SimulationError):
            ParallelShardRunner(
                lambda i, n, s: None, shard_count=1, window=0.0
            )
        runner = ParallelShardRunner(lambda i, n, s: None, shard_count=1)
        with pytest.raises(SimulationError):
            runner.run(until=0.0)
