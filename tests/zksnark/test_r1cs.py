"""Tests for the R1CS constraint system."""

import pytest

from repro.crypto.field import Fr
from repro.crypto.zksnark.r1cs import ConstraintSystem, LinearCombination, Variable
from repro.errors import CircuitError


class TestLinearCombination:
    def test_coerce_variable(self):
        v = Variable(index=3)
        lc = LinearCombination.coerce(v)
        assert lc.terms == {3: Fr.one()}

    def test_coerce_constant(self):
        lc = LinearCombination.coerce(7)
        assert lc.is_constant()
        assert lc.constant == Fr(7)

    def test_coerce_rejects_junk(self):
        with pytest.raises(CircuitError):
            LinearCombination.coerce("x")  # type: ignore[arg-type]

    def test_add_merges_terms(self):
        a = Variable(index=1).lc()
        b = Variable(index=1).lc()
        merged = a + b
        assert merged.terms == {1: Fr(2)}

    def test_cancellation_drops_term(self):
        a = Variable(index=1).lc()
        zero = a - a
        assert zero.is_constant()
        assert zero.constant == Fr.zero()

    def test_scalar_multiplication(self):
        a = Variable(index=2).lc() + Fr(3)
        scaled = a * Fr(5)
        assert scaled.terms == {2: Fr(5)}
        assert scaled.constant == Fr(15)

    def test_mul_by_zero_is_empty(self):
        a = Variable(index=2).lc() + Fr(3)
        assert (a * 0).is_constant()

    def test_evaluate(self):
        assignment = [Fr.one(), Fr(10), Fr(20)]
        lc = Variable(index=1).lc() * 2 + Variable(index=2).lc() + Fr(5)
        assert lc.evaluate(assignment) == Fr(45)


class TestConstraintSystem:
    def test_constant_one_wire(self):
        cs = ConstraintSystem()
        assert cs.assignment[0] == Fr.one()
        assert cs.num_variables == 1

    def test_public_before_private_enforced(self):
        cs = ConstraintSystem()
        cs.alloc("private", Fr(1))
        with pytest.raises(CircuitError):
            cs.alloc_public("late_public", Fr(2))

    def test_public_inputs_extraction(self):
        cs = ConstraintSystem()
        cs.alloc_public("a", Fr(10))
        cs.alloc_public("b", Fr(20))
        cs.alloc("w", Fr(30))
        assert cs.public_inputs() == (Fr(10), Fr(20))

    def test_enforce_checks_at_synthesis(self):
        cs = ConstraintSystem()
        a = cs.alloc("a", Fr(3))
        b = cs.alloc("b", Fr(4))
        cs.enforce(a, b, Fr(12), "3*4=12")
        with pytest.raises(CircuitError):
            cs.enforce(a, b, Fr(13), "3*4!=13")

    def test_mul_allocates_product(self):
        cs = ConstraintSystem()
        a = cs.alloc("a", Fr(6))
        b = cs.alloc("b", Fr(7))
        out = cs.mul(a, b)
        assert cs.evaluate(out) == Fr(42)
        assert cs.num_constraints == 1

    def test_square(self):
        cs = ConstraintSystem()
        a = cs.alloc("a", Fr(9))
        assert cs.evaluate(cs.square(a)) == Fr(81)

    def test_enforce_equal(self):
        cs = ConstraintSystem()
        a = cs.alloc("a", Fr(5))
        cs.enforce_equal(a, Fr(5))
        with pytest.raises(CircuitError):
            cs.enforce_equal(a, Fr(6))

    def test_boolean_constraint(self):
        cs = ConstraintSystem()
        good = cs.alloc("bit", Fr(1))
        cs.enforce_boolean(good)
        bad = cs.alloc("nonbit", Fr(2))
        with pytest.raises(CircuitError):
            cs.enforce_boolean(bad)

    def test_is_satisfied(self):
        cs = ConstraintSystem()
        a = cs.alloc("a", Fr(2))
        cs.mul(a, a)
        assert cs.is_satisfied()

    def test_check_assignment_rejects_tampering(self):
        cs = ConstraintSystem()
        a = cs.alloc("a", Fr(2))
        cs.mul(a, a, "a^2")
        tampered = list(cs.assignment)
        tampered[-1] = Fr(5)  # claim a^2 = 5
        assert not cs.check_assignment(tampered)

    def test_check_assignment_rejects_wrong_length(self):
        cs = ConstraintSystem()
        cs.alloc("a", Fr(2))
        assert not cs.check_assignment([Fr.one()])

    def test_linear_ops_cost_no_constraints(self):
        cs = ConstraintSystem()
        a = cs.alloc("a", Fr(1))
        b = cs.alloc("b", Fr(2))
        _ = a.lc() + b.lc() * 3 - Fr(4)
        assert cs.num_constraints == 0
