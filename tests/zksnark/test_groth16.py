"""Tests for the simulated Groth16 backend."""

import random

import pytest

from repro.constants import PROOF_SIZE_BYTES, PROVER_KEY_SIZE_BYTES
from repro.crypto.field import Fr
from repro.crypto.zksnark import groth16
from repro.crypto.zksnark.groth16 import Proof, trusted_setup
from repro.crypto.zksnark.r1cs import ConstraintSystem
from repro.errors import ProofError, SerializationError


class SquareStatement:
    """Toy relation: public y, witness x, with y = x^2."""

    def __init__(self, x: Fr, y: Fr) -> None:
        self.x = x
        self.y = y

    def public_inputs(self):
        return (self.y,)

    def check_witness(self) -> bool:
        return self.x * self.x == self.y

    def synthesize(self) -> ConstraintSystem:
        cs = ConstraintSystem()
        y = cs.alloc_public("y", self.y)
        x = cs.alloc("x", self.x)
        cs.enforce(x, x, y, "square")
        return cs


@pytest.fixture
def keys():
    return trusted_setup("square", num_public_inputs=1, seed=b"test")


class TestSetup:
    def test_deterministic_with_seed(self):
        pk1, vk1 = trusted_setup("c", 1, seed=b"s")
        pk2, vk2 = trusted_setup("c", 1, seed=b"s")
        assert vk1.binding_key == vk2.binding_key

    def test_random_without_seed(self):
        _, vk1 = trusted_setup("c", 1)
        _, vk2 = trusted_setup("c", 1)
        assert vk1.binding_key != vk2.binding_key

    def test_prover_key_models_paper_size(self):
        from repro.crypto.zksnark.groth16 import ProvingKey

        pk, _ = trusted_setup("c", 1)
        assert pk.size_bytes == PROVER_KEY_SIZE_BYTES
        reference = ProvingKey._REFERENCE_CONSTRAINTS
        pk_ref, _ = trusted_setup("c", 1, num_constraints=reference)
        assert pk_ref.size_bytes == PROVER_KEY_SIZE_BYTES
        pk_half, _ = trusted_setup("c", 1, num_constraints=reference // 2)
        assert pk_half.size_bytes == pytest.approx(
            PROVER_KEY_SIZE_BYTES / 2, rel=0.01
        )


class TestProveVerify:
    def test_valid_witness_proves_and_verifies(self, keys):
        pk, vk = keys
        statement = SquareStatement(Fr(4), Fr(16))
        proof = groth16.prove(pk, statement)
        assert groth16.verify(vk, proof, statement.public_inputs())

    def test_invalid_witness_refused(self, keys):
        pk, _ = keys
        with pytest.raises(ProofError):
            groth16.prove(pk, SquareStatement(Fr(4), Fr(17)))

    def test_r1cs_mode(self, keys):
        pk, vk = keys
        statement = SquareStatement(Fr(5), Fr(25))
        proof = groth16.prove(pk, statement, mode="r1cs")
        assert groth16.verify(vk, proof, statement.public_inputs())

    def test_unknown_mode_rejected(self, keys):
        pk, _ = keys
        with pytest.raises(ProofError):
            groth16.prove(pk, SquareStatement(Fr(2), Fr(4)), mode="magic")

    def test_wrong_public_inputs_fail_verification(self, keys):
        pk, vk = keys
        proof = groth16.prove(pk, SquareStatement(Fr(4), Fr(16)))
        assert not groth16.verify(vk, proof, (Fr(17),))

    def test_wrong_public_input_count_fails(self, keys):
        pk, vk = keys
        proof = groth16.prove(pk, SquareStatement(Fr(4), Fr(16)))
        assert not groth16.verify(vk, proof, (Fr(16), Fr(16)))

    def test_proof_not_transferable_across_circuits(self, keys):
        pk, _ = keys
        _, other_vk = trusted_setup("other-circuit", 1, seed=b"test2")
        proof = groth16.prove(pk, SquareStatement(Fr(4), Fr(16)))
        assert not groth16.verify(other_vk, proof, (Fr(16),))

    def test_tampered_proof_fails(self, keys):
        pk, vk = keys
        statement = SquareStatement(Fr(4), Fr(16))
        proof = groth16.prove(pk, statement)
        tampered = Proof(pi_a=proof.pi_a, pi_b=proof.pi_b, pi_c=bytes(32))
        assert not groth16.verify(vk, tampered, statement.public_inputs())

    def test_statement_public_count_mismatch(self):
        pk, _ = trusted_setup("square", num_public_inputs=2, seed=b"t")
        with pytest.raises(ProofError):
            groth16.prove(pk, SquareStatement(Fr(2), Fr(4)))


class TestZeroKnowledgeShape:
    def test_proofs_randomised(self, keys):
        pk, vk = keys
        statement = SquareStatement(Fr(4), Fr(16))
        p1 = groth16.prove(pk, statement)
        p2 = groth16.prove(pk, statement)
        assert p1 != p2  # unlinkable
        assert groth16.verify(vk, p1, statement.public_inputs())
        assert groth16.verify(vk, p2, statement.public_inputs())

    def test_deterministic_with_rng(self, keys):
        pk, _ = keys
        statement = SquareStatement(Fr(4), Fr(16))
        p1 = groth16.prove(pk, statement, rng=random.Random(1))
        p2 = groth16.prove(pk, statement, rng=random.Random(1))
        assert p1 == p2

    def test_proof_independent_of_witness_values(self, keys):
        # Two different witnesses for the same public input (x and -x)
        # produce identically distributed proofs under the same rng.
        pk, _ = keys
        a = SquareStatement(Fr(4), Fr(16))
        b = SquareStatement(Fr(-4), Fr(16))
        pa = groth16.prove(pk, a, rng=random.Random(9))
        pb = groth16.prove(pk, b, rng=random.Random(9))
        assert pa == pb  # nothing about the witness enters the proof


class TestProofSerialization:
    def test_roundtrip(self, keys):
        pk, _ = keys
        proof = groth16.prove(pk, SquareStatement(Fr(3), Fr(9)))
        assert Proof.from_bytes(proof.to_bytes()) == proof

    def test_constant_size(self, keys):
        pk, _ = keys
        proof = groth16.prove(pk, SquareStatement(Fr(3), Fr(9)))
        assert len(proof.to_bytes()) == PROOF_SIZE_BYTES == 128
        assert proof.size_bytes == 128

    def test_wrong_length_rejected(self):
        with pytest.raises(SerializationError):
            Proof.from_bytes(b"\x00" * 127)
