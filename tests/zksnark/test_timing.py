"""Tests for the calibrated zkSNARK performance model."""

import pytest

from repro.constants import (
    PAPER_PROOF_GENERATION_SECONDS,
    PAPER_PROOF_VERIFICATION_SECONDS,
)
from repro.crypto.zksnark.timing import (
    CONSTRAINTS_PER_MERKLE_LEVEL,
    DEFAULT_PERFORMANCE_MODEL,
    PerformanceModel,
    RLN_BASE_CONSTRAINTS,
    rln_constraint_count,
)


class TestConstraintModel:
    def test_linear_in_depth(self):
        assert (
            rln_constraint_count(21) - rln_constraint_count(20)
            == CONSTRAINTS_PER_MERKLE_LEVEL
        )

    def test_base_offset(self):
        assert rln_constraint_count(0) == RLN_BASE_CONSTRAINTS

    def test_matches_real_synthesis(self, poseidon_backend, rng):
        """The closed-form count equals the synthesized circuit's."""
        from repro.crypto.field import Fr
        from repro.crypto.keys import MembershipKeyPair
        from repro.crypto.merkle import MerkleTree
        from repro.rln.circuit import RlnStatement

        tree = MerkleTree(6)
        pair = MembershipKeyPair.generate(rng)
        index = tree.insert(pair.commitment.element)
        statement = RlnStatement.build(
            secret=pair.secret.element,
            ext_nullifier=Fr(1),
            x=Fr(2),
            merkle_proof=tree.proof(index),
        )
        assert statement.synthesize().num_constraints == rln_constraint_count(6)


class TestPerformanceModel:
    def test_anchored_at_paper_depth(self):
        model = PerformanceModel()
        assert model.prove_seconds(32) == pytest.approx(
            PAPER_PROOF_GENERATION_SECONDS
        )

    def test_prove_monotone_in_depth(self):
        model = PerformanceModel()
        times = [model.prove_seconds(d) for d in (10, 16, 20, 26, 32)]
        assert times == sorted(times)

    def test_verify_constant(self):
        model = PerformanceModel()
        assert model.verify_seconds_for(10) == model.verify_seconds_for(32)
        assert model.verify_seconds_for(20) == pytest.approx(
            PAPER_PROOF_VERIFICATION_SECONDS
        )

    def test_device_speed_scales_everything(self):
        fast = DEFAULT_PERFORMANCE_MODEL.with_device_speed(2.0)
        assert fast.prove_seconds(32) == pytest.approx(0.25)
        assert fast.verify_seconds_for(32) == pytest.approx(0.015)

    def test_default_model_is_reference_device(self):
        assert DEFAULT_PERFORMANCE_MODEL.device_speed == 1.0
