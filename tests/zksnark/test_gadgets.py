"""Tests for circuit gadgets against their native counterparts."""

import pytest

from repro.crypto.field import Fr
from repro.crypto.merkle import MerkleTree
from repro.crypto.poseidon import poseidon_hash1, poseidon_hash2, poseidon_permutation
from repro.crypto.zksnark.gadgets import (
    conditional_swap_gadget,
    merkle_path_gadget,
    poseidon_hash_gadget,
    poseidon_permutation_gadget,
    sbox_gadget,
)
from repro.crypto.zksnark.r1cs import ConstraintSystem
from repro.errors import CircuitError


class TestSbox:
    def test_matches_native_power(self):
        cs = ConstraintSystem()
        x = cs.alloc("x", Fr(7))
        out = sbox_gadget(cs, x)
        assert cs.evaluate(out) == Fr(7) ** 5

    def test_costs_three_constraints(self):
        cs = ConstraintSystem()
        x = cs.alloc("x", Fr(3))
        sbox_gadget(cs, x)
        assert cs.num_constraints == 3


class TestPoseidonGadget:
    def test_permutation_matches_native_t3(self):
        state = [Fr(1), Fr(2), Fr(3)]
        cs = ConstraintSystem()
        wires = [cs.alloc(f"s{i}", v) for i, v in enumerate(state)]
        out = poseidon_permutation_gadget(cs, wires)
        native = poseidon_permutation(state)
        assert [cs.evaluate(w) for w in out] == native

    def test_permutation_matches_native_t2(self):
        state = [Fr(4), Fr(5)]
        cs = ConstraintSystem()
        wires = [cs.alloc(f"s{i}", v) for i, v in enumerate(state)]
        out = poseidon_permutation_gadget(cs, wires)
        assert [cs.evaluate(w) for w in out] == poseidon_permutation(state)

    def test_hash_gadget_matches_native(self):
        cs = ConstraintSystem()
        a = cs.alloc("a", Fr(11))
        b = cs.alloc("b", Fr(22))
        assert cs.evaluate(poseidon_hash_gadget(cs, [a])) == poseidon_hash1(Fr(11))
        assert cs.evaluate(poseidon_hash_gadget(cs, [a, b])) == poseidon_hash2(
            Fr(11), Fr(22)
        )

    def test_hash_gadget_constraint_counts(self):
        cs = ConstraintSystem()
        a = cs.alloc("a", Fr(1))
        poseidon_hash_gadget(cs, [a])
        t2_cost = cs.num_constraints
        assert t2_cost == 3 * (8 * 2 + 56)  # 216

        cs2 = ConstraintSystem()
        x = cs2.alloc("x", Fr(1))
        y = cs2.alloc("y", Fr(2))
        poseidon_hash_gadget(cs2, [x, y])
        assert cs2.num_constraints == 3 * (8 * 3 + 57)  # 243

    def test_bad_arity_rejected(self):
        cs = ConstraintSystem()
        a = cs.alloc("a", Fr(1))
        with pytest.raises(CircuitError):
            poseidon_hash_gadget(cs, [a, a, a])


class TestConditionalSwap:
    def test_bit_zero_keeps_order(self):
        cs = ConstraintSystem()
        bit = cs.alloc("bit", Fr(0))
        left, right = conditional_swap_gadget(cs, bit, Fr(10), Fr(20))
        assert cs.evaluate(left) == Fr(10)
        assert cs.evaluate(right) == Fr(20)

    def test_bit_one_swaps(self):
        cs = ConstraintSystem()
        bit = cs.alloc("bit", Fr(1))
        left, right = conditional_swap_gadget(cs, bit, Fr(10), Fr(20))
        assert cs.evaluate(left) == Fr(20)
        assert cs.evaluate(right) == Fr(10)

    def test_single_constraint(self):
        cs = ConstraintSystem()
        bit = cs.alloc("bit", Fr(1))
        conditional_swap_gadget(cs, bit, Fr(1), Fr(2))
        assert cs.num_constraints == 1


class TestMerkleGadget:
    def test_matches_native_tree(self, poseidon_backend):
        tree = MerkleTree(4)
        for i in range(5):
            tree.insert(Fr(100 + i))
        proof = tree.proof(3)
        cs = ConstraintSystem()
        leaf = cs.alloc("leaf", proof.leaf)
        bits = [cs.alloc(f"b{i}", Fr(b)) for i, b in enumerate(proof.path_bits)]
        sibs = [cs.alloc(f"s{i}", s) for i, s in enumerate(proof.siblings)]
        root = merkle_path_gadget(cs, leaf, bits, sibs)
        assert cs.evaluate(root) == tree.root

    def test_per_level_cost(self):
        cs = ConstraintSystem()
        leaf = cs.alloc("leaf", Fr(0))
        bits = [cs.alloc("b", Fr(0))]
        zero = cs.alloc("z", Fr(0))
        merkle_path_gadget(cs, leaf, bits, [zero])
        assert cs.num_constraints == 1 + 1 + 243  # boolean + swap + hash

    def test_length_mismatch_rejected(self):
        cs = ConstraintSystem()
        leaf = cs.alloc("leaf", Fr(0))
        with pytest.raises(CircuitError):
            merkle_path_gadget(cs, leaf, [Fr(0)], [])

    def test_non_boolean_bit_rejected(self, poseidon_backend):
        cs = ConstraintSystem()
        leaf = cs.alloc("leaf", Fr(1))
        bit = cs.alloc("bit", Fr(2))
        sib = cs.alloc("sib", Fr(3))
        with pytest.raises(CircuitError):
            merkle_path_gadget(cs, leaf, [bit], [sib])
