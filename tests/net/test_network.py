"""Tests for the simulated network and topology generators."""

import pytest

from repro.errors import NetworkError
from repro.net.network import Network
from repro.net.topology import (
    average_degree,
    connect_erdos_renyi,
    connect_full_mesh,
    connect_random_regular,
    connect_small_world,
    diameter,
)
from repro.sim.latency import LatencyModel
from repro.sim.simulator import Simulator


class Recorder:
    """Minimal NetworkNode that records deliveries."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.received = []

    def deliver(self, from_peer, packet):
        self.received.append((from_peer, packet))


def make_network(n=3, **kwargs):
    sim = Simulator(seed=1)
    network = Network(simulator=sim, **kwargs)
    nodes = [Recorder(f"n{i}") for i in range(n)]
    for node in nodes:
        network.attach(node)
    return sim, network, nodes


class TestAttachment:
    def test_duplicate_attach_rejected(self):
        sim, network, nodes = make_network(1)
        with pytest.raises(NetworkError):
            network.attach(nodes[0])

    def test_unknown_node_lookup(self):
        sim, network, _ = make_network(1)
        with pytest.raises(NetworkError):
            network.node("ghost")

    def test_contains(self):
        _, network, _ = make_network(2)
        assert "n0" in network
        assert "zz" not in network

    def test_detach_removes_links(self):
        _, network, _ = make_network(3)
        network.connect("n0", "n1")
        network.connect("n1", "n2")
        network.detach("n1")
        assert network.link_count() == 0
        assert "n1" not in network


class TestLinks:
    def test_connect_and_neighbors(self):
        _, network, _ = make_network(3)
        network.connect("n0", "n1")
        network.connect("n0", "n2")
        assert network.neighbors("n0") == ["n1", "n2"]
        assert network.neighbors("n1") == ["n0"]

    def test_self_link_rejected(self):
        _, network, _ = make_network(2)
        with pytest.raises(NetworkError):
            network.connect("n0", "n0")

    def test_link_symmetric(self):
        _, network, _ = make_network(2)
        network.connect("n0", "n1")
        assert network.are_connected("n1", "n0")

    def test_disconnect(self):
        _, network, _ = make_network(2)
        network.connect("n0", "n1")
        network.disconnect("n0", "n1")
        assert not network.are_connected("n0", "n1")


class TestDelivery:
    def test_packet_delivered_after_latency(self):
        sim, network, nodes = make_network(
            2, latency=LatencyModel(base_seconds=0.5)
        )
        network.connect("n0", "n1")
        assert network.send("n0", "n1", "hello")
        assert nodes[1].received == []
        sim.run()
        assert nodes[1].received == [("n0", "hello")]
        assert sim.now == 0.5

    def test_send_without_link_fails_softly(self):
        sim, network, nodes = make_network(2)
        assert not network.send("n0", "n1", "x")
        sim.run()
        assert nodes[1].received == []
        assert network.metrics.counter("net.send_no_link") == 1

    def test_lossy_link_drops(self):
        sim, network, nodes = make_network(
            2, latency=LatencyModel(loss_probability=1.0)
        )
        network.connect("n0", "n1")
        assert not network.send("n0", "n1", "x")
        sim.run()
        assert nodes[1].received == []
        assert network.metrics.counter("net.packets_lost") == 1

    def test_churned_receiver_dead_letters(self):
        sim, network, nodes = make_network(2)
        network.connect("n0", "n1")
        network.send("n0", "n1", "x")
        network.detach("n1")
        sim.run()
        assert network.metrics.counter("net.packets_dead_lettered") == 1

    def test_broadcast_counts(self):
        sim, network, nodes = make_network(4)
        network.connect("n0", "n1")
        network.connect("n0", "n2")
        sent = network.broadcast("n0", ["n1", "n2", "n3"], "y")
        assert sent == 2


class TestTopologies:
    def _network(self, n):
        sim = Simulator(seed=2)
        network = Network(simulator=sim)
        ids = []
        for i in range(n):
            node = Recorder(f"p{i}")
            network.attach(node)
            ids.append(node.node_id)
        return network, ids

    def test_random_regular_degree(self):
        network, ids = self._network(20)
        connect_random_regular(network, ids, degree=4, seed=1)
        assert all(len(network.neighbors(i)) == 4 for i in ids)
        assert average_degree(network) == 4

    def test_random_regular_parity_check(self):
        network, ids = self._network(5)
        with pytest.raises(NetworkError):
            connect_random_regular(network, ids, degree=3)

    def test_random_regular_needs_enough_nodes(self):
        network, ids = self._network(3)
        with pytest.raises(NetworkError):
            connect_random_regular(network, ids, degree=4)

    def test_small_world_connected(self):
        network, ids = self._network(30)
        connect_small_world(network, ids, k=4, rewire_probability=0.2, seed=3)
        assert diameter(network) >= 1

    def test_erdos_renyi_connected(self):
        network, ids = self._network(25)
        connect_erdos_renyi(network, ids, edge_probability=0.2, seed=4)
        assert diameter(network) >= 1

    def test_full_mesh(self):
        network, ids = self._network(5)
        edges = connect_full_mesh(network, ids)
        assert edges == 10
        assert diameter(network) == 1

    def test_diameter_of_disconnected_raises(self):
        network, ids = self._network(4)
        network.connect(ids[0], ids[1])
        with pytest.raises(NetworkError):
            diameter(network)
