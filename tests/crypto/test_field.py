"""Unit and property tests for BN254 scalar-field arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.field import Fr, fr_product, fr_sum
from repro.errors import FieldError, SerializationError

field_elements = st.integers(min_value=0, max_value=Fr.MODULUS - 1).map(Fr)


class TestConstruction:
    def test_zero_and_one(self):
        assert Fr.zero().value == 0
        assert Fr.one().value == 1

    def test_reduction_on_construction(self):
        assert Fr(Fr.MODULUS).value == 0
        assert Fr(Fr.MODULUS + 5).value == 5

    def test_negative_input_wraps(self):
        assert Fr(-1).value == Fr.MODULUS - 1

    def test_copy_construction(self):
        a = Fr(42)
        assert Fr(a) == a

    def test_rejects_non_numeric(self):
        with pytest.raises(FieldError):
            Fr("nope")  # type: ignore[arg-type]


class TestArithmetic:
    def test_add_sub_roundtrip(self):
        a, b = Fr(123), Fr(456)
        assert (a + b) - b == a

    def test_int_operands(self):
        assert Fr(5) + 3 == Fr(8)
        assert 3 + Fr(5) == Fr(8)
        assert 10 - Fr(4) == Fr(6)
        assert Fr(4) * 3 == Fr(12)

    def test_negation(self):
        assert -Fr(7) + Fr(7) == Fr.zero()

    def test_pow(self):
        assert Fr(3) ** 4 == Fr(81)
        assert Fr(3) ** 0 == Fr.one()

    def test_negative_pow_is_inverse_pow(self):
        a = Fr(17)
        assert a ** -2 == (a.inverse()) ** 2

    def test_division(self):
        a, b = Fr(123456), Fr(789)
        assert (a / b) * b == a
        assert 1 / Fr(7) == Fr(7).inverse()

    def test_inverse_of_zero_raises(self):
        with pytest.raises(FieldError):
            Fr.zero().inverse()

    def test_division_by_zero_raises(self):
        with pytest.raises(FieldError):
            Fr(3) / Fr(0)


class TestSerialization:
    def test_roundtrip(self):
        a = Fr(2**200 + 12345)
        assert Fr.from_bytes(a.to_bytes()) == a

    def test_encoding_is_32_bytes(self):
        assert len(Fr(1).to_bytes()) == 32

    def test_wrong_length_rejected(self):
        with pytest.raises(SerializationError):
            Fr.from_bytes(b"\x01" * 31)

    def test_non_canonical_rejected(self):
        data = (Fr.MODULUS).to_bytes(32, "big")
        with pytest.raises(SerializationError):
            Fr.from_bytes(data)

    def test_reduce_bytes_never_fails(self):
        assert isinstance(Fr.reduce_bytes(b"\xff" * 32), Fr)


class TestComparison:
    def test_eq_with_int(self):
        assert Fr(5) == 5
        assert Fr(5) == 5 + Fr.MODULUS

    def test_hashable(self):
        assert len({Fr(1), Fr(1), Fr(2)}) == 2

    def test_int_conversion(self):
        assert int(Fr(9)) == 9


class TestAggregates:
    def test_fr_sum(self):
        assert fr_sum([Fr(1), 2, Fr(3)]) == Fr(6)
        assert fr_sum([]) == Fr.zero()

    def test_fr_product(self):
        assert fr_product([Fr(2), 3, Fr(4)]) == Fr(24)
        assert fr_product([]) == Fr.one()


class TestFieldAxioms:
    @given(field_elements, field_elements, field_elements)
    def test_add_associative(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(field_elements, field_elements)
    def test_add_commutative(self, a, b):
        assert a + b == b + a

    @given(field_elements, field_elements, field_elements)
    def test_mul_distributes(self, a, b, c):
        assert a * (b + c) == a * b + a * c

    @given(field_elements)
    def test_additive_inverse(self, a):
        assert a + (-a) == Fr.zero()

    @given(field_elements)
    def test_multiplicative_inverse(self, a):
        if not a.is_zero():
            assert a * a.inverse() == Fr.one()

    @given(field_elements)
    def test_serialization_roundtrip(self, a):
        assert Fr.from_bytes(a.to_bytes()) == a

    @given(field_elements)
    def test_fermat_little_theorem(self, a):
        if not a.is_zero():
            assert a ** (Fr.MODULUS - 1) == Fr.one()
