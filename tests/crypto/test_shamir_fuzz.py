"""Fuzz tests for Shamir share recovery on the RLN rate-limit line.

Random secrets and epochs: two distinct shares always determine the
exact secret; one share (or two copies of it) never does.
"""

from __future__ import annotations

import random

import pytest

from repro.constants import BN254_SCALAR_FIELD
from repro.crypto.field import Fr
from repro.crypto.shamir import (
    Share,
    evaluate_polynomial,
    make_shares,
    reconstruct_secret,
    recover_secret_from_double_signal,
    rln_line_coefficient,
    rln_share,
)
from repro.errors import ShamirError


def random_fr(rng: random.Random) -> Fr:
    return Fr(rng.randrange(1, BN254_SCALAR_FIELD))


@pytest.mark.parametrize("seed", range(20))
def test_two_distinct_shares_recover_exact_secret(seed):
    rng = random.Random(seed)
    secret = random_fr(rng)
    ext = random_fr(rng)
    x1, x2 = random_fr(rng), random_fr(rng)
    if x1 == x2:  # astronomically unlikely; regenerate deterministically
        x2 = x2 + Fr.one()
    share_a = rln_share(secret, ext, x1)
    share_b = rln_share(secret, ext, x2)
    assert recover_secret_from_double_signal(share_a, share_b) == secret
    # Order of shares is irrelevant.
    assert recover_secret_from_double_signal(share_b, share_a) == secret


@pytest.mark.parametrize("seed", range(10))
def test_identical_share_abscissae_never_recover(seed):
    rng = random.Random(100 + seed)
    secret, ext, x = random_fr(rng), random_fr(rng), random_fr(rng)
    share = rln_share(secret, ext, x)
    with pytest.raises(ShamirError):
        recover_secret_from_double_signal(share, share)
    # Same x with a tampered y is still refused: not a double-signal.
    with pytest.raises(ShamirError):
        recover_secret_from_double_signal(
            share, Share(x=share.x, y=share.y + Fr.one())
        )


@pytest.mark.parametrize("seed", range(10))
def test_one_share_is_consistent_with_any_candidate_secret(seed):
    """Perfect secrecy at threshold 2, concretely: for any candidate
    secret there is a slope making one observed share consistent with
    it — so a single share pins down nothing."""
    rng = random.Random(200 + seed)
    secret, ext, x = random_fr(rng), random_fr(rng), random_fr(rng)
    observed = rln_share(secret, ext, x)
    for _ in range(10):
        candidate = random_fr(rng)
        slope = (observed.y - candidate) / observed.x
        assert evaluate_polynomial([candidate, slope], observed.x) == observed.y


@pytest.mark.parametrize("seed", range(10))
def test_wrong_second_point_recovers_wrong_secret(seed):
    """A forged second share yields garbage, not the member's secret."""
    rng = random.Random(300 + seed)
    secret, ext = random_fr(rng), random_fr(rng)
    genuine = rln_share(secret, ext, random_fr(rng))
    forged = Share(x=genuine.x + Fr.one(), y=random_fr(rng))
    recovered = recover_secret_from_double_signal(genuine, forged)
    assert recovered != secret


@pytest.mark.parametrize("seed", range(5))
def test_general_k_of_n_reconstruction(seed):
    rng = random.Random(400 + seed)
    k = rng.randint(2, 5)
    secret = random_fr(rng)
    coefficients = [random_fr(rng) for _ in range(k - 1)]
    xs = []
    while len(xs) < k + 3:
        x = random_fr(rng)
        if x not in xs:
            xs.append(x)
    shares = make_shares(secret, coefficients, xs)
    subset = rng.sample(shares, k)
    assert reconstruct_secret(subset) == secret


def test_share_at_zero_refused():
    with pytest.raises(ShamirError):
        make_shares(Fr(5), [Fr(3)], [Fr.zero()])


def test_rln_slope_is_epoch_bound():
    secret = Fr(1234)
    assert rln_line_coefficient(secret, Fr(1)) != rln_line_coefficient(
        secret, Fr(2)
    )
