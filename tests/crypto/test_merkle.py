"""Tests for the full and frontier Merkle trees."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.field import Fr
from repro.crypto.hashing import hash2
from repro.crypto.merkle import MerkleTree, zero_hashes
from repro.crypto.merkle_optimized import FrontierMerkleTree
from repro.errors import MerkleError

leaves_strategy = st.lists(
    st.integers(min_value=1, max_value=2**128).map(Fr), min_size=0, max_size=16
)


class TestZeroHashes:
    def test_length(self):
        assert len(zero_hashes(5)) == 6

    def test_recurrence(self):
        zeros = zero_hashes(3)
        assert zeros[0] == Fr.zero()
        assert zeros[1] == hash2(Fr.zero(), Fr.zero())
        assert zeros[2] == hash2(zeros[1], zeros[1])

    def test_cached_per_backend(self):
        from repro.crypto.hashing import set_hash_backend
        from repro.crypto.merkle import zero_hashes_int

        blake = zero_hashes_int(4)
        assert zero_hashes_int(4) is blake  # same immutable table
        set_hash_backend("poseidon")
        poseidon = zero_hashes_int(4)
        assert poseidon != blake  # backend-keyed, no stale reuse
        assert zero_hashes_int(4) is poseidon
        set_hash_backend("blake2b")
        assert zero_hashes_int(4) is blake


class TestMerkleTree:
    def test_empty_root_is_zero_subtree(self):
        tree = MerkleTree(4)
        assert tree.root == zero_hashes(4)[4]

    def test_insert_changes_root(self):
        tree = MerkleTree(4)
        empty_root = tree.root
        tree.insert(Fr(42))
        assert tree.root != empty_root

    def test_insert_returns_sequential_indices(self):
        tree = MerkleTree(4)
        assert [tree.insert(Fr(i + 1)) for i in range(5)] == list(range(5))

    def test_capacity_enforced(self):
        tree = MerkleTree(2)
        for i in range(4):
            tree.insert(Fr(i + 1))
        with pytest.raises(MerkleError):
            tree.insert(Fr(99))

    def test_leaf_read_back(self):
        tree = MerkleTree(3)
        tree.insert(Fr(7))
        assert tree.leaf(0) == Fr(7)

    def test_update_and_delete(self):
        tree = MerkleTree(3)
        tree.insert(Fr(7))
        root_before = tree.root
        tree.update(0, Fr(8))
        assert tree.leaf(0) == Fr(8)
        assert tree.root != root_before
        tree.delete(0)
        assert tree.leaf(0) == Fr.zero()

    def test_update_unassigned_slot_rejected(self):
        tree = MerkleTree(3)
        with pytest.raises(MerkleError):
            tree.update(0, Fr(1))

    def test_index_out_of_range(self):
        tree = MerkleTree(3)
        with pytest.raises(MerkleError):
            tree.leaf(8)
        with pytest.raises(MerkleError):
            tree.proof(-1)

    def test_min_depth_validation(self):
        with pytest.raises(MerkleError):
            MerkleTree(0)

    def test_find_leaf(self):
        tree = MerkleTree(3)
        tree.insert(Fr(5))
        tree.insert(Fr(6))
        assert tree.find_leaf(Fr(6)) == 1
        assert tree.find_leaf(Fr(99)) is None

    def test_find_leaf_first_occurrence_wins(self):
        tree = MerkleTree(3)
        tree.insert(Fr(7))
        tree.insert(Fr(7))
        assert tree.find_leaf(Fr(7)) == 0
        tree.delete(0)
        assert tree.find_leaf(Fr(7)) == 1
        assert tree.find_leaf(Fr.zero()) == 0  # explicit zeroed slot

    def test_find_leaf_tracks_updates(self):
        tree = MerkleTree(3)
        tree.insert(Fr(1))
        tree.insert(Fr(2))
        tree.update(0, Fr(3))
        assert tree.find_leaf(Fr(1)) is None
        assert tree.find_leaf(Fr(3)) == 0
        # Updating slot 1 to an existing value keeps lowest-index-first.
        tree.update(1, Fr(3))
        assert tree.find_leaf(Fr(3)) == 0
        tree.update(0, Fr(9))
        assert tree.find_leaf(Fr(3)) == 1

    def test_clone_index_is_independent(self):
        tree = MerkleTree(3)
        tree.insert(Fr(5))
        twin = tree.clone()
        twin.update(0, Fr(6))
        assert tree.find_leaf(Fr(5)) == 0
        assert twin.find_leaf(Fr(5)) is None
        assert twin.find_leaf(Fr(6)) == 0
        assert tree.root != twin.root

    def test_leaves_in_insertion_order(self):
        tree = MerkleTree(3)
        values = [Fr(3), Fr(1), Fr(2)]
        for v in values:
            tree.insert(v)
        assert list(tree.leaves()) == values

    def test_storage_grows_with_inserts(self):
        tree = MerkleTree(8)
        before = tree.storage_bytes()
        tree.insert(Fr(1))
        assert tree.storage_bytes() > before

    def test_full_storage_formula(self):
        tree = MerkleTree(20)
        # (2^21 - 1) nodes * 32 B each = the paper's ~67 MB (decimal) figure.
        assert tree.full_storage_bytes() == 32 * (2**21 - 1)
        assert tree.full_storage_bytes() == pytest.approx(67e6, rel=0.01)


class TestMerkleProof:
    def test_proof_verifies(self):
        tree = MerkleTree(5)
        for i in range(7):
            tree.insert(Fr(100 + i))
        for i in range(7):
            proof = tree.proof(i)
            assert proof.verify(tree.root)
            assert proof.leaf == Fr(100 + i)

    def test_proof_fails_against_other_root(self):
        tree = MerkleTree(5)
        tree.insert(Fr(1))
        proof = tree.proof(0)
        tree.insert(Fr(2))
        assert not proof.verify(tree.root)

    def test_tampered_sibling_fails(self):
        tree = MerkleTree(4)
        tree.insert(Fr(1))
        tree.insert(Fr(2))
        proof = tree.proof(0)
        bad = proof.__class__(
            leaf=proof.leaf,
            leaf_index=proof.leaf_index,
            siblings=(proof.siblings[0] + Fr(1),) + proof.siblings[1:],
            path_bits=proof.path_bits,
        )
        assert not bad.verify(tree.root)

    def test_path_bits_match_index(self):
        tree = MerkleTree(4)
        for i in range(6):
            tree.insert(Fr(i + 1))
        proof = tree.proof(5)
        assert proof.path_bits == (1, 0, 1, 0)  # 5 = 0b0101, LSB first

    def test_proof_for_unset_leaf_verifies(self):
        tree = MerkleTree(4)
        tree.insert(Fr(9))
        proof = tree.proof(0)
        tree2 = MerkleTree(4)
        tree2.insert(Fr(9))
        assert proof.verify(tree2.root)


class TestFrontierEquivalence:
    def test_empty_roots_match(self):
        assert FrontierMerkleTree(6).root == MerkleTree(6).root

    @settings(max_examples=25, deadline=None)
    @given(leaves_strategy)
    def test_roots_match_full_tree(self, leaves):
        full = MerkleTree(5)
        frontier = FrontierMerkleTree(5)
        for leaf in leaves:
            full.insert(leaf)
            frontier.insert(leaf)
            assert frontier.root == full.root
        assert frontier.leaf_count == full.leaf_count

    def test_capacity_enforced(self):
        frontier = FrontierMerkleTree(2)
        for i in range(4):
            frontier.insert(Fr(i + 1))
        with pytest.raises(MerkleError):
            frontier.insert(Fr(5))

    def test_storage_is_constant_in_members(self):
        frontier = FrontierMerkleTree(20)
        empty_storage = frontier.storage_bytes()
        for i in range(50):
            frontier.insert(Fr(i + 1))
        assert frontier.storage_bytes() == empty_storage
        # depth 20 -> 21 words * 32 B = 672 B, the paper's "0.1 KB scale".
        assert frontier.storage_bytes() == 32 * 21

    def test_storage_ratio_vs_full_tree_is_five_orders(self):
        frontier = FrontierMerkleTree(20)
        full = MerkleTree(20)
        ratio = full.full_storage_bytes() / frontier.storage_bytes()
        assert ratio > 10**4  # the paper's "67 MB -> 0.1 KB" scale
