"""Tests for the Poseidon permutation and hash."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.field import Fr
from repro.crypto.poseidon import (
    FULL_ROUNDS,
    PARTIAL_ROUNDS,
    poseidon_hash,
    poseidon_hash1,
    poseidon_hash2,
    poseidon_parameters,
    poseidon_permutation,
)
from repro.errors import FieldError

small_fr = st.integers(min_value=0, max_value=2**64).map(Fr)


class TestParameters:
    def test_round_counts_match_circomlib_schedule(self):
        assert poseidon_parameters(2).partial_rounds == PARTIAL_ROUNDS[2] == 56
        assert poseidon_parameters(3).partial_rounds == PARTIAL_ROUNDS[3] == 57
        assert poseidon_parameters(3).full_rounds == FULL_ROUNDS == 8

    def test_constant_count(self):
        params = poseidon_parameters(3)
        assert len(params.round_constants) == params.total_rounds * 3

    def test_mds_is_square_and_nonzero(self):
        params = poseidon_parameters(3)
        assert len(params.mds) == 3
        assert all(len(row) == 3 for row in params.mds)
        assert all(not entry.is_zero() for row in params.mds for entry in row)

    def test_parameters_deterministic(self):
        assert poseidon_parameters(3) is poseidon_parameters(3)

    def test_unsupported_width_rejected(self):
        with pytest.raises(FieldError):
            poseidon_parameters(17)

    def test_mds_rows_distinct(self):
        params = poseidon_parameters(3)
        rows = {tuple(int(c) for c in row) for row in params.mds}
        assert len(rows) == 3

    def test_int_parameters_cached_and_consistent(self):
        from repro.crypto.poseidon import poseidon_parameters_int

        constants, mds = poseidon_parameters_int(3)
        assert poseidon_parameters_int(3) is poseidon_parameters_int(3)
        params = poseidon_parameters(3)
        assert constants == tuple(int(c) for c in params.round_constants)
        assert mds == tuple(
            tuple(int(c) for c in row) for row in params.mds
        )


class TestPermutation:
    def test_deterministic(self):
        state = [Fr(1), Fr(2), Fr(3)]
        assert poseidon_permutation(state) == poseidon_permutation(state)

    def test_changes_state(self):
        state = [Fr(0), Fr(0), Fr(0)]
        assert poseidon_permutation(state) != state

    def test_input_sensitivity(self):
        a = poseidon_permutation([Fr(1), Fr(2), Fr(3)])
        b = poseidon_permutation([Fr(1), Fr(2), Fr(4)])
        assert a != b

    def test_width_2_and_3_differ(self):
        two = poseidon_permutation([Fr(1), Fr(2)])
        three = poseidon_permutation([Fr(1), Fr(2), Fr(0)])
        assert two[0] != three[0]

    def test_int_permutation_matches_fr_permutation(self):
        from repro.crypto.poseidon import poseidon_permutation_int

        state = [Fr(11), Fr(22), Fr(33)]
        assert poseidon_permutation(state) == [
            Fr(v) for v in poseidon_permutation_int([11, 22, 33])
        ]


class TestHash:
    def test_arity_1_and_2(self):
        assert isinstance(poseidon_hash1(Fr(5)), Fr)
        assert isinstance(poseidon_hash2(Fr(5), Fr(6)), Fr)

    def test_arity_domain_separation(self):
        # H(x) must differ from H(x, 0): the sponge domain tag encodes arity.
        assert poseidon_hash1(Fr(5)) != poseidon_hash2(Fr(5), Fr(0))

    def test_order_matters(self):
        assert poseidon_hash2(Fr(1), Fr(2)) != poseidon_hash2(Fr(2), Fr(1))

    def test_rejects_bad_arity(self):
        with pytest.raises(FieldError):
            poseidon_hash([Fr(1), Fr(2), Fr(3)])
        with pytest.raises(FieldError):
            poseidon_hash([])

    @settings(max_examples=20)
    @given(small_fr, small_fr)
    def test_no_trivial_collisions(self, a, b):
        if a != b:
            assert poseidon_hash1(a) != poseidon_hash1(b)

    @settings(max_examples=10)
    @given(small_fr)
    def test_output_in_field(self, a):
        digest = poseidon_hash1(a)
        assert 0 <= int(digest) < Fr.MODULUS
