"""Tests for Shamir sharing and the RLN rate-limit line."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.field import Fr
from repro.crypto.shamir import (
    Share,
    evaluate_polynomial,
    make_shares,
    reconstruct_secret,
    recover_secret_from_double_signal,
    rln_line_coefficient,
    rln_share,
)
from repro.errors import ShamirError

fr_values = st.integers(min_value=0, max_value=Fr.MODULUS - 1).map(Fr)
nonzero_fr = st.integers(min_value=1, max_value=Fr.MODULUS - 1).map(Fr)


class TestPolynomial:
    def test_constant(self):
        assert evaluate_polynomial([Fr(7)], Fr(100)) == Fr(7)

    def test_line(self):
        # 3 + 2x at x=5 -> 13
        assert evaluate_polynomial([Fr(3), Fr(2)], Fr(5)) == Fr(13)

    def test_quadratic(self):
        # 1 + 2x + 3x^2 at x=2 -> 17
        assert evaluate_polynomial([Fr(1), Fr(2), Fr(3)], Fr(2)) == Fr(17)

    def test_empty_polynomial_is_zero(self):
        assert evaluate_polynomial([], Fr(9)) == Fr.zero()


class TestSharing:
    def test_two_of_two_reconstruction(self):
        secret = Fr(123456789)
        shares = make_shares(secret, [Fr(42)], [Fr(1), Fr(2)])
        assert reconstruct_secret(shares) == secret

    def test_three_of_three_reconstruction(self):
        secret = Fr(555)
        shares = make_shares(secret, [Fr(7), Fr(11)], [Fr(1), Fr(2), Fr(3)])
        assert reconstruct_secret(shares) == secret

    def test_share_at_zero_rejected(self):
        with pytest.raises(ShamirError):
            make_shares(Fr(1), [Fr(2)], [Fr.zero()])

    def test_single_share_rejected(self):
        with pytest.raises(ShamirError):
            reconstruct_secret([Share(Fr(1), Fr(2))])

    def test_duplicate_x_rejected(self):
        shares = [Share(Fr(1), Fr(2)), Share(Fr(1), Fr(3))]
        with pytest.raises(ShamirError):
            reconstruct_secret(shares)

    def test_one_share_is_not_the_secret(self):
        # Perfect secrecy sanity check: the share value differs from sk
        # for a non-degenerate line.
        secret = Fr(99)
        share = make_shares(secret, [Fr(1)], [Fr(5)])[0]
        assert share.y != secret

    @settings(max_examples=30)
    @given(fr_values, nonzero_fr, nonzero_fr, nonzero_fr)
    def test_reconstruction_property(self, secret, a1, x1, x2):
        if x1 == x2:
            return
        shares = make_shares(secret, [a1], [x1, x2])
        assert reconstruct_secret(shares) == secret


class TestRlnLine:
    def test_coefficient_binds_epoch(self):
        sk = Fr(1234)
        assert rln_line_coefficient(sk, Fr(1)) != rln_line_coefficient(sk, Fr(2))

    def test_coefficient_binds_secret(self):
        e = Fr(10)
        assert rln_line_coefficient(Fr(1), e) != rln_line_coefficient(Fr(2), e)

    def test_double_signal_recovers_secret(self):
        sk, e = Fr(777), Fr(42)
        share_a = rln_share(sk, e, Fr(1001))
        share_b = rln_share(sk, e, Fr(2002))
        assert recover_secret_from_double_signal(share_a, share_b) == sk

    def test_duplicate_signal_does_not_slash(self):
        sk, e = Fr(777), Fr(42)
        share = rln_share(sk, e, Fr(1001))
        with pytest.raises(ShamirError):
            recover_secret_from_double_signal(share, share)

    def test_cross_epoch_shares_do_not_recover(self):
        sk = Fr(777)
        share_a = rln_share(sk, Fr(1), Fr(1001))
        share_b = rln_share(sk, Fr(2), Fr(2002))
        # Shares from different epochs lie on different lines; naive
        # interpolation yields garbage, not sk.
        recovered = recover_secret_from_double_signal(share_a, share_b)
        assert recovered != sk

    @settings(max_examples=30)
    @given(fr_values, fr_values, nonzero_fr, nonzero_fr)
    def test_rln_recovery_property(self, sk, epoch, x1, x2):
        if x1 == x2:
            return
        share_a = rln_share(sk, epoch, x1)
        share_b = rln_share(sk, epoch, x2)
        assert recover_secret_from_double_signal(share_a, share_b) == sk
