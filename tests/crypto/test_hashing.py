"""Tests for hash-backend selection and byte hashing."""

import pytest

from repro.crypto.field import Fr
from repro.crypto.hashing import (
    available_backends,
    blake2b_field_hash,
    get_hash_backend,
    hash1,
    hash2,
    hash_bytes_to_field,
    set_hash_backend,
)
from repro.crypto.poseidon import poseidon_hash1, poseidon_hash2
from repro.errors import FieldError


class TestBackendRegistry:
    def test_both_backends_registered(self):
        assert set(available_backends()) == {"blake2b", "poseidon"}

    def test_default_backend(self):
        assert get_hash_backend() == "blake2b"

    def test_switch_and_restore(self):
        set_hash_backend("poseidon")
        assert get_hash_backend() == "poseidon"
        set_hash_backend("blake2b")
        assert get_hash_backend() == "blake2b"

    def test_unknown_backend_rejected(self):
        with pytest.raises(FieldError):
            set_hash_backend("md5")

    def test_poseidon_backend_dispatches_to_poseidon(self, poseidon_backend):
        assert hash1(Fr(7)) == poseidon_hash1(Fr(7))
        assert hash2(Fr(7), Fr(8)) == poseidon_hash2(Fr(7), Fr(8))

    def test_backends_disagree(self):
        blake = blake2b_field_hash([Fr(7)])
        assert blake != poseidon_hash1(Fr(7))


class TestIntNativeFastPath:
    def test_int_path_matches_fr_path_blake2b(self):
        from repro.crypto.hashing import hash1_int, hash2_int

        assert hash1(Fr(7)) == Fr(hash1_int(7))
        assert hash2(Fr(7), Fr(8)) == Fr(hash2_int(7, 8))

    def test_int_path_matches_fr_path_poseidon(self, poseidon_backend):
        from repro.crypto.hashing import hash1_int, hash2_int

        assert hash1(Fr(7)) == Fr(hash1_int(7))
        assert hash2(Fr(7), Fr(8)) == Fr(hash2_int(7, 8))

    def test_int_path_follows_backend_switch(self):
        from repro.crypto.hashing import hash2_int

        blake = hash2_int(1, 2)
        set_hash_backend("poseidon")
        assert hash2_int(1, 2) != blake
        set_hash_backend("blake2b")
        assert hash2_int(1, 2) == blake

    def test_hash_call_counter_is_monotonic(self):
        from repro.crypto.hashing import hash2_int, hash_call_count

        before = hash_call_count()
        hash2_int(1, 2)
        hash1(Fr(3))
        assert hash_call_count() == before + 2


class TestBlake2bFieldHash:
    def test_deterministic(self):
        assert blake2b_field_hash([Fr(1), Fr(2)]) == blake2b_field_hash(
            [Fr(1), Fr(2)]
        )

    def test_arity_separation(self):
        assert blake2b_field_hash([Fr(1)]) != blake2b_field_hash([Fr(1), Fr(0)])

    def test_bad_arity_rejected(self):
        with pytest.raises(FieldError):
            blake2b_field_hash([Fr(1), Fr(2), Fr(3)])


class TestBytesToField:
    def test_deterministic(self):
        assert hash_bytes_to_field(b"hello") == hash_bytes_to_field(b"hello")

    def test_content_sensitivity(self):
        assert hash_bytes_to_field(b"hello") != hash_bytes_to_field(b"hellp")

    def test_domain_separation(self):
        assert hash_bytes_to_field(b"x", "a") != hash_bytes_to_field(b"x", "b")

    def test_empty_message_ok(self):
        assert isinstance(hash_bytes_to_field(b""), Fr)
