"""Tree-of-trees registry: root-equivalence with the flat tree.

The sharded canonical tree exists only because it is *provably the
same tree* as a flat canonical tree at matched capacity: every root,
every historical root, every proof and every leaf lookup must agree
under any interleaving of registrations and slashes — including the
compacted genesis-batch path. These tests drive flat and sharded
registries through identical event scripts and compare everything.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.field import Fr
from repro.crypto.hashing import hash_call_count
from repro.crypto.keys import MembershipKeyPair
from repro.crypto.merkle import MerkleTree
from repro.crypto.merkle_forest import CanonicalShardedTree, TwoLevelProof
from repro.crypto.merkle_shared import CanonicalMerkleTree
from repro.errors import MerkleError
from repro.rln.membership import LocalGroup, MembershipStore

DEPTH = 6


def _commitments(n: int, seed: int = 3):
    rng = random.Random(seed)
    return [MembershipKeyPair.generate(rng).commitment for _ in range(n)]


def _triple(sub_depth: int, depth: int = DEPTH):
    """(sharded replica, flat replica, independent replica)."""
    sharded = MembershipStore(depth=depth, sub_depth=sub_depth)
    flat = MembershipStore(depth=depth)
    return (
        sharded.local_group(),
        flat.local_group(),
        LocalGroup(depth),
    )


def _assert_groups_equal(a: LocalGroup, b: LocalGroup):
    assert a.root == b.root
    assert a.recent_roots() == b.recent_roots()
    assert a.member_count == b.member_count


class TestShardedFlatEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        actions=st.lists(
            st.sampled_from(["register", "slash"]), min_size=1, max_size=40
        ),
        sub_depth=st.integers(min_value=1, max_value=DEPTH - 1),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_random_interleavings(self, actions, sub_depth, seed):
        rng = random.Random(seed)
        sharded, flat, independent = _triple(sub_depth)
        pool = _commitments(40, seed=11)
        members = []  # (commitment, index) still in the tree
        event = 0
        for action in actions:
            if action == "register" and pool:
                commitment = pool.pop()
                index = sharded.apply_registration(commitment, event)
                assert flat.apply_registration(commitment, event) == index
                assert (
                    independent.apply_registration(commitment, event)
                    == index
                )
                members.append((commitment, index))
            elif action == "slash" and members:
                _, index = members.pop(rng.randrange(len(members)))
                sharded.apply_removal(index, event)
                flat.apply_removal(index, event)
                independent.apply_removal(index, event)
            else:
                continue
            event += 1
            _assert_groups_equal(sharded, flat)
            _assert_groups_equal(sharded, independent)
        for commitment, index in members:
            assert sharded.index_of(commitment) == index
            proof = sharded.merkle_proof(index)
            assert proof.verify(flat.root)
            assert proof.siblings == flat.merkle_proof(index).siblings
            two_level = sharded.two_level_proof(index)
            assert two_level.verify(sharded.root)
            assert two_level.flatten().siblings == proof.siblings

    def test_node_level_equality_with_flat_tree(self):
        """Not just the root: every interior node matches the flat tree."""
        sharded = CanonicalShardedTree(5, 2)
        flat = CanonicalMerkleTree(5)
        for value in range(1, 23):
            sharded.apply(("insert", value))
            flat.apply(("insert", value))
        version = sharded.version
        for height in range(0, 6):
            for index in range(2 ** (5 - height)):
                assert sharded.node_at(height, index, version) == (
                    flat.node_at(height, index, version)
                ), (height, index)

    def test_sub_depth_validation(self):
        with pytest.raises(MerkleError):
            CanonicalShardedTree(4, 0)
        with pytest.raises(MerkleError):
            CanonicalShardedTree(4, 4)
        with pytest.raises(ValueError):
            MembershipStore(depth=4, sub_depth=5)
        with pytest.raises(ValueError):
            MembershipStore(depth=4, sub_depth=0)


class TestGenesisBatch:
    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=60),
        window=st.integers(min_value=1, max_value=12),
        sub_depth=st.integers(min_value=1, max_value=DEPTH - 1),
    )
    def test_batch_matches_one_by_one(self, n, window, sub_depth):
        commitments = _commitments(n, seed=n)
        batch = MembershipStore(
            depth=DEPTH, root_window=window, sub_depth=sub_depth
        ).local_group()
        serial = MembershipStore(
            depth=DEPTH, root_window=window, sub_depth=sub_depth
        ).local_group()
        flat = MembershipStore(
            depth=DEPTH, root_window=window
        ).local_group()
        batch.apply_registration_batch(commitments, event_index=0)
        for event, commitment in enumerate(commitments):
            serial.apply_registration(commitment, event)
            flat.apply_registration(commitment, event)
        # The compacted batch must be observationally identical: same
        # root AND the same acceptance window of historical roots.
        assert batch.root == serial.root == flat.root
        assert batch.recent_roots() == serial.recent_roots()
        assert batch.recent_roots() == flat.recent_roots()
        assert batch.member_count == n

    def test_genesis_batch_hashes_o1_per_leaf(self):
        n = 2**DEPTH
        values = [c.element._value for c in _commitments(n, seed=5)]
        tree = CanonicalShardedTree(DEPTH, 3)
        before = hash_call_count()
        tree.apply_batch(values, roots_tail=1)
        spent = hash_call_count() - before
        # Bottom-up fold: ~1 hash per leaf (one per interior node),
        # against DEPTH per leaf on the journaled path.
        assert spent < 2 * n
        assert spent < DEPTH * n / 2

    def test_compacted_versions_are_unreadable(self):
        tree = CanonicalShardedTree(DEPTH, 2)
        tree.apply_batch(list(range(1, 41)), roots_tail=4)
        gv = tree.genesis_version
        assert gv == 36
        assert tree.root_at(0) == tree.node_at(DEPTH, 0, 0)
        for version in (1, gv // 2, gv - 1):
            with pytest.raises(MerkleError):
                tree.root_at(version)
            with pytest.raises(MerkleError):
                tree.find_leaf_at(1, version)
        # Versions from the genesis point onward read normally.
        for version in range(gv, tree.version + 1):
            assert tree.leaf_count_at(version) == version
        # Events before the genesis point reconstruct as inserts.
        for version in range(gv):
            kind, value = tree.event_at(version)
            assert kind == "insert"
            assert value == tree.node_at(0, version, tree.version)

    def test_batch_after_genesis_takes_journaled_path(self):
        tree = CanonicalShardedTree(DEPTH, 2)
        tree.apply_batch(list(range(1, 11)), roots_tail=2)
        gv = tree.genesis_version
        tree.apply_batch(list(range(11, 21)), roots_tail=2)
        # Second batch is post-genesis: every version is journaled.
        assert tree.genesis_version == gv
        for version in range(gv, tree.version + 1):
            tree.root_at(version)

    def test_replica_dedups_genesis_batch(self):
        store = MembershipStore(depth=DEPTH, sub_depth=2)
        commitments = _commitments(30, seed=9)
        first = store.local_group()
        second = store.local_group()
        first.apply_registration_batch(commitments, event_index=0)
        before = hash_call_count()
        second.apply_registration_batch(commitments, event_index=0)
        assert hash_call_count() == before  # pure pointer advance
        _assert_groups_equal(first, second)
        assert store.stats()["events_deduped"] >= 30

    def test_slash_of_genesis_member_after_compaction(self):
        sharded = MembershipStore(depth=DEPTH, sub_depth=3).local_group()
        flat = LocalGroup(DEPTH)
        commitments = _commitments(25, seed=13)
        sharded.apply_registration_batch(commitments, event_index=0)
        for event, commitment in enumerate(commitments):
            flat.apply_registration(commitment, event)
        victim = commitments[4]
        index = sharded.index_of(victim)
        assert index == flat.index_of(victim) == 4
        # The batch counted as ONE contract event for the sharded
        # replica; the one-by-one flat replica consumed 25.
        sharded.apply_removal(index, 1)
        flat.apply_removal(index, 25)
        _assert_groups_equal(sharded, flat)
        assert not sharded.contains(victim)


class TestTwoLevelProof:
    def test_split_and_flatten_roundtrip(self):
        group = MembershipStore(depth=DEPTH, sub_depth=4).local_group()
        commitments = _commitments(20, seed=17)
        for event, commitment in enumerate(commitments):
            group.apply_registration(commitment, event)
        for index in (0, 7, 15, 19):
            flat_proof = group.merkle_proof(index)
            proof = group.two_level_proof(index)
            assert proof.sub.depth == 4
            assert proof.top.depth == DEPTH - 4
            assert proof.depth == DEPTH
            assert proof.leaf_index == index
            assert proof.sub_index == index >> 4
            assert proof.verify(group.root)
            assert proof.flatten().siblings == flat_proof.siblings
            again = TwoLevelProof.from_flat(flat_proof, 4)
            assert again == proof

    def test_sub_root_links_the_levels(self):
        group = MembershipStore(depth=DEPTH, sub_depth=2).local_group()
        for event, commitment in enumerate(_commitments(9, seed=19)):
            group.apply_registration(commitment, event)
        proof = group.two_level_proof(5)
        # The sub proof resolves to the sub-root, which is the leaf of
        # the top proof; tampering with either level breaks verify.
        assert proof.sub.verify(proof.sub_root)
        assert proof.top.verify(group.root)
        assert proof.top.leaf == proof.sub_root
        bad = TwoLevelProof(
            sub=proof.sub,
            sub_root=Fr(int(proof.sub_root) + 1),
            sub_index=proof.sub_index,
            top=proof.top,
        )
        assert not bad.verify(group.root)

    def test_flat_view_refuses_two_level_proofs(self):
        group = MembershipStore(depth=DEPTH).local_group()
        group.apply_registration(_commitments(1)[0], 0)
        with pytest.raises(MerkleError):
            group.two_level_proof(0)


class TestForkBehavior:
    def test_diverging_replica_forks_privately(self):
        store = MembershipStore(depth=DEPTH, sub_depth=2)
        commitments = _commitments(10, seed=23)
        canonical_replica = store.local_group()
        divergent = store.local_group()
        canonical_replica.apply_registration_batch(
            commitments[:8], event_index=0
        )
        divergent.apply_registration_batch(commitments[:7], event_index=0)
        # Replica 2 now applies a *different* second event (its batch
        # was contract event 0): must fork, not corrupt the canonical.
        divergent.apply_registration(commitments[9], 1)
        assert store.stats()["forks"] == 1
        assert divergent.root != canonical_replica.root
        assert divergent.member_count == canonical_replica.member_count
        # Canonical side unaffected; a third replica dedups cleanly.
        third = store.local_group()
        third.apply_registration_batch(commitments[:8], event_index=0)
        _assert_groups_equal(third, canonical_replica)

    def test_lazy_materialization_tracks_active_slice(self):
        tree = CanonicalShardedTree(8, 4)
        assert tree.materialized_subtrees == 0
        tree.apply_batch(list(range(1, 33)), roots_tail=1)
        # The genesis fold stores only leaves and sub-roots; the lone
        # journaled tail write materialized its sub-tree's interior.
        assert tree.materialized_subtrees == 1
        # The next write lands in sub-tree 2 and materializes it too;
        # the other 14 sub-trees stay as bare leaf lists.
        tree.apply(("insert", 100))
        assert tree.materialized_subtrees == 2
        assert tree.storage_bytes() > 0
