"""Tests for identity key material."""

import random

from repro.constants import KEY_SIZE_BYTES
from repro.crypto.hashing import hash1
from repro.crypto.keys import IdentityCommitment, IdentitySecret, MembershipKeyPair


class TestIdentitySecret:
    def test_generate_is_random(self):
        assert IdentitySecret.generate() != IdentitySecret.generate()

    def test_generate_deterministic_with_rng(self):
        a = IdentitySecret.generate(random.Random(7))
        b = IdentitySecret.generate(random.Random(7))
        assert a == b

    def test_commitment_is_hash_of_secret(self):
        secret = IdentitySecret.generate(random.Random(1))
        assert secret.commitment().element == hash1(secret.element)

    def test_serialization_roundtrip(self):
        secret = IdentitySecret.generate(random.Random(2))
        assert IdentitySecret.from_bytes(secret.to_bytes()) == secret

    def test_paper_key_size(self):
        secret = IdentitySecret.generate(random.Random(3))
        assert len(secret.to_bytes()) == KEY_SIZE_BYTES == 32
        assert secret.size_bytes == 32


class TestIdentityCommitment:
    def test_serialization_roundtrip(self):
        commitment = IdentitySecret.generate(random.Random(4)).commitment()
        assert IdentityCommitment.from_bytes(commitment.to_bytes()) == commitment

    def test_paper_key_size(self):
        commitment = IdentitySecret.generate(random.Random(5)).commitment()
        assert len(commitment.to_bytes()) == KEY_SIZE_BYTES == 32


class TestKeyPair:
    def test_generate_consistent(self):
        pair = MembershipKeyPair.generate(random.Random(6))
        assert pair.commitment == pair.secret.commitment()

    def test_distinct_pairs(self):
        rng = random.Random(7)
        assert MembershipKeyPair.generate(rng) != MembershipKeyPair.generate(rng)
