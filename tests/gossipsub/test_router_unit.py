"""Router unit tests via direct RPC injection (no timing involved)."""

import pytest

from repro.errors import GossipError
from repro.gossipsub.params import GossipSubParams
from repro.gossipsub.router import GossipSubRouter
from repro.gossipsub.rpc import GossipMessage, RpcPacket, compute_message_id
from repro.net.network import Network
from repro.sim.simulator import Simulator

TOPIC = "unit-topic"


@pytest.fixture
def rig():
    """Two connected routers plus a raw recorder neighbour."""
    sim = Simulator(seed=3)
    network = Network(simulator=sim)
    a = GossipSubRouter("a", network)
    b = GossipSubRouter("b", network)

    class Recorder:
        node_id = "rec"

        def __init__(self):
            self.packets = []

        def deliver(self, from_peer, packet):
            self.packets.append((from_peer, packet))

    recorder = Recorder()
    network.attach(recorder)
    network.connect("a", "b")
    network.connect("a", "rec")
    return sim, network, a, b, recorder


def make_message(payload=b"x", topic=TOPIC):
    return GossipMessage(
        msg_id=compute_message_id(topic, payload), topic=topic, payload=payload
    )


class TestDeliverValidation:
    def test_non_rpc_packet_rejected(self, rig):
        sim, network, a, b, rec = rig
        with pytest.raises(GossipError):
            a.deliver("b", b"raw bytes")

    def test_subscribe_updates_topic_peers(self, rig):
        sim, network, a, b, rec = rig
        a.deliver("b", RpcPacket(subscribe=[TOPIC]))
        assert "b" in a.topic_peers[TOPIC]
        a.deliver("b", RpcPacket(unsubscribe=[TOPIC]))
        assert "b" not in a.topic_peers[TOPIC]


class TestGraftHandling:
    def test_graft_accepted_when_subscribed(self, rig):
        sim, network, a, b, rec = rig
        a.subscribe(TOPIC)
        a.deliver("b", RpcPacket(graft=[TOPIC]))
        assert "b" in a.mesh[TOPIC]

    def test_graft_refused_when_not_subscribed(self, rig):
        sim, network, a, b, rec = rig
        a.deliver("rec", RpcPacket(graft=[TOPIC]))
        sim.run()
        # The recorder got a PRUNE back.
        assert any(
            pkt.prune and pkt.prune[0][0] == TOPIC
            for _from, pkt in rec.packets
        )

    def test_graft_during_backoff_penalised(self, rig):
        sim, network, a, b, rec = rig
        a.subscribe(TOPIC)
        a._backoff[("b", TOPIC)] = sim.now + 60
        a.deliver("b", RpcPacket(graft=[TOPIC]))
        assert "b" not in a.mesh[TOPIC]
        # P7 behaviour penalty applied.
        assert a.scores._stats("b").behaviour_penalty > 0

    def test_graft_from_negative_peer_refused(self, rig):
        sim, network, a, b, rec = rig
        a.subscribe(TOPIC)
        for _ in range(3):
            a.scores.reject_message("b", TOPIC)
        a.deliver("b", RpcPacket(graft=[TOPIC]))
        assert "b" not in a.mesh[TOPIC]


class TestPruneHandling:
    def test_prune_removes_and_backoffs(self, rig):
        sim, network, a, b, rec = rig
        a.subscribe(TOPIC)
        a.deliver("b", RpcPacket(graft=[TOPIC]))
        a.deliver("b", RpcPacket(prune=[(TOPIC, 42.0)]))
        assert "b" not in a.mesh[TOPIC]
        assert a._in_backoff("b", TOPIC)


class TestIhaveIwant:
    def test_ihave_for_unknown_topic_ignored(self, rig):
        sim, network, a, b, rec = rig
        a.deliver("rec", RpcPacket(ihave={"other": ["m1"]}))
        sim.run()
        assert not any(pkt.iwant for _f, pkt in rec.packets)

    def test_ihave_triggers_iwant_for_unseen(self, rig):
        sim, network, a, b, rec = rig
        a.subscribe(TOPIC)
        a.deliver("rec", RpcPacket(ihave={TOPIC: ["m1", "m2"]}))
        sim.run()
        iwants = [pkt.iwant for _f, pkt in rec.packets if pkt.iwant]
        assert iwants == [["m1", "m2"]]

    def test_ihave_for_seen_message_not_requested(self, rig):
        sim, network, a, b, rec = rig
        a.subscribe(TOPIC)
        message = make_message()
        a.seen.witness(message.msg_id, sim.now)
        a.deliver("rec", RpcPacket(ihave={TOPIC: [message.msg_id]}))
        sim.run()
        assert not any(pkt.iwant for _f, pkt in rec.packets)

    def test_iwant_served_from_mcache(self, rig):
        sim, network, a, b, rec = rig
        a.subscribe(TOPIC)
        message = make_message(b"cached")
        a.mcache.put(message)
        a.deliver("rec", RpcPacket(iwant=[message.msg_id]))
        sim.run()
        served = [
            pkt.publish for _f, pkt in rec.packets if pkt.publish
        ]
        assert served and served[0][0].payload == b"cached"

    def test_iwant_for_unknown_id_ignored(self, rig):
        sim, network, a, b, rec = rig
        a.deliver("rec", RpcPacket(iwant=["nope"]))
        sim.run()
        assert not any(pkt.publish for _f, pkt in rec.packets)

    def test_gossip_from_low_score_peer_ignored(self, rig):
        sim, network, a, b, rec = rig
        a.subscribe(TOPIC)
        a.scores.add_peer("rec")
        for _ in range(2):
            a.scores.reject_message("rec", TOPIC)  # score -40 < -10
        a.deliver("rec", RpcPacket(ihave={TOPIC: ["m9"]}))
        sim.run()
        assert not any(pkt.iwant for _f, pkt in rec.packets)


class TestPublishPaths:
    def test_fanout_used_when_not_subscribed(self, rig):
        sim, network, a, b, rec = rig
        params_no_flood = GossipSubParams(flood_publish=False)
        a.params = params_no_flood
        # a knows b subscribes to TOPIC but is not subscribed itself.
        a.deliver("b", RpcPacket(subscribe=[TOPIC]))
        a.publish(TOPIC, b"fanout msg")
        assert "b" in a.fanout[TOPIC]
        sim.run()

    def test_seen_cache_blocks_reprocessing(self, rig):
        sim, network, a, b, rec = rig
        a.subscribe(TOPIC)
        got = []
        a.on_delivery(lambda t, p, m, f: got.append(p))
        message = make_message(b"pp")
        a.deliver("b", RpcPacket(publish=[message]))
        a.deliver("b", RpcPacket(publish=[message]))
        assert got == [b"pp"]

    def test_delivery_callback_not_called_for_foreign_topic(self, rig):
        sim, network, a, b, rec = rig
        a.subscribe(TOPIC)
        got = []
        a.on_delivery(lambda t, p, m, f: got.append(p))
        a.deliver("b", RpcPacket(publish=[make_message(topic="other")]))
        assert got == []


class TestHeartbeatMaintenance:
    def test_mesh_refilled_after_manual_clear(self, rig):
        sim, network, a, b, rec = rig
        a.subscribe(TOPIC)
        b.subscribe(TOPIC)
        a.deliver("b", RpcPacket(subscribe=[TOPIC]))
        b.deliver("a", RpcPacket(subscribe=[TOPIC]))
        a.heartbeat()
        assert "b" in a.mesh[TOPIC]

    def test_disconnected_peer_evicted_on_heartbeat(self, rig):
        sim, network, a, b, rec = rig
        a.subscribe(TOPIC)
        a.deliver("b", RpcPacket(graft=[TOPIC]))
        network.disconnect("a", "b")
        a.heartbeat()
        assert "b" not in a.mesh[TOPIC]
        assert a._in_backoff("b", TOPIC)

    def test_oversubscribed_mesh_pruned_to_d(self, rig):
        sim, network, a, b, rec = rig
        params = GossipSubParams(d=2, d_lo=1, d_hi=3, d_score=1)
        a.params = params
        a.subscribe(TOPIC)
        for i in range(6):
            peer = GossipSubRouter(f"x{i}", network)
            peer.subscribe(TOPIC)
            network.connect("a", f"x{i}")
            a.deliver(f"x{i}", RpcPacket(subscribe=[TOPIC]))
            a.deliver(f"x{i}", RpcPacket(graft=[TOPIC]))
        assert len(a.mesh[TOPIC]) == 6
        a.heartbeat()
        assert len(a.mesh[TOPIC]) <= params.d
