"""Integration-style tests of the GossipSub router on small networks."""

import pytest

from repro.gossipsub.params import GossipSubParams
from repro.gossipsub.router import GossipSubRouter, ValidationResult
from repro.gossipsub.rpc import compute_message_id
from repro.net.network import Network
from repro.net.topology import connect_full_mesh, connect_random_regular
from repro.sim.latency import LatencyModel
from repro.sim.simulator import Simulator

TOPIC = "test-topic"


def build_network(
    n,
    degree=None,
    seed=1,
    params=None,
    score_params=None,
    latency=None,
):
    """n started routers on a connected overlay, all subscribed to TOPIC."""
    sim = Simulator(seed=seed)
    network = Network(
        simulator=sim, latency=latency or LatencyModel(base_seconds=0.02)
    )
    routers = [
        GossipSubRouter(
            f"r{i}", network, params=params, score_params=score_params
        )
        for i in range(n)
    ]
    ids = [r.node_id for r in routers]
    if degree is None:
        connect_full_mesh(network, ids)
    else:
        connect_random_regular(network, ids, degree, seed=seed)
    for router in routers:
        router.subscribe(TOPIC)
        for peer in router.peers():
            router.announce_to(peer)
        router.start()
    sim.run(until=5.0)  # let meshes form
    return sim, network, routers


class TestSubscription:
    def test_subscribe_announces_to_neighbors(self):
        sim, network, routers = build_network(3)
        for router in routers:
            for other in routers:
                if other is not router:
                    assert (
                        other.node_id in router.topic_peers.get(TOPIC, set())
                    )

    def test_mesh_forms_within_bounds(self):
        sim, network, routers = build_network(12, degree=6)
        for router in routers:
            mesh = router.mesh[TOPIC]
            assert len(mesh) >= 1
            assert len(mesh) <= router.params.d_hi

    def test_mesh_is_mutual_mostly(self):
        sim, network, routers = build_network(8)
        sim.run(until=20.0)
        by_id = {r.node_id: r for r in routers}
        mutual = 0
        total = 0
        for router in routers:
            for peer in router.mesh[TOPIC]:
                total += 1
                if router.node_id in by_id[peer].mesh[TOPIC]:
                    mutual += 1
        assert total > 0
        assert mutual / total > 0.8

    def test_unsubscribe_clears_mesh(self):
        sim, network, routers = build_network(4)
        routers[0].unsubscribe(TOPIC)
        sim.run(until=10.0)
        assert TOPIC not in routers[0].mesh
        for other in routers[1:]:
            assert routers[0].node_id not in other.mesh.get(TOPIC, set())


class TestPropagation:
    def test_full_mesh_delivery(self):
        sim, network, routers = build_network(6)
        got = []
        for router in routers:
            router.on_delivery(
                lambda t, payload, mid, frm, rid=router.node_id: got.append(rid)
            )
        routers[0].publish(TOPIC, b"hello world")
        sim.run_for(10.0)
        assert set(got) == {r.node_id for r in routers}

    def test_sparse_overlay_full_coverage(self):
        sim, network, routers = build_network(30, degree=6)
        delivered = set()
        for router in routers:
            router.on_delivery(
                lambda t, p, m, f, rid=router.node_id: delivered.add(rid)
            )
        routers[7].publish(TOPIC, b"broadcast")
        sim.run_for(10.0)
        assert delivered == {r.node_id for r in routers}

    def test_duplicates_are_suppressed(self):
        sim, network, routers = build_network(10, degree=4)
        counts = {r.node_id: 0 for r in routers}

        def record(rid):
            counts[rid] += 1

        for router in routers:
            router.on_delivery(
                lambda t, p, m, f, rid=router.node_id: record(rid)
            )
        routers[0].publish(TOPIC, b"once")
        sim.run_for(10.0)
        assert all(count == 1 for count in counts.values())

    def test_message_id_is_content_addressed(self):
        assert compute_message_id(TOPIC, b"x") == compute_message_id(TOPIC, b"x")
        assert compute_message_id(TOPIC, b"x") != compute_message_id(TOPIC, b"y")
        assert compute_message_id("t1", b"x") != compute_message_id("t2", b"x")

    def test_publisher_receives_own_message(self):
        sim, network, routers = build_network(3)
        got = []
        routers[0].on_delivery(lambda t, p, m, f: got.append(p))
        routers[0].publish(TOPIC, b"self")
        sim.run_for(2.0)
        assert got == [b"self"]


class TestLazyGossip:
    def test_ihave_iwant_recovers_missed_message(self):
        # Peer r2 is connected to r1 only; r1 -> r2 link is lossy at the
        # moment of publish, but gossip (IHAVE from a later heartbeat)
        # lets r2 recover the message.
        sim = Simulator(seed=5)
        network = Network(simulator=sim, latency=LatencyModel(base_seconds=0.02))
        params = GossipSubParams(d=2, d_lo=1, d_hi=4, d_lazy=4)
        routers = [
            GossipSubRouter(f"g{i}", network, params=params) for i in range(3)
        ]
        network.connect("g0", "g1")
        network.connect("g1", "g2")
        for router in routers:
            router.subscribe(TOPIC)
            for peer in router.peers():
                router.announce_to(peer)
            router.start()
        sim.run(until=3.0)
        # Inject the message directly into g0's cache as if published,
        # then sever g1<->g2 so the eager path cannot reach g2.
        network.disconnect("g1", "g2")
        routers[0].publish(TOPIC, b"gossip-me")
        sim.run(until=4.0)
        # Reconnect; IHAVE gossip in later heartbeats reaches g2.
        network.connect("g1", "g2")
        got = []
        routers[2].on_delivery(lambda t, p, m, f: got.append(p))
        sim.run(until=10.0)
        assert got == [b"gossip-me"]


class TestValidators:
    def test_reject_blocks_forwarding_and_penalises(self):
        sim, network, routers = build_network(5)
        for router in routers:
            router.add_validator(
                TOPIC,
                lambda payload, frm: (
                    ValidationResult.REJECT
                    if payload.startswith(b"spam")
                    else ValidationResult.ACCEPT
                ),
            )
        delivered = []
        for router in routers[1:]:
            router.on_delivery(lambda t, p, m, f: delivered.append(p))
        routers[0].publish(TOPIC, b"spam spam spam")
        sim.run_for(5.0)
        assert delivered == []
        # Everyone who heard r0's message directly penalised it (P4).
        penalised = [
            r
            for r in routers[1:]
            if r.scores.score(routers[0].node_id, sim.now) < 0
        ]
        assert penalised

    def test_ignore_drops_without_penalty(self):
        sim, network, routers = build_network(4)
        for router in routers:
            router.add_validator(
                TOPIC, lambda payload, frm: ValidationResult.IGNORE
            )
        routers[0].publish(TOPIC, b"meh")
        sim.run_for(5.0)
        for router in routers[1:]:
            assert router.scores.score(routers[0].node_id, sim.now) >= 0
        assert network.metrics.counter("gossipsub.rejected") == 0


class TestScoringIntegration:
    def test_graylisted_peer_is_ignored(self):
        sim, network, routers = build_network(4)
        victim, spammer = routers[0], routers[1]
        # Manually drive the spammer's score below the graylist threshold.
        for _ in range(10):
            victim.scores.reject_message(spammer.node_id, TOPIC)
        assert (
            victim.scores.score(spammer.node_id, sim.now)
            < victim.scores.params.graylist_threshold
        )
        before = network.metrics.counter("gossipsub.graylisted_rpc")
        spammer.publish(TOPIC, b"from-graylisted")
        sim.run_for(1.0)
        assert network.metrics.counter("gossipsub.graylisted_rpc") > before

    def test_first_delivery_improves_score(self):
        sim, network, routers = build_network(4)
        routers[1].publish(TOPIC, b"useful")
        sim.run_for(1.2)
        score = routers[0].scores.score(routers[1].node_id, sim.now)
        assert score > 0


class TestBackoff:
    def test_pruned_peer_not_regrafted_immediately(self):
        sim, network, routers = build_network(4)
        a, b = routers[0], routers[1]
        if b.node_id in a.mesh[TOPIC]:
            a._prune_peer(b.node_id, TOPIC)
        assert a._in_backoff(b.node_id, TOPIC)
        sim.run(until=sim.now + 5)
        assert b.node_id not in a.mesh[TOPIC] or not a._in_backoff(
            b.node_id, TOPIC
        )
