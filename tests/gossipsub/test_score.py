"""Unit tests for the v1.1 peer-score function."""

import pytest

from repro.gossipsub.score import (
    PeerScoreParams,
    PeerScoreTracker,
    TopicScoreParams,
    strict_topic_params,
)

TOPIC = "t"


def make_tracker(**overrides):
    params = PeerScoreParams(
        default_topic_params=TopicScoreParams(**overrides)
    )
    tracker = PeerScoreTracker(params)
    tracker.add_peer("p")
    return tracker


class TestP1TimeInMesh:
    def test_accrues_while_in_mesh(self):
        tracker = make_tracker()
        tracker.graft("p", TOPIC, now=0.0)
        early = tracker.score("p", now=1.0)
        late = tracker.score("p", now=100.0)
        assert late > early > 0

    def test_capped(self):
        tracker = make_tracker(time_in_mesh_cap=10.0, time_in_mesh_weight=1.0)
        tracker.graft("p", TOPIC, now=0.0)
        assert tracker.score("p", now=1e6) == pytest.approx(10.0)

    def test_no_accrual_out_of_mesh(self):
        tracker = make_tracker()
        assert tracker.score("p", now=100.0) == 0.0


class TestP2FirstDeliveries:
    def test_rewards_first_deliveries(self):
        tracker = make_tracker()
        tracker.first_message("p", TOPIC)
        tracker.first_message("p", TOPIC)
        assert tracker.score("p") == pytest.approx(2.0)

    def test_capped(self):
        tracker = make_tracker(first_message_deliveries_cap=5.0)
        for _ in range(50):
            tracker.first_message("p", TOPIC)
        assert tracker.score("p") == pytest.approx(5.0)

    def test_decays(self):
        tracker = make_tracker(first_message_deliveries_decay=0.5)
        tracker.first_message("p", TOPIC)
        tracker.decay()
        assert tracker.score("p") == pytest.approx(0.5)

    def test_decay_to_zero_floor(self):
        tracker = make_tracker(first_message_deliveries_decay=0.5)
        tracker.first_message("p", TOPIC)
        for _ in range(10):
            tracker.decay()
        assert tracker.score("p") == 0.0


class TestP3MeshDeliveryDeficit:
    def _strict_tracker(self):
        params = PeerScoreParams(
            default_topic_params=strict_topic_params(5.0)
        )
        tracker = PeerScoreTracker(params)
        tracker.add_peer("p")
        return tracker

    def test_silent_mesh_peer_penalised_after_activation(self):
        tracker = self._strict_tracker()
        tracker.graft("p", TOPIC, now=0.0)
        # before activation window: no penalty
        assert tracker.score("p", now=1.0) >= 0
        # after activation with zero deliveries: squared deficit penalty
        assert tracker.score("p", now=10.0) < -20

    def test_active_mesh_peer_not_penalised(self):
        tracker = self._strict_tracker()
        tracker.graft("p", TOPIC, now=0.0)
        for _ in range(6):
            tracker.first_message("p", TOPIC)
        assert tracker.score("p", now=10.0) > 0

    def test_deficit_becomes_sticky_penalty_on_prune(self):
        tracker = self._strict_tracker()
        tracker.graft("p", TOPIC, now=0.0)
        tracker.prune("p", TOPIC, now=10.0)
        # P3b persists after leaving the mesh.
        assert tracker.score("p", now=10.0) < 0

    def test_default_params_do_not_punish_idle(self):
        tracker = make_tracker()
        tracker.graft("p", TOPIC, now=0.0)
        assert tracker.score("p", now=100.0) >= 0


class TestP4InvalidMessages:
    def test_squared_penalty(self):
        tracker = make_tracker()
        tracker.reject_message("p", TOPIC)
        one = tracker.score("p")
        tracker.reject_message("p", TOPIC)
        two = tracker.score("p")
        assert one == pytest.approx(-10.0)
        assert two == pytest.approx(-40.0)

    def test_decays_slowly(self):
        tracker = make_tracker()
        tracker.reject_message("p", TOPIC)
        tracker.decay()
        assert tracker.score("p") == pytest.approx(-8.1)


class TestP5AppSpecific:
    def test_app_score_added(self):
        tracker = make_tracker()
        tracker.set_app_score("p", 7.5)
        assert tracker.score("p") == pytest.approx(7.5)


class TestP6IpColocation:
    def test_shared_ip_penalised_quadratically(self):
        params = PeerScoreParams()
        tracker = PeerScoreTracker(params)
        for i in range(4):
            tracker.add_peer(f"bot{i}", ip="10.0.0.1")
        # threshold 1 -> excess 3 -> 9 * -5 = -45
        assert tracker.score("bot0") == pytest.approx(-45.0)

    def test_unique_ips_unpenalised(self):
        tracker = PeerScoreTracker(PeerScoreParams())
        tracker.add_peer("a", ip="10.0.0.1")
        tracker.add_peer("b", ip="10.0.0.2")
        assert tracker.score("a") == 0.0

    def test_set_ip_later(self):
        tracker = PeerScoreTracker(PeerScoreParams())
        tracker.add_peer("a")
        tracker.add_peer("b")
        tracker.set_ip("a", "1.1.1.1")
        tracker.set_ip("b", "1.1.1.1")
        assert tracker.score("a") < 0


class TestP7BehaviourPenalty:
    def test_quadratic_above_threshold(self):
        tracker = make_tracker()
        tracker.behaviour_penalty("p", 2.0)
        assert tracker.score("p") == pytest.approx(-40.0)

    def test_decays(self):
        tracker = make_tracker()
        tracker.behaviour_penalty("p", 2.0)
        for _ in range(600):
            tracker.decay()  # 0.99^600 * 2 falls below the zero floor
        assert tracker.score("p") == 0.0


class TestLifecycle:
    def test_unknown_peer_scores_zero(self):
        tracker = PeerScoreTracker(PeerScoreParams())
        assert tracker.score("ghost") == 0.0

    def test_remove_peer_forgets(self):
        tracker = make_tracker()
        tracker.reject_message("p", TOPIC)
        tracker.remove_peer("p")
        assert tracker.score("p") == 0.0

    def test_per_topic_params_override(self):
        params = PeerScoreParams(
            topic_params={"special": TopicScoreParams(topic_weight=10.0)},
        )
        tracker = PeerScoreTracker(params)
        tracker.add_peer("p")
        tracker.first_message("p", "special")
        tracker.first_message("p", "normal")
        assert tracker.score("p") == pytest.approx(10.0 + 1.0)
