"""Batched-bookkeeping edge cases and equivalence guarantees.

The batched heartbeat (PR 3) must be *indistinguishable* from the
reference per-heartbeat sweeps: lazy score decay replays the exact
floating-point trajectory of the eager sweep, and dirty-topic mesh
maintenance only skips work it can prove is a no-op. These tests pin
the edges the refactor touches: unsubscribe-while-meshed, backoff
expiry ordering, fanout expiry/reuse, and eager-vs-lazy decay under
random event interleavings.
"""

from __future__ import annotations

import random

import pytest

from repro.gossipsub.params import GossipSubParams
from repro.gossipsub.router import GossipSubRouter
from repro.gossipsub.rpc import GossipMessage, RpcPacket, compute_message_id
from repro.gossipsub.score import (
    PeerScoreParams,
    PeerScoreTracker,
    TopicScoreParams,
    strict_topic_params,
)
from repro.net.network import Network
from repro.net.topology import connect_full_mesh
from repro.sim.simulator import Simulator

TOPIC = "bk-topic"


def build_pair(seed=7, **params):
    sim = Simulator(seed=seed)
    network = Network(simulator=sim)
    a = GossipSubRouter("a", network, GossipSubParams(**params))
    b = GossipSubRouter("b", network, GossipSubParams(**params))
    network.connect("a", "b")
    return sim, network, a, b


class TestUnsubscribeWhileMeshed:
    def test_unsubscribe_prunes_and_backoffs_mesh_members(self):
        sim, network, a, b, _ = (*build_pair(), None)
        a.subscribe(TOPIC)
        a.deliver("b", RpcPacket(graft=[TOPIC]))
        assert "b" in a.mesh[TOPIC]
        a.unsubscribe(TOPIC)
        assert TOPIC not in a.mesh
        assert TOPIC not in a._dirty_topics
        # The pruned member is under backoff: its immediate re-GRAFT is
        # a violation.
        assert a._in_backoff("b", TOPIC)

    def test_unsubscribed_topic_not_maintained(self):
        sim, network, a, b, _ = (*build_pair(), None)
        a.subscribe(TOPIC)
        a.deliver("b", RpcPacket(subscribe=[TOPIC]))
        a.unsubscribe(TOPIC)
        a.heartbeat()
        # No mesh was rebuilt for the abandoned topic.
        assert TOPIC not in a.mesh

    def test_remote_unsubscribe_of_meshed_peer_dirties_topic(self):
        sim, network, a, b, _ = (*build_pair(), None)
        a.subscribe(TOPIC)
        a.deliver("b", RpcPacket(graft=[TOPIC]))
        a.heartbeat()  # settle; mesh in bounds would go clean
        a.deliver("b", RpcPacket(unsubscribe=[TOPIC]))
        assert "b" not in a.mesh[TOPIC]
        assert TOPIC in a._dirty_topics

    def test_resubscribe_after_unsubscribe_rebuilds_mesh(self):
        sim, network, a, b, _ = (*build_pair(), None)
        for router in (a, b):
            router.subscribe(TOPIC)
        a.deliver("b", RpcPacket(subscribe=[TOPIC]))
        a.deliver("b", RpcPacket(graft=[TOPIC]))
        assert "b" in a.mesh[TOPIC]
        a.unsubscribe(TOPIC)
        a.subscribe(TOPIC)
        # b is backoffed (we pruned it on unsubscribe), so the first
        # heartbeat cannot re-graft it...
        a.heartbeat()
        assert a.mesh[TOPIC] == set()
        # ...but the topic stays dirty (underfilled) and heals once the
        # backoff expires.
        assert TOPIC in a._dirty_topics
        sim.run_for(a.params.prune_backoff + 1.0)
        a.heartbeat()
        assert "b" in a.mesh[TOPIC]


class TestBackoffExpiryOrdering:
    def test_backoffs_expire_in_order(self):
        sim, network, a, b, _ = (*build_pair(), None)
        a._set_backoff("p1", TOPIC, 10.0)
        a._set_backoff("p2", TOPIC, 20.0)
        a._set_backoff("p3", TOPIC, 30.0)
        sim.run_for(15.0)
        a._expire_backoffs()
        assert ("p1", TOPIC) not in a._backoff
        assert ("p2", TOPIC) in a._backoff
        assert ("p3", TOPIC) in a._backoff
        assert not a._in_backoff("p1", TOPIC)
        assert a._in_backoff("p2", TOPIC)

    def test_extended_backoff_survives_stale_heap_entry(self):
        sim, network, a, b, _ = (*build_pair(), None)
        a._set_backoff("p", TOPIC, 5.0)
        # A later PRUNE extends the backoff before the first expires.
        a._set_backoff("p", TOPIC, 50.0)
        sim.run_for(10.0)
        a._expire_backoffs()  # pops the stale 5 s heap entry
        assert a._in_backoff("p", TOPIC)
        sim.run_for(45.0)
        a._expire_backoffs()
        assert ("p", TOPIC) not in a._backoff

    def test_backoff_dict_does_not_grow_without_bound(self):
        sim, network, a, b, _ = (*build_pair(), None)
        for i in range(500):
            a._set_backoff(f"p{i}", TOPIC, 1.0)
        sim.run_for(2.0)
        a._expire_backoffs()
        assert len(a._backoff) == 0
        assert len(a._backoff_heap) == 0

    def test_expiry_boundary_is_exclusive(self):
        """A backoff is over exactly at its expiry time, as before."""
        sim, network, a, b, _ = (*build_pair(), None)
        a._set_backoff("p", TOPIC, 10.0)
        sim.run_for(10.0)
        assert not a._in_backoff("p", TOPIC)


class TestFanoutExpiryReuse:
    def build(self):
        sim = Simulator(seed=11)
        network = Network(simulator=sim)
        params = GossipSubParams(flood_publish=False, fanout_ttl=30.0)
        a = GossipSubRouter("a", network, params)
        subs = []
        for i in range(3):
            r = GossipSubRouter(f"s{i}", network, params)
            r.subscribe(TOPIC)
            network.connect("a", f"s{i}")
            a.deliver(f"s{i}", RpcPacket(subscribe=[TOPIC]))
            subs.append(r)
        return sim, a, subs

    def test_fanout_set_reused_across_publishes(self):
        sim, a, subs = self.build()
        a.publish(TOPIC, b"m1")
        first = set(a.fanout[TOPIC])
        sim.run_for(10.0)
        a.publish(TOPIC, b"m2")
        assert a.fanout[TOPIC] == first

    def test_publish_extends_fanout_expiry(self):
        sim, a, subs = self.build()
        a.publish(TOPIC, b"m1")
        sim.run_for(20.0)
        a.publish(TOPIC, b"m2")  # pushes expiry to now + 30
        sim.run_for(20.0)
        a._expire_fanout()
        assert TOPIC in a.fanout  # 40 < 20 + 30

    def test_fanout_expires_without_publishes(self):
        sim, a, subs = self.build()
        a.publish(TOPIC, b"m1")
        sim.run_for(31.0)
        a._expire_fanout()
        assert TOPIC not in a.fanout
        assert TOPIC not in a._fanout_expiry

    def test_fanout_rebuilt_after_expiry(self):
        sim, a, subs = self.build()
        a.publish(TOPIC, b"m1")
        sim.run_for(31.0)
        a._expire_fanout()
        a.publish(TOPIC, b"m2")
        assert a.fanout[TOPIC]  # fresh set built on demand

    def test_subscribe_adopts_fanout_peers(self):
        sim, a, subs = self.build()
        a.publish(TOPIC, b"m1")
        fanout = set(a.fanout[TOPIC])
        a.subscribe(TOPIC)
        assert TOPIC not in a.fanout
        assert fanout <= a.mesh[TOPIC]


def _random_events(rng, peers, topics, steps):
    """A random interleaving of score events and decay ticks."""
    events = []
    now = 0.0
    for _ in range(steps):
        kind = rng.choice(
            (
                "graft", "prune", "first", "dup", "reject",
                "behaviour", "decay", "decay", "score",
            )
        )
        peer = rng.choice(peers)
        topic = rng.choice(topics)
        now += rng.random()
        events.append((kind, peer, topic, now))
    return events


def _apply(tracker, events):
    """Replay events; return every probed score."""
    probes = []
    for kind, peer, topic, now in events:
        if kind == "graft":
            tracker.graft(peer, topic, now)
        elif kind == "prune":
            tracker.prune(peer, topic, now)
        elif kind == "first":
            tracker.first_message(peer, topic)
        elif kind == "dup":
            tracker.duplicate_message(peer, topic)
        elif kind == "reject":
            tracker.reject_message(peer, topic)
        elif kind == "behaviour":
            tracker.behaviour_penalty(peer)
        elif kind == "decay":
            tracker.decay()
        elif kind == "score":
            probes.append((peer, tracker.score(peer, now)))
    # Final materialisation of everyone.
    probes.extend(
        (peer, tracker.score(peer, now)) for peer in sorted(
            tracker.known_peers()
        )
    )
    return probes


class TestDecayEquivalence:
    """Lazy (global-clock) decay == eager sweep, bit for bit."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_interleavings(self, seed):
        rng = random.Random(seed)
        peers = [f"p{i}" for i in range(5)]
        topics = ["t0", "t1"]
        events = _random_events(rng, peers, topics, 300)
        params = PeerScoreParams()
        eager = _apply(PeerScoreTracker(params, lazy=False), events)
        lazy = _apply(PeerScoreTracker(params, lazy=True), events)
        assert eager == lazy  # exact float equality, not approx

    @pytest.mark.parametrize("seed", range(6))
    def test_random_interleavings_strict_topics(self, seed):
        """Same, with the delivery-deficit penalties armed."""
        rng = random.Random(1000 + seed)
        peers = [f"p{i}" for i in range(4)]
        topics = ["strict", "normal"]
        events = _random_events(rng, peers, topics, 250)
        params = PeerScoreParams(
            topic_params={"strict": strict_topic_params(3.0)}
        )
        eager = _apply(PeerScoreTracker(params, lazy=False), events)
        lazy = _apply(PeerScoreTracker(params, lazy=True), events)
        assert eager == lazy

    def test_idle_peer_decays_to_zero_identically(self):
        params = PeerScoreParams()
        eager = PeerScoreTracker(params, lazy=False)
        lazy = PeerScoreTracker(params, lazy=True)
        for tracker in (eager, lazy):
            tracker.first_message("p", "t")
            tracker.behaviour_penalty("p", 3.0)
            for _ in range(1000):
                tracker.decay()
        assert eager.score("p") == lazy.score("p") == 0.0

    def test_suspect_set_clears_after_penalties_decay(self):
        tracker = PeerScoreTracker(PeerScoreParams(), lazy=True)
        tracker.reject_message("p", "t")
        assert tracker.maybe_negative("p")
        for _ in range(200):
            tracker.decay()
        tracker.score("p")  # materialises and re-evaluates suspicion
        assert not tracker.maybe_negative("p")

    def test_non_suspect_never_scores_negative(self):
        """The invariant the router's fast path relies on."""
        rng = random.Random(99)
        peers = [f"p{i}" for i in range(6)]
        tracker = PeerScoreTracker(PeerScoreParams(), lazy=True)
        events = _random_events(rng, peers, ["t"], 400)
        for kind, peer, topic, now in events:
            getattr_map = {
                "graft": lambda: tracker.graft(peer, topic, now),
                "prune": lambda: tracker.prune(peer, topic, now),
                "first": lambda: tracker.first_message(peer, topic),
                "dup": lambda: tracker.duplicate_message(peer, topic),
                "reject": lambda: tracker.reject_message(peer, topic),
                "behaviour": lambda: tracker.behaviour_penalty(peer),
                "decay": lambda: tracker.decay(),
                "score": lambda: tracker.score(peer, now),
            }
            getattr_map[kind]()
            for p in peers:
                if not tracker.maybe_negative(p):
                    assert tracker.score(p, now) >= 0.0


class TestModeEquivalenceEndToEnd:
    """Whole-overlay check: batched and reference heartbeats produce
    identical meshes, deliveries and scores on the same seed."""

    def _run(self, batched: bool):
        sim = Simulator(seed=5)
        network = Network(simulator=sim)
        params = GossipSubParams(batched_bookkeeping=batched)
        routers = [
            GossipSubRouter(f"r{i}", network, params) for i in range(12)
        ]
        connect_full_mesh(network, [r.node_id for r in routers])
        topics = ["t0", "t1", "t2"]
        delivered = []
        for router in routers:
            for topic in topics:
                router.subscribe(topic)
            router.on_delivery(
                lambda t, p, m, f, nid=router.node_id: delivered.append(
                    (nid, t, m)
                )
            )
        for router in routers:
            router.start()
        sim.run_for(5.0)
        for i, router in enumerate(routers):
            router.publish(topics[i % 3], f"msg-{i}".encode())
            sim.run_for(1.0)
        # Churn one link mid-run; eviction must match across modes.
        network.disconnect("r0", "r1")
        sim.run_for(10.0)
        meshes = {
            r.node_id: {t: sorted(r.mesh.get(t, ())) for t in topics}
            for r in routers
        }
        scores = {
            r.node_id: {
                p: r.scores.score(p, sim.now) for p in sorted(
                    r.scores.known_peers()
                )
            }
            for r in routers
        }
        return sorted(delivered), meshes, scores

    def test_batched_equals_reference(self):
        assert self._run(True) == self._run(False)
