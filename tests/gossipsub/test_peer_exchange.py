"""Tests for Peer Exchange (PX) on PRUNE (gossipsub v1.1)."""

import pytest

from repro.gossipsub.params import GossipSubParams
from repro.gossipsub.router import GossipSubRouter
from repro.gossipsub.rpc import RpcPacket
from repro.net.network import Network
from repro.sim.simulator import Simulator

TOPIC = "px-topic"


def make_router(network, node_id, **params):
    return GossipSubRouter(
        node_id, network, params=GossipSubParams(**params)
    )


@pytest.fixture
def rig():
    sim = Simulator(seed=9)
    network = Network(simulator=sim)
    return sim, network


class TestPxOffer:
    def test_oversubscription_prune_offers_px(self, rig):
        sim, network = rig
        hub = make_router(network, "hub", d=2, d_lo=1, d_hi=3, d_score=1)
        hub.subscribe(TOPIC)
        spokes = []
        for i in range(6):
            spoke = make_router(network, f"s{i}")
            spoke.subscribe(TOPIC)
            network.connect("hub", f"s{i}")
            hub.deliver(f"s{i}", RpcPacket(subscribe=[TOPIC]))
            hub.deliver(f"s{i}", RpcPacket(graft=[TOPIC]))
            spokes.append(spoke)
        hub.heartbeat()  # oversubscribed: prunes down to D with PX
        sim.run()
        # Some pruned spoke received suggestions and dialled them.
        px_dials = network.metrics.counter("gossipsub.px_dials")
        assert px_dials > 0

    def test_px_suggestions_exclude_the_pruned_peer(self, rig):
        sim, network = rig
        a = make_router(network, "a")
        b = make_router(network, "b")
        c = make_router(network, "c")
        a.subscribe(TOPIC)
        for node in (b, c):
            network.connect("a", node.node_id)
            a.deliver(node.node_id, RpcPacket(subscribe=[TOPIC]))
            a.deliver(node.node_id, RpcPacket(graft=[TOPIC]))
        sent = []
        original_send = a._send

        def capture(peer, packet):
            sent.append((peer, packet))
            original_send(peer, packet)

        a._send = capture
        a._prune_peer("b", TOPIC)
        prunes = [pkt for peer, pkt in sent if peer == "b" and pkt.prune]
        assert prunes
        offered = prunes[0].px.get(TOPIC, [])
        assert "b" not in offered
        assert "c" in offered


class TestPxAccept:
    def test_pruned_peer_dials_suggestions(self, rig):
        sim, network = rig
        a = make_router(network, "a")
        helper = make_router(network, "helper")
        helper.subscribe(TOPIC)
        a.subscribe(TOPIC)
        class Pruner:
            node_id = "pruner"

            def deliver(self, from_peer, packet):
                pass

        network.attach(Pruner())
        network.connect("a", "pruner")
        a.scores.add_peer("pruner")
        a.deliver(
            "pruner",
            RpcPacket(prune=[(TOPIC, 30.0)], px={TOPIC: ["helper"]}),
        )
        sim.run()
        assert network.are_connected("a", "helper")
        assert "helper" in a.topic_peers[TOPIC]

    def test_px_from_low_score_peer_ignored(self, rig):
        sim, network = rig
        a = make_router(network, "a")
        make_router(network, "helper").subscribe(TOPIC)
        a.subscribe(TOPIC)
        class Bad:
            node_id = "bad"

            def deliver(self, from_peer, packet):
                pass

        network.attach(Bad())
        network.connect("a", "bad")
        a.scores.add_peer("bad")
        a.scores.reject_message("bad", TOPIC)  # score < accept_px_threshold
        a.deliver(
            "bad", RpcPacket(prune=[(TOPIC, 30.0)], px={TOPIC: ["helper"]})
        )
        sim.run()
        assert not network.are_connected("a", "helper")

    def test_px_to_unknown_node_skipped(self, rig):
        sim, network = rig
        a = make_router(network, "a")
        a.subscribe(TOPIC)
        class Pruner:
            node_id = "pruner"

            def deliver(self, from_peer, packet):
                pass

        network.attach(Pruner())
        network.connect("a", "pruner")
        a.deliver(
            "pruner",
            RpcPacket(prune=[(TOPIC, 30.0)], px={TOPIC: ["ghost-peer"]}),
        )
        sim.run()  # no exception; nothing dialled
        assert network.metrics.counter("gossipsub.px_dials") == 0

    def test_px_never_dials_self(self, rig):
        sim, network = rig
        a = make_router(network, "a")
        a.subscribe(TOPIC)
        class Pruner:
            node_id = "pruner"

            def deliver(self, from_peer, packet):
                pass

        network.attach(Pruner())
        network.connect("a", "pruner")
        a.deliver(
            "pruner", RpcPacket(prune=[(TOPIC, 30.0)], px={TOPIC: ["a"]})
        )
        sim.run()
        assert network.metrics.counter("gossipsub.px_dials") == 0


class TestPxHealing:
    def test_mesh_degree_recovers_via_px(self, rig):
        """A peer pruned by an oversubscribed hub finds new mesh members
        through PX instead of staying under-connected."""
        sim, network = rig
        params = dict(d=2, d_lo=1, d_hi=3, d_score=1)
        routers = [
            make_router(network, f"n{i}", **params) for i in range(8)
        ]
        # Star around n0 initially.
        for router in routers:
            router.subscribe(TOPIC)
        for i in range(1, 8):
            network.connect("n0", f"n{i}")
        for router in routers:
            for peer in router.peers():
                router.announce_to(peer)
            router.start()
        sim.run(until=30.0)
        # The hub pruned most spokes; PX dialling created new links, so
        # the spokes are no longer singletons hanging off n0.
        extra_links = network.link_count() - 7
        assert extra_links > 0
