"""Unit tests for the message cache, seen cache and RPC envelope."""

import pytest

from repro.gossipsub.mcache import MessageCache, SeenCache
from repro.gossipsub.rpc import (
    GossipMessage,
    RpcPacket,
    compute_message_id,
    payload_to_bytes,
)


def msg(i, topic="t"):
    payload = f"m{i}".encode()
    return GossipMessage(
        msg_id=compute_message_id(topic, payload), topic=topic, payload=payload
    )


class TestMessageCache:
    def test_put_get(self):
        cache = MessageCache()
        message = msg(1)
        cache.put(message)
        assert cache.get(message.msg_id) is message
        assert cache.get("missing") is None

    def test_duplicate_put_ignored(self):
        cache = MessageCache()
        message = msg(1)
        cache.put(message)
        cache.put(message)
        assert len(cache) == 1

    def test_gossip_window_subset(self):
        cache = MessageCache(history_length=5, gossip_length=2)
        m1 = msg(1)
        cache.put(m1)
        cache.shift()
        cache.shift()  # m1 now outside the gossip window but in history
        m2 = msg(2)
        cache.put(m2)
        ids = cache.gossip_ids("t")
        assert m2.msg_id in ids
        assert m1.msg_id not in ids
        assert cache.get(m1.msg_id) is not None  # still serveable via IWANT

    def test_expiry_after_history(self):
        cache = MessageCache(history_length=3, gossip_length=2)
        m1 = msg(1)
        cache.put(m1)
        for _ in range(3):
            cache.shift()
        assert cache.get(m1.msg_id) is None
        assert len(cache) == 0

    def test_gossip_ids_filtered_by_topic(self):
        cache = MessageCache()
        cache.put(msg(1, topic="a"))
        cache.put(msg(2, topic="b"))
        assert len(cache.gossip_ids("a")) == 1

    def test_invalid_windows_rejected(self):
        with pytest.raises(ValueError):
            MessageCache(history_length=2, gossip_length=3)


class TestSeenCache:
    def test_first_sighting_false(self):
        seen = SeenCache(ttl=10.0)
        assert not seen.witness("x", now=0.0)
        assert seen.witness("x", now=1.0)

    def test_contains(self):
        seen = SeenCache(ttl=10.0)
        seen.witness("x", now=0.0)
        assert "x" in seen
        assert "y" not in seen

    def test_sweep_clears_expired(self):
        seen = SeenCache(ttl=1.0)
        for i in range(5000):
            seen.witness(f"m{i}", now=0.0)
        seen.witness("late", now=100.0)  # triggers a sweep
        assert len(seen) < 5001


class TestRpcPacket:
    def test_empty_detection(self):
        assert RpcPacket().is_empty()
        assert not RpcPacket(graft=["t"]).is_empty()
        assert not RpcPacket(publish=[msg(1)]).is_empty()

    def test_size_accounts_for_contents(self):
        small = RpcPacket(iwant=["a" * 16])
        big = RpcPacket(publish=[msg(1)], ihave={"t": ["x" * 16] * 10})
        assert big.size_bytes > small.size_bytes > 0


class TestMessageId:
    def test_content_addressed(self):
        assert compute_message_id("t", b"x") == compute_message_id("t", b"x")

    def test_payload_object_with_to_bytes(self):
        class Payload:
            def to_bytes(self):
                return b"obj"

        assert payload_to_bytes(Payload()) == b"obj"
        assert compute_message_id("t", Payload()) == compute_message_id(
            "t", b"obj"
        )

    def test_unserializable_payload_rejected(self):
        with pytest.raises(TypeError):
            payload_to_bytes(123)
