"""Cross-module property-based tests (hypothesis)."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto.field import Fr
from repro.crypto.keys import MembershipKeyPair
from repro.crypto.merkle import MerkleTree
from repro.errors import SerializationError
from repro.rln.prover import RlnProver, rln_keys
from repro.rln.signal import RlnSignal
from repro.rln.slashing import detect_double_signal
from repro.waku.message import WakuMessage

payloads = st.binary(min_size=0, max_size=200)
topics = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz/0123456789-", min_size=1, max_size=40
)


class TestWakuMessageProperties:
    @given(payloads, topics, st.one_of(st.none(), st.binary(max_size=64)))
    def test_roundtrip(self, payload, topic, proof):
        if proof == b"":
            proof = None
        message = WakuMessage(
            payload=payload, content_topic=topic, rate_limit_proof=proof
        )
        assert WakuMessage.from_bytes(message.to_bytes()) == message

    @given(payloads)
    def test_corrupted_length_prefix_rejected_or_differs(self, payload):
        message = WakuMessage(payload=payload)
        data = bytearray(message.to_bytes())
        data[1] ^= 0xFF  # corrupt the topic length
        try:
            decoded = WakuMessage.from_bytes(bytes(data))
        except SerializationError:
            return
        assert decoded != message


@pytest.fixture(scope="module")
def signal_factory():
    rng = random.Random(55)
    pk, _vk = rln_keys(seed=b"props")
    tree = MerkleTree(8)
    pair = MembershipKeyPair.generate(rng)
    index = tree.insert(pair.commitment.element)
    prover = RlnProver(keypair=pair, proving_key=pk)

    def build(message: bytes, epoch: int) -> RlnSignal:
        return prover.create_signal(message, epoch, tree.proof(index))

    build.keypair = pair
    return build


class TestSignalProperties:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(payloads, st.integers(min_value=0, max_value=2**40))
    def test_serialization_roundtrip(self, signal_factory, payload, epoch):
        signal = signal_factory(payload, epoch)
        assert RlnSignal.from_bytes(signal.to_bytes()) == signal

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(payloads, payloads, st.integers(min_value=0, max_value=2**30))
    def test_double_signal_always_recovers_secret(
        self, signal_factory, msg_a, msg_b, epoch
    ):
        """For ANY two distinct messages in one epoch, slashing works."""
        sig_a = signal_factory(msg_a, epoch)
        sig_b = signal_factory(msg_b, epoch)
        evidence = detect_double_signal(sig_a, sig_b)
        if msg_a == msg_b:
            assert evidence is None  # duplicates never slash
        else:
            assert evidence is not None
            assert evidence.recovered_secret == signal_factory.keypair.secret

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(payloads, st.integers(min_value=0, max_value=2**30))
    def test_single_share_is_not_the_secret(
        self, signal_factory, payload, epoch
    ):
        """One message must not leak sk (perfect secrecy at one point)."""
        signal = signal_factory(payload, epoch)
        assert signal.share.y != signal_factory.keypair.secret.element
        assert signal.share.x != signal_factory.keypair.secret.element

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(st.integers(min_value=0, max_value=2**30))
    def test_nullifier_unlinkable_across_epochs(self, signal_factory, epoch):
        """The same member's nullifiers in different epochs differ —
        receivers cannot link its traffic across epochs."""
        sig_a = signal_factory(b"m", epoch)
        sig_b = signal_factory(b"m", epoch + 1)
        assert sig_a.internal_nullifier != sig_b.internal_nullifier


class TestTreeInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=1, max_value=2**64), min_size=1, max_size=20
        )
    )
    def test_every_member_proof_verifies_against_final_root(self, values):
        tree = MerkleTree(6)
        for v in values[: tree.capacity]:
            tree.insert(Fr(v))
        for i in range(tree.leaf_count):
            assert tree.proof(i).verify(tree.root)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=1, max_value=2**64), min_size=2, max_size=16
        ),
        st.data(),
    )
    def test_deletion_invalidates_only_that_member(self, values, data):
        tree = MerkleTree(6)
        for v in values[: tree.capacity]:
            tree.insert(Fr(v))
        victim = data.draw(
            st.integers(min_value=0, max_value=tree.leaf_count - 1)
        )
        proofs = {i: tree.proof(i) for i in range(tree.leaf_count)}
        tree.delete(victim)
        # Old proofs are stale (root changed) — but fresh proofs of the
        # survivors still verify, and the victim's leaf is zero.
        for i in range(tree.leaf_count):
            fresh = tree.proof(i)
            assert fresh.verify(tree.root)
            if i == victim:
                assert fresh.leaf == Fr.zero()
            else:
                assert fresh.leaf == proofs[i].leaf
