"""End-to-end integration tests: register → sync → publish → route →
detect → slash, on a full simulated deployment."""

import pytest

from repro.core import ProtocolConfig, WakuRlnRelayNetwork, build_report
from repro.errors import RateLimitError, RegistrationError


@pytest.fixture
def deployment():
    net = WakuRlnRelayNetwork(peer_count=12, seed=42)
    net.register_all()
    deliveries = net.collect_deliveries()
    net.start()
    net.run(5.0)
    return net, deliveries


class TestRegistrationAndSync:
    def test_all_peers_registered(self, deployment):
        net, _ = deployment
        assert net.registered_count == 12
        assert net.contract.member_count() == 12

    def test_peers_agree_on_root(self, deployment):
        net, _ = deployment
        roots = {int(p.group.root) for p in net.peers}
        assert len(roots) == 1

    def test_late_joiner_catches_up(self, deployment):
        net, _ = deployment
        from repro.core.peer import WakuRlnRelayPeer

        late = WakuRlnRelayPeer(
            node_id="late-peer",
            network=net.network,
            chain=net.chain,
            contract_address=net.contract.address,
            config=net.config,
            proving_key=net.proving_key,
            verifying_key=net.verifying_key,
            rng=net.simulator.rng,
        )
        for existing in net.peers[:4]:
            net.network.connect("late-peer", existing.node_id)
        late.register()
        net.chain.mine_block(timestamp=net.simulator.now)
        late.sync()
        for peer in net.peers:
            peer.sync()
        assert late.is_registered
        assert int(late.group.root) == int(net.peer(0).group.root)

    def test_registration_required_to_publish(self):
        net = WakuRlnRelayNetwork(peer_count=4, seed=1)
        with pytest.raises(RegistrationError):
            net.peer(0).publish(b"too soon")


class TestHonestTraffic:
    def test_message_reaches_every_peer(self, deployment):
        net, deliveries = deployment
        net.peer(3).publish(b"hello from peer 3")
        net.run(10.0)
        assert all(
            b"hello from peer 3" in msgs for msgs in deliveries.values()
        )

    def test_one_message_per_epoch_enforced_locally(self, deployment):
        net, _ = deployment
        net.peer(0).publish(b"first")
        with pytest.raises(RateLimitError):
            net.peer(0).publish(b"second")

    def test_can_publish_again_next_epoch(self, deployment):
        net, deliveries = deployment
        net.peer(0).publish(b"epoch A")
        net.run(net.config.epoch_length + 1.0)
        net.peer(0).publish(b"epoch B")
        net.run(10.0)
        delivered_to_last = deliveries[net.peer(11).node_id]
        assert b"epoch A" in delivered_to_last
        assert b"epoch B" in delivered_to_last

    def test_multiple_concurrent_publishers(self, deployment):
        net, deliveries = deployment
        for i in range(6):
            net.peer(i).publish(f"msg-{i}".encode())
        net.run(10.0)
        for msgs in deliveries.values():
            for i in range(6):
                assert f"msg-{i}".encode() in msgs


class TestSpamDefence:
    def test_double_signal_slashes_spammer(self, deployment):
        net, _ = deployment
        spammer = net.peer(0)
        spammer.publish(b"spam 1")
        spammer.publish(b"spam 2", bypass_rate_limit=True)
        net.run(30.0)
        assert not spammer.is_registered  # removed from every local tree
        assert not net.contract.is_member(int(spammer.commitment.element))
        assert sum(p.slashes_submitted for p in net.peers) >= 1

    def test_spam_reach_is_bounded(self, deployment):
        """Each honest router accepts at most one of the two spam
        messages, so total spam deliveries cannot exceed one per peer."""
        net, deliveries = deployment
        spammer = net.peer(0)
        spammer.publish(b"spam A")
        spammer.publish(b"spam B", bypass_rate_limit=True)
        net.run(20.0)
        for node_id, msgs in deliveries.items():
            if node_id == spammer.node_id:
                continue
            spam_count = msgs.count(b"spam A") + msgs.count(b"spam B")
            assert spam_count <= 1, node_id

    def test_slash_economics(self):
        net = WakuRlnRelayNetwork(peer_count=12, seed=13)
        initial = {p.node_id: p.balance for p in net.peers}  # pre-stake
        net.register_all()
        net.start()
        net.run(5.0)
        spammer = net.peer(5)
        spammer.publish(b"x1")
        spammer.publish(b"x2", bypass_rate_limit=True)
        net.run(40.0)
        report = build_report(net.chain, net.contract, net.peers, initial)
        stake = net.config.stake_wei
        # The spammer lost its entire stake.
        assert report.ledger(spammer.node_id).net_flow == -stake
        # Exactly half was burnt, the other half rewarded one reporter
        # (who is still staked, hence net -stake/2 overall).
        assert report.total_burnt == stake // 2
        rewarded = [
            l for l in report.ledgers if l.net_flow == stake // 2 - stake
        ]
        assert len(rewarded) == 1
        # Everyone else is simply down their (still-registered) stake.
        others = [
            l
            for l in report.ledgers
            if l.node_id != spammer.node_id and l not in rewarded
        ]
        assert all(l.net_flow == -stake for l in others)

    def test_honest_peers_keep_their_stake(self, deployment):
        net, _ = deployment
        spammer = net.peer(0)
        spammer.publish(b"y1")
        spammer.publish(b"y2", bypass_rate_limit=True)
        net.run(40.0)
        for peer in net.peers[1:]:
            assert net.contract.is_member(int(peer.commitment.element))

    def test_slashed_peer_cannot_rejoin_with_same_key(self, deployment):
        net, _ = deployment
        spammer = net.peer(0)
        spammer.publish(b"z1")
        spammer.publish(b"z2", bypass_rate_limit=True)
        net.run(40.0)
        # Publishing again fails: no leaf in the tree.
        with pytest.raises(RegistrationError):
            spammer.publish(b"back again?")

    def test_duplicate_relay_is_not_punished(self, deployment):
        """Gossip duplicates of a single message must never slash."""
        net, _ = deployment
        honest = net.peer(2)
        honest.publish(b"only once")
        net.run(20.0)
        assert honest.is_registered
        assert net.contract.is_member(int(honest.commitment.element))


class TestStaleEpochReplay:
    def test_old_epoch_messages_dropped(self):
        config = ProtocolConfig(epoch_length=5.0, max_network_delay=10.0)
        net = WakuRlnRelayNetwork(peer_count=8, seed=7, config=config)
        net.register_all()
        deliveries = net.collect_deliveries()
        net.start()
        net.run(3.0)
        # Craft a signal for a long-past epoch directly with the prover.
        attacker = net.peer(0)
        net.run(60.0)  # clock now at epoch ~12
        stale_epoch = 2
        signal = attacker.prover.create_signal(
            b"replay", stale_epoch, attacker.group.merkle_proof(
                attacker.leaf_index
            ),
        )
        from repro.waku.message import WakuMessage

        attacker.relay.publish(
            WakuMessage(payload=b"replay", rate_limit_proof=signal.to_bytes())
        )
        net.run(15.0)
        for node_id, msgs in deliveries.items():
            if node_id != attacker.node_id:
                assert b"replay" not in msgs


class TestModeledCryptoLatency:
    def test_publish_delayed_by_proving_time(self):
        config = ProtocolConfig(model_crypto_latency=True)
        net = WakuRlnRelayNetwork(peer_count=6, seed=11, config=config)
        net.register_all()
        deliveries = net.collect_deliveries()
        net.start()
        net.run(3.0)
        start = net.simulator.now
        net.peer(0).publish(b"slow proof")
        net.run(0.1)
        others = [
            m for nid, m in deliveries.items() if nid != net.peer(0).node_id
        ]
        assert not any(b"slow proof" in msgs for msgs in others)
        net.run(10.0)
        arrival_counts = sum(
            1 for msgs in others if b"slow proof" in msgs
        )
        assert arrival_counts == 5
        prove_time = config.performance_model.prove_seconds(
            config.merkle_depth
        )
        assert prove_time > 0.2  # depth 20 is a sizeable circuit
        del start
