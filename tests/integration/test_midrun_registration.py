"""Mid-run registrations against the replica-clone bootstrap fast path.

``register_all`` (and now ``add_peer``) bootstrap peers by cloning an
up-to-date replica instead of replaying the event log. These are the
regression tests that the clone is a genuine snapshot — not a live
alias — and that state adopted from it never goes *stale*: a rotated
identity registering after bootstrap must reach every router's root
window, and a peer adopting a post-slash replica must not keep claiming
its zeroed leaf.
"""

from __future__ import annotations

from repro.core.config import ProtocolConfig
from repro.core.protocol import WakuRlnRelayNetwork

CONFIG = ProtocolConfig(verification_cache_size=4096)


def _network(peers: int = 6, seed: int = 9) -> WakuRlnRelayNetwork:
    net = WakuRlnRelayNetwork(
        peer_count=peers,
        config=CONFIG,
        seed=seed,
        degree=None,
        block_interval=2.0,
    )
    net.register_all()
    return net


def test_adopt_sync_state_clears_stale_leaf_after_slash():
    """Regression: a slashed peer adopting a newer replica used to keep
    its pre-slash ``leaf_index`` and believe it was still registered —
    the clone went stale the moment the chain moved on."""
    net = _network()
    victim, reporter, reference = net.peers[2], net.peers[0], net.peers[1]
    net.chain.call_now(
        reporter.account,
        net.contract.address,
        "slash",
        int(victim.keypair.secret.element),
    )
    reference.sync()
    assert victim.is_registered  # its own replica hasn't seen the slash
    victim.adopt_sync_state(reference)
    assert not victim.group.contains(victim.commitment)
    assert victim.leaf_index is None
    assert not victim.is_registered


def test_adopt_sync_state_still_finds_own_leaf():
    """The fix must not break the normal bootstrap: a registered peer
    adopting a replica keeps (re-derives) its slot."""
    net = _network()
    reference, peer = net.peers[0], net.peers[3]
    expected = peer.leaf_index
    assert expected is not None
    peer.adopt_sync_state(reference)
    assert peer.leaf_index == expected


def test_rotated_registration_after_bootstrap_reaches_every_router():
    """A commitment registered *after* the replica-clone bootstrap —
    here via slash-then-rotate — must propagate its Merkle root to
    every router, clones included."""
    net = _network(peers=8)
    net.start()
    net.run(2.0)
    spammer = net.peers[-1]
    for i in range(3):
        spammer.publish(f"SPAM|{i}".encode(), bypass_rate_limit=True)
    net.run(10.0)  # slashed on-chain, removal synced network-wide
    assert not spammer.is_registered

    spammer.rotate_identity()
    net.run(10.0)  # registration mined; every replica applies it
    assert spammer.is_registered

    newest_root = spammer.group.root
    for peer in net.peers:
        assert peer.group.is_acceptable_root(newest_root), (
            f"{peer.node_id} never picked up the rotated registration"
        )
        assert peer.group.contains(spammer.commitment)

    deliveries = net.collect_deliveries()
    spammer.publish(b"MSG|post-rotation")
    net.run(5.0)
    received = sum(
        1
        for msgs in deliveries.values()
        if any(m.startswith(b"MSG|post-rotation") for m in msgs)
    )
    assert received == len(net.peers)


def test_add_peer_replica_bootstrap_matches_replay():
    """The mid-run join fast path adopts a clone; outcome must be
    byte-identical with replaying the full event log."""
    def join(bootstrap: str):
        net = _network(seed=31)
        net.start()
        net.run(5.0)
        newcomer = net.add_peer(bootstrap=bootstrap)
        net.run(20.0)  # registration mined + everyone synced
        return net, newcomer

    net_a, fast = join("replica")
    net_b, slow = join("replay")
    assert fast.is_registered and slow.is_registered
    assert fast.leaf_index == slow.leaf_index
    assert fast.group.root == slow.group.root
    assert fast.group.recent_roots()[-1] == slow.group.recent_roots()[-1]
    # The fast path skipped the genesis replay but still converged with
    # the incumbents.
    assert fast.group.root == net_a.peers[0].group.root


def test_add_peer_rejects_unknown_bootstrap_without_side_effects():
    import pytest

    from repro.errors import NetworkError

    net = _network()
    index_before = net._next_peer_index
    peers_before = len(net.peers)
    with pytest.raises(NetworkError):
        net.add_peer(bootstrap="replicaa")  # typo
    # The failed join left nothing behind: no phantom peer, no index
    # burn, no dangling overlay links.
    assert net._next_peer_index == index_before
    assert len(net.peers) == peers_before
    assert f"peer-{index_before}" not in net.network._nodes


def test_add_peer_replica_clone_is_independent_of_reference():
    """Mutating the reference replica after the join must not leak into
    the newcomer (the clone is a snapshot, not an alias)."""
    net = _network()
    net.start()
    net.run(2.0)
    reference = max(net.peers, key=lambda p: p._synced_log_index)
    newcomer = net.add_peer(register=False)
    root_before = newcomer.group.root
    # Drive the reference ahead: a new member registers and only the
    # reference syncs it.
    extra = net.add_peer(register=True, start=False)
    net.chain.mine_block(timestamp=net.simulator.now)
    reference.sync()
    assert reference.group.root != root_before
    assert newcomer.group.root == root_before
    del extra
