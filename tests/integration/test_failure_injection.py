"""Failure injection: loss, partitions, churn, chain stalls.

The protocol must stay safe (no false slashing, no spam admitted) and
eventually live under degraded conditions.
"""

import pytest

from repro.core import ProtocolConfig, WakuRlnRelayNetwork
from repro.sim.latency import LatencyModel, UniformLatency


def build(peer_count=12, seed=1, loss=0.0, **net_kwargs):
    latency = UniformLatency(
        base_seconds=0.03, spread_seconds=0.03, loss_probability=loss
    )
    net = WakuRlnRelayNetwork(
        peer_count=peer_count, seed=seed, latency=latency, **net_kwargs
    )
    net.register_all()
    deliveries = net.collect_deliveries()
    net.start()
    net.run(3.0)
    return net, deliveries


class TestLossyNetwork:
    def test_gossip_recovers_lost_messages(self):
        """With 20% loss, IHAVE/IWANT still achieves full coverage."""
        net, deliveries = build(peer_count=16, seed=5, loss=0.2)
        net.peer(0).publish(b"lossy hello")
        net.run(30.0)  # heartbeats carry IHAVE retries
        received = sum(
            1 for msgs in deliveries.values() if b"lossy hello" in msgs
        )
        assert received >= 15  # all peers (publisher included)

    def test_slashing_works_under_loss(self):
        net, _ = build(peer_count=12, seed=6, loss=0.15)
        spammer = net.peer(0)
        spammer.publish(b"l1")
        spammer.publish(b"l2", bypass_rate_limit=True)
        net.run(60.0)
        assert not net.contract.is_member(int(spammer.commitment.element))


class TestPartition:
    def test_partition_heals_and_message_spreads(self):
        net, deliveries = build(peer_count=10, seed=7, degree=None)  # full mesh
        ids = [p.node_id for p in net.peers]
        left, right = ids[:5], ids[5:]
        # Cut every cross link.
        for a in left:
            for b in right:
                net.network.disconnect(a, b)
        net.run(5.0)
        net.peer(0).publish(b"island message")
        net.run(10.0)
        right_got = sum(
            1 for nid in right if b"island message" in deliveries[nid]
        )
        assert right_got == 0  # partition is real
        # Heal one bridge; gossip (IHAVE window permitting) or at worst
        # the next publish crosses it.
        net.network.connect(left[0], right[0])
        net.run(10.0)
        net.peer(1).publish(b"after healing")
        net.run(20.0)
        right_after = sum(
            1 for nid in right if b"after healing" in deliveries[nid]
        )
        assert right_after == 5

    def test_no_false_slashing_across_partition(self):
        """Re-publishing the SAME message on both sides of a partition
        (e.g. by an overlay repairing itself) must never slash."""
        net, _ = build(peer_count=8, seed=8, degree=None)
        publisher = net.peer(0)
        publisher.publish(b"only message")
        net.run(30.0)
        assert net.contract.is_member(int(publisher.commitment.element))


class TestChurn:
    def test_crashed_peer_does_not_block_network(self):
        net, deliveries = build(peer_count=12, seed=9)
        victim = net.peer(3)
        victim.stop()
        net.network.detach(victim.node_id)
        net.run(5.0)
        net.peer(0).publish(b"post-crash")
        net.run(15.0)
        survivors = [
            p.node_id for p in net.peers if p.node_id != victim.node_id
        ]
        received = sum(
            1 for nid in survivors if b"post-crash" in deliveries[nid]
        )
        assert received == len(survivors)

    def test_restarted_peer_rejoins_via_sync(self):
        net, deliveries = build(peer_count=10, seed=10)
        victim = net.peer(2)
        neighbors = net.network.neighbors(victim.node_id)
        victim.stop()
        net.network.detach(victim.node_id)
        net.run(20.0)
        # Rejoin: reattach the same peer object, reconnect, re-announce.
        net.network.attach(victim.relay.router)
        for neighbor in neighbors:
            net.network.connect(victim.node_id, neighbor)
            victim.relay.router.announce_to(neighbor)
            net.peers[int(neighbor.split("-")[1])].relay.router.announce_to(
                victim.node_id
            )
        victim.start()
        victim.sync()
        net.run(10.0)
        net.peer(0).publish(b"welcome back")
        net.run(15.0)
        assert b"welcome back" in deliveries[victim.node_id]


class TestChainStall:
    def test_no_blocks_no_registration_but_relay_unaffected(self):
        """If the chain stalls, already-registered peers keep relaying."""
        config = ProtocolConfig()
        net = WakuRlnRelayNetwork(peer_count=8, seed=11, config=config)
        net.register_all()
        deliveries = net.collect_deliveries()
        net.start(mine_blocks=False)  # miner down
        net.run(5.0)
        net.peer(0).publish(b"chain is down")
        net.run(10.0)
        received = sum(
            1 for msgs in deliveries.values() if b"chain is down" in msgs
        )
        assert received == 8

    def test_slash_settles_once_mining_resumes(self):
        net = WakuRlnRelayNetwork(peer_count=8, seed=12)
        net.register_all()
        net.start(mine_blocks=False)
        net.run(3.0)
        spammer = net.peer(0)
        spammer.publish(b"m1")
        spammer.publish(b"m2", bypass_rate_limit=True)
        net.run(20.0)
        # Detected locally, but no block mined -> still on-chain member.
        assert net.contract.is_member(int(spammer.commitment.element))
        assert sum(p.slashes_submitted for p in net.peers) >= 1
        net.chain.mine_block(timestamp=net.simulator.now)
        net.run(10.0)  # peers sync the removal event
        assert not net.contract.is_member(int(spammer.commitment.element))
        assert not spammer.is_registered
