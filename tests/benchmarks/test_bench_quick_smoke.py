"""Tier-1 smoke job for the benchmark suite.

Benchmarks are not collected by the default test run (their files are
``bench_*.py``), which historically let them rot as APIs moved. This
test runs the whole suite in ``--bench-quick`` mode — every bench
script must import, build its rig and complete one tiny iteration —
inside a subprocess, so a bench failure surfaces in tier-1 without
tier-1 paying full benchmark cost.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_bench_quick_suite_runs():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    env.setdefault("PYTHONHASHSEED", "0")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "benchmarks",
            "-o",
            "python_files=bench_*.py",
            "--bench-quick",
            "--benchmark-disable",
            "-q",
            "-x",
            "-p",
            "no:cacheprovider",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=800,
    )
    assert proc.returncode == 0, (
        "bench quick-smoke failed:\n"
        + proc.stdout[-4000:]
        + proc.stderr[-2000:]
    )


def test_committed_benchmark_json_matches_schema():
    """Every committed results/*.json must parse against the schema.

    The JSON twins of the benchmark tables are the repo's perf
    trajectory; this guards the committed artefacts themselves, while
    ``record_table`` validates fresh payloads at write time.
    """
    import json
    import sys

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.analysis import validate_experiment_payload

    results = sorted((REPO_ROOT / "benchmarks" / "results").glob("*.json"))
    assert results, "no committed benchmark JSON results found"
    for path in results:
        payload = json.loads(path.read_text())
        validate_experiment_payload(payload)
        assert payload["name"] == path.stem
