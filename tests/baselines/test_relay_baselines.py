"""Tests for the baseline networks and the adversary models."""

import pytest

from repro.attacks import FloodSpammer, PowSpammer, SybilArmy
from repro.baselines.pow import ATTACKER_RIG, PowEnvelope
from repro.baselines.relay_baselines import (
    BaselineNetwork,
    PowRelayNetwork,
    scoring_network,
)


class TestBaselineNetwork:
    def test_plain_relay_delivers(self):
        net = BaselineNetwork(peer_count=8, seed=1)
        deliveries = net.collect_deliveries()
        net.start()
        net.run(3.0)
        from repro.waku.message import WakuMessage

        net.nodes[0].publish(WakuMessage(payload=b"plain"))
        net.run(5.0)
        received = sum(1 for m in deliveries.values() if b"plain" in m)
        assert received == 8

    def test_add_node_joins_topic(self):
        net = BaselineNetwork(peer_count=6, seed=2)
        deliveries = net.collect_deliveries()
        net.start()
        net.run(3.0)
        newcomer = net.add_node("newbie", ["peer-0", "peer-1"])
        got = []
        newcomer.on_message(lambda m, _id: got.append(m.payload))
        net.run(3.0)
        from repro.waku.message import WakuMessage

        newcomer.publish(WakuMessage(payload=b"from the newcomer"))
        net.run(5.0)
        received = sum(
            1 for m in deliveries.values() if b"from the newcomer" in m
        )
        assert received >= 5  # reaches (nearly) all original peers

    def test_flood_spammer_floods(self):
        net = BaselineNetwork(peer_count=6, seed=3)
        deliveries = net.collect_deliveries()
        net.start()
        net.run(2.0)
        flooder = FloodSpammer(net, "peer-0", rate_per_second=5.0)
        flooder.run(4.0)
        net.run(10.0)
        assert flooder.sent == 20
        spam_at_peer1 = sum(
            1 for m in deliveries["peer-1"] if m.startswith(b"SPAM")
        )
        assert spam_at_peer1 == 20  # nothing stops it


class TestPowRelayNetwork:
    def test_unmined_message_rejected(self):
        net = PowRelayNetwork(peer_count=5, seed=4, mining_bits=8)
        deliveries = net.collect_deliveries()
        net.start()
        net.run(2.0)
        from repro.waku.message import WakuMessage

        # Publish raw payload without mining.
        net.nodes[0].publish(WakuMessage(payload=b"no work attached"))
        net.run(5.0)
        others = {k: v for k, v in deliveries.items() if k != "peer-0"}
        assert all(not msgs for msgs in others.values())

    def test_mined_message_accepted(self):
        net = PowRelayNetwork(peer_count=5, seed=5, mining_bits=8)
        deliveries = net.collect_deliveries()
        net.start()
        net.run(2.0)
        delay = net.publish_with_pow(net.nodes[0], b"worked for this")
        assert delay > 0
        net.run(delay + 10.0)
        delivered = sum(
             1
            for msgs in deliveries.values()
            for m in msgs
            if b"worked for this" in m
        )
        assert delivered == 5

    def test_envelope_payload_roundtrip(self):
        net = PowRelayNetwork(peer_count=4, seed=6, mining_bits=6)
        deliveries = net.collect_deliveries()
        net.start()
        net.run(2.0)
        net.publish_with_pow(net.nodes[1], b"inner payload")
        net.run(30.0)
        envelopes = [
            PowEnvelope.from_bytes(m)
            for m in deliveries["peer-0"]
        ]
        assert any(e.payload == b"inner payload" for e in envelopes)

    def test_pow_spammer_rate_follows_hardware(self):
        net = PowRelayNetwork(peer_count=4, seed=7, difficulty_bits=18)
        spammer = PowSpammer(net, "peer-0", device=ATTACKER_RIG)
        assert spammer.sustainable_rate == pytest.approx(
            ATTACKER_RIG.hash_rate / 2**18
        )
        assert spammer.sustainable_rate > 100  # the attack is cheap


class TestScoringNetwork:
    def test_sybil_botnet_gets_spam_through(self):
        net = scoring_network(peer_count=10, seed=8)
        deliveries = net.collect_deliveries()
        net.start()
        net.run(2.0)
        army = SybilArmy(net, bot_count=4, rate_per_bot=2.0, shared_ip=None)
        army.deploy()
        army.run(5.0)
        net.run(20.0)
        honest_spam = sum(
            sum(1 for m in msgs if m.startswith(b"SPAM"))
            for nid, msgs in deliveries.items()
            if nid not in set(army.bots)
        )
        assert honest_spam > 0  # scoring alone does not stop a botnet

    def test_single_ip_sybils_graylisted(self):
        net = scoring_network(peer_count=10, seed=9)
        deliveries = net.collect_deliveries()
        net.start()
        net.run(2.0)
        army = SybilArmy(
            net, bot_count=6, rate_per_bot=2.0, shared_ip="198.51.100.9"
        )
        army.deploy()
        army.run(5.0)
        net.run(20.0)
        honest_spam = sum(
            sum(1 for m in msgs if m.startswith(b"SPAM"))
            for nid, msgs in deliveries.items()
            if nid not in set(army.bots)
        )
        assert honest_spam == 0  # colocation penalty catches naive Sybils

    def test_bots_are_not_removed_globally(self):
        """Even graylisted bots remain attached — no global removal,
        no financial cost: the paper's core critique."""
        net = scoring_network(peer_count=8, seed=10)
        net.start()
        net.run(2.0)
        army = SybilArmy(net, bot_count=3, shared_ip="198.51.100.9")
        army.deploy()
        army.run(3.0)
        net.run(10.0)
        for bot in army.bots:
            assert bot in net.network  # still connected, free to retry
