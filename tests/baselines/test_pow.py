"""Tests for the Whisper-style PoW baseline."""

import random

import pytest

from repro.baselines.pow import (
    ATTACKER_RIG,
    DESKTOP,
    IOT_DEVICE,
    PHONE,
    DeviceProfile,
    PowEnvelope,
    leading_zero_bits,
    mine_envelope,
    verify_envelope,
)
from repro.errors import VerificationError


class TestLeadingZeroBits:
    def test_all_zero_bytes(self):
        assert leading_zero_bits(b"\x00\x00\xff") == 16

    def test_partial_byte(self):
        assert leading_zero_bits(b"\x01") == 7
        assert leading_zero_bits(b"\x80") == 0
        assert leading_zero_bits(b"\x40") == 1

    def test_empty(self):
        assert leading_zero_bits(b"") == 0


class TestMining:
    def test_mined_envelope_verifies(self):
        envelope, attempts = mine_envelope(
            b"hello", 8, rng=random.Random(1)
        )
        assert attempts >= 1
        assert envelope.work_bits >= 8
        assert verify_envelope(envelope, 8)

    def test_higher_difficulty_fails_same_nonce_usually(self):
        envelope, _ = mine_envelope(b"hello", 4, rng=random.Random(2))
        # A 4-bit nonce rarely meets 24 bits.
        assert not verify_envelope(envelope, 24)

    def test_attempts_scale_with_difficulty(self):
        rng = random.Random(3)
        totals = {}
        for bits in (4, 10):
            attempts = [
                mine_envelope(f"m{i}".encode(), bits, rng=rng)[1]
                for i in range(10)
            ]
            totals[bits] = sum(attempts) / len(attempts)
        assert totals[10] > totals[4]

    def test_max_attempts_enforced(self):
        with pytest.raises(VerificationError):
            mine_envelope(b"x", 30, rng=random.Random(4), max_attempts=10)

    def test_tampered_payload_fails(self):
        envelope, _ = mine_envelope(b"original", 10, rng=random.Random(5))
        forged = PowEnvelope(
            payload=b"tampered", ttl=envelope.ttl, nonce=envelope.nonce
        )
        assert not verify_envelope(forged, 10)


class TestEnvelopeSerialization:
    def test_roundtrip(self):
        envelope, _ = mine_envelope(b"data", 6, rng=random.Random(6))
        assert PowEnvelope.from_bytes(envelope.to_bytes()) == envelope

    def test_truncated_rejected(self):
        with pytest.raises(VerificationError):
            PowEnvelope.from_bytes(b"short")


class TestDeviceProfiles:
    def test_mining_time_scales_with_difficulty(self):
        assert PHONE.expected_mining_seconds(20) == pytest.approx(
            2 * PHONE.expected_mining_seconds(19)
        )

    def test_device_ordering(self):
        t = lambda d: d.expected_mining_seconds(18)
        assert t(ATTACKER_RIG) < t(DESKTOP) < t(PHONE) < t(IOT_DEVICE)

    def test_paper_resource_restriction_claim(self):
        """PoW at a meaningful difficulty is prohibitive on weak devices
        (paper §I: 'computationally expensive hence not suitable for
        resource-constrained devices')."""
        assert PHONE.expected_mining_seconds(18) > 1.0
        assert IOT_DEVICE.expected_mining_seconds(18) > 10.0

    def test_attacker_asymmetry(self):
        """An attacker rig outproduces a phone by orders of magnitude."""
        rig_rate = 1 / ATTACKER_RIG.expected_mining_seconds(18)
        phone_rate = 1 / PHONE.expected_mining_seconds(18)
        assert rig_rate / phone_rate > 100

    def test_custom_profile(self):
        custom = DeviceProfile("laptop", 1_000_000.0)
        assert custom.expected_mining_seconds(20) == pytest.approx(
            2**20 / 1e6
        )
