"""Tests for the on-chain messaging baseline (E6's comparator)."""

import pytest

from repro.baselines.onchain_messaging import OnChainMessagingSystem


class TestMessageBoard:
    def test_post_visible_after_mining(self):
        system = OnChainMessagingSystem(block_interval=13.0)
        system.post(payload_hash=111, epoch=0, now=1.0)
        assert system.contract.message_count() == 0  # not yet mined
        delivered = system.mine(now=13.0)
        assert system.contract.message_count() == 1
        assert len(delivered) == 1
        assert delivered[0].latency == pytest.approx(12.0)

    def test_multiple_posts_one_block(self):
        system = OnChainMessagingSystem()
        for i in range(5):
            system.post(payload_hash=i + 1, epoch=0, now=float(i))
        delivered = system.mine(now=13.0)
        assert len(delivered) == 5
        assert system.contract.message_count() == 5

    def test_latency_depends_on_submission_time(self):
        system = OnChainMessagingSystem(block_interval=13.0)
        system.post(payload_hash=1, epoch=0, now=0.5)   # early in block
        system.post(payload_hash=2, epoch=0, now=12.5)  # just before seal
        delivered = system.mine(now=13.0)
        latencies = sorted(d.latency for d in delivered)
        assert latencies[0] == pytest.approx(0.5)
        assert latencies[1] == pytest.approx(12.5)

    def test_gas_charged_per_message(self):
        system = OnChainMessagingSystem(payload_bytes=256)
        system.post(payload_hash=7, epoch=0, now=0.0)
        delivered = system.mine(now=13.0)
        # tx base + calldata + storage: sending costs real gas — the
        # cost the paper's off-chain design saves entirely.
        assert delivered[0].gas_used > 21_000

    def test_empty_message_reverts(self):
        system = OnChainMessagingSystem()
        system.post(payload_hash=0, epoch=0, now=0.0)
        system.mine(now=13.0)
        assert system.contract.message_count() == 0

    def test_deliveries_accumulate(self):
        system = OnChainMessagingSystem()
        system.post(payload_hash=1, epoch=0, now=0.0)
        system.mine(now=13.0)
        system.post(payload_hash=2, epoch=1, now=14.0)
        system.mine(now=26.0)
        assert len(system.deliveries) == 2
