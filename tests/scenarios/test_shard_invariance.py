"""Shard-count invariance of full scenario runs.

The sharded kernel merges per-shard queues on the global ``(time,
sequence)`` order, so a seeded scenario must fingerprint identically
whether it ran on 1, 2 or 4 shards — the property that makes ``shards``
a pure execution knob, safe to flip on any workload.
"""

from __future__ import annotations

import pytest

from repro.core.protocol import WakuRlnRelayNetwork
from repro.scenarios import run_scenario, scenario
from repro.sim.shards import ShardedSimulator

PEERS = 20
DURATION = 30.0


@pytest.mark.parametrize(
    "name", ["honest-steady", "burst-spammer", "multi-topic-churn"]
)
def test_fingerprints_invariant_across_shard_counts(name):
    results = [
        run_scenario(
            scenario(name), peers=PEERS, duration=DURATION, shards=shards
        )
        for shards in (1, 2, 4)
    ]
    fingerprints = [r.fingerprint() for r in results]
    assert fingerprints[0] == fingerprints[1] == fingerprints[2]
    assert results[0].events_processed == results[2].events_processed


def test_city_scale_spec_smokes_tiny_at_one_and_eight_shards():
    """The 50k built-in, shrunk to CI size: runs to completion on the
    sharded kernel and fingerprints identically unsharded."""
    spec = scenario("city-scale-50k")
    assert spec.shards == 8
    # 40 s: the scenario's per-peer rate is so light that the single
    # tiny-scale publisher's first message lands only after ~38 s.
    sharded = run_scenario(spec, peers=PEERS, duration=40.0)
    unsharded = run_scenario(spec, peers=PEERS, duration=40.0, shards=1)
    assert sharded.fingerprint() == unsharded.fingerprint()
    assert sharded.delivery_rate > 0
    assert sharded.sim_time == pytest.approx(40.0)


def test_scenario_shard_stats_exposed_and_out_of_fingerprint():
    """The kernel accounts cross-shard traffic, but the accounting
    stays out of the result (it legitimately varies with the shard
    count, fingerprints must not)."""
    net = WakuRlnRelayNetwork(peer_count=12, seed=3, shards=3)
    assert isinstance(net.simulator, ShardedSimulator)
    net.register_all()
    net.start()
    net.run(10.0)
    net.stop()
    stats = net.simulator.shard_stats()
    assert stats["shards"] == 3
    assert sum(stats["events_by_shard"]) == net.simulator.events_processed
    assert stats["cross_shard_scheduled"] > 0
    result = run_scenario(
        scenario("honest-steady"), peers=PEERS, duration=10.0, shards=3
    )
    assert "cross_shard_scheduled" not in result.extras
    assert "shards" not in result.to_dict()


@pytest.mark.slow
def test_city_scale_50k_full_scale_completes():
    """The real thing: 50000 peers on 8 shards (``pytest -m slow``)."""
    result = run_scenario(scenario("city-scale-50k"))
    assert result.peers_started == 50000
    assert result.delivery_rate > 0.5
