"""Serial-vs-parallel equivalence: the shard × worker test matrix.

Parallel mode (``parallel_workers``) runs the full stack on the
window-isolated kernel — per-entity RNG streams, barrier-synced chain
replicas, cross-worker port packets. Its correctness claim is that the
partition is *invisible*: every cell of the shards × workers matrix
must fingerprint bit-identically to the mode's serial reference, the
(shards=1, workers=1) cell. That includes the forked cells, where the
chain state peers observe was reassembled from pickled op streams and
the measurements were merged across real OS processes.

The reference is the parallel mode's own (1, 1) cell, *not* the
lockstep kernels: per-entity RNG streams intentionally change
individual draws, so the two modes are distinct seeded universes.
"""

from __future__ import annotations

import pytest

from repro.errors import NetworkError, ScenarioError
from repro.scenarios import run_scenario, scenario
from repro.scenarios.spec import ScenarioSpec

PEERS = 24
DURATION = 8.0

#: Every (shards, workers) cell the tentpole claims equivalence for.
MATRIX = [(s, w) for s in (1, 2, 4) for w in (1, 2, 4)]

_reference_cache = {}


def _cell(name, shards, workers):
    return run_scenario(
        scenario(name).scaled(peers=PEERS, duration=DURATION),
        shards=shards,
        parallel_workers=workers,
    )


def _reference(name):
    if name not in _reference_cache:
        _reference_cache[name] = _cell(name, 1, 1)
    return _reference_cache[name]


@pytest.mark.parametrize("shards,workers", MATRIX)
@pytest.mark.parametrize(
    "name", ["rotating-sybil-economics", "delegated-enforcement"]
)
def test_matrix_cell_matches_serial_reference(name, shards, workers):
    reference = _reference(name)
    result = _cell(name, shards, workers)
    assert result.fingerprint() == reference.fingerprint()


def test_matrix_economics_invariance():
    """The money trail — the paper's cost-of-attack claim — survives
    partitioning: slashes, burns, rewards, fees and the per-epoch
    economics series are equal on every cell, not just the digest."""
    reference = _reference("delegated-enforcement")
    assert reference.members_slashed > 0, "attack must actually settle"
    for shards, workers in [(2, 2), (4, 4)]:
        result = _cell("delegated-enforcement", shards, workers)
        assert result.members_slashed == reference.members_slashed
        assert result.stake_burnt == reference.stake_burnt
        assert result.reporter_rewards == reference.reporter_rewards
        assert result.watchtower_rewards == reference.watchtower_rewards
        assert result.delegation_fees == reference.delegation_fees
        assert result.attacker_spend == reference.attacker_spend
        assert result.identity_rotations == reference.identity_rotations
        assert result.series == reference.series


def test_deep_run_equivalence_through_peer_exchange():
    """Equivalence through the Peer-Exchange regime. Short runs never
    PRUNE with PX, so they cannot catch a runtime topology rewire that
    leaks across the partition (a dial used to mutate the remote
    endpoint's adjacency synchronously — invisible to the worker
    owning it, and forked runs drifted after ~15 simulated seconds).
    The dial count is asserted non-zero so this test can never pass
    vacuously by staying out of that regime."""
    from dataclasses import replace

    from repro.scenarios.runner import ScenarioRunner

    spec = scenario("delegated-enforcement").scaled(
        peers=PEERS, duration=30.0
    )
    ref_runner = ScenarioRunner(replace(spec, shards=1, parallel_workers=1))
    reference = ref_runner.run()
    assert ref_runner.net.metrics.counters["gossipsub.px_dials"] > 0, (
        "deep run must actually reach the PX-dial regime"
    )
    for shards, workers in [(2, 2), (4, 4)]:
        result = run_scenario(spec, shards=shards, parallel_workers=workers)
        assert result.fingerprint() == reference.fingerprint()


def test_parallel_mode_is_deterministic_across_repeats():
    first = _cell("rotating-sybil-economics", 2, 2)
    second = _cell("rotating-sybil-economics", 2, 2)
    assert first.fingerprint() == second.fingerprint()


def test_excess_workers_clamp_to_shard_count():
    reference = _reference("rotating-sybil-economics")
    result = _cell("rotating-sybil-economics", 2, 4)
    assert result.fingerprint() == reference.fingerprint()


def test_parallel_spec_rejects_churn_faults_and_baseline():
    base = dict(
        name="x", description="x", peers=8, parallel_workers=2
    )
    from repro.scenarios.spec import ChurnModel, FaultPlan, WatchtowerSpec

    with pytest.raises(ScenarioError, match="churn"):
        ScenarioSpec(
            **base,
            churn=ChurnModel(join_interval=1.0, max_joins=2),
        )
    with pytest.raises(ScenarioError, match="fault"):
        ScenarioSpec(
            **base,
            watchtowers=WatchtowerSpec(count=1),
            faults=(FaultPlan(target="watchtower-0", crash_at=1.0),),
        )
    with pytest.raises(ScenarioError, match="baseline"):
        ScenarioSpec(**base, compare_baseline=True)
    with pytest.raises(ScenarioError, match="parallel_window"):
        ScenarioSpec(**base, parallel_window=0.0)
    with pytest.raises(ScenarioError, match="parallel_workers"):
        ScenarioSpec(name="x", description="x", parallel_workers=-1)


def test_window_wider_than_minimum_latency_rejected():
    spec = scenario("rotating-sybil-economics").scaled(
        peers=PEERS, duration=DURATION
    )
    from dataclasses import replace

    wide = replace(spec, parallel_workers=1, parallel_window=10.0)
    with pytest.raises(NetworkError, match="minimum"):
        run_scenario(wide)


def test_parallel_results_skip_partition_dependent_extras():
    """Shared verification-cache hit rates and membership-store
    sharing counters depend on which worker saw a message first; the
    parallel result must not report them."""
    result = _cell("delegated-enforcement", 2, 2)
    assert "verification_cache_hit_rate" not in result.extras
    assert "membership_events" not in result.extras
