"""Serial-vs-parallel equivalence: the shard × worker test matrix.

Parallel mode (``parallel_workers``) runs the full stack on the
window-isolated kernel — per-entity RNG streams, barrier-synced chain
replicas, cross-worker port packets. Its correctness claim is that the
partition is *invisible*: every cell of the shards × workers matrix
must fingerprint bit-identically to the mode's serial reference, the
(shards=1, workers=1) cell. That includes the forked cells, where the
chain state peers observe was reassembled from pickled op streams and
the measurements were merged across real OS processes.

The reference is the parallel mode's own (1, 1) cell, *not* the
lockstep kernels: per-entity RNG streams intentionally change
individual draws, so the two modes are distinct seeded universes.
"""

from __future__ import annotations

import pytest

from repro.errors import NetworkError, ScenarioError
from repro.scenarios import run_scenario, scenario
from repro.scenarios.spec import ScenarioSpec

PEERS = 24
DURATION = 8.0

#: Every (shards, workers) cell the tentpole claims equivalence for.
MATRIX = [(s, w) for s in (1, 2, 4) for w in (1, 2, 4)]

_reference_cache = {}


def _cell(name, shards, workers):
    return run_scenario(
        scenario(name).scaled(peers=PEERS, duration=DURATION),
        shards=shards,
        parallel_workers=workers,
    )


def _reference(name):
    if name not in _reference_cache:
        _reference_cache[name] = _cell(name, 1, 1)
    return _reference_cache[name]


@pytest.mark.parametrize("shards,workers", MATRIX)
@pytest.mark.parametrize(
    "name", ["rotating-sybil-economics", "delegated-enforcement"]
)
def test_matrix_cell_matches_serial_reference(name, shards, workers):
    reference = _reference(name)
    result = _cell(name, shards, workers)
    assert result.fingerprint() == reference.fingerprint()


def test_matrix_economics_invariance():
    """The money trail — the paper's cost-of-attack claim — survives
    partitioning: slashes, burns, rewards, fees and the per-epoch
    economics series are equal on every cell, not just the digest."""
    reference = _reference("delegated-enforcement")
    assert reference.members_slashed > 0, "attack must actually settle"
    for shards, workers in [(2, 2), (4, 4)]:
        result = _cell("delegated-enforcement", shards, workers)
        assert result.members_slashed == reference.members_slashed
        assert result.stake_burnt == reference.stake_burnt
        assert result.reporter_rewards == reference.reporter_rewards
        assert result.watchtower_rewards == reference.watchtower_rewards
        assert result.delegation_fees == reference.delegation_fees
        assert result.attacker_spend == reference.attacker_spend
        assert result.identity_rotations == reference.identity_rotations
        assert result.series == reference.series


def test_deep_run_equivalence_through_peer_exchange():
    """Equivalence through the Peer-Exchange regime. Short runs never
    PRUNE with PX, so they cannot catch a runtime topology rewire that
    leaks across the partition (a dial used to mutate the remote
    endpoint's adjacency synchronously — invisible to the worker
    owning it, and forked runs drifted after ~15 simulated seconds).
    The dial count is asserted non-zero so this test can never pass
    vacuously by staying out of that regime."""
    from dataclasses import replace

    from repro.scenarios.runner import ScenarioRunner

    spec = scenario("delegated-enforcement").scaled(
        peers=PEERS, duration=30.0
    )
    ref_runner = ScenarioRunner(replace(spec, shards=1, parallel_workers=1))
    reference = ref_runner.run()
    assert ref_runner.net.metrics.counters["gossipsub.px_dials"] > 0, (
        "deep run must actually reach the PX-dial regime"
    )
    for shards, workers in [(2, 2), (4, 4)]:
        result = run_scenario(spec, shards=shards, parallel_workers=workers)
        assert result.fingerprint() == reference.fingerprint()


def test_parallel_mode_is_deterministic_across_repeats():
    first = _cell("rotating-sybil-economics", 2, 2)
    second = _cell("rotating-sybil-economics", 2, 2)
    assert first.fingerprint() == second.fingerprint()


def test_excess_workers_clamp_to_shard_count():
    reference = _reference("rotating-sybil-economics")
    result = _cell("rotating-sybil-economics", 2, 4)
    assert result.fingerprint() == reference.fingerprint()


def test_parallel_spec_accepts_churn_faults_and_baseline():
    """Feature parity: churn, fault injection and baseline comparison
    all construct cleanly in parallel mode now (churn plans are
    precomputed on the shared event grid, faults pin to shard 0,
    baselines run on the coordinator). Only genuinely malformed
    parallel parameters still raise — as the typed spec error."""
    base = dict(
        name="x", description="x", peers=8, parallel_workers=2
    )
    from repro.errors import ScenarioSpecError
    from repro.scenarios.spec import ChurnModel, FaultPlan, WatchtowerSpec

    ScenarioSpec(
        **base,
        churn=ChurnModel(join_interval=1.0, max_joins=2),
    )
    ScenarioSpec(
        **base,
        watchtowers=WatchtowerSpec(count=1),
        faults=(FaultPlan(target="watchtower-0", crash_at=1.0),),
    )
    ScenarioSpec(**base, compare_baseline=True)
    with pytest.raises(ScenarioError, match="parallel_window"):
        ScenarioSpec(**base, parallel_window=0.0)
    with pytest.raises(ScenarioError, match="parallel_workers"):
        ScenarioSpec(name="x", description="x", parallel_workers=-1)
    # The typed error carries the offending field for tooling.
    with pytest.raises(ScenarioSpecError) as excinfo:
        ScenarioSpec(**base, parallel_window=0.0)
    assert "parallel_window" in excinfo.value.problems


def test_every_builtin_scenario_accepted_in_parallel_mode():
    """The rejection list is empty for all built-ins — the feature-
    parity bar of this tentpole. ``parallel_rejections`` stays the
    single aggregation point for future incompatibilities."""
    from repro.scenarios.registry import all_scenarios

    for spec in all_scenarios():
        assert spec.parallel_rejections() == (), spec.name


def test_window_wider_than_minimum_latency_rejected():
    spec = scenario("rotating-sybil-economics").scaled(
        peers=PEERS, duration=DURATION
    )
    from dataclasses import replace

    wide = replace(spec, parallel_workers=1, parallel_window=10.0)
    with pytest.raises(NetworkError, match="minimum"):
        run_scenario(wide)


def test_parallel_results_report_barrier_memo_hit_rate():
    """The barrier-synced memo cache makes verification reuse a run
    fact again (committed snapshots evolve identically on every
    layout), so parallel results report the hit rate — and it must be
    equal across cells. Membership-store sharing counters remain
    per-partition artifacts and stay out."""
    reference = _reference("delegated-enforcement")
    result = _cell("delegated-enforcement", 2, 2)
    assert "verification_cache_hit_rate" in result.extras
    assert (
        result.extras["verification_cache_hit_rate"]
        == reference.extras["verification_cache_hit_rate"]
    )
    assert "membership_events" not in result.extras


def test_churn_cell_matches_serial_reference():
    """Churn was the last excluded runtime process: joins and leaves
    now execute from a plan every worker derives identically. The
    scenario must actually churn (joined/left non-zero) and every
    forked cell must agree with the (1, 1) reference bit-for-bit."""
    spec = scenario("high-churn").scaled(peers=PEERS, duration=20.0)
    reference = run_scenario(spec, shards=1, parallel_workers=1)
    assert reference.joined > 0, "plan must produce joins"
    assert reference.left > 0, "plan must produce leaves"
    for shards, workers in [(2, 2), (4, 4)]:
        result = run_scenario(spec, shards=shards, parallel_workers=workers)
        assert result.fingerprint() == reference.fingerprint()
        assert result.joined == reference.joined
        assert result.left == reference.left
        assert result.peers_final == reference.peers_final


def test_fault_cell_matches_serial_reference():
    """Delegated-enforcement crash/recovery under partitioning: the
    fault driver pins the victim service to shard 0 and keys its
    events on the partition-invariant grid, so the recovery accounting
    must be a run fact."""
    spec = scenario("delegated-enforcement-crash").scaled(
        peers=PEERS, duration=30.0
    )
    reference = run_scenario(spec, shards=1, parallel_workers=1)
    assert reference.recovery_time > 0, "crash must actually recover"
    for shards, workers in [(2, 2), (4, 4)]:
        result = run_scenario(spec, shards=shards, parallel_workers=workers)
        assert result.fingerprint() == reference.fingerprint()
        assert result.recovery_time == reference.recovery_time
        assert result.missed_slashes == reference.missed_slashes


def test_million_id_city_tiny_scale_across_workers():
    """The flagship scenario's whole feature set — sharded membership
    registry, pre-registered genesis population, eager nullifier GC,
    streaming metrics — through the windowed path on 1, 2 and 4
    workers. Fingerprints and the registry/GC measurements must be
    bit-identical: subtree materialization merges as an index-set
    union, nullifier GC as per-peer sums."""
    spec = scenario("million-id-city").scaled(peers=48, duration=6.0)
    results = {
        workers: run_scenario(spec, parallel_workers=workers)
        for workers in (1, 2, 4)
    }
    reference = results[1]
    assert reference.extras["membership_subtrees_materialized"] > 0
    assert "nullifier_entries_pruned" in reference.extras
    for workers in (2, 4):
        result = results[workers]
        assert result.fingerprint() == reference.fingerprint()
        assert (
            result.extras["membership_subtrees_materialized"]
            == reference.extras["membership_subtrees_materialized"]
        )
        assert (
            result.extras["nullifier_entries_pruned"]
            == reference.extras["nullifier_entries_pruned"]
        )
