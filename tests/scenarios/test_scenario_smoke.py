"""Smoke-run every registered scenario at tiny scale.

Each scenario must complete, produce sane metrics, and (per seed) be
fully deterministic. Full-scale runs are opt-in via ``-m slow``.
"""

from __future__ import annotations

import pytest

from repro.scenarios import all_scenarios, run_scenario, scenario, scenario_names

SMOKE_PEERS = 20
SMOKE_DURATION = 40.0

#: Captured at collection time; the guard test below asserts no
#: scenario registered later escapes the smoke parametrization.
SMOKE_NAMES = [spec.name for spec in all_scenarios()]


@pytest.mark.parametrize("name", SMOKE_NAMES)
def test_every_registered_scenario_smokes(name):
    spec = scenario(name)
    result = run_scenario(spec, peers=SMOKE_PEERS, duration=SMOKE_DURATION)
    assert result.scenario == name
    assert result.peers_started == SMOKE_PEERS
    assert result.sim_time == pytest.approx(SMOKE_DURATION)
    assert result.peers_final == (
        SMOKE_PEERS + result.joined - result.left
    )
    if spec.traffic.active_fraction > 0:
        assert result.honest_published > 0
        # Under churn the rate can marginally exceed 1: late joiners
        # may catch older messages through IHAVE/IWANT gossip.
        bound = 1.05 if spec.churn.active else 1.0
        assert 0.0 < result.delivery_rate <= bound
    if spec.adversaries.total_count:
        # Rate violations detected and punished, and the punishment
        # settled on-chain *during* the run: stake burnt, reporters paid.
        assert result.spam_published > 0
        assert result.counters.get("validator.double_signals", 0) > 0
        assert result.members_slashed > 0
        config = spec.build_config()
        assert result.stake_burnt > 0
        assert result.reporter_rewards > 0
        # Conservation: every slashed stake splits into burn + reward.
        assert (
            result.stake_burnt + result.reporter_rewards
            == result.members_slashed * config.stake_wei
        )
    if spec.adversaries.spammer_count:
        # Spam containment: honest peers saw at most ~1 relayed spam
        # message per spammer-epoch, never the whole burst.
        per_peer_bound = (
            result.spam_published / max(spec.adversaries.burst, 1) + 1
        )
        assert result.spam_per_honest_peer <= per_peer_bound
    if spec.adversaries.groups:
        # Engine scenarios emit the attack-economics series; attacker
        # cost is monotonically non-decreasing by construction.
        costs = result.series.get("attacker_cost_wei", [])
        assert costs, "engine scenarios must produce a cost series"
        assert costs == sorted(costs)
        assert result.attacker_spend > 0
        assert result.attacker_spend == (
            result.series["registrations"][-1] * spec.build_config().stake_wei
        )
    if spec.churn.active:
        assert result.joined > 0 or result.left > 0
    if spec.compare_baseline:
        assert "baseline_spam_delivered" in result.extras
        assert (
            result.extras["baseline_spam_per_honest_peer"]
            > result.spam_per_honest_peer
        )


def test_rotating_sybil_economics_rotates_at_tiny_scale():
    """The acceptance scenario: at least one identity rotation, with
    attacker cost climbing while spam keeps being delivered."""
    result = run_scenario(
        scenario("rotating-sybil-economics"),
        peers=SMOKE_PEERS,
        duration=SMOKE_DURATION,
    )
    assert result.identity_rotations >= 1
    assert result.members_slashed >= 1
    assert result.spam_delivered > 0
    costs = result.series["attacker_cost_wei"]
    assert costs == sorted(costs)
    assert costs[-1] > costs[0]
    # Determinism: the same spec and seed reproduce the same run.
    again = run_scenario(
        scenario("rotating-sybil-economics"),
        peers=SMOKE_PEERS,
        duration=SMOKE_DURATION,
    )
    assert again.fingerprint() == result.fingerprint()


def test_smoke_scale_is_within_ci_budget():
    """Guard the ≤50-peer promise the tier-1 suite relies on."""
    assert SMOKE_PEERS <= 50


def test_every_registered_scenario_is_smoke_covered():
    """Collection guard: a scenario registered without smoke coverage
    (e.g. from a plugin or a later import) must fail loudly here."""
    assert set(SMOKE_NAMES) == set(scenario_names()), (
        "scenarios registered after smoke collection: "
        f"{sorted(set(scenario_names()) - set(SMOKE_NAMES))}"
    )


@pytest.mark.slow
@pytest.mark.parametrize(
    "name", [spec.name for spec in all_scenarios()]
)
def test_full_scale_scenarios(name):
    """The registered (full) scale; run with ``pytest -m slow``."""
    result = run_scenario(scenario(name))
    assert result.sim_time > 0
    assert result.delivery_rate > 0.5
