"""Smoke-run every registered scenario at tiny scale.

Each scenario must complete, produce sane metrics, and (per seed) be
fully deterministic. Full-scale runs are opt-in via ``-m slow``.
"""

from __future__ import annotations

import pytest

from repro.scenarios import all_scenarios, run_scenario, scenario

SMOKE_PEERS = 20
SMOKE_DURATION = 40.0


@pytest.mark.parametrize(
    "name", [spec.name for spec in all_scenarios()]
)
def test_every_registered_scenario_smokes(name):
    spec = scenario(name)
    result = run_scenario(spec, peers=SMOKE_PEERS, duration=SMOKE_DURATION)
    assert result.scenario == name
    assert result.peers_started == SMOKE_PEERS
    assert result.sim_time == pytest.approx(SMOKE_DURATION)
    assert result.peers_final == (
        SMOKE_PEERS + result.joined - result.left
    )
    if spec.traffic.active_fraction > 0:
        assert result.honest_published > 0
        # Under churn the rate can marginally exceed 1: late joiners
        # may catch older messages through IHAVE/IWANT gossip.
        bound = 1.05 if spec.churn.active else 1.0
        assert 0.0 < result.delivery_rate <= bound
    if spec.adversaries.spammer_count:
        # Rate violations detected and punished.
        assert result.spam_published > 0
        assert result.counters.get("validator.double_signals", 0) > 0
        assert result.members_slashed > 0
        # Spam containment: honest peers saw at most ~1 relayed spam
        # message per spammer-epoch, never the whole burst.
        per_peer_bound = (
            result.spam_published / max(spec.adversaries.burst, 1) + 1
        )
        assert result.spam_per_honest_peer <= per_peer_bound
    if spec.churn.active:
        assert result.joined > 0 or result.left > 0
    if spec.compare_baseline:
        assert "baseline_spam_delivered" in result.extras
        assert (
            result.extras["baseline_spam_per_honest_peer"]
            > result.spam_per_honest_peer
        )


def test_smoke_scale_is_within_ci_budget():
    """Guard the ≤50-peer promise the tier-1 suite relies on."""
    assert SMOKE_PEERS <= 50


@pytest.mark.slow
@pytest.mark.parametrize(
    "name", [spec.name for spec in all_scenarios()]
)
def test_full_scale_scenarios(name):
    """The registered (full) scale; run with ``pytest -m slow``."""
    result = run_scenario(scenario(name))
    assert result.sim_time > 0
    assert result.delivery_rate > 0.5
