"""Scenario-harness integration of delegated enforcement: spec
validation, fault-plan scaling, runner wiring and the registered
``delegated-enforcement*`` scenario family."""

import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    FaultPlan,
    ScenarioResult,
    ScenarioSpec,
    WatchtowerSpec,
    run_scenario,
    scenario,
)

SMOKE_PEERS = 20
SMOKE_DURATION = 40.0


def smoke(name, seed=None):
    spec = scenario(name)
    if seed is not None:
        spec = spec.scaled(seed=seed)
    return run_scenario(spec, peers=SMOKE_PEERS, duration=SMOKE_DURATION)


class TestSpecValidation:
    def test_faults_require_watchtowers(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec(
                name="x",
                description="d",
                peers=10,
                duration=10.0,
                faults=(FaultPlan("watchtower-0", crash_at=1.0),),
            )

    def test_fault_target_must_name_a_service(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec(
                name="x",
                description="d",
                peers=10,
                duration=10.0,
                watchtowers=WatchtowerSpec(count=1),
                faults=(FaultPlan("watchtower-7", crash_at=1.0),),
            )

    def test_restart_must_follow_crash(self):
        with pytest.raises(ScenarioError):
            FaultPlan("watchtower-0", crash_at=5.0, restart_at=3.0)

    def test_scaled_rescales_fault_times(self):
        spec = ScenarioSpec(
            name="x",
            description="d",
            peers=10,
            duration=100.0,
            watchtowers=WatchtowerSpec(count=1),
            faults=(
                FaultPlan("watchtower-0", crash_at=10.0, restart_at=25.0),
            ),
        )
        scaled = spec.scaled(duration=40.0)
        assert scaled.faults[0].crash_at == pytest.approx(4.0)
        assert scaled.faults[0].restart_at == pytest.approx(10.0)

    def test_watchtower_topics_must_be_protected(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec(
                name="x",
                description="d",
                peers=10,
                duration=10.0,
                watchtowers=WatchtowerSpec(topics=("/waku/2/ghost",)),
            )


class TestResultSerialization:
    def test_watchtower_keys_absent_without_services(self):
        """Historical fingerprints must not shift for scenarios that
        never configure watchtowers."""
        result = ScenarioResult(
            scenario="s",
            seed=0,
            peers_started=1,
            peers_final=1,
            joined=0,
            left=0,
            honest_published=0,
            honest_delivered=0,
            delivery_rate=0.0,
            spam_published=0,
            spam_delivered=0,
            spam_per_honest_peer=0.0,
            slashes_submitted=0,
            members_slashed=0,
            proof_verifications=0,
            verification_cache_hits=0,
        )
        data = result.to_dict()
        assert "watchtower_rewards" not in data
        assert "watchtowers" not in data

    def test_watchtower_keys_present_with_services(self):
        result = smoke("delegated-enforcement")
        data = result.to_dict()
        assert data["watchtower_rewards"] > 0
        assert "watchtower-0" in data["watchtowers"]
        assert "recovery_time" in data
        assert "missed_slashes" in data


class TestDelegatedEnforcementScenario:
    def test_watchtower_is_sole_enforcer(self):
        result = smoke("delegated-enforcement")
        stats = result.watchtowers["watchtower-0"]
        # Full delegation: every slash submission came from the tower.
        assert result.slashes_submitted == stats["submitted"]
        assert result.members_slashed > 0
        assert stats["slashes_won"] == result.members_slashed
        assert result.missed_slashes == 0

    def test_fees_and_rewards_surface(self):
        result = smoke("delegated-enforcement")
        stats = result.watchtowers["watchtower-0"]
        # Every honest peer paid the one-off delegation fee.
        assert stats["delegators"] > 0
        assert result.delegation_fees == stats["delegators"] * 10**15
        assert result.watchtower_rewards == stats["rewards_wei"]
        assert stats["rewards_wei"] > 0
        assert stats["paid_out_wei"] + stats["kept_wei"] == (
            stats["rewards_wei"]
        )

    def test_deterministic_fingerprint(self):
        first = smoke("delegated-enforcement")
        second = smoke("delegated-enforcement")
        assert first.fingerprint() == second.fingerprint()


class TestCrashScenario:
    def test_crash_and_recovery_recorded(self):
        result = smoke("delegated-enforcement-crash")
        stats = result.watchtowers["watchtower-0"]
        assert stats["crashes"] == 1
        assert stats["replayed_events"] > 0
        assert result.members_slashed > 0
        assert stats["pending"] == 0
        assert result.missed_slashes == 0


class TestRaceScenario:
    def test_exactly_one_winner_per_offender(self):
        result = smoke("delegated-enforcement-races")
        towers = result.watchtowers
        assert len(towers) == 2
        won = sum(s["slashes_won"] for s in towers.values())
        lost = sum(s["lost_races"] for s in towers.values())
        assert won == result.members_slashed
        assert won + lost == sum(
            s["submitted"] for s in towers.values()
        )
        # Both towers watched the same traffic.
        detected = {s["detected"] for s in towers.values()}
        assert len(detected) == 1
