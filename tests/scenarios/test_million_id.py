"""million-id-city: pre-registered genesis identities end to end.

Tiny-scale versions of the scenario's acceptance claims: the dormant
population registers at genesis and is visible to every layer, the
sharded registry backs real traffic, and the bounded configuration's
memory does not grow with run length (the tier-1 flatness assert; the
full curve lives in ``benchmarks/bench_million_id.py``).
"""

from __future__ import annotations

import gc
import tracemalloc

import pytest

from repro.core.config import ProtocolConfig
from repro.core.protocol import WakuRlnRelayNetwork, genesis_commitments
from repro.errors import RegistrationError
from repro.scenarios import run_scenario, scenario

CONFIG = ProtocolConfig(
    merkle_depth=8,
    membership_sub_depth=4,
    eager_nullifier_gc=True,
    shared_membership_store=True,
)


def _network(pre: int, peers: int = 6):
    return WakuRlnRelayNetwork(
        peer_count=peers,
        config=CONFIG,
        seed=5,
        pre_registered=pre,
    )


class TestPreRegisteredGenesis:
    def test_dormant_identities_visible_everywhere(self):
        net = _network(pre=100)
        net.register_all()
        for peer in net.peers:
            assert peer.group.member_count == 100 + len(net.peers)
            assert peer.is_registered
        # The contract agrees, and can address genesis members.
        assert net.contract.member_count() == 100 + len(net.peers)
        pks = genesis_commitments(100, seed=5)  # the network's seed
        assert net.contract.member_at(0) == pks[0]
        assert net.contract.is_member(pks[50])

    def test_live_peers_get_slots_after_the_dormant_block(self):
        net = _network(pre=40, peers=4)
        net.register_all()
        indices = sorted(
            net.membership_store.canonical().find_leaf_at(
                peer.commitment.element._value,
                net.membership_store.canonical().version,
            )
            for peer in net.peers
        )
        assert indices == [40, 41, 42, 43]

    def test_traffic_flows_over_pre_registered_group(self):
        net = _network(pre=60)
        net.register_all()
        deliveries = net.collect_deliveries()
        net.start()
        net.run(3.0)  # let the gossip mesh form
        net.peers[0].publish(b"hello over a pre-seeded group")
        net.run(5.0)
        received = sum(
            1
            for payloads in deliveries.values()
            if b"hello over a pre-seeded group" in payloads
        )
        assert received >= len(net.peers) - 1

    def test_capacity_guard(self):
        with pytest.raises(RegistrationError):
            _network(pre=2**8 - 3, peers=6)  # 253 + 6 > 256

    def test_pre_registration_requires_registry_design(self):
        config = ProtocolConfig(merkle_depth=8, contract_design="onchain_tree")
        with pytest.raises(RegistrationError):
            WakuRlnRelayNetwork(
                peer_count=4, config=config, seed=1, pre_registered=10
            )

    def test_genesis_member_slashable(self):
        # A genesis member whose secret leaks is slashable like any
        # other: the contract tombstones its immutable slot. Uses a
        # crafted genesis list whose sk we know (the derived-commitment
        # lists have no published secrets).
        from repro.crypto.field import Fr
        from repro.crypto.hashing import hash1
        from repro.eth.chain import Blockchain
        from repro.eth.contracts import MembershipRegistry

        secret = 424242
        leaked_pk = int(hash1(Fr(secret)))
        pks = (leaked_pk, *genesis_commitments(5, seed=9))
        contract = MembershipRegistry("m", stake_wei=10**18)
        chain = Blockchain()
        chain.deploy(contract)
        contract.genesis_register(pks)
        chain.create_account("reporter", balance=10**18)
        assert contract.is_member(leaked_pk)
        assert chain.call_now("reporter", "m", "slash", secret).success
        assert not contract.is_member(leaked_pk)
        assert contract.member_at(0) == 0  # tombstoned, not reordered
        assert contract.member_at(1) == pks[1]
        # Double-slash of the same genesis slot reverts.
        receipt = chain.call_now("reporter", "m", "slash", secret)
        assert not receipt.success
        assert "unknown member" in receipt.error


class TestScenarioRegistration:
    def test_million_id_city_spec_flags(self):
        spec = scenario("million-id-city")
        assert spec.pre_registered == 950_000
        assert spec.streaming_metrics
        assert spec.config_overrides["membership_sub_depth"] == 10
        assert spec.config_overrides["eager_nullifier_gc"] is True
        capacity = 2 ** spec.config_overrides["merkle_depth"]
        assert spec.pre_registered + spec.peers < capacity

    def test_scaled_spec_scales_the_dormant_population(self):
        spec = scenario("million-id-city")
        tiny = spec.scaled(peers=50)
        assert tiny.pre_registered == round(950_000 * 50 / 50_000)
        assert tiny.streaming_metrics

    def test_tiny_run_reports_bounded_state_extras(self):
        result = run_scenario(
            scenario("million-id-city"), peers=15, duration=20.0
        )
        assert "membership_subtrees_materialized" in result.extras
        assert "nullifier_entries_pruned" in result.extras
        assert "nullifier_entries_live" in result.extras
        # A depth-20 registry over ~300 identities must not have built
        # more than a handful of its 1024 sub-trees.
        assert result.extras["membership_subtrees_materialized"] <= 4


class TestMemoryFlatness:
    def test_peak_memory_flat_in_run_length(self):
        """tracemalloc peak after N epochs vs 2N stays within tolerance.

        Bounded state (epoch-grid GC + streaming metrics) means run
        length buys epochs, not memory. Construction dominates the
        peak and bounded per-peer caches are still warming at this
        scale, so the tolerance is generous; the full-scale growth
        curve (and the truly-unbounded nullifier contrast) lives in
        ``benchmarks/bench_million_id.py`` / ``bench_nullifier_map``.
        """
        spec = scenario("million-id-city")

        def peak_for(duration: float) -> int:
            gc.collect()
            tracemalloc.start()
            run_scenario(spec, peers=12, duration=duration)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak

        peak_for(10.0)  # warm import/alloc caches outside measurement
        short = peak_for(10.0)
        long = peak_for(20.0)
        assert long < 1.5 * short
