"""Scenario spec/registry/runner unit tests: determinism, scaling,
churn bookkeeping and CLI plumbing."""

from __future__ import annotations

import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    AdversaryMix,
    ChurnModel,
    ScenarioSpec,
    TrafficModel,
    register_scenario,
    run_scenario,
    scenario,
    scenario_names,
)
from repro.scenarios.registry import _REGISTRY


REQUIRED_BUILTINS = {
    "honest-steady",
    "burst-spammer",
    "coordinated-multi-spammer",
    "high-churn",
    "stale-root-sync-lag",
    "mixed-baseline-comparison",
}


def test_builtin_registry_complete():
    assert REQUIRED_BUILTINS <= set(scenario_names())


def test_unknown_scenario_rejected():
    with pytest.raises(ScenarioError, match="unknown scenario"):
        scenario("no-such-scenario")


def test_duplicate_registration_refused():
    spec = scenario("honest-steady")
    with pytest.raises(ScenarioError, match="already registered"):
        register_scenario(spec)
    register_scenario(spec, replace=True)  # explicit replace is fine
    assert _REGISTRY[spec.name] is spec


def test_spec_validation():
    with pytest.raises(ScenarioError):
        ScenarioSpec(name="x", description="d", peers=1)
    with pytest.raises(ScenarioError):
        ScenarioSpec(
            name="x",
            description="d",
            peers=3,
            adversaries=AdversaryMix(spammer_count=3),
        )
    with pytest.raises(ScenarioError):
        ScenarioSpec(
            name="x", description="d", config_overrides={"bogus_knob": 1}
        )
    with pytest.raises(ScenarioError):
        TrafficModel(active_fraction=1.5)
    with pytest.raises(ScenarioError):
        ChurnModel(join_interval=-1)


def test_scaled_rescales_adversary_mix():
    spec = ScenarioSpec(
        name="x",
        description="d",
        peers=200,
        adversaries=AdversaryMix(spammer_count=10),
    )
    small = spec.scaled(peers=20)
    assert small.peers == 20
    assert small.adversaries.spammer_count == 1
    assert spec.adversaries.spammer_count == 10  # original untouched
    # Spammers can never swallow the whole (tiny) network.
    tiny = spec.scaled(peers=2)
    assert tiny.adversaries.spammer_count == 1


def test_config_overrides_applied():
    spec = ScenarioSpec(
        name="x",
        description="d",
        config_overrides={"root_window": 3, "epoch_length": 5.0},
    )
    config = spec.build_config()
    assert config.root_window == 3
    assert config.epoch_length == 5.0


def test_same_seed_same_result():
    spec = scenario("burst-spammer")
    a = run_scenario(spec, peers=16, duration=30.0)
    b = run_scenario(spec, peers=16, duration=30.0)
    assert a == b  # wall-clock excluded from equality
    assert a.fingerprint() == b.fingerprint()
    assert a.wall_clock_seconds != 0.0


def test_different_seed_different_traffic():
    spec = scenario("honest-steady")
    a = run_scenario(spec, peers=16, duration=30.0, seed=1)
    b = run_scenario(spec, peers=16, duration=30.0, seed=2)
    assert a.seed != b.seed
    assert a.fingerprint() != b.fingerprint()


def test_churn_bookkeeping():
    spec = ScenarioSpec(
        name="churny",
        description="d",
        peers=12,
        duration=40.0,
        traffic=TrafficModel(active_fraction=0.25),
        churn=ChurnModel(
            join_interval=5.0, leave_interval=7.0, max_joins=3, max_leaves=2
        ),
    )
    result = run_scenario(spec)
    assert result.joined == 3
    assert result.left == 2
    assert result.peers_final == 12 + 3 - 2


def test_shared_membership_store_is_outcome_invisible():
    """Sharing on vs off: same fingerprint, different work accounting."""
    spec = ScenarioSpec(
        name="store-toggle",
        description="d",
        peers=10,
        duration=30.0,
        traffic=TrafficModel(active_fraction=0.5),
        churn=ChurnModel(join_interval=6.0, max_joins=2),
    )
    shared = run_scenario(spec)
    independent = run_scenario(
        ScenarioSpec(
            name="store-toggle-off",
            description="d",
            peers=10,
            duration=30.0,
            traffic=TrafficModel(active_fraction=0.5),
            churn=ChurnModel(join_interval=6.0, max_joins=2),
            config_overrides={"shared_membership_store": False},
        )
    )
    shared_dict = shared.to_dict(include_wall_clock=False)
    independent_dict = independent.to_dict(include_wall_clock=False)
    for key in (
        "membership_events",
        "membership_events_deduped",
        "membership_forks",
    ):
        assert key in shared_dict["extras"]
        assert key not in independent_dict["extras"]
        del shared_dict["extras"][key]
    shared_dict["scenario"] = independent_dict["scenario"] = "x"
    assert shared_dict == independent_dict
    assert shared.extras["membership_events_deduped"] > 0
    assert shared.extras["membership_forks"] == 0


def test_result_dict_and_fingerprint_exclude_wall_clock():
    result = run_scenario(scenario("honest-steady"), peers=8, duration=20.0)
    with_wall = result.to_dict()
    without = result.to_dict(include_wall_clock=False)
    assert "wall_clock_seconds" in with_wall
    assert "wall_clock_seconds" not in without
    result.wall_clock_seconds = 123.0
    assert result.fingerprint() == result.fingerprint()
    text = result.format()
    assert "fingerprint" in text and result.fingerprint() in text


class TestCli:
    def test_run_scenario_command(self, capsys):
        from repro.analysis.__main__ import main

        assert (
            main(
                [
                    "run-scenario",
                    "burst-spammer",
                    "--peers",
                    "12",
                    "--duration",
                    "20",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "scenario: burst-spammer" in out
        assert "fingerprint" in out

    def test_run_scenario_json(self, capsys):
        import json

        from repro.analysis.__main__ import main

        assert (
            main(
                [
                    "run-scenario",
                    "honest-steady",
                    "--peers",
                    "8",
                    "--duration",
                    "15",
                    "--json",
                ]
            )
            == 0
        )
        data = json.loads(capsys.readouterr().out)
        assert data["scenario"] == "honest-steady"
        assert data["peers_started"] == 8

    def test_unknown_scenario_and_flags(self, capsys):
        from repro.analysis.__main__ import main

        assert main(["run-scenario"]) == 1
        assert main(["run-scenario", "nope"]) == 1
        assert main(["run-scenario", "honest-steady", "--bogus", "1"]) == 1
        assert (
            main(["run-scenario", "honest-steady", "--peers", "abc"]) == 1
        )

    def test_list_scenarios(self, capsys):
        from repro.analysis.__main__ import main

        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in REQUIRED_BUILTINS:
            assert name in out
