"""Multi-topic scenario harness: spec validation, per-topic RLN
semantics and topic-aware runs."""

from __future__ import annotations

import pytest

from repro.core import WakuRlnRelayNetwork
from repro.errors import RateLimitError, ScenarioError
from repro.scenarios import (
    AdversaryGroup,
    AdversaryMix,
    ScenarioSpec,
    TopicSpec,
    TrafficModel,
    run_scenario,
    scenario,
)
from repro.waku.message import DEFAULT_PUBSUB_TOPIC

MARKET = "/waku/2/market/proto"
CHAT = "/waku/2/chat/proto"


class TestTopicSpecValidation:
    def test_primary_topic_cannot_be_listed(self):
        with pytest.raises(ScenarioError):
            TopicSpec(DEFAULT_PUBSUB_TOPIC)

    def test_negative_weight_rejected(self):
        with pytest.raises(ScenarioError):
            TopicSpec(MARKET, traffic_weight=-1.0)

    def test_subscribe_fraction_bounds(self):
        with pytest.raises(ScenarioError):
            TopicSpec(MARKET, subscribe_fraction=1.5)

    def test_duplicate_topic_names_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec(
                name="dup",
                description="",
                topics=(TopicSpec(MARKET), TopicSpec(MARKET)),
            )

    def test_adversary_target_must_be_rln_topic(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec(
                name="bad-target",
                description="",
                topics=(TopicSpec(MARKET, rln_protected=False),),
                adversaries=AdversaryMix(
                    groups=(
                        AdversaryGroup(
                            strategy="burst-flood",
                            target_topics=(MARKET,),
                        ),
                    )
                ),
            )

    def test_burst_spread_too_thin_over_targets_rejected(self):
        """A burst round-robined over more targets than messages never
        violates any per-topic rate limit — reject the spec early."""
        with pytest.raises(ScenarioError):
            ScenarioSpec(
                name="thin-burst",
                description="",
                topics=(TopicSpec(MARKET), TopicSpec(CHAT)),
                adversaries=AdversaryMix(
                    groups=(
                        AdversaryGroup(
                            strategy="burst-flood",
                            burst=2,
                            target_topics=(MARKET, CHAT),
                        ),
                    )
                ),
            )

    def test_primary_topic_always_targetable(self):
        spec = ScenarioSpec(
            name="primary-target",
            description="",
            adversaries=AdversaryMix(
                groups=(
                    AdversaryGroup(
                        strategy="burst-flood",
                        target_topics=(DEFAULT_PUBSUB_TOPIC,),
                    ),
                )
            ),
        )
        assert spec.topic_names == (DEFAULT_PUBSUB_TOPIC,)

    def test_topic_names_primary_first(self):
        spec = ScenarioSpec(
            name="names",
            description="",
            topics=(TopicSpec(MARKET), TopicSpec(CHAT)),
        )
        assert spec.topic_names == (DEFAULT_PUBSUB_TOPIC, MARKET, CHAT)


class TestPerTopicRln:
    """One RLN group per topic (paper §III) on the integrated peer."""

    @pytest.fixture(scope="class")
    def net(self):
        net = WakuRlnRelayNetwork(peer_count=6, seed=42)
        for peer in net.peers:
            peer.join_rln_topic(MARKET)
        net.register_all()
        net.start()
        net.run(3.0)
        return net

    def test_rate_limits_are_per_topic(self, net):
        """One message per epoch *per topic*: a second publish in the
        same epoch is legal on another topic, illegal on the same."""
        publisher = net.peer(0)
        publisher.publish(b"on primary")
        publisher.publish(b"on market", pubsub_topic=MARKET)
        with pytest.raises(RateLimitError):
            publisher.publish(b"again on market", pubsub_topic=MARKET)
        with pytest.raises(RateLimitError):
            publisher.publish(b"again on primary")

    def test_cross_topic_replay_rejected(self, net):
        """A valid signal replayed onto a different topic must fail:
        the external nullifier is domain-bound per topic, and the
        shared verification cache must not leak the other topic's
        verdict."""
        from repro.rln.verifier import SignalCheck
        from repro.rln.signal import RlnSignal

        publisher, router = net.peer(1), net.peer(2)
        net.run(net.config.epoch_length)  # fresh epoch
        epoch = publisher.epoch_tracker.current_epoch
        signal = publisher.prover.create_signal(
            message=b"market msg",
            epoch=epoch,
            merkle_proof=publisher.group.merkle_proof(
                publisher.leaf_index
            ),
            domain=publisher._topic_domain(MARKET),
        )
        raw = signal.to_bytes()
        market_verifier = router.rln_topics[MARKET].verifier
        primary_verifier = router.rln_topics[
            router.relay.pubsub_topic
        ].verifier
        parsed = RlnSignal.from_bytes(raw)
        # Legitimate topic: valid (and now cached network-wide).
        assert market_verifier.check(parsed) is SignalCheck.VALID
        # Replay on the primary topic: wrong domain, cache or not.
        assert (
            primary_verifier.check(parsed)
            is SignalCheck.BAD_EXTERNAL_NULLIFIER
        )

    def test_double_signal_on_secondary_topic_slashes(self, net):
        """Spamming a secondary RLN topic produces the same slashing
        path as the primary one (shared membership stake)."""
        spammer = net.peer(3)
        net.run(net.config.epoch_length)
        spammer.publish(b"s1", pubsub_topic=MARKET, bypass_rate_limit=True)
        spammer.publish(b"s2", pubsub_topic=MARKET, bypass_rate_limit=True)
        net.run(30.0)
        assert not spammer.is_registered  # slashed out of the group


class TestMultiTopicScenarioRuns:
    def test_multi_topic_churn_smoke_has_per_topic_results(self):
        result = run_scenario(
            scenario("multi-topic-churn"), peers=20, duration=40.0
        )
        assert set(result.topics) == set(
            scenario("multi-topic-churn").topic_names
        )
        market = result.topics[MARKET]
        # The adversary targets the market topic; its spam must land
        # there and nowhere else.
        assert market["spam_delivered"] > 0
        others = [
            stats["spam_delivered"]
            for name, stats in result.topics.items()
            if name != MARKET
        ]
        assert all(v == 0 for v in others)
        # Every topic with subscribers saw its honest traffic delivered.
        for name, stats in result.topics.items():
            if stats["honest_published"]:
                assert stats["honest_delivered"] > 0

    def test_multi_topic_5k_profile_smokes_tiny(self):
        result = run_scenario(
            scenario("multi-topic-5k"), peers=25, duration=40.0
        )
        assert result.members_slashed > 0
        assert result.delivery_rate > 0.5

    def test_multi_topic_runs_are_deterministic(self):
        first = run_scenario(
            scenario("multi-topic-churn"), peers=20, duration=40.0
        )
        second = run_scenario(
            scenario("multi-topic-churn"), peers=20, duration=40.0
        )
        assert first.fingerprint() == second.fingerprint()

    def test_open_topic_carries_unprotected_traffic(self):
        """An rln_protected=False topic relays proofless messages."""
        spec = ScenarioSpec(
            name="open-topic-run",
            description="one open side topic",
            peers=15,
            duration=30.0,
            traffic=TrafficModel(
                messages_per_epoch=1.0, active_fraction=0.5
            ),
            topics=(
                TopicSpec(
                    "/waku/2/free/proto",
                    traffic_weight=2.0,
                    rln_protected=False,
                ),
            ),
        )
        result = run_scenario(spec)
        free = result.topics["/waku/2/free/proto"]
        assert free["honest_published"] > 0
        assert free["honest_delivered"] > 0

    @pytest.mark.slow
    def test_multi_topic_5k_full_scale(self):
        """The acceptance profile: 5000 peers, six topics, completes
        with healthy delivery and active enforcement."""
        result = run_scenario(scenario("multi-topic-5k"))
        assert result.peers_started == 5000
        assert result.delivery_rate > 0.5
        assert result.members_slashed > 0
