"""Multi-topic relay tests: one RLN group per topic (paper §III)."""

import pytest

from repro.errors import GossipError
from repro.gossipsub.router import ValidationResult
from repro.net.network import Network
from repro.net.topology import connect_full_mesh
from repro.sim.latency import LatencyModel
from repro.sim.simulator import Simulator
from repro.waku.message import WakuMessage
from repro.waku.relay import WakuRelayNode

CHAT = "/waku/2/chat/proto"
NEWS = "/waku/2/news/proto"


def build(n=4, seed=2):
    sim = Simulator(seed=seed)
    network = Network(simulator=sim, latency=LatencyModel(base_seconds=0.02))
    nodes = [WakuRelayNode(f"w{i}", network, pubsub_topic=CHAT) for i in range(n)]
    for node in nodes:
        node.join_topic(NEWS)
    connect_full_mesh(network, [n.node_id for n in nodes])
    for node in nodes:
        node.start()
    sim.run_for(3.0)
    return sim, network, nodes


class TestTopicMembership:
    def test_joined_topics_listed(self):
        _, _, nodes = build(2)
        assert nodes[0].topics() == {CHAT, NEWS}

    def test_join_is_idempotent(self):
        _, _, nodes = build(2)
        nodes[0].join_topic(NEWS)
        assert nodes[0].topics() == {CHAT, NEWS}

    def test_cannot_leave_primary_topic(self):
        _, _, nodes = build(2)
        with pytest.raises(GossipError):
            nodes[0].leave_topic(CHAT)

    def test_leave_secondary_topic(self):
        sim, _, nodes = build(3)
        nodes[0].leave_topic(NEWS)
        assert nodes[0].topics() == {CHAT}
        sim.run_for(3.0)
        got = []
        nodes[0].on_message(lambda m, _id: got.append(m.payload), topic=NEWS)
        nodes[1].publish(WakuMessage(payload=b"news"), topic=NEWS)
        sim.run_for(5.0)
        assert got == []

    def test_publish_to_unjoined_topic_rejected(self):
        _, _, nodes = build(2)
        with pytest.raises(GossipError):
            nodes[0].publish(WakuMessage(payload=b"x"), topic="/nope/1/x/raw")

    def test_late_join_while_running(self):
        sim, _, nodes = build(3)
        nodes[0].join_topic("/waku/2/late/proto")
        sim.run_for(3.0)
        got = []
        nodes[1].join_topic("/waku/2/late/proto")
        sim.run_for(3.0)
        nodes[1].on_message(
            lambda m, _id: got.append(m.payload), topic="/waku/2/late/proto"
        )
        nodes[0].publish(
            WakuMessage(payload=b"late bloom"), topic="/waku/2/late/proto"
        )
        sim.run_for(5.0)
        assert got == [b"late bloom"]


class TestTopicScoping:
    def test_handlers_scoped_per_topic(self):
        sim, _, nodes = build(3)
        chat_got, news_got, all_got = [], [], []
        nodes[1].on_message(lambda m, _id: chat_got.append(m.payload), topic=CHAT)
        nodes[1].on_message(lambda m, _id: news_got.append(m.payload), topic=NEWS)
        nodes[1].on_message(lambda m, _id: all_got.append(m.payload))
        nodes[0].publish(WakuMessage(payload=b"to chat"), topic=CHAT)
        nodes[0].publish(WakuMessage(payload=b"to news"), topic=NEWS)
        sim.run_for(5.0)
        assert chat_got == [b"to chat"]
        assert news_got == [b"to news"]
        assert sorted(all_got) == [b"to chat", b"to news"]

    def test_validators_scoped_per_topic(self):
        """A strict validator on one topic must not affect the other —
        this is what lets each topic be its own RLN group."""
        sim, _, nodes = build(3)
        for node in nodes:
            node.add_validator(
                lambda m: ValidationResult.REJECT, topic=NEWS
            )
        got = []
        nodes[2].on_message(lambda m, _id: got.append(m.payload))
        nodes[0].publish(WakuMessage(payload=b"chat ok"), topic=CHAT)
        nodes[0].publish(WakuMessage(payload=b"news blocked"), topic=NEWS)
        sim.run_for(5.0)
        assert got == [b"chat ok"]

    def test_unscoped_validator_applies_everywhere(self):
        sim, _, nodes = build(3)
        for node in nodes:
            node.add_validator(
                lambda m: ValidationResult.REJECT
                if m.payload.startswith(b"bad")
                else ValidationResult.ACCEPT
            )
        got = []
        nodes[1].on_message(lambda m, _id: got.append(m.payload))
        nodes[0].publish(WakuMessage(payload=b"bad chat"), topic=CHAT)
        nodes[0].publish(WakuMessage(payload=b"bad news"), topic=NEWS)
        nodes[0].publish(WakuMessage(payload=b"fine"), topic=CHAT)
        sim.run_for(5.0)
        assert got == [b"fine"]


class TestRlnGroupPerTopic:
    def test_rln_topic_protected_open_topic_not(self):
        """One host participates in an RLN-protected topic and a free
        topic simultaneously; only the former enforces proofs."""
        from repro.core import WakuRlnRelayNetwork

        net = WakuRlnRelayNetwork(peer_count=5, seed=33)
        net.register_all()
        net.start()
        net.run(2.0)
        open_topic = "/waku/2/open/proto"
        for peer in net.peers:
            peer.relay.join_topic(open_topic)
        net.run(3.0)
        got = []
        net.peer(2).relay.on_message(
            lambda m, _id: got.append(m.payload), topic=open_topic
        )
        # No RLN proof needed on the open topic...
        net.peer(0).relay.publish(
            WakuMessage(payload=b"free speech"), topic=open_topic
        )
        net.run(5.0)
        assert got == [b"free speech"]
        # ...while the RLN topic still rejects proofless messages.
        rln_got = []
        net.peer(2).relay.on_message(
            lambda m, _id: rln_got.append(m.payload),
            topic=net.peer(2).relay.pubsub_topic,
        )
        net.peer(0).relay.publish(WakuMessage(payload=b"proofless"))
        net.run(5.0)
        assert b"proofless" not in rln_got
