"""Tests for WakuMessage and the Waku-Relay layer."""

import pytest

from repro.errors import SerializationError
from repro.gossipsub.router import ValidationResult
from repro.net.network import Network
from repro.net.topology import connect_full_mesh
from repro.sim.latency import LatencyModel
from repro.sim.simulator import Simulator
from repro.waku.message import DEFAULT_PUBSUB_TOPIC, WakuMessage
from repro.waku.relay import WakuRelayNode


class TestWakuMessage:
    def test_roundtrip(self):
        message = WakuMessage(payload=b"hello", content_topic="/a/1/b/c")
        assert WakuMessage.from_bytes(message.to_bytes()) == message

    def test_roundtrip_with_proof(self):
        message = WakuMessage(payload=b"hi", rate_limit_proof=b"\x01" * 300)
        decoded = WakuMessage.from_bytes(message.to_bytes())
        assert decoded.rate_limit_proof == b"\x01" * 300

    def test_empty_proof_decodes_to_none(self):
        message = WakuMessage(payload=b"x")
        assert WakuMessage.from_bytes(message.to_bytes()).rate_limit_proof is None

    def test_trailing_bytes_rejected(self):
        data = WakuMessage(payload=b"x").to_bytes() + b"!"
        with pytest.raises(SerializationError):
            WakuMessage.from_bytes(data)

    def test_truncated_rejected(self):
        data = WakuMessage(payload=b"abcdef").to_bytes()[:-3]
        with pytest.raises(SerializationError):
            WakuMessage.from_bytes(data)

    def test_contains_no_sender_fields(self):
        """Anonymity by omission: the dataclass has no sender slot."""
        fields = set(WakuMessage.__dataclass_fields__)
        assert fields == {
            "payload", "content_topic", "version", "rate_limit_proof"
        }


def build_relay_network(n=5, seed=1):
    sim = Simulator(seed=seed)
    network = Network(simulator=sim, latency=LatencyModel(base_seconds=0.02))
    nodes = [WakuRelayNode(f"w{i}", network) for i in range(n)]
    connect_full_mesh(network, [n.node_id for n in nodes])
    for node in nodes:
        node.start()
    sim.run_for(3.0)
    return sim, network, nodes


class TestWakuRelay:
    def test_publish_reaches_all(self):
        sim, network, nodes = build_relay_network()
        got = {}
        for node in nodes:
            node.on_message(
                lambda msg, mid, nid=node.node_id: got.setdefault(nid, msg)
            )
        nodes[0].publish(WakuMessage(payload=b"waku!"))
        sim.run_for(5.0)
        assert set(got) == {n.node_id for n in nodes}
        assert all(m.payload == b"waku!" for m in got.values())

    def test_handler_gets_no_sender_information(self):
        sim, network, nodes = build_relay_network(3)
        seen_args = []
        nodes[1].on_message(lambda *args: seen_args.append(args))
        nodes[0].publish(WakuMessage(payload=b"anon"))
        sim.run_for(3.0)
        assert len(seen_args) == 1
        message, msg_id = seen_args[0]
        assert isinstance(message, WakuMessage)
        assert isinstance(msg_id, str)

    def test_validator_rejects(self):
        sim, network, nodes = build_relay_network()
        for node in nodes:
            node.add_validator(
                lambda msg: ValidationResult.REJECT
                if msg.payload.startswith(b"bad")
                else ValidationResult.ACCEPT
            )
        got = []
        for node in nodes[1:]:
            node.on_message(lambda msg, mid: got.append(msg.payload))
        nodes[0].publish(WakuMessage(payload=b"bad stuff"))
        nodes[0].publish(WakuMessage(payload=b"good stuff"))
        sim.run_for(5.0)
        assert got == [b"good stuff"] * (len(nodes) - 1)

    def test_undecodable_payload_rejected(self):
        sim, network, nodes = build_relay_network(2)
        got = []
        nodes[1].on_message(lambda msg, mid: got.append(msg))
        # Bypass the Waku layer and publish garbage bytes directly.
        nodes[0].router.publish(DEFAULT_PUBSUB_TOPIC, b"\xff\xfe")
        sim.run_for(3.0)
        assert got == []

    def test_default_pubsub_topic(self):
        sim, network, nodes = build_relay_network(2)
        assert nodes[0].pubsub_topic == DEFAULT_PUBSUB_TOPIC
        assert DEFAULT_PUBSUB_TOPIC in nodes[0].router.subscriptions
