"""Property-based tests for the nullifier map.

Random interleavings of observations and prunes are replayed against a
trivially correct reference model; the map must never misclassify a
signal (NEW / DUPLICATE / DOUBLE_SIGNAL) and garbage collection must
never retain an epoch outside the acceptance window.
"""

from __future__ import annotations

import random

import pytest

from repro.core.nullifier_map import NullifierCheck, NullifierMap
from repro.crypto.field import Fr
from repro.crypto.shamir import Share
from repro.crypto.zksnark.groth16 import Proof
from repro.rln.signal import RlnSignal


def make_signal(epoch: int, phi: int, x: int, y: int = 1) -> RlnSignal:
    """A structurally valid signal without the (irrelevant) proof work."""
    return RlnSignal(
        message=f"m|{epoch}|{phi}|{x}".encode(),
        epoch=epoch,
        external_nullifier=Fr(epoch + 1),
        internal_nullifier=Fr(phi + 1),
        share=Share(x=Fr(x + 1), y=Fr(y + 1)),
        merkle_root=Fr(7),
        proof=Proof(pi_a=b"\xaa" * 32, pi_b=b"\xbb" * 64, pi_c=b"\xcc" * 32),
    )


class ReferenceModel:
    """Dict-of-dicts oracle implementing the Section III semantics."""

    def __init__(self, thr: int) -> None:
        self.thr = thr
        self.records = {}  # epoch -> phi -> first share_x

    def observe(self, epoch: int, phi: Fr, share_x: Fr) -> NullifierCheck:
        bucket = self.records.setdefault(epoch, {})
        if phi not in bucket:
            bucket[phi] = share_x
            return NullifierCheck.NEW
        if bucket[phi] == share_x:
            return NullifierCheck.DUPLICATE
        return NullifierCheck.DOUBLE_SIGNAL

    def prune(self, current: int) -> int:
        expired = [e for e in self.records if abs(current - e) > self.thr]
        return sum(len(self.records.pop(e)) for e in expired)


@pytest.mark.parametrize("seed", range(20))
def test_random_interleavings_match_reference_model(seed):
    """Small pools force every collision class to occur often."""
    rng = random.Random(seed)
    thr = rng.randint(1, 3)
    nmap = NullifierMap(thr=thr)
    model = ReferenceModel(thr=thr)
    current_epoch = 0
    for _ in range(300):
        action = rng.random()
        if action < 0.85:
            epoch = current_epoch + rng.randint(-thr - 2, thr + 2)
            if epoch < 0:
                continue
            signal = make_signal(
                epoch, phi=rng.randint(0, 4), x=rng.randint(0, 2)
            )
            expected = model.observe(
                signal.epoch,
                signal.internal_nullifier,
                signal.share.x,
            )
            peeked, _ = nmap.peek(signal)
            got, prior = nmap.observe(signal)
            assert got is expected
            assert peeked is expected  # peek never disagrees with observe
            if expected is NullifierCheck.NEW:
                assert prior is None
            else:
                # The retained record is always the FIRST share seen —
                # the point of the map is to hold the other Shamir share.
                assert prior is not None
                assert prior.share_x == model.records[signal.epoch][
                    signal.internal_nullifier
                ]
        else:
            current_epoch += rng.randint(0, 2)
            assert nmap.prune(current_epoch) == model.prune(current_epoch)
            assert sorted(model.records) == nmap.epochs()
    assert nmap.entry_count == sum(len(b) for b in model.records.values())


@pytest.mark.parametrize("seed", range(10))
def test_gc_never_retains_epochs_outside_window(seed):
    rng = random.Random(1000 + seed)
    thr = rng.randint(1, 4)
    nmap = NullifierMap(thr=thr)
    for _ in range(200):
        nmap.observe(
            make_signal(
                epoch=rng.randint(0, 30),
                phi=rng.randint(0, 50),
                x=rng.randint(0, 5),
            )
        )
    current = rng.randint(0, 30)
    before = nmap.entry_count
    freed = nmap.prune(current)
    assert before - freed == nmap.entry_count
    for epoch in nmap.epochs():
        assert abs(current - epoch) <= thr
    # Pruning again at the same epoch is a no-op.
    assert nmap.prune(current) == 0


def test_peek_is_pure():
    nmap = NullifierMap(thr=2)
    signal = make_signal(epoch=1, phi=1, x=1)
    assert nmap.peek(signal) == (NullifierCheck.NEW, None)
    assert nmap.entry_count == 0  # peek records nothing
    nmap.observe(signal)
    assert nmap.entry_count == 1
    check, prior = nmap.peek(make_signal(epoch=1, phi=1, x=2))
    assert check is NullifierCheck.DOUBLE_SIGNAL
    assert prior is not None and prior.signal == signal
    assert nmap.entry_count == 1


def test_duplicate_never_overwrites_first_record():
    nmap = NullifierMap(thr=2)
    first = make_signal(epoch=3, phi=0, x=0, y=5)
    nmap.observe(first)
    # Same x, different y — classified by abscissa only.
    check, prior = nmap.observe(make_signal(epoch=3, phi=0, x=0, y=9))
    assert check is NullifierCheck.DUPLICATE
    assert prior is not None and prior.share_y == first.share.y
