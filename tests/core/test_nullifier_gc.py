"""Epoch-grid nullifier GC (``NullifierMap(auto_prune=True)``)."""

from __future__ import annotations

import random

import pytest

from repro.core.nullifier_map import NullifierCheck, NullifierMap
from repro.crypto.keys import MembershipKeyPair
from repro.crypto.merkle import MerkleTree
from repro.rln.prover import RlnProver, rln_keys

THR = 2


@pytest.fixture(scope="module")
def make_signal():
    """signal(member, epoch, msg) factory over a tiny 4-member group."""
    rng = random.Random(77)
    pk, _vk = rln_keys(seed=b"nullifier-gc")
    tree = MerkleTree(6)
    provers = []
    for _ in range(4):
        pair = MembershipKeyPair.generate(rng)
        index = tree.insert(pair.commitment.element)
        provers.append((RlnProver(keypair=pair, proving_key=pk), index))

    def build(member: int, epoch: int, message: bytes = b"m"):
        prover, index = provers[member]
        return prover.create_signal(message, epoch, tree.proof(index))

    return build


class TestAutoPrune:
    def test_old_epochs_drop_when_head_advances(self, make_signal):
        nmap = NullifierMap(thr=THR, auto_prune=True)
        for epoch in range(10):
            nmap.observe(make_signal(0, epoch))
            assert nmap.epochs() == list(
                range(max(0, epoch - THR), epoch + 1)
            )
        # Everything further than thr behind the head was freed and
        # accounted for.
        assert nmap.entry_count == THR + 1
        assert nmap.auto_pruned_entries == 10 - (THR + 1)

    def test_gc_only_fires_on_new_maximum(self, make_signal):
        nmap = NullifierMap(thr=THR, auto_prune=True)
        nmap.observe(make_signal(0, 10))
        pruned_before = nmap.auto_pruned_entries
        # A straggler inside the window lands normally and does not
        # re-trigger GC (epoch 9 is not a new maximum).
        check, _ = nmap.observe(make_signal(1, 9))
        assert check is NullifierCheck.NEW
        assert nmap.auto_pruned_entries == pruned_before
        assert sorted(nmap.epochs()) == [9, 10]

    def test_double_signal_detection_survives_gc(self, make_signal):
        nmap = NullifierMap(thr=THR, auto_prune=True)
        for epoch in range(6):
            nmap.observe(make_signal(0, epoch, b"first"))
        check, prior = nmap.observe(make_signal(0, 5, b"second"))
        assert check is NullifierCheck.DOUBLE_SIGNAL
        assert prior is not None

    def test_default_map_never_auto_prunes(self, make_signal):
        nmap = NullifierMap(thr=THR)
        for epoch in range(10):
            nmap.observe(make_signal(0, epoch))
        assert nmap.epoch_count == 10
        assert nmap.auto_pruned_entries == 0

    def test_conservation_against_unbounded(self, make_signal):
        gc_map = NullifierMap(thr=THR, auto_prune=True)
        unbounded = NullifierMap(thr=THR)
        for epoch in range(8):
            for member in range(3):
                signal = make_signal(member, epoch)
                gc_map.observe(signal)
                unbounded.observe(signal)
        assert (
            gc_map.entry_count + gc_map.auto_pruned_entries
            == unbounded.entry_count
        )

    def test_explicit_prune_still_works(self, make_signal):
        nmap = NullifierMap(thr=THR, auto_prune=True)
        for epoch in range(5):
            nmap.observe(make_signal(0, epoch))
        freed = nmap.prune(100)
        assert freed == nmap.epoch_count == 0 or freed > 0
        assert nmap.entry_count == 0
        # Explicit prunes are not counted as auto-GC.
        assert nmap.auto_pruned_entries == 5 - (THR + 1)
