"""Unit-level tests of WakuRlnRelayPeer behaviours not covered by the
end-to-end suite: sync edge cases, clock skew, churned publishers."""

import pytest

from repro.core import ProtocolConfig, WakuRlnRelayNetwork
from repro.core.peer import WakuRlnRelayPeer
from repro.errors import RateLimitError


@pytest.fixture
def net():
    network = WakuRlnRelayNetwork(peer_count=6, seed=77)
    network.register_all()
    network.start()
    network.run(2.0)
    return network


class TestSync:
    def test_sync_is_idempotent(self, net):
        peer = net.peer(0)
        assert peer.sync() == 0  # everything already applied
        assert peer.sync() == 0

    def test_sync_applies_only_membership_events(self, net):
        """Foreign contract events must not disturb the tree."""
        from repro.eth.chain import Contract

        class Noisy(Contract):
            def ping(self, ctx):
                ctx.emit("Pinged", value=1)

        net.chain.deploy(Noisy("noisy"))
        net.chain.call_now(net.peer(0).account, "noisy", "ping")
        root_before = int(net.peer(0).group.root)
        applied = net.peer(0).sync()
        assert applied == 0
        assert int(net.peer(0).group.root) == root_before

    def test_peer_learns_its_own_slashing(self, net):
        spammer = net.peer(1)
        spammer.publish(b"a")
        spammer.publish(b"b", bypass_rate_limit=True)
        net.run(30.0)
        assert spammer.leaf_index is None
        assert not spammer.is_registered

    def test_sequential_registration_indices(self, net):
        indices = sorted(p.leaf_index for p in net.peers)
        assert indices == list(range(len(net.peers)))


class TestRateLimiting:
    def test_rate_limit_error_carries_epoch(self, net):
        peer = net.peer(2)
        peer.publish(b"one")
        with pytest.raises(RateLimitError) as exc_info:
            peer.publish(b"two")
        assert exc_info.value.epoch == peer.epoch_tracker.current_epoch

    def test_bypass_flag_defeats_local_check_only(self, net):
        """bypass_rate_limit skips the LOCAL limiter; the NETWORK still
        catches the double-signal (that is the whole point)."""
        peer = net.peer(3)
        peer.publish(b"x")
        peer.publish(b"y", bypass_rate_limit=True)  # no local exception
        net.run(30.0)
        assert not peer.is_registered  # but the network slashed it


class TestClockSkew:
    def test_skewed_publisher_rejected_beyond_thr(self):
        config = ProtocolConfig(epoch_length=5.0, max_network_delay=10.0)
        net = WakuRlnRelayNetwork(peer_count=5, seed=78, config=config)
        # Replace one peer's tracker with a heavily skewed clock.
        net.register_all()
        deliveries = net.collect_deliveries()
        net.start()
        net.run(30.0)
        skewed = net.peer(0)
        skewed.epoch_tracker.clock_skew = 100.0  # 20 epochs ahead
        skewed.publish(b"from the future")
        net.run(10.0)
        others = {
            k: v for k, v in deliveries.items() if k != skewed.node_id
        }
        assert all(b"from the future" not in msgs for msgs in others.values())

    def test_small_skew_tolerated(self):
        config = ProtocolConfig(epoch_length=5.0, max_network_delay=10.0)
        net = WakuRlnRelayNetwork(peer_count=5, seed=79, config=config)
        net.register_all()
        deliveries = net.collect_deliveries()
        net.start()
        net.run(30.0)
        skewed = net.peer(0)
        skewed.epoch_tracker.clock_skew = config.epoch_length  # 1 epoch
        skewed.publish(b"slightly ahead")
        net.run(10.0)
        delivered = sum(
            1
            for k, v in deliveries.items()
            if k != skewed.node_id and b"slightly ahead" in v
        )
        assert delivered == 4


class TestValidatorWiring:
    def test_message_without_proof_not_delivered(self, net):
        """A WakuMessage lacking the RLN field is rejected by routers."""
        from repro.waku.message import WakuMessage

        deliveries = net.collect_deliveries()
        net.peer(0).relay.publish(WakuMessage(payload=b"proofless"))
        net.run(5.0)
        others = {
            k: v for k, v in deliveries.items() if k != net.peer(0).node_id
        }
        assert all(b"proofless" not in msgs for msgs in others.values())

    def test_forwarder_of_invalid_proof_penalised(self, net):
        """Routers REJECT bad proofs, so gossipsub applies P4 to the
        hop that forwarded them."""
        from repro.waku.message import WakuMessage

        origin = net.peer(0)
        origin.relay.publish(
            WakuMessage(payload=b"junk", rate_limit_proof=b"\x00" * 300)
        )
        net.run(5.0)
        neighbor_ids = net.network.neighbors(origin.node_id)
        scores = [
            net.peer(int(nid.split("-")[1]))
            .relay.router.scores.score(origin.node_id, net.simulator.now)
            for nid in neighbor_ids
        ]
        assert any(score < 0 for score in scores)


class TestOnChainTreeDeployment:
    def test_network_runs_on_original_rln_contract(self):
        """The whole protocol also works with the on-chain tree design
        (only gas costs differ) — the ablation the paper argues against."""
        config = ProtocolConfig(contract_design="onchain_tree", merkle_depth=10)
        net = WakuRlnRelayNetwork(peer_count=5, seed=80, config=config)
        net.register_all()
        deliveries = net.collect_deliveries()
        net.start()
        net.run(2.0)
        assert net.registered_count == 5
        # On-chain root agrees with every peer's local replica.
        assert net.contract.root() == int(net.peer(0).group.root)
        net.peer(1).publish(b"on the original design")
        net.run(10.0)
        delivered = sum(
            1 for v in deliveries.values() if b"on the original design" in v
        )
        assert delivered == 5

    def test_unknown_contract_design_rejected(self):
        from repro.errors import RegistrationError

        with pytest.raises(RegistrationError):
            WakuRlnRelayNetwork(
                peer_count=3,
                config=ProtocolConfig(contract_design="magic"),
            )
