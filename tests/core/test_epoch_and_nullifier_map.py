"""Tests for epoch tracking, the nullifier map and protocol config."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ProtocolConfig
from repro.core.epoch import EpochTracker, epoch_at, epoch_start
from repro.core.nullifier_map import NullifierCheck, NullifierMap
from repro.crypto.field import Fr
from repro.crypto.keys import MembershipKeyPair
from repro.crypto.merkle import MerkleTree
from repro.rln.prover import RlnProver, rln_keys
from repro.sim.simulator import Simulator


class TestEpochMath:
    def test_epoch_at(self):
        assert epoch_at(0.0, 10.0) == 0
        assert epoch_at(9.999, 10.0) == 0
        assert epoch_at(10.0, 10.0) == 1
        assert epoch_at(105.0, 10.0) == 10

    def test_epoch_start_inverse(self):
        assert epoch_start(7, 10.0) == 70.0
        assert epoch_at(epoch_start(7, 10.0), 10.0) == 7

    @given(st.floats(min_value=0, max_value=1e9), st.floats(min_value=0.1, max_value=3600))
    def test_epoch_monotone(self, t, length):
        assert epoch_at(t + length, length) >= epoch_at(t, length) >= 0


class TestEpochTracker:
    def test_follows_simulator_clock(self):
        sim = Simulator()
        tracker = EpochTracker(sim, epoch_length=10.0)
        assert tracker.current_epoch == 0
        sim.run_for(25.0)
        assert tracker.current_epoch == 2

    def test_clock_skew(self):
        sim = Simulator()
        ahead = EpochTracker(sim, 10.0, clock_skew=15.0)
        behind = EpochTracker(sim, 10.0, clock_skew=-5.0)
        sim.run_for(10.0)
        assert ahead.current_epoch == 2
        assert behind.current_epoch == 0

    def test_threshold_window(self):
        sim = Simulator()
        tracker = EpochTracker(sim, 10.0)
        sim.run_for(100.0)  # epoch 10
        assert tracker.is_within_threshold(10, thr=2)
        assert tracker.is_within_threshold(8, thr=2)
        assert tracker.is_within_threshold(12, thr=2)
        assert not tracker.is_within_threshold(7, thr=2)
        assert not tracker.is_within_threshold(13, thr=2)


class TestProtocolConfig:
    def test_thr_derivation(self):
        config = ProtocolConfig(epoch_length=10.0, max_network_delay=20.0)
        assert config.thr == 2

    def test_thr_rounds_up(self):
        config = ProtocolConfig(epoch_length=10.0, max_network_delay=25.0)
        assert config.thr == 3

    def test_thr_floor_of_one(self):
        config = ProtocolConfig(epoch_length=60.0, max_network_delay=1.0)
        assert config.thr == 1

    def test_group_capacity(self):
        assert ProtocolConfig(merkle_depth=10).group_capacity == 1024


def make_signals(count, epoch=5, same_member=True, seed=9):
    """Produce `count` distinct-message signals, same epoch."""
    rng = random.Random(seed)
    pk, _vk = rln_keys(seed=b"nullifier-map-tests")
    tree = MerkleTree(8)
    signals = []
    if same_member:
        pair = MembershipKeyPair.generate(rng)
        index = tree.insert(pair.commitment.element)
        prover = RlnProver(keypair=pair, proving_key=pk)
        for i in range(count):
            signals.append(
                prover.create_signal(
                    f"msg-{i}".encode(), epoch, tree.proof(index)
                )
            )
    else:
        for i in range(count):
            pair = MembershipKeyPair.generate(rng)
            index = tree.insert(pair.commitment.element)
            prover = RlnProver(keypair=pair, proving_key=pk)
            signals.append(
                prover.create_signal(
                    f"msg-{i}".encode(), epoch, tree.proof(index)
                )
            )
    return signals


class TestNullifierMap:
    def test_first_signal_is_new(self):
        nmap = NullifierMap(thr=2)
        signal = make_signals(1)[0]
        check, prior = nmap.observe(signal)
        assert check is NullifierCheck.NEW
        assert prior is None
        assert nmap.entry_count == 1

    def test_same_signal_twice_is_duplicate(self):
        nmap = NullifierMap(thr=2)
        signal = make_signals(1)[0]
        nmap.observe(signal)
        check, prior = nmap.observe(signal)
        assert check is NullifierCheck.DUPLICATE
        assert prior is not None
        assert nmap.entry_count == 1

    def test_double_signal_detected(self):
        nmap = NullifierMap(thr=2)
        sig_a, sig_b = make_signals(2)
        nmap.observe(sig_a)
        check, prior = nmap.observe(sig_b)
        assert check is NullifierCheck.DOUBLE_SIGNAL
        assert prior.share_x == sig_a.share.x

    def test_distinct_members_all_new(self):
        nmap = NullifierMap(thr=2)
        for signal in make_signals(4, same_member=False):
            check, _ = nmap.observe(signal)
            assert check is NullifierCheck.NEW
        assert nmap.entry_count == 4

    def test_same_member_different_epochs_all_new(self):
        nmap = NullifierMap(thr=10)
        rng = random.Random(3)
        pk, _ = rln_keys(seed=b"x")
        tree = MerkleTree(8)
        pair = MembershipKeyPair.generate(rng)
        index = tree.insert(pair.commitment.element)
        prover = RlnProver(keypair=pair, proving_key=pk)
        for epoch in range(4):
            signal = prover.create_signal(b"same", epoch, tree.proof(index))
            check, _ = nmap.observe(signal)
            assert check is NullifierCheck.NEW

    def test_prune_drops_old_epochs(self):
        nmap = NullifierMap(thr=2)
        for epoch in (1, 2, 3, 8, 9):
            rng = random.Random(epoch)
            pk, _ = rln_keys(seed=b"y")
            tree = MerkleTree(8)
            pair = MembershipKeyPair.generate(rng)
            index = tree.insert(pair.commitment.element)
            prover = RlnProver(keypair=pair, proving_key=pk)
            nmap.observe(prover.create_signal(b"m", epoch, tree.proof(index)))
        freed = nmap.prune(current_epoch=9)
        assert freed == 3  # epochs 1, 2, 3
        assert nmap.epochs() == [8, 9]

    def test_prune_keeps_window(self):
        nmap = NullifierMap(thr=3)
        signal = make_signals(1, epoch=10)[0]
        nmap.observe(signal)
        assert nmap.prune(current_epoch=13) == 0
        assert nmap.prune(current_epoch=14) == 1

    def test_storage_accounting(self):
        nmap = NullifierMap(thr=2)
        for signal in make_signals(3):
            nmap.observe(signal)
        # Only the first observation creates an entry; the other two
        # share the nullifier.
        assert nmap.storage_bytes() == 96

    def test_thr_validation(self):
        with pytest.raises(ValueError):
            NullifierMap(thr=0)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=5))
    def test_memory_bounded_by_window(self, thr):
        """Invariant: after pruning, at most 2*thr + 1 epochs remain."""
        nmap = NullifierMap(thr=thr)
        for epoch in range(20):
            rng = random.Random(epoch)
            pk, _ = rln_keys(seed=b"z")
            tree = MerkleTree(8)
            pair = MembershipKeyPair.generate(rng)
            index = tree.insert(pair.commitment.element)
            prover = RlnProver(keypair=pair, proving_key=pk)
            nmap.observe(prover.create_signal(b"m", epoch, tree.proof(index)))
            nmap.prune(current_epoch=epoch)
            assert nmap.epoch_count <= 2 * thr + 1
