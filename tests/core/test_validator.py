"""Tests for the routing-peer validation pipeline."""

import random

import pytest

from repro.core.epoch import EpochTracker
from repro.core.nullifier_map import NullifierMap
from repro.core.validator import RlnMessageValidator, ValidationOutcome
from repro.crypto.keys import MembershipKeyPair
from repro.rln.membership import LocalGroup
from repro.rln.prover import RlnProver, rln_keys
from repro.rln.verifier import RlnVerifier
from repro.sim.simulator import Simulator


@pytest.fixture
def stack(rng):
    """A validator plus a registered member's prover on a live clock."""
    sim = Simulator()
    pk, vk = rln_keys(seed=b"validator-tests")
    group = LocalGroup(depth=8)
    pair = MembershipKeyPair.generate(rng)
    index = group.apply_registration(pair.commitment, 0)
    prover = RlnProver(keypair=pair, proving_key=pk)
    tracker = EpochTracker(sim, epoch_length=10.0)
    validator = RlnMessageValidator(
        verifier=RlnVerifier(vk, group.is_acceptable_root),
        epoch_tracker=tracker,
        nullifier_map=NullifierMap(thr=2),
    )
    return sim, group, index, prover, validator


def signal_at(prover, group, index, message, epoch):
    return prover.create_signal(message, epoch, group.merkle_proof(index))


class TestPipeline:
    def test_valid_signal_relays(self, stack):
        sim, group, index, prover, validator = stack
        signal = signal_at(prover, group, index, b"ok", 0)
        report = validator.validate(signal)
        assert report.outcome is ValidationOutcome.RELAY

    def test_validate_bytes_roundtrip(self, stack):
        sim, group, index, prover, validator = stack
        signal = signal_at(prover, group, index, b"ok", 0)
        report = validator.validate_bytes(signal.to_bytes())
        assert report.outcome is ValidationOutcome.RELAY

    def test_missing_proof_rejected(self, stack):
        _, _, _, _, validator = stack
        report = validator.validate_bytes(None)
        assert report.outcome is ValidationOutcome.REJECT_MALFORMED

    def test_garbage_bytes_rejected(self, stack):
        _, _, _, _, validator = stack
        report = validator.validate_bytes(b"not a signal")
        assert report.outcome is ValidationOutcome.REJECT_MALFORMED

    def test_epoch_too_old_rejected(self, stack):
        sim, group, index, prover, validator = stack
        sim.run_for(100.0)  # local epoch 10, thr 2
        signal = signal_at(prover, group, index, b"stale", 5)
        report = validator.validate(signal)
        assert report.outcome is ValidationOutcome.REJECT_BAD_EPOCH

    def test_epoch_from_future_rejected(self, stack):
        sim, group, index, prover, validator = stack
        signal = signal_at(prover, group, index, b"early", 9)
        report = validator.validate(signal)
        assert report.outcome is ValidationOutcome.REJECT_BAD_EPOCH

    def test_epoch_within_window_accepted(self, stack):
        sim, group, index, prover, validator = stack
        sim.run_for(100.0)  # epoch 10
        for epoch in (8, 9, 10, 11, 12):
            signal = signal_at(
                prover, group, index, f"w{epoch}".encode(), epoch
            )
            report = validator.validate(signal)
            assert report.outcome is ValidationOutcome.RELAY, epoch

    def test_new_member_cannot_spam_past_epochs(self, stack):
        """Section III: epoch validation prevents messaging for all past
        epochs — only the Thr window is accepted."""
        sim, group, index, prover, validator = stack
        sim.run_for(200.0)  # epoch 20
        accepted = 0
        for epoch in range(21):
            signal = signal_at(
                prover, group, index, f"p{epoch}".encode(), epoch
            )
            if validator.validate(signal).outcome is ValidationOutcome.RELAY:
                accepted += 1
        assert accepted == 3  # epochs 18, 19, 20 only

    def test_duplicate_ignored(self, stack):
        sim, group, index, prover, validator = stack
        signal = signal_at(prover, group, index, b"dup", 0)
        validator.validate(signal)
        report = validator.validate(signal)
        assert report.outcome is ValidationOutcome.IGNORE_DUPLICATE

    def test_double_signal_produces_evidence(self, stack, rng):
        sim, group, index, prover, validator = stack
        hits = []
        validator.on_spam(hits.append)
        validator.validate(signal_at(prover, group, index, b"one", 0))
        report = validator.validate(signal_at(prover, group, index, b"two", 0))
        assert report.outcome is ValidationOutcome.DROP_SPAM
        assert report.evidence is not None
        assert report.evidence.recovered_secret == prover.keypair.secret
        assert hits == [report.evidence]

    def test_outsider_proof_rejected(self, stack, rng):
        sim, group, index, prover, validator = stack
        foreign_group = LocalGroup(depth=8)
        outsider = MembershipKeyPair.generate(rng)
        out_index = foreign_group.apply_registration(outsider.commitment, 0)
        out_prover = RlnProver(
            keypair=outsider, proving_key=prover.proving_key
        )
        signal = out_prover.create_signal(
            b"intruder", 0, foreign_group.merkle_proof(out_index)
        )
        report = validator.validate(signal)
        assert report.outcome is ValidationOutcome.REJECT_INVALID_PROOF

    def test_housekeeping_prunes(self, stack):
        sim, group, index, prover, validator = stack
        validator.validate(signal_at(prover, group, index, b"x", 0))
        sim.run_for(100.0)
        assert validator.housekeeping() == 1
        assert validator.nullifier_map.entry_count == 0

    def test_metrics_recorded(self, stack):
        sim, group, index, prover, validator = stack
        validator.validate(signal_at(prover, group, index, b"m", 0))
        assert validator.metrics.counter("validator.relayed") == 1


class TestDuplicateFastPath:
    """The duplicate short-circuit must only fire for exact copies."""

    def test_exact_duplicate_ignored_without_reverification(self, stack):
        sim, group, index, prover, validator = stack
        signal = signal_at(prover, group, index, b"dup", 0)
        assert validator.validate(signal).outcome is ValidationOutcome.RELAY
        report = validator.validate(signal)
        assert report.outcome is ValidationOutcome.IGNORE_DUPLICATE
        assert validator.metrics.counter("validator.duplicate_fast_path") == 1

    def test_tampered_copy_still_rejected(self, stack):
        """Same (epoch, phi, share.x) but corrupted share.y: must REJECT
        (P4 penalty), never be waved through as a duplicate."""
        import dataclasses

        from repro.crypto.field import Fr

        sim, group, index, prover, validator = stack
        signal = signal_at(prover, group, index, b"tamper", 0)
        assert validator.validate(signal).outcome is ValidationOutcome.RELAY
        tampered = dataclasses.replace(
            signal,
            share=dataclasses.replace(signal.share, y=signal.share.y + Fr.one()),
        )
        report = validator.validate(tampered)
        assert report.outcome is ValidationOutcome.REJECT_INVALID_PROOF
        assert validator.metrics.counter("validator.duplicate_fast_path") == 0
