"""Tests for the blockchain simulation and gas metering."""

import pytest

from repro.errors import ChainError
from repro.eth.chain import Blockchain, Contract
from repro.eth.gas import DEFAULT_GAS_SCHEDULE, GasMeter


class Counter(Contract):
    """Toy contract: a stored counter plus revert/transfer helpers."""

    def bump(self, ctx):
        value = ctx.sload("count")
        ctx.sstore("count", value + 1)
        ctx.emit("Bumped", count=value + 1)
        return value + 1

    def clear(self, ctx):
        ctx.sstore("count", 0)

    def fail(self, ctx):
        ctx.sstore("count", 999)
        ctx.require(False, "always reverts")

    def pay_out(self, ctx, to, amount):
        ctx.transfer(to, amount)


@pytest.fixture
def chain():
    chain = Blockchain()
    chain.create_account("alice", balance=10**18)
    chain.deploy(Counter("counter"))
    return chain


class TestAccounts:
    def test_create_and_get(self, chain):
        account = chain.get_account("alice")
        assert account.balance == 10**18

    def test_duplicate_account_rejected(self, chain):
        with pytest.raises(ChainError):
            chain.create_account("alice")

    def test_unknown_account_rejected(self, chain):
        with pytest.raises(ChainError):
            chain.get_account("ghost")


class TestExecution:
    def test_call_now_executes(self, chain):
        receipt = chain.call_now("alice", "counter", "bump")
        assert receipt.success
        assert receipt.return_value == 1
        assert chain.contracts["counter"].storage["count"] == 1

    def test_transact_waits_for_block(self, chain):
        chain.transact("alice", "counter", "bump")
        assert chain.contracts["counter"].storage.get("count") is None
        chain.mine_block()
        assert chain.contracts["counter"].storage["count"] == 1

    def test_unknown_method_fails(self, chain):
        receipt = chain.call_now("alice", "counter", "nope")
        assert not receipt.success
        assert "no such method" in receipt.error

    def test_private_method_not_callable(self, chain):
        receipt = chain.call_now("alice", "counter", "_check_stake")
        assert not receipt.success

    def test_unknown_contract_rejected(self, chain):
        with pytest.raises(ChainError):
            chain.transact("alice", "ghost", "bump")

    def test_revert_restores_storage_and_value(self, chain):
        balance_before = chain.get_account("alice").balance
        receipt = chain.call_now("alice", "counter", "fail", value=100)
        assert not receipt.success
        assert chain.contracts["counter"].storage.get("count") is None
        assert chain.get_account("alice").balance == balance_before
        assert receipt.events == ()

    def test_value_transfer(self, chain):
        chain.create_account("bob")
        chain.call_now("alice", "counter", "bump", value=500)
        assert chain.contracts["counter"].balance == 500
        receipt = chain.call_now("alice", "counter", "pay_out", "bob", 200)
        assert receipt.success
        assert chain.get_account("bob").balance == 200
        assert chain.contracts["counter"].balance == 300

    def test_insufficient_value_reverts(self, chain):
        chain.get_account("alice").balance = 10
        receipt = chain.call_now("alice", "counter", "bump", value=100)
        assert not receipt.success


class TestEvents:
    def test_events_recorded_in_order(self, chain):
        chain.call_now("alice", "counter", "bump")
        chain.call_now("alice", "counter", "bump")
        events = chain.events_since(0)
        assert [e.name for e in events] == ["Bumped", "Bumped"]
        assert [e.log_index for e in events] == [0, 1]
        assert events[1].args["count"] == 2

    def test_events_since_offset(self, chain):
        chain.call_now("alice", "counter", "bump")
        chain.call_now("alice", "counter", "bump")
        assert len(chain.events_since(1)) == 1

    def test_receipt_carries_events(self, chain):
        receipt = chain.call_now("alice", "counter", "bump")
        assert receipt.events[0].name == "Bumped"


class TestGasAccounting:
    def test_tx_base_charged(self, chain):
        receipt = chain.call_now("alice", "counter", "bump")
        assert receipt.gas_used > DEFAULT_GAS_SCHEDULE.tx_base

    def test_fresh_sstore_more_expensive_than_update(self, chain):
        first = chain.call_now("alice", "counter", "bump")
        second = chain.call_now("alice", "counter", "bump")
        assert first.gas_used > second.gas_used

    def test_clear_refund(self, chain):
        chain.call_now("alice", "counter", "bump")
        receipt = chain.call_now("alice", "counter", "clear")
        # The refund is capped at 1/5 of used gas, so the clear tx is
        # cheaper than the same tx without a refund would be.
        meter = GasMeter()
        meter.charge(100_000)
        meter.refund = 1_000_000
        assert meter.finalize() == 80_000
        assert receipt.success

    def test_warm_slot_cheaper(self):
        meter = GasMeter()
        meter.charge_sload("slot")
        cold = meter.used
        meter.charge_sload("slot")
        assert meter.used - cold == DEFAULT_GAS_SCHEDULE.sload_warm


class TestBlocks:
    def test_block_timestamps_default(self, chain):
        chain.mine_block()
        chain.mine_block()
        assert chain.blocks[1].timestamp == chain.block_interval

    def test_mempool_cleared(self, chain):
        chain.transact("alice", "counter", "bump")
        chain.mine_block()
        assert chain.mempool == []
        assert chain.block_number == 1
