"""Barrier-synced chain replicas: the edge cases that decide whether
parallel workers can ever disagree about chain state.

Covers the op-stream protocol itself (queueing, canonical hashes, the
mode guards), the block-grid boundary rule, replica convergence under
different gather orders, worker restart from a committed cursor
position, and cross-shard slash-race settlement.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.field import Fr
from repro.crypto.hashing import hash1
from repro.errors import ChainError
from repro.eth.chain import Blockchain, _canonical_tx_hash
from repro.eth.contracts import MembershipRegistry
from repro.eth.cursor import EventCursor
from repro.scenarios.parallel import chain_fingerprint

STAKE = 1_000
WEALTH = 10 * STAKE


class KeySource:
    """A hand-cranked ``consume_order_key``: tests set ``now`` and
    ``origin`` to stage ops at exact times from chosen shards; the
    per-origin counter mirrors the kernel's."""

    def __init__(self):
        self.now = 0.0
        self.origin = "build"
        self._seq = {}

    def __call__(self):
        seq = self._seq.get(self.origin, 0)
        self._seq[self.origin] = seq + 1
        return (self.now, self.origin, seq)


def make_chain(block_interval=5.0):
    chain = Blockchain(block_interval=block_interval)
    chain.deploy(MembershipRegistry("registry", stake_wei=STAKE))
    for name in ("alice", "bob", "carol"):
        chain.create_account(name, balance=WEALTH)
    return chain


def enter(chain):
    ks = KeySource()
    chain.enter_replica_mode(ks)
    return ks


class TestReplicaProtocol:
    def test_transact_queues_op_instead_of_mutating(self):
        chain = make_chain()
        ks = enter(chain)
        ks.now, ks.origin = 1.0, "alice"
        tx = chain.transact(
            "alice", "registry", "register", 7, value=STAKE
        )
        assert chain.mempool == []  # nothing locally pending
        assert chain.get_account("alice").balance == WEALTH
        ops = chain.drain_outbox()
        assert ops == [("tx", (1.0, "alice", 0), tx)]
        assert chain.drain_outbox() == []  # drained

    def test_canonical_hash_is_derived_from_key_and_sqlite_safe(self):
        chain = make_chain()
        ks = enter(chain)
        ks.origin = "alice"
        tx = chain.transact("alice", "registry", "register", 7, value=STAKE)
        # Every replica recomputes the same hash from (origin, seq) —
        # no shared counter to race on.
        assert tx.tx_hash == _canonical_tx_hash("alice", 0)
        # Watchtower stores persist hashes in sqlite (signed 64-bit).
        assert 0 < tx.tx_hash < 2**63

    def test_transfer_is_deferred_to_the_barrier(self):
        chain = make_chain()
        ks = enter(chain)
        ks.now, ks.origin = 2.0, "alice"
        chain.transfer_value("alice", "bob", 100)
        assert chain.get_account("bob").balance == WEALTH  # not yet
        chain.replica_apply(chain.order_ops(chain.drain_outbox()), 2.5)
        assert chain.get_account("bob").balance == WEALTH + 100
        assert chain.get_account("alice").balance == WEALTH - 100

    def test_call_now_is_forbidden(self):
        chain = make_chain()
        enter(chain)
        with pytest.raises(ChainError, match="barrier"):
            chain.call_now("alice", "registry", "register", 7, value=STAKE)

    def test_mode_guards(self):
        chain = make_chain()
        chain.transact("alice", "registry", "register", 7, value=STAKE)
        with pytest.raises(ChainError, match="pending"):
            chain.enter_replica_mode(KeySource())
        chain.mine_block()
        chain.enter_replica_mode(KeySource())
        with pytest.raises(ChainError, match="already"):
            chain.enter_replica_mode(KeySource())
        fresh = make_chain()
        with pytest.raises(ChainError, match="replica mode"):
            fresh.replica_apply([], 1.0)


class TestBlockGridBoundary:
    def test_op_exactly_on_block_boundary_lands_in_next_block(self):
        """A block with timestamp ``b`` seals strictly before ops at
        ``time >= b`` — the window-boundary rule every shard count must
        agree on. interval=5: the t=4.9 tx mines in the block sealed
        at t=5, the t=5.0 tx waits for the block sealed at t=10."""
        chain = make_chain(block_interval=5.0)
        ks = enter(chain)
        ks.now, ks.origin = 4.9, "alice"
        early = chain.transact(
            "alice", "registry", "register", 11, value=STAKE
        )
        ks.now, ks.origin = 5.0, "bob"
        boundary = chain.transact(
            "bob", "registry", "register", 22, value=STAKE
        )
        chain.replica_apply(chain.order_ops(chain.drain_outbox()), 10.0)

        assert [b.timestamp for b in chain.blocks] == [5.0, 10.0]
        assert chain.receipts[early.tx_hash].block_number == 0
        assert chain.receipts[boundary.tx_hash].block_number == 1
        assert chain.receipts[early.tx_hash].success
        assert chain.receipts[boundary.tx_hash].success

    def test_trailing_blocks_mine_through_the_window_end(self):
        """Empty windows still advance the grid — block visibility at
        the next barrier cannot depend on whether ops happened."""
        chain = make_chain(block_interval=5.0)
        enter(chain)
        chain.replica_apply([], 21.0)
        assert [b.timestamp for b in chain.blocks] == [5.0, 10.0, 15.0, 20.0]
        chain.replica_apply([], 21.0)  # idempotent for the same barrier
        assert len(chain.blocks) == 4


def _staged_ops():
    """One barrier's worth of ops as three shards would emit them."""
    ops = []
    for origin, pk, t in [("alice", 11, 1.0), ("bob", 22, 1.5),
                          ("carol", 33, 6.0)]:
        chain = make_chain()
        ks = enter(chain)
        ks.now, ks.origin = t, origin
        chain.transact(origin, "registry", "register", pk, value=STAKE)
        ks.now = t + 0.1
        chain.transfer_value(origin, "alice", 10)
        ops.extend(chain.drain_outbox())
    return ops


class TestReplicaConvergence:
    def test_gather_order_is_irrelevant(self):
        """The coordinator gathers worker outboxes in pipe order, which
        differs run to run and worker count to worker count;
        ``order_ops`` must erase that."""
        ops = _staged_ops()
        fingerprints = []
        for shuffle_seed in (1, 2, 3):
            gathered = ops[:]
            random.Random(shuffle_seed).shuffle(gathered)
            replica = make_chain()
            enter(replica)
            replica.replica_apply(replica.order_ops(gathered), 10.0)
            fingerprints.append(chain_fingerprint(replica))
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]
        blocks, _burnt, log_len, _digest = fingerprints[0]
        assert blocks == 2 and log_len == 3  # all registers landed

    def test_worker_restart_replays_from_committed_cursor(self):
        """A worker dying mid-window restarts from the last barrier: a
        fresh replica fed the committed op stream reaches the identical
        chain, and an ``EventCursor`` seeded with the crashed worker's
        persisted position sees exactly the not-yet-consumed events —
        no replays, no gaps."""
        ops = Blockchain.order_ops(_staged_ops())
        window1 = [op for op in ops if op[1][0] < 5.0]
        window2 = [op for op in ops if op[1][0] >= 5.0]

        original = make_chain()
        enter(original)
        original.replica_apply(window1, 5.0)
        cursor = EventCursor(original, contract="registry")
        consumed = cursor.catch_up(lambda event: None)
        assert consumed == 2  # both window-1 registrations
        committed = cursor.log_index  # what the store persisted
        original.replica_apply(window2, 10.0)

        # -- crash; a replacement worker rebuilds from the op log --
        restarted = make_chain()
        enter(restarted)
        restarted.replica_apply(window1, 5.0)
        restarted.replica_apply(window2, 10.0)
        assert chain_fingerprint(restarted) == chain_fingerprint(original)

        resumed = EventCursor(restarted, contract="registry", start=committed)
        fresh = resumed.poll()
        assert [e.name for e in fresh] == ["MemberRegistered"]
        assert fresh[0].args["pk"] == 33  # only the window-2 event
        assert resumed.caught_up

    def test_slash_race_settles_identically_on_every_replica(self):
        """Two shards slash the same member in one window. The op
        order — not worker scheduling — picks the winner: the earlier
        ``(time, origin, seq)`` key collects the reward, the loser
        reverts with 'unknown member' on every replica alike."""
        sk = 1234
        pk = int(hash1(Fr(sk)))

        def stage():
            chain = make_chain()
            ks = enter(chain)
            ks.now, ks.origin = 1.0, "alice"
            chain.transact("alice", "registry", "register", pk, value=STAKE)
            ks.now, ks.origin = 6.0, "bob"
            first = chain.transact("bob", "registry", "slash", sk)
            ks.now, ks.origin = 6.0, "carol"
            second = chain.transact("carol", "registry", "slash", sk)
            return chain, first, second

        results = []
        for flip in (False, True):
            chain, first, second = stage()
            ops = chain.drain_outbox()
            if flip:  # the other gather order
                ops.reverse()
            chain.replica_apply(chain.order_ops(ops), 10.0)
            results.append(
                (
                    chain.receipts[first.tx_hash].success,
                    chain.receipts[second.tx_hash].error,
                    chain.get_account("bob").balance,
                    chain.get_account("carol").balance,
                    chain_fingerprint(chain),
                )
            )
        assert results[0] == results[1]
        won, lost_error, bob, carol, _fp = results[0]
        assert won  # "bob" < "carol" in the origin order at equal time
        assert lost_error == "unknown member"
        assert bob > WEALTH  # reward went to the winner...
        assert carol == WEALTH  # ...and only the winner
