"""Tests for the resumable event-log cursor."""

import pytest

from repro.eth.chain import Blockchain, Contract
from repro.eth.cursor import EventCursor


class Emitter(Contract):
    """Toy contract: emits one Pinged event per ping."""

    def ping(self, ctx, value):
        ctx.emit("Pinged", value=value)


@pytest.fixture
def chain():
    chain = Blockchain()
    chain.create_account("alice", balance=10**18)
    chain.deploy(Emitter("a"))
    chain.deploy(Emitter("b"))
    return chain


class TestPoll:
    def test_poll_consumes_and_advances(self, chain):
        cursor = EventCursor(chain)
        chain.call_now("alice", "a", "ping", 1)
        chain.call_now("alice", "a", "ping", 2)
        events = cursor.poll()
        assert [e.args["value"] for e in events] == [1, 2]
        assert cursor.log_index == 2
        assert cursor.poll() == ()

    def test_poll_filters_by_contract(self, chain):
        cursor = EventCursor(chain, contract="a")
        chain.call_now("alice", "a", "ping", 1)
        chain.call_now("alice", "b", "ping", 2)
        chain.call_now("alice", "a", "ping", 3)
        events = cursor.poll()
        assert [e.args["value"] for e in events] == [1, 3]
        assert all(e.contract == "a" for e in events)

    def test_poll_advances_past_foreign_events(self, chain):
        """Non-matching events still move the cursor — the next poll
        must not rescan them."""
        cursor = EventCursor(chain, contract="a")
        chain.call_now("alice", "b", "ping", 1)
        assert cursor.poll() == ()
        assert cursor.log_index == 1
        assert cursor.caught_up

    def test_caught_up_poll_allocates_nothing(self, chain):
        cursor = EventCursor(chain)
        first = cursor.poll()
        second = cursor.poll()
        assert first is second  # the shared empty tuple

    def test_start_offset(self, chain):
        chain.call_now("alice", "a", "ping", 1)
        chain.call_now("alice", "a", "ping", 2)
        cursor = EventCursor(chain, start=1)
        assert [e.args["value"] for e in cursor.poll()] == [2]

    def test_negative_start_rejected(self, chain):
        with pytest.raises(ValueError):
            EventCursor(chain, start=-1)


class TestPeekAndSeek:
    def test_peek_does_not_advance(self, chain):
        cursor = EventCursor(chain, contract="a")
        assert not cursor.peek_pending()
        chain.call_now("alice", "a", "ping", 1)
        assert cursor.peek_pending()
        assert cursor.log_index == 0
        assert len(cursor.poll()) == 1

    def test_peek_respects_filter(self, chain):
        cursor = EventCursor(chain, contract="a")
        chain.call_now("alice", "b", "ping", 1)
        assert not cursor.peek_pending()

    def test_seek_to_log_boundary(self, chain):
        """A cursor committed exactly at the head of the log is caught
        up, and sees exactly the events appended afterwards."""
        chain.call_now("alice", "a", "ping", 1)
        cursor = EventCursor(chain, contract="a")
        cursor.seek(len(chain.event_log))
        assert cursor.caught_up
        assert cursor.poll() == ()
        chain.call_now("alice", "a", "ping", 2)
        assert not cursor.caught_up
        assert [e.args["value"] for e in cursor.poll()] == [2]

    def test_seek_negative_rejected(self, chain):
        cursor = EventCursor(chain)
        with pytest.raises(ValueError):
            cursor.seek(-5)

    def test_clone_is_independent(self, chain):
        chain.call_now("alice", "a", "ping", 1)
        cursor = EventCursor(chain, contract="a")
        twin = cursor.clone()
        assert len(cursor.poll()) == 1
        assert twin.log_index == 0
        assert len(twin.poll()) == 1


class TestEventsSinceView:
    def test_caught_up_returns_shared_empty(self, chain):
        assert chain.events_since(0) is chain.events_since(0)
        assert chain.events_since(0) == ()

    def test_past_end_returns_empty(self, chain):
        chain.call_now("alice", "a", "ping", 1)
        assert chain.events_since(99) == ()

    def test_returns_immutable_tuple(self, chain):
        chain.call_now("alice", "a", "ping", 1)
        view = chain.events_since(0)
        assert isinstance(view, tuple)
        with pytest.raises(TypeError):
            view[0] = None
