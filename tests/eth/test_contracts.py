"""Tests for the two membership-contract designs, incl. the gas claim."""

import random

import pytest

from repro.crypto.field import Fr
from repro.crypto.hashing import hash1
from repro.crypto.keys import MembershipKeyPair
from repro.crypto.merkle import MerkleTree
from repro.eth.chain import Blockchain
from repro.eth.contracts import MembershipRegistry, OnChainTreeContract

STAKE = 10**18


def fresh_chain(contract):
    chain = Blockchain()
    chain.deploy(contract)
    for name in ("alice", "bob", "carol"):
        chain.create_account(name, balance=10 * STAKE)
    return chain


def keypair(seed):
    return MembershipKeyPair.generate(random.Random(seed))


class TestMembershipRegistry:
    def setup_method(self):
        self.contract = MembershipRegistry("m", stake_wei=STAKE)
        self.chain = fresh_chain(self.contract)

    def _register(self, sender, pk, value=STAKE):
        return self.chain.call_now(sender, "m", "register", pk, value=value)

    def test_register_assigns_sequential_indices(self):
        r1 = self._register("alice", int(keypair(1).commitment.element))
        r2 = self._register("bob", int(keypair(2).commitment.element))
        assert r1.success and r2.success
        assert r1.return_value == 0
        assert r2.return_value == 1
        assert self.contract.member_count() == 2

    def test_register_emits_event(self):
        pk = int(keypair(1).commitment.element)
        receipt = self._register("alice", pk)
        event = receipt.events[0]
        assert event.name == "MemberRegistered"
        assert event.args == {"pk": pk, "index": 0}

    def test_underfunded_stake_reverts(self):
        receipt = self._register(
            "alice", int(keypair(1).commitment.element), value=STAKE - 1
        )
        assert not receipt.success
        assert "stake" in receipt.error

    def test_duplicate_pk_reverts(self):
        pk = int(keypair(1).commitment.element)
        assert self._register("alice", pk).success
        assert not self._register("bob", pk).success

    def test_zero_pk_reverts(self):
        assert not self._register("alice", 0).success

    def test_stake_held_by_contract(self):
        self._register("alice", int(keypair(1).commitment.element))
        assert self.contract.balance == STAKE

    def test_slash_removes_and_pays(self):
        pair = keypair(3)
        self._register("alice", int(pair.commitment.element))
        bob_before = self.chain.get_account("bob").balance
        receipt = self.chain.call_now(
            "bob", "m", "slash", int(pair.secret.element)
        )
        assert receipt.success
        assert not self.contract.is_member(int(pair.commitment.element))
        # Reward: stake minus the burnt half.
        assert self.chain.get_account("bob").balance == bob_before + STAKE // 2
        assert self.chain.burnt_wei == STAKE // 2
        assert receipt.events[0].name == "MemberRemoved"

    def test_slash_unknown_member_reverts(self):
        receipt = self.chain.call_now("bob", "m", "slash", 12345)
        assert not receipt.success
        assert "unknown member" in receipt.error

    def test_double_slash_reverts(self):
        pair = keypair(4)
        self._register("alice", int(pair.commitment.element))
        assert self.chain.call_now(
            "bob", "m", "slash", int(pair.secret.element)
        ).success
        assert not self.chain.call_now(
            "carol", "m", "slash", int(pair.secret.element)
        ).success

    def test_slash_requires_real_secret(self):
        pair = keypair(5)
        self._register("alice", int(pair.commitment.element))
        # A wrong secret hashes to a different pk -> unknown member.
        receipt = self.chain.call_now(
            "bob", "m", "slash", int(pair.secret.element) + 1
        )
        assert not receipt.success

    def test_registration_gas_constant_in_group_size(self):
        costs = []
        for i in range(60):
            account = f"user{i}"
            self.chain.create_account(account, balance=2 * STAKE)
            receipt = self.chain.call_now(
                account,
                "m",
                "register",
                int(keypair(100 + i).commitment.element),
                value=STAKE,
            )
            costs.append(receipt.gas_used)
        # After the very first insert (which initialises "count"), cost
        # is identical forever — constant complexity.
        assert len(set(costs[1:])) == 1
        assert costs[0] > costs[1]


class TestOnChainTreeContract:
    def setup_method(self):
        self.contract = OnChainTreeContract("m", depth=10, stake_wei=STAKE)
        self.chain = fresh_chain(self.contract)

    def _register(self, sender, pk, value=STAKE):
        return self.chain.call_now(sender, "m", "register", pk, value=value)

    def test_register_and_slash_work(self):
        pair = keypair(6)
        receipt = self._register("alice", int(pair.commitment.element))
        assert receipt.success
        assert self.contract.is_member(int(pair.commitment.element))
        receipt = self.chain.call_now(
            "bob", "m", "slash", int(pair.secret.element)
        )
        assert receipt.success
        assert not self.contract.is_member(int(pair.commitment.element))

    def test_root_matches_offchain_tree(self):
        pairs = [keypair(i) for i in range(5)]
        for i, pair in enumerate(pairs):
            account = f"user{i}"
            self.chain.create_account(account, balance=2 * STAKE)
            self.chain.call_now(
                account,
                "m",
                "register",
                int(pair.commitment.element),
                value=STAKE,
            )
        tree = MerkleTree(10)
        for pair in pairs:
            tree.insert(pair.commitment.element)
        assert self.contract.root() == int(tree.root)

    def test_empty_root_matches_offchain(self):
        assert self.contract.root() == int(MerkleTree(10).root)

    def test_tree_full_reverts(self):
        small = OnChainTreeContract("tiny", depth=1, stake_wei=STAKE)
        chain = fresh_chain(small)
        assert chain.call_now(
            "alice", "tiny", "register",
            int(keypair(7).commitment.element), value=STAKE,
        ).success
        assert chain.call_now(
            "alice", "tiny", "register",
            int(keypair(8).commitment.element), value=STAKE,
        ).success
        assert not chain.call_now(
            "alice", "tiny", "register",
            int(keypair(9).commitment.element), value=STAKE,
        ).success


class TestGasComparison:
    """The paper's Section III claim: registry is ~an order of magnitude
    cheaper because it avoids logarithmically many storage writes."""

    def _registration_cost(self, contract):
        chain = fresh_chain(contract)
        receipt = chain.call_now(
            "alice",
            contract.address,
            "register",
            int(keypair(42).commitment.element),
            value=STAKE,
        )
        assert receipt.success
        return receipt.gas_used

    def test_registry_much_cheaper_than_tree(self):
        registry_cost = self._registration_cost(
            MembershipRegistry("m", stake_wei=STAKE)
        )
        tree_cost = self._registration_cost(
            OnChainTreeContract("m", depth=20, stake_wei=STAKE)
        )
        assert tree_cost / registry_cost > 5

    def test_tree_cost_grows_with_depth(self):
        shallow = self._registration_cost(
            OnChainTreeContract("m", depth=10, stake_wei=STAKE)
        )
        deep = self._registration_cost(
            OnChainTreeContract("m", depth=30, stake_wei=STAKE)
        )
        assert deep > shallow

    def test_registry_cost_independent_of_depth_parameter(self):
        # The registry has no tree at all; the claim is structural.
        cost = self._registration_cost(MembershipRegistry("m", stake_wei=STAKE))
        assert cost < 100_000
