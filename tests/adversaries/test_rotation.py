"""Identity-rotation semantics (the economics' fine print).

A slashed member may always re-enter with a fresh commitment — that is
the point of the *economic* argument: re-entry is possible but costs a
whole new stake. These tests pin the three properties the argument
rests on: re-admission under a fresh commitment, no nullifier carryover
from the old identity, and the new stake being genuinely at risk.
"""

from __future__ import annotations

from repro.core.config import ProtocolConfig
from repro.core.protocol import WakuRlnRelayNetwork

CONFIG = ProtocolConfig(verification_cache_size=4096)


def _slashed_network(seed: int = 5):
    """A running network whose last peer just got slashed for a
    double-signal; returns (net, spammer, old_commitment)."""
    net = WakuRlnRelayNetwork(
        peer_count=6,
        config=CONFIG,
        seed=seed,
        degree=None,
        block_interval=2.0,
    )
    net.register_all()
    net.start()
    net.run(2.0)
    spammer = net.peers[-1]
    old_commitment = spammer.commitment
    for i in range(3):  # three distinct messages in one epoch
        spammer.publish(f"SPAM|{i}".encode(), bypass_rate_limit=True)
    net.run(10.0)  # detection, slash tx, mining, sync
    assert not net.contract.is_member(int(old_commitment.element))
    return net, spammer, old_commitment


def test_rotated_identity_is_readmitted_under_fresh_commitment():
    net, spammer, old_commitment = _slashed_network()
    old_leaf = spammer.group.tree.find_leaf(old_commitment.element)
    assert old_leaf is None  # removal reached its own replica
    assert not spammer.is_registered

    new_commitment = spammer.rotate_identity()
    assert new_commitment != old_commitment
    net.run(10.0)  # registration mined + synced
    assert spammer.is_registered
    assert net.contract.is_member(int(new_commitment.element))
    assert not net.contract.is_member(int(old_commitment.element))
    # The fresh identity occupies a fresh slot; the old one stays zero.
    assert spammer.leaf_index == net.contract.member_count() - 1

    # And the rotated identity publishes successfully to everyone.
    deliveries = net.collect_deliveries()
    spammer.publish(b"MSG|rotated|0")
    net.run(5.0)
    received = [
        nid
        for nid, msgs in deliveries.items()
        if any(m.startswith(b"MSG|rotated") for m in msgs)
    ]
    assert len(received) == len(net.peers)


def test_old_nullifier_history_does_not_carry_over():
    net, spammer, _old = _slashed_network()
    spammer.rotate_identity()
    net.run(10.0)
    assert spammer.is_registered

    # The old identity already burned this epoch's nullifier slots with
    # three spam messages. If history carried over, the new identity's
    # very first message would look like yet another double-signal and
    # be dropped. It must instead relay network-wide: the internal
    # nullifier derives from the *new* secret key.
    before = net.metrics.counter("validator.double_signals")
    deliveries = net.collect_deliveries()
    spammer.publish(b"MSG|fresh-identity")
    net.run(5.0)
    delivered_to = sum(
        1
        for msgs in deliveries.values()
        if any(m.startswith(b"MSG|fresh-identity") for m in msgs)
    )
    assert delivered_to == len(net.peers)
    assert net.metrics.counter("validator.double_signals") == before


def test_second_double_signal_slashes_the_new_stake():
    net, spammer, _old = _slashed_network()
    balance_after_first_slash = spammer.balance
    spammer.rotate_identity()
    net.run(10.0)
    assert spammer.is_registered
    new_commitment = spammer.commitment
    # The rotation locked a second stake.
    assert (
        spammer.balance == balance_after_first_slash - net.config.stake_wei
    )

    for i in range(3):
        spammer.publish(f"SPAM|again|{i}".encode(), bypass_rate_limit=True)
    net.run(10.0)

    assert not net.contract.is_member(int(new_commitment.element))
    assert not spammer.is_registered
    removed = [
        e for e in net.chain.events_since(0) if e.name == "MemberRemoved"
    ]
    assert len(removed) == 2  # both identities slashed
    # Both stakes are gone for good: half burnt, half to reporters.
    burn_per_slash = int(net.config.stake_wei * net.config.burn_fraction)
    assert net.chain.burnt_wei == 2 * burn_per_slash
