"""Unit behaviour of the built-in adversary strategies."""

from __future__ import annotations

import pytest

from repro.adversaries import (
    AdaptiveBackoff,
    BurstFlooder,
    LowAndSlow,
    RotatingSybil,
    build_strategy,
    register_strategy,
    strategy_names,
)
from repro.adversaries.base import AdversaryStrategy
from repro.errors import ScenarioError


class _StubConfig:
    epoch_length = 10.0


class _StubPeer:
    config = _StubConfig()


class _StubAgent:
    peer = _StubPeer()


AGENT = _StubAgent()


def test_registry_lists_the_four_built_ins():
    names = strategy_names()
    for expected in (
        "burst-flood",
        "rotating-sybil",
        "low-and-slow",
        "adaptive-backoff",
    ):
        assert expected in names


def test_build_strategy_unknown_name():
    with pytest.raises(ScenarioError):
        build_strategy("no-such-strategy")


def test_build_strategy_forwards_burst_only_where_supported():
    flooder = build_strategy("burst-flood", burst=7, epochs=2)
    assert isinstance(flooder, BurstFlooder)
    assert flooder.burst == 7
    # low-and-slow has no burst parameter; the default must not crash it.
    probe = build_strategy("low-and-slow", burst=7, probe_every=2)
    assert isinstance(probe, LowAndSlow)
    # ...but explicit unsupported params still fail loudly.
    with pytest.raises(ScenarioError):
        build_strategy("low-and-slow", nonsense=1)


def test_burst_flooder_stops_after_epochs_and_never_rotates():
    strat = BurstFlooder(burst=5, epochs=3)
    assert not strat.rotate_on_slash
    assert [strat.messages_for_epoch(AGENT, k) for k in range(5)] == [
        5, 5, 5, 0, 0,
    ]
    assert not strat.finished(AGENT, 2)
    assert strat.finished(AGENT, 3)


def test_rotating_sybil_always_bursts_and_rotates():
    strat = RotatingSybil(burst=4)
    assert strat.rotate_on_slash
    assert strat.messages_for_epoch(AGENT, 0) == 4
    assert strat.messages_for_epoch(AGENT, 99) == 4


def test_low_and_slow_probes_on_schedule():
    strat = LowAndSlow(probe_every=3)
    emitted = [strat.messages_for_epoch(AGENT, k) for k in range(6)]
    # Two legal epochs, then the minimal two-message violation, repeat.
    assert emitted == [1, 1, 2, 1, 1, 2]


def test_adaptive_backoff_halves_on_fast_slash_grows_on_slow():
    strat = AdaptiveBackoff(burst=8, min_burst=2)
    strat.on_slashed(AGENT, latency=5.0)  # within one epoch: fast
    assert strat.burst == 4
    strat.on_slashed(AGENT, latency=5.0)
    assert strat.burst == 2
    strat.on_slashed(AGENT, latency=5.0)  # clamped at min_burst
    assert strat.burst == 2
    strat.on_slashed(AGENT, latency=100.0)  # slow slash: push harder
    assert strat.burst == 3
    assert strat.observed_latencies == [5.0, 5.0, 5.0, 100.0]


def test_adaptive_backoff_escalates_under_impunity():
    strat = AdaptiveBackoff(burst=4, max_burst=10)
    bursts = [strat.messages_for_epoch(AGENT, k) for k in range(9)]
    assert bursts[0] == 4
    assert max(bursts) > 4  # unsanctioned violations embolden it
    assert max(bursts) <= 10


def test_register_strategy_rejects_duplicates_and_accepts_custom():
    class Custom(AdversaryStrategy):
        name = "custom-test-strategy"

        def messages_for_epoch(self, agent, epoch_index):
            return 1

    if "custom-test-strategy" not in strategy_names():
        register_strategy("custom-test-strategy", Custom)
    assert "custom-test-strategy" in strategy_names()
    with pytest.raises(ScenarioError):
        register_strategy("custom-test-strategy", Custom)
    assert isinstance(
        build_strategy("custom-test-strategy"), Custom
    )
