"""The adversary engine against a real (small) deployment."""

from __future__ import annotations

from repro.adversaries import AdversaryEngine, build_strategy
from repro.core.config import ProtocolConfig
from repro.core.protocol import WakuRlnRelayNetwork

CONFIG = ProtocolConfig(verification_cache_size=4096)


def _network(peers: int = 8, seed: int = 11) -> WakuRlnRelayNetwork:
    net = WakuRlnRelayNetwork(
        peer_count=peers,
        config=CONFIG,
        seed=seed,
        degree=None,  # full mesh: every router sees every signal fast
        block_interval=2.0,
    )
    net.register_all()
    net.start()
    return net


def _engine_with_agent(net, strategy_name, budget_stakes, **params):
    engine = AdversaryEngine(net, start=2.0)
    engine.add_agent(
        net.peers[-1],
        build_strategy(strategy_name, **params),
        budget_wei=budget_stakes * net.config.stake_wei,
    )
    engine.launch()
    return engine


def test_rotating_agent_is_slashed_and_buys_new_identities():
    net = _network()
    engine = _engine_with_agent(net, "rotating-sybil", 4, burst=3)
    net.run(80.0)
    net.stop()
    agent = engine.agents[0]
    assert agent.slashes >= 2
    assert agent.rotations >= 1
    # Every rotation bought a genuinely fresh identity.
    commitments = [rec.commitment for rec in agent.identities]
    assert len(set(commitments)) == len(commitments)
    report = engine.report()
    assert report.spend_wei == agent.registrations * net.config.stake_wei
    assert report.rotations == agent.rotations


def test_budget_exhaustion_retires_the_agent():
    net = _network()
    # 2 stakes: the bootstrap identity plus exactly one rotation.
    engine = _engine_with_agent(net, "rotating-sybil", 2, burst=3)
    net.run(120.0)
    net.stop()
    agent = engine.agents[0]
    assert agent.retired
    assert agent.registrations == 2
    assert not agent.can_afford_identity()
    # Retirement is the economic endpoint: balance below one stake.
    assert agent.balance_wei < net.config.stake_wei


def test_burst_flooder_agent_never_rotates():
    net = _network()
    engine = _engine_with_agent(
        net, "burst-flood", 4, burst=4, epochs=2
    )
    net.run(80.0)
    net.stop()
    agent = engine.agents[0]
    assert agent.registrations == 1
    assert agent.slashes == 1
    assert agent.retired


def test_economics_series_is_monotone_and_consistent():
    net = _network()
    engine = _engine_with_agent(net, "rotating-sybil", 3, burst=3)
    net.run(80.0)
    net.stop()
    samples = engine.samples
    assert len(samples) >= 3
    costs = [s.attacker_cost_wei for s in samples]
    assert costs == sorted(costs)  # attacker cost only ever grows
    sent = [s.spam_sent for s in samples]
    assert sent == sorted(sent)
    last = samples[-1]
    assert last.registrations == engine.agents[0].registrations
    assert last.attacker_spend_wei == engine.spend_wei
    # The burnt share of lost stakes matches the chain's burn tally
    # (no other slashing happened in this run).
    assert last.attacker_stake_burnt_wei == net.chain.burnt_wei


def test_attack_report_joins_chain_ledgers():
    net = _network()
    engine = _engine_with_agent(net, "rotating-sybil", 3, burst=3)
    net.run(60.0)
    net.stop()
    report = engine.report()
    assert report.economics is not None
    ledger = report.economics.ledger(engine.agents[0].node_id)
    # All money that left the wallet went into stakes.
    assert -ledger.net_flow == report.spend_wei - report.stake_wei
    assert report.cost_per_delivered_spam(10) == report.spend_wei / 10
    assert report.cost_per_delivered_spam(0) == float("inf")


def test_agent_wallets_never_grow():
    """Regression: adversary peers must not finance rotations out of
    slash bounties. With several colluding agents, every wallet holds
    exactly budget minus stakes bought — no reporter rewards flowed
    back in — and nobody exceeds its budget."""
    net = _network(peers=10)
    engine = AdversaryEngine(net, start=2.0)
    budget_stakes = 2
    stake = net.config.stake_wei
    for peer in net.peers[-3:]:
        engine.add_agent(
            peer,
            build_strategy("rotating-sybil", burst=3),
            budget_wei=budget_stakes * stake,
        )
    engine.launch()
    net.run(120.0)
    net.stop()
    for agent in engine.agents:
        assert agent.registrations <= budget_stakes
        assert agent.balance_wei == (
            budget_stakes * stake - agent.registrations * stake
        )
        assert agent.peer.slashes_submitted == 0


def test_params_level_burst_overrides_group_default():
    """Regression: an explicit ``params={"burst": ...}`` used to crash
    the runner with a duplicate-keyword TypeError."""
    from repro.scenarios import (
        AdversaryGroup,
        AdversaryMix,
        ScenarioSpec,
        TrafficModel,
        ScenarioRunner,
    )

    spec = ScenarioSpec(
        name="params-burst-override",
        description="params burst beats the group default",
        peers=8,
        degree=None,
        duration=14.0,
        traffic=TrafficModel(active_fraction=0.0),
        adversaries=AdversaryMix(
            groups=(
                AdversaryGroup(
                    strategy="burst-flood",
                    burst=2,
                    params={"burst": 7, "epochs": 1},
                ),
            ),
        ),
    )
    result = ScenarioRunner(spec).run()
    # One epoch of bursting before the slash lands: the params-level
    # burst (7) was emitted, not the group default (2).
    assert result.spam_published == 7


def test_baseline_comparison_mirrors_engine_groups():
    """The unprotected-relay comparison floods at each group's
    *resolved* burst over its real attack window."""
    from repro.scenarios import (
        AdversaryGroup,
        AdversaryMix,
        ScenarioSpec,
        TrafficModel,
        ScenarioRunner,
    )

    spec = ScenarioSpec(
        name="baseline-mirrors-groups",
        description="engine group vs unprotected relay",
        peers=10,
        degree=None,
        duration=30.0,
        traffic=TrafficModel(active_fraction=0.0),
        adversaries=AdversaryMix(
            groups=(
                AdversaryGroup(
                    strategy="rotating-sybil",
                    burst=2,
                    params={"burst": 5},  # override must reach baseline
                ),
            ),
        ),
        compare_baseline=True,
    )
    result = ScenarioRunner(spec).run()
    epoch_length = spec.build_config().epoch_length
    # Persistent strategy: flood window spans the scenario past start,
    # at the params-resolved rate of 5 msgs/epoch.
    expected = int(
        (spec.duration - spec.adversaries.start)
        / (epoch_length / 5)
    )
    assert result.extras["baseline_spam_sent"] == expected
    assert result.extras["baseline_spam_delivered"] > 0


def test_engine_runs_are_deterministic():
    def fingerprint():
        net = _network(seed=23)
        engine = _engine_with_agent(net, "adaptive-backoff", 4, burst=6)
        net.run(80.0)
        net.stop()
        agent = engine.agents[0]
        return (
            agent.spam_sent,
            agent.registrations,
            agent.slashes,
            [s.attacker_cost_wei for s in engine.samples],
        )

    assert fingerprint() == fingerprint()
