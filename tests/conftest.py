"""Shared fixtures: deterministic RNG, hash-backend isolation, and the
``slow`` marker gating full-scale scenario runs."""

from __future__ import annotations

import random

import pytest

from repro.crypto.hashing import get_hash_backend, set_hash_backend


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: full-scale scenario run; excluded by default, opt in "
        "with `pytest -m slow`",
    )


def pytest_collection_modifyitems(config, items):
    """Make ``slow`` opt-in: skipped unless the -m expression names it."""
    if "slow" in (config.option.markexpr or ""):
        return
    skip_slow = pytest.mark.skip(
        reason="full-scale scenario; opt in with -m slow"
    )
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; reseed per test for reproducibility."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def poseidon_backend():
    """Run a test under the genuine Poseidon backend, then restore."""
    previous = get_hash_backend()
    set_hash_backend("poseidon")
    yield
    set_hash_backend(previous)


@pytest.fixture(autouse=True)
def _restore_hash_backend():
    """Guard against tests leaking a backend switch."""
    previous = get_hash_backend()
    yield
    set_hash_backend(previous)
