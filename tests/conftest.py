"""Shared fixtures: deterministic RNG and hash-backend isolation."""

from __future__ import annotations

import random

import pytest

from repro.crypto.hashing import get_hash_backend, set_hash_backend


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; reseed per test for reproducibility."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def poseidon_backend():
    """Run a test under the genuine Poseidon backend, then restore."""
    previous = get_hash_backend()
    set_hash_backend("poseidon")
    yield
    set_hash_backend(previous)


@pytest.fixture(autouse=True)
def _restore_hash_backend():
    """Guard against tests leaking a backend switch."""
    previous = get_hash_backend()
    yield
    set_hash_backend(previous)
