"""Tests for the `python -m repro.analysis` experiment runner."""

import pytest

from repro.analysis.__main__ import EXPERIMENTS, main


class TestCli:
    def test_every_paper_experiment_registered(self):
        for key in ("e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10"):
            assert key in EXPERIMENTS

    def test_ablations_and_scaling_registered(self):
        for key in ("a1", "a2", "a3", "a4", "scale"):
            assert key in EXPERIMENTS

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["e99"]) == 1
        assert "unknown experiments" in capsys.readouterr().out

    def test_single_experiment_runs(self, capsys):
        assert main(["ref"]) == 0
        out = capsys.readouterr().out
        assert "Paper reference values" in out
        assert "proof generation" in out

    def test_fast_experiment_prints_table(self, capsys):
        assert main(["a1"]) == 0
        out = capsys.readouterr().out
        assert "epoch T (s)" in out
        assert "thr" in out

    def test_case_insensitive_selection(self, capsys):
        assert main(["REF"]) == 0
