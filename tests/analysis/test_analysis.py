"""Tests for the experiment harness: reporting and runner smoke tests.

The heavyweight experiment content is asserted in ``benchmarks/``; the
tests here pin the harness API (headers/rows shape, formatting) with
small parameterisations so refactors cannot silently break the
reproduction pipeline.
"""

import pytest

from repro.analysis import (
    economics_experiment,
    format_experiment,
    format_table,
    gas_cost_experiment,
    human_bytes,
    key_material_experiment,
    merkle_storage_experiment,
    nullifier_map_experiment,
    paper_reference_row,
    proof_generation_experiment,
    proof_verification_experiment,
)
from repro.analysis.ablations import epoch_length_ablation, root_window_ablation
from repro.analysis.scaling import network_scaling_experiment
from repro.analysis.reporting import format_value


class TestFormatting:
    def test_format_table_alignment(self):
        table = format_table(("a", "bbb"), [(1, 2), (333, 4)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}

    def test_format_table_empty_rows(self):
        table = format_table(("x",), [])
        assert "x" in table

    def test_format_experiment_note(self):
        text = format_experiment("T", ("h",), [(1,)], note="a note")
        assert text.startswith("== T ==")
        assert text.rstrip().endswith("a note")

    def test_format_value_floats(self):
        assert format_value(0.5) == "0.5"
        assert format_value(1.23e-7) == "1.230e-07"
        assert format_value(123456.0) == "1.235e+05"
        assert format_value(0) == "0"

    def test_format_value_large_ints_grouped(self):
        assert format_value(1_000_000) == "1,000,000"

    def test_human_bytes(self):
        assert human_bytes(500) == "500 B"
        assert human_bytes(67_000_000) == "67 MB"
        assert human_bytes(1_500) == "1.5 KB"


class TestExperimentPayload:
    def test_roundtrip_and_validation(self):
        import json

        from repro.analysis import (
            experiment_payload,
            validate_experiment_payload,
        )

        payload = experiment_payload(
            "bench_x",
            "Title",
            ("mode", "seconds"),
            [("fast", 1.5), ("slow", 3)],
            note="n",
            meta={"speedup": 2.0},
        )
        validate_experiment_payload(json.loads(json.dumps(payload)))

    def test_rejects_malformed_payloads(self):
        from repro.analysis import (
            experiment_payload,
            validate_experiment_payload,
        )

        good = experiment_payload("b", "t", ("h",), [(1,)])
        for mutation in (
            {"name": ""},
            {"headers": []},
            {"rows": [[1, 2]]},  # width mismatch
            {"rows": [[object()]]},
            {"schema_version": 999},
            {"meta": {"k": [1, 2]}},
            # peak_memory_bytes is optional but typed when present.
            {"meta": {"peak_memory_bytes": -1}},
            {"meta": {"peak_memory_bytes": 1.5}},
            {"meta": {"peak_memory_bytes": True}},
            {"meta": {"peak_memory_bytes": "12"}},
        ):
            bad = {**good, **mutation}
            with pytest.raises(ValueError):
                validate_experiment_payload(bad)

    def test_peak_memory_bytes_meta_accepted(self):
        from repro.analysis import experiment_payload

        payload = experiment_payload(
            "b", "t", ("h",), [(1,)], meta={"peak_memory_bytes": 0}
        )
        assert payload["meta"]["peak_memory_bytes"] == 0
        experiment_payload(
            "b", "t", ("h",), [(1,)],
            meta={"peak_memory_bytes": 123_456_789},
        )

    def test_rejects_non_scalar_cells_at_build(self):
        from repro.analysis import experiment_payload

        with pytest.raises(ValueError):
            experiment_payload("b", "t", ("h",), [({"nested": 1},)])


class TestRunnersProduceConsistentTables:
    """Each runner returns (headers, rows) with matching widths."""

    @pytest.mark.parametrize(
        "runner,kwargs",
        [
            (proof_generation_experiment, {"depths": (4,), "measure_r1cs": False}),
            (proof_verification_experiment, {"depths": (4,), "repetitions": 5}),
            (key_material_experiment, {}),
            (merkle_storage_experiment, {"depths": (4, 20), "populated_members": 8}),
            (gas_cost_experiment, {"member_counts": (0, 2), "depth": 4}),
            (nullifier_map_experiment, {"epochs": 6, "senders_per_epoch": 3}),
            (economics_experiment, {"spammer_count": 1, "peer_count": 6}),
            (epoch_length_ablation, {"epoch_lengths": (5.0, 10.0)}),
            (root_window_ablation, {"windows": (1, 2), "churn_events": 3}),
            (paper_reference_row, {}),
            (
                network_scaling_experiment,
                {"peer_counts": (8,), "messages": 2},
            ),
        ],
    )
    def test_shape(self, runner, kwargs):
        headers, rows = runner(**kwargs)
        assert len(headers) >= 2
        assert rows, f"{runner.__name__} produced no rows"
        for row in rows:
            assert len(row) == len(headers)
        # Formatting never crashes on the produced values.
        assert format_table(headers, rows)


class TestExperimentSemantics:
    def test_verification_constant_even_tiny(self):
        _, rows = proof_verification_experiment(depths=(4, 8), repetitions=20)
        measured = [row[3] for row in rows]
        assert max(measured) < 10 * min(measured) + 1e-3

    def test_gas_ratio_order_of_magnitude_small_config(self):
        _, rows = gas_cost_experiment(member_counts=(0,), depth=20)
        assert rows[0][5] > 10

    def test_economics_conserves_value(self):
        _, rows = economics_experiment(spammer_count=2, peer_count=8)
        values = {row[0]: row[1] for row in rows}
        assert (
            values["total burnt"] + values["total reporter rewards"]
            == values["total attacker loss"]
        )
