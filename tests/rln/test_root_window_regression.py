"""Regression tests for LocalGroup's sliding root-window acceptance.

A proof against the root that *just* slid out of the window must be
rejected; one against the oldest root still inside the window must be
accepted — the boundary the paper's group-sync race argument relies on.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.keys import MembershipKeyPair
from repro.rln.membership import DEFAULT_ROOT_WINDOW, LocalGroup
from repro.rln.prover import RlnProver, rln_keys
from repro.rln.verifier import RlnVerifier, SignalCheck


def grow(group: LocalGroup, rng: random.Random, count: int):
    """Register ``count`` members; returns the roots after each event."""
    roots = []
    for _ in range(count):
        pair = MembershipKeyPair.generate(rng)
        group.apply_registration(pair.commitment, group.applied_events)
        roots.append(group.root)
    return roots


@pytest.mark.parametrize("window", [2, 4, DEFAULT_ROOT_WINDOW])
def test_window_boundary_exact(window):
    rng = random.Random(window)
    group = LocalGroup(depth=8, root_window=window)
    roots = grow(group, rng, window + 3)
    recent = group.recent_roots()
    assert len(recent) == window
    # The newest `window` roots are accepted, oldest-first.
    assert recent == roots[-window:]
    # Boundary: the oldest root still in the window is accepted...
    assert group.is_acceptable_root(roots[-window])
    # ...the one that just slid out is not.
    assert not group.is_acceptable_root(roots[-window - 1])
    # Every older root is rejected too.
    for root in roots[: -window - 1]:
        assert not group.is_acceptable_root(root)


def test_proof_against_slid_out_root_rejected_at_boundary():
    """End to end: a publisher whose replica lags by exactly the window
    is accepted; one event further behind and its proofs are dropped."""
    window = 3
    rng = random.Random(7)
    pk, vk = rln_keys(seed=b"root-window")
    router = LocalGroup(depth=8, root_window=window)
    publisher = LocalGroup(depth=8, root_window=window)

    pair = MembershipKeyPair.generate(rng)
    router.apply_registration(pair.commitment, 0)
    publisher.apply_registration(pair.commitment, 0)
    prover = RlnProver(keypair=pair, proving_key=pk)
    verifier = RlnVerifier(
        verifying_key=vk, root_predicate=router.is_acceptable_root
    )

    # The publisher proves against its current (soon-to-be-stale) root.
    stale_proof = publisher.merkle_proof(0)

    # Router applies window-1 more events: publisher root at the boundary.
    grow(router, random.Random(8), window - 1)
    boundary_signal = prover.create_signal(b"boundary", 1, stale_proof)
    assert verifier.check(boundary_signal) is SignalCheck.VALID

    # One more event: the publisher's root has just slid out.
    grow(router, random.Random(9), 1)
    stale_signal = prover.create_signal(b"too stale", 1, stale_proof)
    assert verifier.check(stale_signal) is SignalCheck.UNKNOWN_ROOT


def test_removal_events_also_slide_the_window():
    rng = random.Random(11)
    group = LocalGroup(depth=8, root_window=2)
    roots = grow(group, rng, 3)
    group.apply_removal(0, group.applied_events)
    assert not group.is_acceptable_root(roots[-2])
    assert group.is_acceptable_root(roots[-1])
    assert group.is_acceptable_root(group.root)


def test_replicated_group_accepts_identical_roots():
    """replicate_from preserves the window, not just the latest root."""
    rng = random.Random(13)
    source = LocalGroup(depth=8, root_window=4)
    grow(source, rng, 6)
    replica = LocalGroup(depth=8, root_window=4)
    replica.replicate_from(source)
    assert replica.recent_roots() == source.recent_roots()
    assert replica.root == source.root
    assert replica.applied_events == source.applied_events
    # The clone is independent: growing one does not move the other.
    grow(replica, rng, 1)
    assert replica.root != source.root
