"""Shared membership store: equivalence, forks, isolation.

The copy-on-write store is only allowed to exist because it is
*observably identical* to independent replicas: same roots, same root
windows, same verification decisions, under any interleaving of
registrations, slashes, replication and forced forks. These tests
drive shared and independent replica populations through the same
random event scripts and compare everything a router or publisher
could see.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.field import Fr
from repro.crypto.hashing import hash_call_count
from repro.crypto.keys import MembershipKeyPair
from repro.crypto.merkle import MerkleTree
from repro.crypto.merkle_shared import CanonicalMerkleTree, SharedMerkleView
from repro.errors import MerkleError
from repro.rln.membership import LocalGroup, MembershipStore

DEPTH = 8


def _commitments(n: int, seed: int = 7):
    rng = random.Random(seed)
    return [MembershipKeyPair.generate(rng).commitment for _ in range(n)]


def _assert_replicas_equal(shared: LocalGroup, independent: LocalGroup):
    assert shared.root == independent.root
    assert shared.recent_roots() == independent.recent_roots()
    assert shared.member_count == independent.member_count
    for probe in independent.recent_roots():
        assert shared.is_acceptable_root(probe) == (
            independent.is_acceptable_root(probe)
        )


#: One action of the random script. ("reg", c) registers commitment #c,
#: ("slash", i) removes an assigned slot, ("replicate", r) re-bootstraps
#: replica r from replica 0, ("fork", r) mutates replica r's tree
#: out-of-band (the adversarial-desync move).
actions = st.lists(
    st.one_of(
        st.tuples(st.just("reg"), st.integers(0, 39)),
        st.tuples(st.just("slash"), st.integers(0, 39)),
        st.tuples(st.just("replicate"), st.integers(1, 3)),
        st.tuples(st.just("fork"), st.integers(1, 3)),
    ),
    min_size=1,
    max_size=40,
)


class TestSharedVsIndependentEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(actions=actions, seed=st.integers(0, 2**16))
    def test_random_interleavings(self, actions, seed):
        commitments = _commitments(40, seed=seed)
        store = MembershipStore(depth=DEPTH, root_window=4)
        shared = [store.local_group() for _ in range(4)]
        independent = [
            LocalGroup(depth=DEPTH, root_window=4) for _ in range(4)
        ]
        forked = set()
        events = 0
        next_commit = 0
        for kind, arg in actions:
            if kind == "reg":
                if events >= (1 << DEPTH) or next_commit >= len(commitments):
                    continue
                commitment = commitments[next_commit]
                next_commit += 1
                for group in shared + independent:
                    if id(group) in forked:
                        continue
                    group.apply_registration(commitment, events)
                events += 1
            elif kind == "slash":
                count = independent[0].member_count
                if count == 0:
                    continue
                index = arg % count
                for group in shared + independent:
                    if id(group) in forked:
                        continue
                    group.apply_removal(index, events)
                events += 1
            elif kind == "replicate":
                shared[arg].replicate_from(shared[0])
                independent[arg].replicate_from(independent[0])
                forked.discard(id(shared[arg]))
                forked.discard(id(independent[arg]))
            else:  # fork: same out-of-band mutation on both populations
                count = independent[arg].member_count
                if count == 0:
                    continue
                shared[arg].tree.update(arg % count, Fr(0xBEEF + arg))
                independent[arg].tree.update(arg % count, Fr(0xBEEF + arg))
                forked.add(id(shared[arg]))
                forked.add(id(independent[arg]))
            for s, i in zip(shared, independent):
                _assert_replicas_equal(s, i)

        # Proofs agree wherever slots are assigned.
        for s, i in zip(shared, independent):
            for index in range(i.member_count):
                ps, pi = s.merkle_proof(index), i.merkle_proof(index)
                assert ps.siblings == pi.siblings
                assert ps.path_bits == pi.path_bits
                assert ps.verify(s.root)

    @settings(max_examples=20, deadline=None)
    @given(
        leaves=st.lists(
            st.integers(min_value=1, max_value=2**64), min_size=1, max_size=20
        )
    )
    def test_view_matches_merkle_tree_op_for_op(self, leaves):
        canonical = CanonicalMerkleTree(DEPTH)
        view = SharedMerkleView(canonical)
        reference = MerkleTree(DEPTH)
        for value in leaves:
            assert view.synced_insert(Fr(value)) == reference.insert(
                Fr(value)
            )
            assert view.root == reference.root
            assert view.find_leaf(Fr(value)) == reference.find_leaf(
                Fr(value)
            )
        view.synced_update(0, Fr.zero())
        reference.delete(0)
        assert view.root == reference.root
        assert view.leaves() == list(reference.leaves())


class TestDedupAccounting:
    def test_later_replicas_apply_events_without_hashing(self):
        commitments = _commitments(6)
        store = MembershipStore(depth=DEPTH)
        groups = [store.local_group() for _ in range(10)]
        for event, commitment in enumerate(commitments):
            groups[0].apply_registration(commitment, event)
        before = hash_call_count()
        for group in groups[1:]:
            for event, commitment in enumerate(commitments):
                group.apply_registration(commitment, event)
        assert hash_call_count() == before  # pure pointer advances
        stats = store.stats()
        assert stats["events"] == len(commitments)
        assert stats["events_deduped"] == 9 * len(commitments)
        assert stats["forks"] == 0

    def test_replicate_from_shared_view_is_hash_free(self):
        commitments = _commitments(5)
        store = MembershipStore(depth=DEPTH)
        reference = store.local_group()
        for event, commitment in enumerate(commitments):
            reference.apply_registration(commitment, event)
        newcomer = store.local_group()
        before = hash_call_count()
        newcomer.replicate_from(reference)
        assert hash_call_count() == before
        assert newcomer.root == reference.root


class TestForkIsolation:
    def _populated(self, replicas: int = 3):
        commitments = _commitments(8)
        store = MembershipStore(depth=DEPTH)
        groups = [store.local_group() for _ in range(replicas)]
        for event, commitment in enumerate(commitments):
            for group in groups:
                group.apply_registration(commitment, event)
        return store, groups, commitments

    def test_forked_mutation_never_leaks(self):
        store, groups, commitments = self._populated()
        canonical = store.canonical()
        root_before = Fr(canonical.root_at(canonical.version))
        sibling_roots = [g.root for g in groups[1:]]

        rogue = groups[0]
        rogue.tree.update(2, Fr(0xDEAD))
        rogue.tree.insert(Fr(0xFEED))
        rogue.tree.delete(0)

        assert rogue.tree.is_forked
        assert Fr(canonical.root_at(canonical.version)) == root_before
        assert [g.root for g in groups[1:]] == sibling_roots
        for sibling in groups[1:]:
            assert sibling.tree.leaf(2) == commitments[2].element
            assert not sibling.tree.is_forked

    def test_fork_then_siblings_keep_sharing(self):
        store, groups, _ = self._populated()
        groups[0].tree.update(1, Fr(123))
        extra = _commitments(3, seed=99)
        before = hash_call_count()
        for event, commitment in enumerate(extra, start=8):
            for group in groups[1:]:
                group.apply_registration(commitment, event)
        # Two replicas, three events: only the first application of
        # each event hashes (depth each), the second replica dedups.
        assert hash_call_count() - before == 3 * DEPTH
        assert groups[1].root == groups[2].root

    def test_fork_is_frozen_at_fork_version(self):
        store, groups, commitments = self._populated()
        rogue = groups[0]
        rogue.tree.update(2, Fr(0xDEAD))
        snapshot_root = rogue.root
        # Canonical marches on; the fork must not see those events.
        extra = _commitments(2, seed=5)
        for event, commitment in enumerate(extra, start=8):
            for group in groups[1:]:
                group.apply_registration(commitment, event)
        assert rogue.root == snapshot_root
        assert rogue.member_count == len(commitments)
        proof = rogue.tree.proof(2)
        assert proof.leaf == Fr(0xDEAD)
        assert proof.verify(rogue.root)

    def test_clone_of_fork_is_independent(self):
        store, groups, _ = self._populated()
        rogue = groups[0]
        rogue.tree.update(2, Fr(0xDEAD))
        twin = rogue.tree.clone()
        rogue.tree.update(3, Fr(0xBEEF))
        assert twin.leaf(3) != Fr(0xBEEF)
        twin.update(4, Fr(0xCAFE))
        assert rogue.tree.leaf(4) != Fr(0xCAFE)

    def test_forked_view_bounds_checks(self):
        store = MembershipStore(depth=2)
        group = store.local_group()
        commitments = _commitments(4)
        for event, commitment in enumerate(commitments):
            group.apply_registration(commitment, event)
        with pytest.raises(MerkleError):
            group.tree.insert(Fr(1))  # full even on the fork path
        with pytest.raises(MerkleError):
            group.tree.update(9, Fr(1))

    def test_out_of_band_insert_forks_even_at_head(self):
        store = MembershipStore(depth=DEPTH)
        groups = [store.local_group() for _ in range(2)]
        groups[0].apply_registration(_commitments(1)[0], 0)
        groups[1].apply_registration(_commitments(1)[0], 0)
        canonical_version = store.canonical().version
        groups[0].tree.insert(Fr(42))
        assert groups[0].tree.is_forked
        # The rogue insert must not have become a canonical event.
        assert store.canonical().version == canonical_version
        assert not groups[1].tree.is_forked


class TestLaggingViews:
    def test_lagging_view_reads_historical_state(self):
        commitments = _commitments(10)
        store = MembershipStore(depth=DEPTH)
        leader = store.local_group()
        laggard = store.local_group()
        for event, commitment in enumerate(commitments[:4]):
            leader.apply_registration(commitment, event)
            laggard.apply_registration(commitment, event)
        frozen_root = laggard.root
        frozen_proof = laggard.merkle_proof(1)
        for event, commitment in enumerate(commitments[4:], start=4):
            leader.apply_registration(commitment, event)
        # The laggard still sees (and proves against) version 4.
        assert laggard.root == frozen_root
        assert laggard.merkle_proof(1).siblings == frozen_proof.siblings
        assert laggard.member_count == 4
        assert laggard.tree.find_leaf(commitments[6].element) is None
        assert leader.tree.find_leaf(commitments[6].element) == 6
        # Catching up replays the recorded events without hashing.
        before = hash_call_count()
        for event, commitment in enumerate(commitments[4:], start=4):
            laggard.apply_registration(commitment, event)
        assert hash_call_count() == before
        assert laggard.root == leader.root

    def test_find_leaf_is_versioned_after_slash(self):
        commitments = _commitments(4)
        store = MembershipStore(depth=DEPTH)
        leader = store.local_group()
        laggard = store.local_group()
        for event, commitment in enumerate(commitments):
            leader.apply_registration(commitment, event)
            laggard.apply_registration(commitment, event)
        leader.apply_removal(2, 4)
        # Laggard has not applied the slash yet: still sees the member.
        assert laggard.tree.find_leaf(commitments[2].element) == 2
        assert leader.tree.find_leaf(commitments[2].element) is None
        laggard.apply_removal(2, 4)
        assert laggard.tree.find_leaf(commitments[2].element) is None


class TestStoreDomains:
    def test_domains_are_isolated(self):
        store = MembershipStore(depth=DEPTH)
        chat = store.local_group("chat")
        market = store.local_group("market")
        commitment = _commitments(1)[0]
        chat.apply_registration(commitment, 0)
        assert market.member_count == 0
        assert store.canonical("chat") is not store.canonical("market")
        assert store.domains == ["chat", "market"]
