"""VerificationCache LRU behaviour at capacity."""

from __future__ import annotations

import random

import pytest

from repro.core.peer import WakuRlnRelayPeer  # noqa: F401 (import guard)
from repro.crypto.keys import MembershipKeyPair
from repro.crypto.merkle import MerkleTree
from repro.rln.prover import RlnProver, rln_keys
from repro.rln.verifier import (
    RlnVerifier,
    SignalCheck,
    SignalEntry,
    VerificationCache,
)


def _entry() -> SignalEntry:
    return SignalEntry(signal=None)


class TestLruEviction:
    def test_eviction_order_is_least_recently_used(self):
        cache = VerificationCache(max_entries=3)
        for key in ("a", "b", "c"):
            cache.put(key, _entry())
        # Touch "a": it becomes most-recent; "b" is now the LRU victim.
        assert cache.get("a") is not None
        cache.put("d", _entry())
        assert len(cache) == 3
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.get("d") is not None

    def test_reinsertion_after_eviction(self):
        cache = VerificationCache(max_entries=2)
        cache.put("a", _entry())
        cache.put("b", _entry())
        cache.put("c", _entry())  # evicts "a"
        assert cache.get("a") is None
        fresh = _entry()
        cache.put("a", fresh)  # re-insert: evicts "b" (LRU)
        assert len(cache) == 2
        assert cache.get("a") is fresh
        assert cache.get("b") is None
        assert cache.get("c") is not None

    def test_put_of_existing_key_refreshes_recency(self):
        cache = VerificationCache(max_entries=2)
        cache.put("a", _entry())
        cache.put("b", _entry())
        cache.put("a", _entry())  # overwrite, no growth
        assert len(cache) == 2
        cache.put("c", _entry())  # LRU is now "b"
        assert cache.get("b") is None
        assert cache.get("a") is not None

    def test_malformed_bytes_entries_count_against_the_bound(self):
        # Failed deserializations are cached as SignalEntry(None) so
        # malformed spam is rejected once network-wide — but they must
        # occupy real capacity, not grow the cache unboundedly.
        cache = VerificationCache(max_entries=4)
        for i in range(100):
            cache.put(("domain", b"garbage-%d" % i), SignalEntry(None))
        assert len(cache) == 4

    def test_hit_rate_accounting(self):
        cache = VerificationCache(max_entries=2)
        assert cache.hit_rate == 0.0
        cache.put("a", _entry())
        cache.get("a")
        cache.get("missing")
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            VerificationCache(max_entries=0)


class TestDomainKeying:
    @pytest.fixture(scope="class")
    def rig(self):
        rng = random.Random(3)
        pk, vk = rln_keys(seed=b"cache-domains")
        tree = MerkleTree(6)
        pair = MembershipKeyPair.generate(rng)
        index = tree.insert(pair.commitment.element)
        prover = RlnProver(keypair=pair, proving_key=pk)
        return vk, tree, prover, index

    def test_wire_keys_are_domain_namespaced(self, rig):
        vk, tree, _, _ = rig
        cache = VerificationCache(max_entries=8)
        verifiers = [
            RlnVerifier(
                verifying_key=vk,
                root_predicate=lambda root: True,
                domain=domain,
                cache=cache,
            )
            for domain in ("topic-a", "topic-b")
        ]
        raw = b"the-same-wire-bytes"
        keys = {v.wire_cache_key(raw) for v in verifiers}
        assert len(keys) == 2
        for key in keys:
            cache.put(key, SignalEntry(None))
        assert len(cache) == 2

    def test_same_signal_cached_separately_per_domain(self, rig):
        vk, tree, prover, index = rig
        cache = VerificationCache(max_entries=8)

        def verifier(domain):
            return RlnVerifier(
                verifying_key=vk,
                root_predicate=lambda root: True,
                domain=domain,
                cache=cache,
            )

        domain = "topic-a"
        signal = prover.create_signal(
            b"hello", 4, tree.proof(index), domain=domain
        )
        assert verifier(domain).check(signal) is SignalCheck.VALID
        assert len(cache) == 1
        # The same signal checked under another domain is a *miss* (and
        # correctly fails the external-nullifier binding): the memoised
        # outcome never leaks across topics.
        assert (
            verifier("topic-b").check(signal)
            is SignalCheck.BAD_EXTERNAL_NULLIFIER
        )
        assert len(cache) == 2
        # Re-checking under the original domain is a pure hit.
        hits = cache.hits
        assert verifier(domain).check(signal) is SignalCheck.VALID
        assert cache.hits == hits + 1
