"""Cross-backend consistency: the native relation checker and the full
R1CS must agree on random witnesses under the poseidon backend."""

from __future__ import annotations

import random

import pytest

from repro.constants import BN254_SCALAR_FIELD
from repro.crypto.field import Fr
from repro.crypto.hashing import hash1
from repro.crypto.merkle import MerkleTree
from repro.errors import CircuitError
from repro.rln.circuit import RlnStatement
from repro.rln.nullifier import external_nullifier


DEPTH = 6


def build_statement(rng: random.Random, tree_size: int = 5):
    """A random honest witness under the active hash backend."""
    tree = MerkleTree(DEPTH)
    secrets = [Fr(rng.randrange(1, BN254_SCALAR_FIELD)) for _ in range(tree_size)]
    for secret in secrets:
        tree.insert(hash1(secret))
    member = rng.randrange(tree_size)
    ext = external_nullifier(rng.randint(0, 2**40))
    x = Fr(rng.randrange(1, BN254_SCALAR_FIELD))
    statement = RlnStatement.build(
        secret=secrets[member],
        ext_nullifier=ext,
        x=x,
        merkle_proof=tree.proof(member),
    )
    return statement


@pytest.mark.parametrize("seed", range(20))
def test_check_witness_agrees_with_r1cs_on_random_witnesses(
    seed, poseidon_backend
):
    """20 random honest witnesses: both paths accept, publics agree."""
    statement = build_statement(random.Random(seed))
    assert statement.check_witness()
    cs = statement.synthesize()
    assert cs.is_satisfied()
    assert cs.public_inputs() == statement.public_inputs()


@pytest.mark.parametrize(
    "corruption", ["y", "internal_nullifier", "merkle_root"]
)
def test_corrupted_witness_rejected_by_both_paths(
    corruption, poseidon_backend
):
    import dataclasses

    statement = build_statement(random.Random(999))
    bad = dataclasses.replace(
        statement, **{corruption: getattr(statement, corruption) + Fr.one()}
    )
    assert not bad.check_witness()
    # The R1CS path rejects too — eagerly, at constraint synthesis.
    with pytest.raises(CircuitError):
        bad.synthesize()


def test_synthesize_requires_poseidon_backend():
    statement = build_statement(random.Random(1))  # default (fast) backend
    with pytest.raises(CircuitError):
        statement.synthesize()
