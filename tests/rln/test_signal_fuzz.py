"""Fuzz-style round-trip and double-signal recovery tests for RlnSignal.

Random secrets, epochs and messages; the wire codec must be lossless and
``detect_double_signal`` must recover the *exact* secret from any two
distinct shares of one epoch — and never from one share alone.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.keys import MembershipKeyPair
from repro.crypto.merkle import MerkleTree
from repro.errors import SerializationError
from repro.rln.prover import RlnProver, rln_keys
from repro.rln.signal import RlnSignal
from repro.rln.slashing import detect_double_signal


@pytest.fixture(scope="module")
def setup():
    pk, vk = rln_keys(seed=b"signal-fuzz")
    rng = random.Random(0xF055)
    tree = MerkleTree(10)
    members = []
    for _ in range(8):
        pair = MembershipKeyPair.generate(rng)
        index = tree.insert(pair.commitment.element)
        members.append((RlnProver(keypair=pair, proving_key=pk), pair, index))
    return tree, members, rng


def random_payload(rng: random.Random) -> bytes:
    return bytes(rng.randrange(256) for _ in range(rng.randint(0, 200)))


def test_roundtrip_random_signals(setup):
    tree, members, rng = setup
    for i in range(30):
        prover, _pair, index = members[i % len(members)]
        signal = prover.create_signal(
            random_payload(rng),
            epoch=rng.randint(0, 2**40),
            merkle_proof=tree.proof(index),
            rng=rng,
        )
        decoded = RlnSignal.from_bytes(signal.to_bytes())
        assert decoded == signal
        assert decoded.public_inputs() == signal.public_inputs()


def test_mutated_lengths_always_rejected(setup):
    tree, members, rng = setup
    prover, _pair, index = members[0]
    raw = prover.create_signal(
        b"mutate me", epoch=5, merkle_proof=tree.proof(index), rng=rng
    ).to_bytes()
    for _ in range(30):
        cut = rng.randint(0, len(raw) - 1)
        with pytest.raises(SerializationError):
            RlnSignal.from_bytes(raw[:cut])
    with pytest.raises(SerializationError):
        RlnSignal.from_bytes(raw + b"\x00")


def test_double_signal_recovers_exact_secret(setup):
    tree, members, rng = setup
    for i in range(20):
        prover, pair, index = members[i % len(members)]
        epoch = rng.randint(0, 2**30)
        proof = tree.proof(index)
        a = prover.create_signal(random_payload(rng), epoch, proof, rng=rng)
        b = prover.create_signal(random_payload(rng), epoch, proof, rng=rng)
        if a.share.x == b.share.x:  # same message hash: not a violation
            continue
        evidence = detect_double_signal(a, b)
        assert evidence is not None
        assert evidence.recovered_secret == pair.secret
        assert evidence.commitment == pair.commitment
        assert evidence.epoch == epoch


def test_one_share_never_recovers(setup):
    """One message = one Shamir point = perfect secrecy."""
    tree, members, rng = setup
    prover, pair, index = members[1]
    proof = tree.proof(index)
    signal = prover.create_signal(b"only one", epoch=9, merkle_proof=proof, rng=rng)
    # The very same signal seen twice (gossip duplicate) is no evidence.
    assert detect_double_signal(signal, signal) is None
    # Identical message re-published: same share, still no evidence.
    again = prover.create_signal(b"only one", epoch=9, merkle_proof=proof, rng=rng)
    assert detect_double_signal(signal, again) is None


def test_cross_epoch_and_cross_member_pairs_rejected(setup):
    tree, members, rng = setup
    prover_a, _pa, index_a = members[2]
    prover_b, _pb, index_b = members[3]
    proof_a, proof_b = tree.proof(index_a), tree.proof(index_b)
    for _ in range(10):
        e1 = rng.randint(0, 1000)
        e2 = e1 + rng.randint(1, 5)
        # Same member, different epochs: different external nullifier.
        a = prover_a.create_signal(b"x", e1, proof_a, rng=rng)
        b = prover_a.create_signal(b"y", e2, proof_a, rng=rng)
        assert detect_double_signal(a, b) is None
        # Different members, same epoch: different internal nullifier.
        c = prover_b.create_signal(b"z", e1, proof_b, rng=rng)
        assert detect_double_signal(a, c) is None
