"""End-to-end tests of the RLN framework (no network layer yet)."""

import random

import pytest

from repro.crypto.field import Fr
from repro.crypto.hashing import hash_bytes_to_field
from repro.crypto.keys import MembershipKeyPair
from repro.crypto.merkle import MerkleTree
from repro.crypto.zksnark import groth16
from repro.errors import ProofError, SyncError
from repro.rln import (
    LocalGroup,
    RlnProver,
    RlnSignal,
    RlnStatement,
    RlnVerifier,
    SignalCheck,
    detect_double_signal,
    external_nullifier,
    internal_nullifier,
    rln_keys,
)


@pytest.fixture
def setup_keys():
    return rln_keys(seed=b"rln-tests")


@pytest.fixture
def group_with_member(setup_keys, rng):
    """A 4-member group; returns (group, keypair, leaf_index, prover, verifier)."""
    pk, vk = setup_keys
    group = LocalGroup(depth=8)
    keypair = MembershipKeyPair.generate(rng)
    others = [MembershipKeyPair.generate(rng) for _ in range(3)]
    index = group.apply_registration(keypair.commitment, 0)
    for i, other in enumerate(others):
        group.apply_registration(other.commitment, i + 1)
    prover = RlnProver(keypair=keypair, proving_key=pk)
    verifier = RlnVerifier(
        verifying_key=vk, root_predicate=group.is_acceptable_root
    )
    return group, keypair, index, prover, verifier


class TestNullifiers:
    def test_external_nullifier_is_epoch(self):
        assert external_nullifier(42) == Fr(42)

    def test_domain_separation(self):
        assert external_nullifier(42, "app-a") != external_nullifier(42, "app-b")
        assert external_nullifier(42, "app-a") != external_nullifier(42)

    def test_internal_nullifier_stable_within_epoch(self):
        sk = Fr(1234)
        e = external_nullifier(7)
        assert internal_nullifier(sk, e) == internal_nullifier(sk, e)

    def test_internal_nullifier_changes_across_epochs(self):
        sk = Fr(1234)
        assert internal_nullifier(sk, Fr(1)) != internal_nullifier(sk, Fr(2))

    def test_internal_nullifier_differs_per_member(self):
        e = Fr(5)
        assert internal_nullifier(Fr(1), e) != internal_nullifier(Fr(2), e)


class TestStatement:
    def test_honest_statement_checks(self, rng):
        tree = MerkleTree(6)
        keypair = MembershipKeyPair.generate(rng)
        index = tree.insert(keypair.commitment.element)
        statement = RlnStatement.build(
            secret=keypair.secret.element,
            ext_nullifier=Fr(9),
            x=Fr(777),
            merkle_proof=tree.proof(index),
        )
        assert statement.check_witness()

    def test_wrong_secret_fails(self, rng):
        tree = MerkleTree(6)
        keypair = MembershipKeyPair.generate(rng)
        index = tree.insert(keypair.commitment.element)
        statement = RlnStatement.build(
            secret=keypair.secret.element + Fr(1),
            ext_nullifier=Fr(9),
            x=Fr(777),
            merkle_proof=tree.proof(index),
        )
        # The leaf in the proof is the real commitment, which does not
        # match the shifted secret.
        assert not statement.check_witness()

    def test_non_member_fails(self, rng):
        tree = MerkleTree(6)
        member = MembershipKeyPair.generate(rng)
        outsider = MembershipKeyPair.generate(rng)
        index = tree.insert(member.commitment.element)
        statement = RlnStatement.build(
            secret=outsider.secret.element,
            ext_nullifier=Fr(9),
            x=Fr(777),
            merkle_proof=tree.proof(index),
        )
        assert not statement.check_witness()


class TestSignalLifecycle:
    def test_valid_signal_accepted(self, group_with_member):
        group, _, index, prover, verifier = group_with_member
        signal = prover.create_signal(
            b"hello waku", epoch=100, merkle_proof=group.merkle_proof(index)
        )
        assert verifier.check(signal) is SignalCheck.VALID

    def test_share_x_binds_message(self, group_with_member):
        group, _, index, prover, verifier = group_with_member
        signal = prover.create_signal(
            b"original", epoch=100, merkle_proof=group.merkle_proof(index)
        )
        forged = RlnSignal(
            message=b"swapped!",
            epoch=signal.epoch,
            external_nullifier=signal.external_nullifier,
            internal_nullifier=signal.internal_nullifier,
            share=signal.share,
            merkle_root=signal.merkle_root,
            proof=signal.proof,
        )
        assert verifier.check(forged) is SignalCheck.BAD_SHARE_BINDING

    def test_unknown_root_rejected(self, group_with_member, rng):
        group, _, index, prover, verifier = group_with_member
        foreign = LocalGroup(depth=8)
        keypair2 = MembershipKeyPair.generate(rng)
        idx2 = foreign.apply_registration(keypair2.commitment, 0)
        foreign_prover = RlnProver(keypair=keypair2, proving_key=prover.proving_key)
        signal = foreign_prover.create_signal(
            b"hi", epoch=100, merkle_proof=foreign.merkle_proof(idx2)
        )
        assert verifier.check(signal) is SignalCheck.UNKNOWN_ROOT

    def test_tampered_epoch_rejected(self, group_with_member):
        group, _, index, prover, verifier = group_with_member
        signal = prover.create_signal(
            b"m", epoch=100, merkle_proof=group.merkle_proof(index)
        )
        replayed = RlnSignal(
            message=signal.message,
            epoch=101,  # claims another epoch than the proved one
            external_nullifier=signal.external_nullifier,
            internal_nullifier=signal.internal_nullifier,
            share=signal.share,
            merkle_root=signal.merkle_root,
            proof=signal.proof,
        )
        assert replayed.epoch != signal.epoch
        assert verifier.check(replayed) is SignalCheck.BAD_EXTERNAL_NULLIFIER

    def test_domain_mismatch_rejected(self, group_with_member):
        group, _, index, prover, verifier = group_with_member
        signal = prover.create_signal(
            b"m", epoch=100, merkle_proof=group.merkle_proof(index), domain="x"
        )
        assert verifier.check(signal) is SignalCheck.BAD_EXTERNAL_NULLIFIER

    def test_proof_for_wrong_member_rejected_at_prover(
        self, group_with_member, rng
    ):
        group, _, _, prover, _ = group_with_member
        # Proof for someone else's leaf must be refused locally.
        other_index = 1
        with pytest.raises(ProofError):
            prover.create_signal(
                b"m", epoch=5, merkle_proof=group.merkle_proof(other_index)
            )

    def test_signal_serialization_roundtrip(self, group_with_member):
        group, _, index, prover, _ = group_with_member
        signal = prover.create_signal(
            b"roundtrip", epoch=3, merkle_proof=group.merkle_proof(index)
        )
        assert RlnSignal.from_bytes(signal.to_bytes()) == signal

    def test_overhead_is_constant(self, group_with_member):
        group, _, index, prover, _ = group_with_member
        small = prover.create_signal(
            b"a", epoch=3, merkle_proof=group.merkle_proof(index)
        )
        large = prover.create_signal(
            b"a" * 10_000, epoch=4, merkle_proof=group.merkle_proof(index)
        )
        assert small.overhead_bytes == large.overhead_bytes == 8 + 160 + 128


class TestAnonymity:
    def test_signal_carries_no_member_identifier(self, group_with_member):
        """The wire encoding must not contain sk, pk or the leaf index."""
        group, keypair, index, prover, _ = group_with_member
        signal = prover.create_signal(
            b"anon", epoch=9, merkle_proof=group.merkle_proof(index)
        )
        wire = signal.to_bytes()
        assert keypair.secret.to_bytes() not in wire
        assert keypair.commitment.to_bytes() not in wire

    def test_signals_from_two_members_structurally_identical(
        self, group_with_member, rng
    ):
        group, _, index, prover, verifier = group_with_member
        keypair_b = MembershipKeyPair.generate(rng)
        idx_b = group.apply_registration(keypair_b.commitment, group.applied_events)
        prover_b = RlnProver(keypair=keypair_b, proving_key=prover.proving_key)
        sig_a = prover.create_signal(
            b"same", epoch=9, merkle_proof=group.merkle_proof(index)
        )
        sig_b = prover_b.create_signal(
            b"same", epoch=9, merkle_proof=group.merkle_proof(idx_b)
        )
        assert len(sig_a.to_bytes()) == len(sig_b.to_bytes())
        assert verifier.check(sig_a) is SignalCheck.VALID
        assert verifier.check(sig_b) is SignalCheck.VALID


class TestDoubleSignalDetection:
    def _two_signals(self, group_with_member, msg_a=b"one", msg_b=b"two", epochs=(5, 5)):
        group, _, index, prover, _ = group_with_member
        proof = group.merkle_proof(index)
        sig_a = prover.create_signal(msg_a, epoch=epochs[0], merkle_proof=proof)
        sig_b = prover.create_signal(msg_b, epoch=epochs[1], merkle_proof=proof)
        return sig_a, sig_b

    def test_double_signal_recovers_secret(self, group_with_member):
        _, keypair, _, _, _ = group_with_member
        sig_a, sig_b = self._two_signals(group_with_member)
        evidence = detect_double_signal(sig_a, sig_b)
        assert evidence is not None
        assert evidence.recovered_secret == keypair.secret
        assert evidence.commitment == keypair.commitment

    def test_duplicate_message_is_not_spam(self, group_with_member):
        sig_a, sig_b = self._two_signals(group_with_member, b"same", b"same")
        assert detect_double_signal(sig_a, sig_b) is None

    def test_cross_epoch_is_not_spam(self, group_with_member):
        sig_a, sig_b = self._two_signals(group_with_member, epochs=(5, 6))
        assert detect_double_signal(sig_a, sig_b) is None

    def test_two_members_same_epoch_is_not_spam(self, group_with_member, rng):
        group, _, index, prover, _ = group_with_member
        keypair_b = MembershipKeyPair.generate(rng)
        idx_b = group.apply_registration(keypair_b.commitment, group.applied_events)
        prover_b = RlnProver(keypair=keypair_b, proving_key=prover.proving_key)
        sig_a = prover.create_signal(
            b"a", epoch=5, merkle_proof=group.merkle_proof(index)
        )
        sig_b = prover_b.create_signal(
            b"b", epoch=5, merkle_proof=group.merkle_proof(idx_b)
        )
        assert detect_double_signal(sig_a, sig_b) is None


class TestLocalGroup:
    def test_registration_and_lookup(self, rng):
        group = LocalGroup(depth=6)
        keypair = MembershipKeyPair.generate(rng)
        index = group.apply_registration(keypair.commitment, 0)
        assert group.index_of(keypair.commitment) == index
        assert group.contains(keypair.commitment)
        assert group.member_count == 1

    def test_out_of_order_event_rejected(self, rng):
        group = LocalGroup(depth=6)
        keypair = MembershipKeyPair.generate(rng)
        with pytest.raises(SyncError):
            group.apply_registration(keypair.commitment, 5)

    def test_removal(self, rng):
        group = LocalGroup(depth=6)
        keypair = MembershipKeyPair.generate(rng)
        index = group.apply_registration(keypair.commitment, 0)
        group.apply_removal(index, 1)
        assert not group.contains(keypair.commitment)

    def test_root_window(self, rng):
        group = LocalGroup(depth=6, root_window=3)
        roots = [group.root]
        for i in range(5):
            keypair = MembershipKeyPair.generate(rng)
            group.apply_registration(keypair.commitment, i)
            roots.append(group.root)
        assert group.is_acceptable_root(roots[-1])
        assert group.is_acceptable_root(roots[-3])
        assert not group.is_acceptable_root(roots[0])

    def test_recent_roots_ordering(self, rng):
        group = LocalGroup(depth=6, root_window=10)
        keypair = MembershipKeyPair.generate(rng)
        group.apply_registration(keypair.commitment, 0)
        recent = group.recent_roots()
        assert recent[-1] == group.root
        assert len(recent) == 2

    def test_stale_root_proof_accepted_within_window(self, group_with_member, rng):
        """A publisher proving against a slightly old root must still pass."""
        group, _, index, prover, verifier = group_with_member
        stale_proof = group.merkle_proof(index)
        newcomer = MembershipKeyPair.generate(rng)
        group.apply_registration(newcomer.commitment, group.applied_events)
        signal = prover.create_signal(b"stale", epoch=8, merkle_proof=stale_proof)
        assert verifier.check(signal) is SignalCheck.VALID


class TestR1CSIntegration:
    def test_rln_r1cs_proof_roundtrip(self, poseidon_backend, rng):
        """Full R1CS mode with the genuine Poseidon circuit."""
        group = LocalGroup(depth=4)
        keypair = MembershipKeyPair.generate(rng)
        index = group.apply_registration(keypair.commitment, 0)
        pk, vk = rln_keys(seed=b"r1cs")
        prover = RlnProver(keypair=keypair, proving_key=pk, mode="r1cs")
        verifier = RlnVerifier(
            verifying_key=vk, root_predicate=group.is_acceptable_root
        )
        signal = prover.create_signal(
            b"r1cs msg", epoch=2, merkle_proof=group.merkle_proof(index)
        )
        assert verifier.check(signal) is SignalCheck.VALID

    def test_r1cs_requires_poseidon_backend(self, rng):
        group = LocalGroup(depth=4)
        keypair = MembershipKeyPair.generate(rng)
        index = group.apply_registration(keypair.commitment, 0)
        pk, _ = rln_keys(seed=b"r1cs2")
        prover = RlnProver(keypair=keypair, proving_key=pk, mode="r1cs")
        with pytest.raises(Exception):
            prover.create_signal(
                b"m", epoch=2, merkle_proof=group.merkle_proof(index)
            )

    def test_constraint_count_matches_model(self, poseidon_backend, rng):
        from repro.crypto.zksnark.timing import rln_constraint_count

        group = LocalGroup(depth=4)
        keypair = MembershipKeyPair.generate(rng)
        index = group.apply_registration(keypair.commitment, 0)
        statement = RlnStatement.build(
            secret=keypair.secret.element,
            ext_nullifier=Fr(1),
            x=hash_bytes_to_field(b"m"),
            merkle_proof=group.merkle_proof(index),
        )
        cs = statement.synthesize()
        assert cs.num_constraints == rln_constraint_count(4)
