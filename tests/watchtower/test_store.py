"""Tests for the watchtower's write-ahead SQLite state store."""

import pytest

from repro.errors import SimulationError
from repro.watchtower.store import TERMINAL_STATUSES, WatchtowerStore


@pytest.fixture
def store(tmp_path):
    store = WatchtowerStore(str(tmp_path / "wt.sqlite"))
    yield store
    store.close()


def reopened(store):
    """Simulate a crash/restart cycle: close and reconnect."""
    store.close()
    store.open()
    return store


class TestConnectionLifecycle:
    def test_open_is_idempotent(self, store):
        store.open()
        assert store.is_open

    def test_closed_store_raises(self, store):
        store.close()
        assert not store.is_open
        with pytest.raises(SimulationError):
            store.cursor()

    def test_memory_store_works(self):
        store = WatchtowerStore(":memory:")
        store.commit_cursor(7)
        assert store.cursor() == 7
        store.close()


class TestCursor:
    def test_defaults_to_zero(self, store):
        assert store.cursor() == 0

    def test_commit_persists_across_reopen(self, store):
        store.commit_cursor(42)
        assert reopened(store).cursor() == 42

    def test_commit_overwrites(self, store):
        store.commit_cursor(5)
        store.commit_cursor(9)
        assert store.cursor() == 9

    def test_tick_transaction_is_atomic(self, store):
        store.begin()
        store.commit_cursor(3)
        store.put_evidence(11, 22, 1, "t", 0.5)
        store.commit()
        store = reopened(store)
        assert store.cursor() == 3
        assert store.evidence_status(11) == "pending"


class TestSignals:
    def test_first_signal_wins(self, store):
        store.record_signal("t", 4, "99", b"first")
        store.record_signal("t", 4, "99", b"second")
        assert store.signals() == [("t", b"first")]

    def test_deterministic_order(self, store):
        store.record_signal("t", 5, "b", b"3")
        store.record_signal("t", 4, "z", b"2")
        store.record_signal("s", 9, "a", b"1")
        assert [blob for _, blob in store.signals()] == [b"1", b"2", b"3"]

    def test_prune_keeps_window(self, store):
        for epoch in range(10):
            store.record_signal("t", epoch, "n", b"x")
        freed = store.prune_signals(current_epoch=5, thr=2)
        assert freed == 5
        kept = {e for (_, e, *_) in store.conn.execute(
            "SELECT topic, epoch FROM signals"
        ).fetchall()}
        assert kept == {3, 4, 5, 6, 7}

    def test_survives_reopen(self, store):
        store.record_signal("t", 1, "n", b"blob")
        assert reopened(store).signals() == [("t", b"blob")]


class TestEvidenceLifecycle:
    def test_put_then_pending(self, store):
        assert store.put_evidence(7, 70, 2, "t", 1.0)
        assert store.evidence_status(7) == "pending"
        assert store.pending_evidence() == [(7, 70)]
        assert store.unresolved_evidence() == [7]

    def test_duplicate_put_ignored(self, store):
        store.put_evidence(7, 70, 2, "t", 1.0)
        assert not store.put_evidence(7, 71, 3, "t", 2.0)
        assert store.pending_evidence() == [(7, 70)]

    def test_pending_in_detection_order(self, store):
        store.put_evidence(9, 90, 2, "t", 5.0)
        store.put_evidence(3, 30, 2, "t", 1.0)
        assert store.pending_evidence() == [(3, 30), (9, 90)]

    def test_submit_then_resolve(self, store):
        store.put_evidence(7, 70, 2, "t", 1.0)
        store.mark_submitted(7, tx_hash=123)
        assert store.evidence_status(7) == "submitted"
        assert store.evidence_tx(7) == 123
        assert store.pending_evidence() == []
        assert store.unresolved_evidence() == [7]
        store.resolve_evidence(7, "confirmed", 9.0)
        assert store.evidence_status(7) == "confirmed"
        assert store.unresolved_evidence() == []

    @pytest.mark.parametrize("status", TERMINAL_STATUSES)
    def test_terminal_statuses_accepted(self, store, status):
        store.put_evidence(1, 10, 0, "t", 0.0)
        store.resolve_evidence(1, status, 1.0)
        assert store.evidence_status(1) == status

    def test_non_terminal_resolution_rejected(self, store):
        store.put_evidence(1, 10, 0, "t", 0.0)
        with pytest.raises(SimulationError):
            store.resolve_evidence(1, "pending", 1.0)

    def test_counts_and_pks(self, store):
        store.put_evidence(1, 10, 0, "t", 0.0)
        store.put_evidence(2, 20, 0, "t", 0.5)
        store.mark_submitted(2, 5)
        store.resolve_evidence(2, "lost", 1.0)
        assert store.evidence_counts() == {"pending": 1, "lost": 1}
        assert store.evidence_pks() == [1, 2]

    def test_lifecycle_survives_reopen(self, store):
        store.put_evidence(7, 70, 2, "t", 1.0)
        store.mark_submitted(7, 321)
        store = reopened(store)
        assert store.evidence_status(7) == "submitted"
        assert store.evidence_tx(7) == 321

    def test_field_sized_values_roundtrip(self, store):
        """254-bit field elements exceed SQLite's int64 — they must
        come back exact (stored as text)."""
        pk = (1 << 253) + 12345
        secret = (1 << 252) + 67
        store.put_evidence(pk, secret, 1, "t", 0.0)
        assert store.pending_evidence() == [(pk, secret)]


class TestDelegationsAndLedger:
    def test_delegations_in_node_order(self, store):
        store.add_delegation("peer-9", "eoa:peer-9", 100, 0.0)
        store.add_delegation("peer-1", "eoa:peer-1", 100, 1.0)
        assert store.delegations() == [
            ("peer-1", "eoa:peer-1"),
            ("peer-9", "eoa:peer-9"),
        ]
        assert store.delegation_count() == 2

    def test_ledger_totals_by_kind(self, store):
        store.add_ledger("fee", "peer-1", 100, 0.0)
        store.add_ledger("fee", "peer-2", 150, 0.0)
        store.add_ledger("reward", "contract", 10**18, 1.0)
        assert store.ledger_total("fee") == 250
        assert store.ledger_total("reward") == 10**18
        assert store.ledger_total("payout") == 0

    def test_ledger_survives_reopen(self, store):
        store.add_ledger("reward", "contract", 5 * 10**17, 1.0)
        assert reopened(store).ledger_total("reward") == 5 * 10**17
