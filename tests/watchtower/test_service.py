"""Integration tests for the delegated-enforcement watchtower service:
detection, submission, reward splitting, crash/restart recovery and
competing-watchtower races on a full simulated deployment."""

import pytest

from repro.core import WakuRlnRelayNetwork
from repro.watchtower import WatchtowerService, WatchtowerStore


def build_net(seed=42, peers=12):
    net = WakuRlnRelayNetwork(
        peer_count=peers, seed=seed, block_interval=5.0
    )
    net.register_all()
    return net


def make_service(net, tmp_path, service_id="wt-0", **kwargs):
    return WatchtowerService(
        net,
        service_id,
        store_path=str(tmp_path / f"{service_id}.sqlite"),
        **kwargs,
    )


def delegate_all(service, net):
    for peer in net.peers:
        service.delegate(peer)


def schedule_spam(net, at, peer_index=0):
    """One double-signal burst from ``peer_index`` at sim time ``at``."""

    def fire(_sim):
        spammer = net.peer(peer_index)
        spammer.publish(b"spam-1")
        spammer.publish(b"spam-2", bypass_rate_limit=True)

    net.simulator.schedule(at, fire, label="test-spam")


def slashed_pks(net):
    return {
        e.args["pk"]
        for e in net.chain.events_since(0)
        if e.name == "MemberRemoved"
    }


def economics(summary):
    """The bit-exact integer keys the equivalence criterion compares."""
    return {
        k: summary[k]
        for k in (
            "rewards_wei",
            "paid_out_wei",
            "kept_wei",
            "fees_wei",
            "slashes_won",
            "lost_races",
            "detected",
        )
    }


class TestDelegatedEnforcement:
    def test_watchtower_slashes_on_behalf_of_delegators(self, tmp_path):
        net = build_net()
        service = make_service(net, tmp_path)
        service.start()
        delegate_all(service, net)
        net.start()
        schedule_spam(net, at=5.0)
        net.run(40.0)
        service.stop()

        spammer = net.peer(0)
        assert not net.contract.is_member(int(spammer.commitment.element))
        # Delegators turned their own reporting off — every slash tx
        # came from the service.
        assert sum(p.slashes_submitted for p in net.peers) == 0
        summary = service.summary()
        assert summary["detected"] == 1
        assert summary["submitted"] == 1
        assert summary["slashes_won"] == 1
        assert summary["pending"] == 0

    def test_reward_split_is_exact(self, tmp_path):
        net = build_net()
        fee = 10**15
        service = make_service(
            net, tmp_path, reward_cut=0.25, delegation_fee_wei=fee
        )
        service.start()
        delegate_all(service, net)
        net.start()
        schedule_spam(net, at=5.0)
        net.run(40.0)
        service.stop()

        summary = service.summary()
        stake = net.config.stake_wei
        reward = stake - int(stake * net.contract.burn_fraction)
        kept = int(reward * 0.25)
        share = (reward - kept) // len(net.peers)
        assert summary["rewards_wei"] == reward
        assert summary["paid_out_wei"] == share * len(net.peers)
        assert summary["kept_wei"] == reward - share * len(net.peers)
        assert summary["fees_wei"] == fee * len(net.peers)
        # Balance conservation: the service holds fees + kept rewards.
        assert service.balance == summary["fees_wei"] + summary["kept_wei"]

    def test_delegation_fee_flows_to_service(self, tmp_path):
        net = build_net()
        service = make_service(net, tmp_path, delegation_fee_wei=10**15)
        service.start()
        peer = net.peer(3)
        before = peer.balance
        service.delegate(peer)
        assert peer.balance == before - 10**15
        assert service.balance == 10**15
        assert service.store.delegation_count() == 1


class TestCrashRecovery:
    def run_once(self, tmp_path, name, crash_at=None, restart_at=None):
        """One seed-matched deployment, optionally with a fault."""
        net = build_net(seed=7)
        service = make_service(net, tmp_path, service_id=name)
        service.start()
        delegate_all(service, net)
        net.start()
        schedule_spam(net, at=5.0)
        if crash_at is not None:
            net.simulator.schedule(
                crash_at, lambda _sim: service.crash(), label="crash"
            )
            net.simulator.schedule(
                restart_at, lambda _sim: service.restart(), label="restart"
            )
        net.run(60.0)
        service.stop()
        return net, service

    def test_crash_restart_matches_uninterrupted_run(self, tmp_path):
        """The acceptance criterion: a service crashed mid-run and
        restarted from its SQLite store ends with the same slashed
        identity set and bit-identical economics as the same seed run
        without the fault."""
        net_a, svc_a = self.run_once(tmp_path, "uninterrupted")
        net_b, svc_b = self.run_once(
            tmp_path, "crashed", crash_at=8.0, restart_at=20.0
        )
        assert svc_b.crashes == 1
        assert slashed_pks(net_a) == slashed_pks(net_b)
        assert len(slashed_pks(net_b)) == 1
        assert economics(svc_a.summary()) == economics(svc_b.summary())
        assert svc_a.summary()["slashes_won"] == 1
        svc_a.close()
        svc_b.close()

    def test_submitted_tx_mines_while_down(self, tmp_path):
        """Crash after the slash tx entered the mempool but before the
        block sealed: the tx mines while the service is down, and the
        restart replay resolves it from the receipt — no resubmission,
        no reverted duplicate."""
        net, service = self.run_once(
            tmp_path, "down-at-mining", crash_at=9.0, restart_at=20.0
        )
        summary = service.summary()
        assert summary["slashes_won"] == 1
        assert summary["submitted"] == 1  # exactly one tx, ever
        reverted = [
            r
            for r in net.chain.receipts.values()
            if r.error == "unknown member"
        ]
        assert reverted == []

    def test_pending_evidence_resubmitted_exactly_once(self, tmp_path):
        """Crash in the window between detection and the enforcement
        tick: the evidence is persisted but unsubmitted. The restart
        must submit it (once), and recovery time covers the wait for
        the confirming block."""
        net = build_net(seed=7)
        # A long sync interval keeps the first enforcement tick far
        # out, so the crash provably lands before any submission.
        service = make_service(
            net, tmp_path, service_id="slow-tick", sync_interval=40.0
        )
        service.start()
        delegate_all(service, net)
        net.start()
        schedule_spam(net, at=5.0)
        net.simulator.schedule(
            6.0, lambda _sim: service.crash(), label="crash"
        )
        net.run(8.0)
        # Precondition: detection happened, submission did not.
        probe = WatchtowerStore(service.store.path)
        assert [status for status in probe.evidence_counts()] == ["pending"]
        probe.close()
        service.restart()
        net.run(52.0)
        service.stop()
        summary = service.summary()
        assert summary["slashes_won"] == 1
        assert summary["submitted"] == 1
        assert summary["recovery_time"] > 0.0
        assert len(slashed_pks(net)) == 1

    def test_membership_catch_up_after_downtime(self, tmp_path):
        """Events emitted while the service is down are replayed on
        restart from the committed cursor (which sat exactly at the
        log boundary when the crash hit)."""
        net = build_net(seed=11)
        service = make_service(net, tmp_path, service_id="catch-up")
        service.start()
        delegate_all(service, net)
        net.start()
        net.run(6.0)
        service.crash()
        boundary = len(net.chain.event_log)
        # Committed cursor sat exactly at the head of the log.
        probe = WatchtowerStore(service.store.path)
        assert probe.cursor() == boundary
        probe.close()
        # A peer joins while the watchtower is down.
        joiner = net.add_peer()
        net.run(10.0)
        assert len(net.chain.event_log) > boundary
        replayed_before = service.replayed_events
        service.restart()
        missed = len(net.chain.event_log) - boundary
        assert service.replayed_events == replayed_before + missed
        assert service.group.contains(joiner.commitment)
        assert service._cursor.log_index == len(net.chain.event_log)
        net.run(10.0)
        service.stop()

    def test_nullifier_state_survives_crash(self, tmp_path):
        """A double-signal split across the crash — first share seen
        before the crash, second after the restart — is still
        detected: the restart reseeds its nullifier maps from the
        persisted signals.

        The second share is handed straight to the service's validator
        (routers drop recognised doubles one hop out, so the mesh
        would not reliably carry it to the tower)."""
        from repro.waku.message import DEFAULT_PUBSUB_TOPIC, WakuMessage

        net = build_net(seed=5)
        service = make_service(net, tmp_path, service_id="split-signal")
        service.start()
        delegate_all(service, net)
        net.start()
        net.simulator.schedule(
            5.0, lambda _sim: net.peer(0).publish(b"first"), label="a"
        )
        net.run(7.0)
        # The tower relayed and persisted the first share, then dies.
        assert len(service.store.signals()) == 1
        service.crash()
        service.restart()
        spammer = net.peer(0)
        epoch = int(5.0 // net.config.epoch_length)
        second = spammer.prover.create_signal(
            b"the-double",
            epoch,
            spammer.group.merkle_proof(spammer.leaf_index),
        )
        service._validate(
            DEFAULT_PUBSUB_TOPIC,
            WakuMessage(
                payload=b"the-double",
                rate_limit_proof=second.to_bytes(),
            ),
        )
        net.run(33.0)
        service.stop()
        summary = service.summary()
        assert summary["detected"] == 1
        assert summary["slashes_won"] == 1
        assert len(slashed_pks(net)) == 1


class TestCompetingWatchtowers:
    def run_race(self, tmp_path, tag=""):
        net = build_net(seed=3)
        first = make_service(net, tmp_path, service_id=f"wt-a{tag}")
        second = make_service(net, tmp_path, service_id=f"wt-b{tag}")
        first.start()
        second.start()
        for index, peer in enumerate(net.peers):
            (first if index % 2 == 0 else second).delegate(peer)
        net.start()
        schedule_spam(net, at=5.0)
        net.run(40.0)
        first.stop()
        second.stop()
        return net, first, second

    def test_exactly_one_successful_slash_per_offender(self, tmp_path):
        net, first, second = self.run_race(tmp_path)
        sa, sb = first.summary(), second.summary()
        assert len(slashed_pks(net)) == 1
        # Both detected and raced; the contract let exactly one win.
        assert sa["detected"] == sb["detected"] == 1
        assert sa["slashes_won"] + sb["slashes_won"] == 1
        assert sa["lost_races"] + sb["lost_races"] == 1
        # The whole reward went to the winner.
        stake = net.config.stake_wei
        reward = stake - int(stake * net.contract.burn_fraction)
        assert sa["rewards_wei"] + sb["rewards_wei"] == reward
        loser = sa if sa["slashes_won"] == 0 else sb
        assert loser["rewards_wei"] == 0
        assert loser["paid_out_wei"] == 0

    def test_race_outcome_is_deterministic(self, tmp_path):
        run1 = tmp_path / "run1"
        run2 = tmp_path / "run2"
        run1.mkdir()
        run2.mkdir()
        _, a1, b1 = self.run_race(run1)
        _, a2, b2 = self.run_race(run2)
        assert a1.summary() == a2.summary()
        assert b1.summary() == b2.summary()


class TestLifecycleGuards:
    def test_double_start_rejected(self, tmp_path):
        from repro.errors import SimulationError

        net = build_net(seed=1, peers=6)
        service = make_service(net, tmp_path)
        service.start()
        with pytest.raises(SimulationError):
            service.start()

    def test_crash_when_down_is_noop(self, tmp_path):
        net = build_net(seed=1, peers=6)
        service = make_service(net, tmp_path)
        service.start()
        service.crash()
        service.crash()
        assert service.crashes == 1

    def test_bad_reward_cut_rejected(self, tmp_path):
        from repro.errors import SimulationError

        net = build_net(seed=1, peers=6)
        with pytest.raises(SimulationError):
            make_service(net, tmp_path, reward_cut=1.5)
