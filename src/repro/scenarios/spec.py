"""Declarative scenario specifications.

A :class:`ScenarioSpec` names one reproducible workload: a topology, a
per-peer traffic model, an adversary mix, a churn process and protocol
configuration overrides. Specs are immutable values — the same spec and
seed always produce the same :class:`~repro.scenarios.result.ScenarioResult`
— and compose via :meth:`ScenarioSpec.scaled`, which is how the smoke
tests shrink full-scale scenarios to CI size without forking them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

from ..constants import ETH_BLOCK_INTERVAL_SECONDS
from ..core.config import ProtocolConfig
from ..errors import ScenarioError


@dataclass(frozen=True)
class TrafficModel:
    """Honest per-peer publishing behaviour.

    ``messages_per_epoch`` is the target rate of each *active* publisher
    (honest peers never exceed 1/epoch — the protocol's own limit);
    ``active_fraction`` selects how many honest peers publish at all.
    """

    messages_per_epoch: float = 1.0
    active_fraction: float = 0.5
    payload_bytes: int = 64
    start: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.active_fraction <= 1.0:
            raise ScenarioError("active_fraction must be within [0, 1]")
        if self.messages_per_epoch < 0:
            raise ScenarioError("messages_per_epoch must be >= 0")


@dataclass(frozen=True)
class AdversaryMix:
    """Registered members that violate their rate limit.

    Spammers are taken from the *tail* of the initial peer list; each
    publishes ``burst`` distinct messages per epoch for ``epochs``
    consecutive epochs starting at ``start`` simulated seconds.
    """

    spammer_count: int = 0
    burst: int = 5
    epochs: int = 3
    start: float = 2.0

    def __post_init__(self) -> None:
        if self.spammer_count < 0 or self.burst < 0 or self.epochs < 0:
            raise ScenarioError("adversary parameters must be >= 0")


@dataclass(frozen=True)
class ChurnModel:
    """Peers joining and leaving while the network runs.

    Intervals of 0 disable the corresponding process. Leaves pick a
    random live non-publisher honest peer, so the delivery-rate metric
    keeps a stable denominator; joins dial into the live overlay,
    register on-chain and replay the full membership event log.
    """

    join_interval: float = 0.0
    leave_interval: float = 0.0
    max_joins: int = 0
    max_leaves: int = 0
    start: float = 2.0

    def __post_init__(self) -> None:
        if self.join_interval < 0 or self.leave_interval < 0:
            raise ScenarioError("churn intervals must be >= 0")

    @property
    def active(self) -> bool:
        return bool(
            (self.join_interval and self.max_joins)
            or (self.leave_interval and self.max_leaves)
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, seed-deterministic workload."""

    name: str
    description: str
    peers: int = 50
    degree: Optional[int] = 6
    duration: float = 60.0
    seed: int = 0
    block_interval: float = ETH_BLOCK_INTERVAL_SECONDS
    traffic: TrafficModel = field(default_factory=TrafficModel)
    adversaries: AdversaryMix = field(default_factory=AdversaryMix)
    churn: ChurnModel = field(default_factory=ChurnModel)
    #: Attribute overrides applied to the default :class:`ProtocolConfig`.
    config_overrides: Mapping[str, object] = field(default_factory=dict)
    #: Also run the same adversary against an unprotected baseline relay
    #: and record the comparison in ``ScenarioResult.extras``.
    compare_baseline: bool = False

    def __post_init__(self) -> None:
        if self.peers < 2:
            raise ScenarioError("a scenario needs at least 2 peers")
        if self.adversaries.spammer_count >= self.peers:
            raise ScenarioError("spammers must leave at least one honest peer")
        if self.duration <= 0:
            raise ScenarioError("duration must be positive")
        unknown = set(self.config_overrides) - {
            f.name for f in ProtocolConfig.__dataclass_fields__.values()
        }
        if unknown:
            raise ScenarioError(
                f"unknown ProtocolConfig overrides: {sorted(unknown)}"
            )

    def build_config(self) -> ProtocolConfig:
        return replace(ProtocolConfig(), **dict(self.config_overrides))

    def scaled(
        self,
        peers: Optional[int] = None,
        duration: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> "ScenarioSpec":
        """A copy resized for quick runs, adversary mix rescaled with it."""
        spec = self
        if peers is not None and peers != spec.peers:
            adversaries = spec.adversaries
            if adversaries.spammer_count:
                scaled_spammers = max(
                    1,
                    round(
                        adversaries.spammer_count * peers / spec.peers
                    ),
                )
                adversaries = replace(
                    adversaries,
                    spammer_count=min(scaled_spammers, peers - 1),
                )
            spec = replace(spec, peers=peers, adversaries=adversaries)
        if duration is not None:
            spec = replace(spec, duration=duration)
        if seed is not None:
            spec = replace(spec, seed=seed)
        return spec
