"""Declarative scenario specifications.

A :class:`ScenarioSpec` names one reproducible workload: a topology, a
per-peer traffic model, an adversary mix, a churn process and protocol
configuration overrides. Specs are immutable values — the same spec and
seed always produce the same :class:`~repro.scenarios.result.ScenarioResult`
— and compose via :meth:`ScenarioSpec.scaled`, which is how the smoke
tests shrink full-scale scenarios to CI size without forking them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional, Tuple

from ..constants import ETH_BLOCK_INTERVAL_SECONDS
from ..core.config import ProtocolConfig
from ..errors import ScenarioError, ScenarioSpecError
from ..waku.message import DEFAULT_PUBSUB_TOPIC


@dataclass(frozen=True)
class TopicSpec:
    """One extra pubsub topic of a multiplexed mesh.

    A scenario's mesh always carries the primary topic
    (:data:`~repro.waku.message.DEFAULT_PUBSUB_TOPIC`, implicit traffic
    weight 1.0, every peer subscribed); ``ScenarioSpec.topics`` adds
    named topics next to it. ``traffic_weight`` is this topic's share of
    each publisher's honest traffic relative to the other topics it is
    subscribed to; ``subscribe_fraction`` selects (seed-deterministic)
    which peers join; ``rln_protected`` gives the topic its own RLN
    group — an independent one-message-per-epoch budget and
    double-signal detection with domain-separated nullifiers — while
    ``False`` leaves it an open, unlimited topic.
    """

    name: str
    traffic_weight: float = 1.0
    subscribe_fraction: float = 1.0
    rln_protected: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("a topic needs a name")
        if self.name == DEFAULT_PUBSUB_TOPIC:
            raise ScenarioError(
                "the primary topic is implicit; list only extra topics"
            )
        if self.traffic_weight < 0:
            raise ScenarioError("traffic_weight must be >= 0")
        if not 0.0 <= self.subscribe_fraction <= 1.0:
            raise ScenarioError("subscribe_fraction must be within [0, 1]")


@dataclass(frozen=True)
class TrafficModel:
    """Honest per-peer publishing behaviour.

    ``messages_per_epoch`` is the target rate of each *active* publisher
    (honest peers never exceed 1/epoch — the protocol's own limit);
    ``active_fraction`` selects how many honest peers publish at all.
    """

    messages_per_epoch: float = 1.0
    active_fraction: float = 0.5
    payload_bytes: int = 64
    start: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.active_fraction <= 1.0:
            raise ScenarioError("active_fraction must be within [0, 1]")
        if self.messages_per_epoch < 0:
            raise ScenarioError("messages_per_epoch must be >= 0")


@dataclass(frozen=True)
class AdversaryGroup:
    """``count`` agents running one named adversary strategy.

    ``strategy`` names an entry in the adversary-strategy registry
    (``repro.adversaries.strategy_names()``). Each agent's wallet is
    funded with ``budget_stakes`` membership stakes — its whole attack
    budget, bootstrap registration included — so identity rotation
    stops when the money does. ``params`` is passed to the strategy
    factory verbatim (e.g. ``{"epochs": 5}`` for ``burst-flood`` or
    ``{"probe_every": 3}`` for ``low-and-slow``).
    """

    strategy: str
    count: int = 1
    budget_stakes: int = 4
    burst: int = 5
    params: Mapping[str, object] = field(default_factory=dict)
    #: Pubsub topics the group's agents spam, round-robin per message.
    #: Empty = the primary topic. Names must be the primary topic or
    #: RLN-protected entries of ``ScenarioSpec.topics`` (spamming an
    #: open topic is the unprotected baseline, not an RLN attack).
    target_topics: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ScenarioError("adversary group count must be >= 0")
        if not isinstance(self.target_topics, tuple):
            object.__setattr__(
                self, "target_topics", tuple(self.target_topics)
            )
        if self.budget_stakes < 1:
            raise ScenarioError(
                "an adversary needs at least 1 stake of budget to exist"
            )
        if self.burst < 0:
            raise ScenarioError("burst must be >= 0")
        # Validate the name early (typos should fail at spec build, not
        # mid-run); imported lazily to keep spec a leaf module.
        from ..adversaries.strategies import strategy_names

        if self.strategy not in strategy_names():
            raise ScenarioError(
                f"unknown adversary strategy {self.strategy!r}; "
                f"choose from {strategy_names()}"
            )


@dataclass(frozen=True)
class AdversaryMix:
    """Registered members that violate their rate limit.

    Two layers: the legacy fields (``spammer_count``/``burst``/
    ``epochs``) describe plain one-shot burst flooders, and ``groups``
    names strategy-driven, budget-constrained agents from the adversary
    engine. Both may be combined; all adversaries are taken from the
    *tail* of the initial peer list and start acting at ``start``
    simulated seconds.
    """

    spammer_count: int = 0
    burst: int = 5
    epochs: int = 3
    start: float = 2.0
    groups: Tuple[AdversaryGroup, ...] = ()

    def __post_init__(self) -> None:
        if self.spammer_count < 0 or self.burst < 0 or self.epochs < 0:
            raise ScenarioError("adversary parameters must be >= 0")
        if not isinstance(self.groups, tuple):
            object.__setattr__(self, "groups", tuple(self.groups))

    @property
    def agent_count(self) -> int:
        """Agents driven by the adversary engine (strategy groups)."""
        return sum(g.count for g in self.groups)

    @property
    def total_count(self) -> int:
        """All adversaries: legacy burst spammers plus engine agents."""
        return self.spammer_count + self.agent_count

    def effective_groups(self) -> Tuple[AdversaryGroup, ...]:
        """Spec groups plus the legacy fields folded into one
        ``burst-flood`` group (listed last, so legacy spammers keep
        their traditional spot at the very tail of the peer list)."""
        groups = self.groups
        if self.spammer_count:
            groups = groups + (
                AdversaryGroup(
                    strategy="burst-flood",
                    count=self.spammer_count,
                    burst=self.burst,
                    params={"epochs": self.epochs},
                ),
            )
        return groups


@dataclass(frozen=True)
class WatchtowerSpec:
    """Delegated enforcement: ``count`` watchtower services.

    Each service attaches its own relay node to the overlay, watches
    the protected topics (``topics`` names a subset; empty = all of
    them) and submits slash transactions on behalf of its delegators.
    ``delegate_fraction`` selects how many honest peers outsource
    enforcement (they pay ``delegation_fee_wei`` once and stop
    claiming slashes themselves); delegators are assigned round-robin
    across the services. The service keeps ``reward_cut`` of every
    won reporter reward and splits the rest evenly among its
    delegators.
    """

    count: int = 1
    reward_cut: float = 0.25
    delegation_fee_wei: int = 10**15
    delegate_fraction: float = 1.0
    sync_interval: Optional[float] = None
    degree: int = 6
    topics: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ScenarioError("watchtowers need count >= 1")
        if not 0.0 <= self.reward_cut <= 1.0:
            raise ScenarioError("reward_cut must be within [0, 1]")
        if not 0.0 <= self.delegate_fraction <= 1.0:
            raise ScenarioError("delegate_fraction must be within [0, 1]")
        if self.delegation_fee_wei < 0:
            raise ScenarioError("delegation_fee_wei must be >= 0")
        if self.degree < 1:
            raise ScenarioError("watchtower degree must be >= 1")
        if not isinstance(self.topics, tuple):
            object.__setattr__(self, "topics", tuple(self.topics))

    def service_ids(self) -> Tuple[str, ...]:
        return tuple(f"watchtower-{i}" for i in range(self.count))


@dataclass(frozen=True)
class FaultPlan:
    """One crash/restart fault injected into a watchtower service.

    ``target`` names a service (``watchtower-<i>``); at ``crash_at``
    simulated seconds the service loses all in-memory state, its
    timers and its overlay links; at ``restart_at`` (if given) it
    recovers from its persisted SQLite store — replaying the chain
    from the committed cursor and resubmitting pending evidence. No
    restart means the service stays down for the rest of the run.
    """

    target: str
    crash_at: float
    restart_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.crash_at <= 0:
            raise ScenarioError("crash_at must be positive")
        if self.restart_at is not None and self.restart_at <= self.crash_at:
            raise ScenarioError("restart_at must come after crash_at")

    def rescaled(self, ratio: float) -> "FaultPlan":
        """Fault times scaled with the scenario duration."""
        return replace(
            self,
            crash_at=self.crash_at * ratio,
            restart_at=(
                self.restart_at * ratio
                if self.restart_at is not None
                else None
            ),
        )


@dataclass(frozen=True)
class ChurnModel:
    """Peers joining and leaving while the network runs.

    Intervals of 0 disable the corresponding process. Leaves pick a
    random live non-publisher honest peer, so the delivery-rate metric
    keeps a stable denominator; joins dial into the live overlay,
    register on-chain and replay the full membership event log.
    """

    join_interval: float = 0.0
    leave_interval: float = 0.0
    max_joins: int = 0
    max_leaves: int = 0
    start: float = 2.0

    def __post_init__(self) -> None:
        if self.join_interval < 0 or self.leave_interval < 0:
            raise ScenarioError("churn intervals must be >= 0")

    @property
    def active(self) -> bool:
        return bool(
            (self.join_interval and self.max_joins)
            or (self.leave_interval and self.max_leaves)
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, seed-deterministic workload."""

    name: str
    description: str
    peers: int = 50
    degree: Optional[int] = 6
    duration: float = 60.0
    seed: int = 0
    block_interval: float = ETH_BLOCK_INTERVAL_SECONDS
    traffic: TrafficModel = field(default_factory=TrafficModel)
    adversaries: AdversaryMix = field(default_factory=AdversaryMix)
    churn: ChurnModel = field(default_factory=ChurnModel)
    #: Extra pubsub topics multiplexed over the same mesh (the primary
    #: topic is always present); see :class:`TopicSpec`.
    topics: Tuple[TopicSpec, ...] = ()
    #: Event-queue shards the simulation kernel partitions the network
    #: into (1 = the plain single-queue kernel). Fingerprints are
    #: invariant in this value — it selects execution machinery, not
    #: workload semantics.
    shards: int = 1
    #: Delegated enforcement: watchtower services watching the
    #: protected topics on behalf of delegating peers (None = none).
    watchtowers: Optional[WatchtowerSpec] = None
    #: Crash/restart faults injected into watchtower services.
    faults: Tuple[FaultPlan, ...] = ()
    #: Attribute overrides applied to the default :class:`ProtocolConfig`.
    config_overrides: Mapping[str, object] = field(default_factory=dict)
    #: Also run the same adversary against an unprotected baseline relay
    #: and record the comparison in ``ScenarioResult.extras``.
    compare_baseline: bool = False
    #: Opt-in window-isolated parallel mode: 0 = off (the default
    #: lockstep kernels), >= 1 = run the full stack on the windowed
    #: kernel with barrier-synced chain replicas. Workers beyond
    #: ``shards`` are clamped; 1 worker drives the same barrier
    #: protocol in-process. Results are invariant in *both* shards
    #: and workers, but the mode draws from per-entity RNG streams,
    #: so they intentionally differ from the lockstep kernels'.
    parallel_workers: int = 0
    #: Barrier window length in simulated seconds (None = the latency
    #: model's minimum latency, the widest sound window).
    parallel_window: Optional[float] = None
    #: Identities baked into the membership contract at deploy time
    #: (genesis member list) on top of the ``peers`` that register
    #: transactionally — the paper's "huge membership, small active
    #: set" regime. Applied to replicas via one batch event and the
    #: tree's bulk-build path. ``scaled()`` shrinks it with the peer
    #: ratio.
    pre_registered: int = 0
    #: Bounded measurement state: histograms become streaming
    #: accumulators (running moments + quantile sketch) and the
    #: adversary economics series is capped at ``series_max_points``
    #: by uniform decimation — O(1) memory per metric regardless of
    #: run length. Percentiles become ~1%-approximate and the series
    #: loses points, so results (and fingerprints) are only comparable
    #: within the same setting.
    streaming_metrics: bool = False
    #: Cap on retained economics-series samples when
    #: ``streaming_metrics`` is on (ignored otherwise).
    series_max_points: int = 256

    def __post_init__(self) -> None:
        if self.peers < 2:
            raise ScenarioError("a scenario needs at least 2 peers")
        if self.pre_registered < 0:
            raise ScenarioError("pre_registered must be >= 0")
        if self.series_max_points < 4:
            raise ScenarioError("series_max_points must be >= 4")
        if self.adversaries.total_count >= self.peers:
            raise ScenarioError("spammers must leave at least one honest peer")
        if self.duration <= 0:
            raise ScenarioError("duration must be positive")
        if self.shards < 1:
            raise ScenarioError("shards must be >= 1")
        if not isinstance(self.topics, tuple):
            object.__setattr__(self, "topics", tuple(self.topics))
        names = [t.name for t in self.topics]
        if len(set(names)) != len(names):
            raise ScenarioError(f"duplicate topic names: {sorted(names)}")
        targetable = {DEFAULT_PUBSUB_TOPIC} | {
            t.name for t in self.topics if t.rln_protected
        }
        for group in self.adversaries.groups:
            unknown_topics = set(group.target_topics) - targetable
            if unknown_topics:
                raise ScenarioError(
                    f"adversary group {group.strategy!r} targets topics "
                    f"that are not RLN-protected topics of this scenario: "
                    f"{sorted(unknown_topics)}"
                )
            # Rate limits are per topic: a burst round-robined over N
            # targets must exceed one message per topic per epoch, or
            # the "attack" is legal traffic that never double-signals
            # and the economics silently measure nothing.
            resolved_burst = group.params.get("burst", group.burst)
            if (
                len(group.target_topics) > 1
                and isinstance(resolved_burst, (int, float))
                and resolved_burst <= len(group.target_topics)
            ):
                raise ScenarioError(
                    f"adversary group {group.strategy!r}: burst "
                    f"{resolved_burst} spread over "
                    f"{len(group.target_topics)} target topics never "
                    "exceeds the per-topic rate limit; raise burst "
                    "above the target count or target fewer topics"
                )
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))
        if self.faults and self.watchtowers is None:
            raise ScenarioError(
                "faults target watchtower services; add a WatchtowerSpec"
            )
        if self.watchtowers is not None:
            service_ids = set(self.watchtowers.service_ids())
            for fault in self.faults:
                if fault.target not in service_ids:
                    raise ScenarioError(
                        f"fault targets unknown service {fault.target!r}; "
                        f"this scenario runs {sorted(service_ids)}"
                    )
            watchable = {DEFAULT_PUBSUB_TOPIC} | {
                t.name for t in self.topics if t.rln_protected
            }
            unknown_watch = set(self.watchtowers.topics) - watchable
            if unknown_watch:
                raise ScenarioError(
                    f"watchtowers watch topics that are not RLN-protected "
                    f"topics of this scenario: {sorted(unknown_watch)}"
                )
        unknown = set(self.config_overrides) - {
            f.name for f in ProtocolConfig.__dataclass_fields__.values()
        }
        if unknown:
            raise ScenarioError(
                f"unknown ProtocolConfig overrides: {sorted(unknown)}"
            )
        if self.parallel_workers < 0:
            raise ScenarioSpecError(
                "parallel_workers must be >= 0",
                problems=("parallel_workers",),
            )
        if (
            self.parallel_window is not None
            and self.parallel_window <= 0
        ):
            raise ScenarioSpecError(
                f"parallel_window must be positive, got "
                f"{self.parallel_window}; drop the override to use the "
                f"latency model's minimum latency, or pick a value no "
                f"larger than it (the protocol's delivery-delay bound "
                f"is max_network_delay="
                f"{ProtocolConfig().max_network_delay}s)",
                problems=("parallel_window",),
            )
        if self.parallel_workers:
            problems = self.parallel_rejections()
            if problems:
                raise ScenarioSpecError(
                    "scenario cannot run in parallel mode: "
                    + "; ".join(problems),
                    problems=problems,
                )

    def parallel_rejections(self) -> Tuple[str, ...]:
        """Every feature of this spec that parallel mode cannot run.

        Churn, fault injection and baseline comparison all have
        barrier-safe forms now (churn plans precomputed on the
        partition-invariant event grid, faults pinned to shard 0,
        baselines run on the coordinator's own replica), so this is
        empty for every built-in scenario — the ``--bench-quick`` smoke
        pins that. The method stays as the single aggregation point:
        a future incompatible feature gets reported here alongside any
        others in one :class:`~repro.errors.ScenarioSpecError` instead
        of first-failure-wins.
        """
        return ()

    @property
    def topic_names(self) -> Tuple[str, ...]:
        """All pubsub topics of the run: primary first, extras after."""
        return (DEFAULT_PUBSUB_TOPIC,) + tuple(t.name for t in self.topics)

    def build_config(self) -> ProtocolConfig:
        return replace(ProtocolConfig(), **dict(self.config_overrides))

    def scaled(
        self,
        peers: Optional[int] = None,
        duration: Optional[float] = None,
        seed: Optional[int] = None,
        shards: Optional[int] = None,
        parallel_workers: Optional[int] = None,
    ) -> "ScenarioSpec":
        """A copy resized for quick runs, adversary mix rescaled with it."""
        spec = self
        if peers is not None and peers != spec.peers:
            adversaries = spec.adversaries
            ratio = peers / spec.peers
            if adversaries.spammer_count:
                adversaries = replace(
                    adversaries,
                    spammer_count=max(
                        1, round(adversaries.spammer_count * ratio)
                    ),
                )
            if adversaries.groups:
                adversaries = replace(
                    adversaries,
                    groups=tuple(
                        replace(g, count=max(1, round(g.count * ratio)))
                        for g in adversaries.groups
                        if g.count
                    ),
                )
            # Never scale adversaries up into the whole network: drop
            # legacy spammers first, then trim groups, until at least
            # one honest peer remains.
            while adversaries.total_count >= peers:
                if adversaries.spammer_count:
                    adversaries = replace(
                        adversaries,
                        spammer_count=adversaries.spammer_count - 1,
                    )
                else:
                    groups = list(adversaries.groups)
                    for i, g in enumerate(groups):
                        if g.count:
                            groups[i] = replace(g, count=g.count - 1)
                            break
                    adversaries = replace(adversaries, groups=tuple(groups))
            pre_registered = spec.pre_registered
            if pre_registered:
                pre_registered = round(pre_registered * ratio)
            spec = replace(
                spec,
                peers=peers,
                adversaries=adversaries,
                pre_registered=pre_registered,
            )
        if duration is not None and duration != spec.duration:
            # Fault times track the run: a crash planned mid-run at
            # full scale stays mid-run in a shrunk smoke run.
            ratio = duration / spec.duration
            spec = replace(
                spec,
                duration=duration,
                faults=tuple(f.rescaled(ratio) for f in spec.faults),
            )
        if seed is not None:
            spec = replace(spec, seed=seed)
        if shards is not None:
            spec = replace(spec, shards=shards)
        if parallel_workers is not None:
            spec = replace(spec, parallel_workers=parallel_workers)
        return spec
