"""Declarative scenario specifications.

A :class:`ScenarioSpec` names one reproducible workload: a topology, a
per-peer traffic model, an adversary mix, a churn process and protocol
configuration overrides. Specs are immutable values — the same spec and
seed always produce the same :class:`~repro.scenarios.result.ScenarioResult`
— and compose via :meth:`ScenarioSpec.scaled`, which is how the smoke
tests shrink full-scale scenarios to CI size without forking them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional, Tuple

from ..constants import ETH_BLOCK_INTERVAL_SECONDS
from ..core.config import ProtocolConfig
from ..errors import ScenarioError


@dataclass(frozen=True)
class TrafficModel:
    """Honest per-peer publishing behaviour.

    ``messages_per_epoch`` is the target rate of each *active* publisher
    (honest peers never exceed 1/epoch — the protocol's own limit);
    ``active_fraction`` selects how many honest peers publish at all.
    """

    messages_per_epoch: float = 1.0
    active_fraction: float = 0.5
    payload_bytes: int = 64
    start: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.active_fraction <= 1.0:
            raise ScenarioError("active_fraction must be within [0, 1]")
        if self.messages_per_epoch < 0:
            raise ScenarioError("messages_per_epoch must be >= 0")


@dataclass(frozen=True)
class AdversaryGroup:
    """``count`` agents running one named adversary strategy.

    ``strategy`` names an entry in the adversary-strategy registry
    (``repro.adversaries.strategy_names()``). Each agent's wallet is
    funded with ``budget_stakes`` membership stakes — its whole attack
    budget, bootstrap registration included — so identity rotation
    stops when the money does. ``params`` is passed to the strategy
    factory verbatim (e.g. ``{"epochs": 5}`` for ``burst-flood`` or
    ``{"probe_every": 3}`` for ``low-and-slow``).
    """

    strategy: str
    count: int = 1
    budget_stakes: int = 4
    burst: int = 5
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ScenarioError("adversary group count must be >= 0")
        if self.budget_stakes < 1:
            raise ScenarioError(
                "an adversary needs at least 1 stake of budget to exist"
            )
        if self.burst < 0:
            raise ScenarioError("burst must be >= 0")
        # Validate the name early (typos should fail at spec build, not
        # mid-run); imported lazily to keep spec a leaf module.
        from ..adversaries.strategies import strategy_names

        if self.strategy not in strategy_names():
            raise ScenarioError(
                f"unknown adversary strategy {self.strategy!r}; "
                f"choose from {strategy_names()}"
            )


@dataclass(frozen=True)
class AdversaryMix:
    """Registered members that violate their rate limit.

    Two layers: the legacy fields (``spammer_count``/``burst``/
    ``epochs``) describe plain one-shot burst flooders, and ``groups``
    names strategy-driven, budget-constrained agents from the adversary
    engine. Both may be combined; all adversaries are taken from the
    *tail* of the initial peer list and start acting at ``start``
    simulated seconds.
    """

    spammer_count: int = 0
    burst: int = 5
    epochs: int = 3
    start: float = 2.0
    groups: Tuple[AdversaryGroup, ...] = ()

    def __post_init__(self) -> None:
        if self.spammer_count < 0 or self.burst < 0 or self.epochs < 0:
            raise ScenarioError("adversary parameters must be >= 0")
        if not isinstance(self.groups, tuple):
            object.__setattr__(self, "groups", tuple(self.groups))

    @property
    def agent_count(self) -> int:
        """Agents driven by the adversary engine (strategy groups)."""
        return sum(g.count for g in self.groups)

    @property
    def total_count(self) -> int:
        """All adversaries: legacy burst spammers plus engine agents."""
        return self.spammer_count + self.agent_count

    def effective_groups(self) -> Tuple[AdversaryGroup, ...]:
        """Spec groups plus the legacy fields folded into one
        ``burst-flood`` group (listed last, so legacy spammers keep
        their traditional spot at the very tail of the peer list)."""
        groups = self.groups
        if self.spammer_count:
            groups = groups + (
                AdversaryGroup(
                    strategy="burst-flood",
                    count=self.spammer_count,
                    burst=self.burst,
                    params={"epochs": self.epochs},
                ),
            )
        return groups


@dataclass(frozen=True)
class ChurnModel:
    """Peers joining and leaving while the network runs.

    Intervals of 0 disable the corresponding process. Leaves pick a
    random live non-publisher honest peer, so the delivery-rate metric
    keeps a stable denominator; joins dial into the live overlay,
    register on-chain and replay the full membership event log.
    """

    join_interval: float = 0.0
    leave_interval: float = 0.0
    max_joins: int = 0
    max_leaves: int = 0
    start: float = 2.0

    def __post_init__(self) -> None:
        if self.join_interval < 0 or self.leave_interval < 0:
            raise ScenarioError("churn intervals must be >= 0")

    @property
    def active(self) -> bool:
        return bool(
            (self.join_interval and self.max_joins)
            or (self.leave_interval and self.max_leaves)
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, seed-deterministic workload."""

    name: str
    description: str
    peers: int = 50
    degree: Optional[int] = 6
    duration: float = 60.0
    seed: int = 0
    block_interval: float = ETH_BLOCK_INTERVAL_SECONDS
    traffic: TrafficModel = field(default_factory=TrafficModel)
    adversaries: AdversaryMix = field(default_factory=AdversaryMix)
    churn: ChurnModel = field(default_factory=ChurnModel)
    #: Attribute overrides applied to the default :class:`ProtocolConfig`.
    config_overrides: Mapping[str, object] = field(default_factory=dict)
    #: Also run the same adversary against an unprotected baseline relay
    #: and record the comparison in ``ScenarioResult.extras``.
    compare_baseline: bool = False

    def __post_init__(self) -> None:
        if self.peers < 2:
            raise ScenarioError("a scenario needs at least 2 peers")
        if self.adversaries.total_count >= self.peers:
            raise ScenarioError("spammers must leave at least one honest peer")
        if self.duration <= 0:
            raise ScenarioError("duration must be positive")
        unknown = set(self.config_overrides) - {
            f.name for f in ProtocolConfig.__dataclass_fields__.values()
        }
        if unknown:
            raise ScenarioError(
                f"unknown ProtocolConfig overrides: {sorted(unknown)}"
            )

    def build_config(self) -> ProtocolConfig:
        return replace(ProtocolConfig(), **dict(self.config_overrides))

    def scaled(
        self,
        peers: Optional[int] = None,
        duration: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> "ScenarioSpec":
        """A copy resized for quick runs, adversary mix rescaled with it."""
        spec = self
        if peers is not None and peers != spec.peers:
            adversaries = spec.adversaries
            ratio = peers / spec.peers
            if adversaries.spammer_count:
                adversaries = replace(
                    adversaries,
                    spammer_count=max(
                        1, round(adversaries.spammer_count * ratio)
                    ),
                )
            if adversaries.groups:
                adversaries = replace(
                    adversaries,
                    groups=tuple(
                        replace(g, count=max(1, round(g.count * ratio)))
                        for g in adversaries.groups
                        if g.count
                    ),
                )
            # Never scale adversaries up into the whole network: drop
            # legacy spammers first, then trim groups, until at least
            # one honest peer remains.
            while adversaries.total_count >= peers:
                if adversaries.spammer_count:
                    adversaries = replace(
                        adversaries,
                        spammer_count=adversaries.spammer_count - 1,
                    )
                else:
                    groups = list(adversaries.groups)
                    for i, g in enumerate(groups):
                        if g.count:
                            groups[i] = replace(g, count=g.count - 1)
                            break
                    adversaries = replace(adversaries, groups=tuple(groups))
            spec = replace(spec, peers=peers, adversaries=adversaries)
        if duration is not None:
            spec = replace(spec, duration=duration)
        if seed is not None:
            spec = replace(spec, seed=seed)
        return spec
