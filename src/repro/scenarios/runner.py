"""Execute a :class:`ScenarioSpec` end-to-end.

The runner assembles the full stack — discrete-event simulator, latency
network, GossipSub overlay, Waku-Relay nodes, RLN membership contract
and slashing — through :class:`~repro.core.protocol.WakuRlnRelayNetwork`,
drives the spec's traffic/adversary/churn processes on the simulated
clock, and condenses everything into one
:class:`~repro.scenarios.result.ScenarioResult`.

Adversaries run inside an :class:`~repro.adversaries.AdversaryEngine`:
slashing settles through the membership contract *during* the run, and
the engine's per-epoch economics samples surface as the result's
``series`` (the cost-of-attack curve).

Construction is split in three so parallel workers can *build per
worker* instead of forking a fully built stack:

* ``__init__`` computes pure, picklable scenario state (roster ids,
  topic maps, counters) and — in serial or single-worker parallel mode
  — immediately materializes the network.
* :meth:`_materialize` builds the network for one ownership set: the
  full deployment (``owned=None``), a worker's shard group, or the
  coordinator's empty set (all ghosts, chain replica only).
* :meth:`_prepare` arms every scheduled process (registration,
  watchtowers, traffic, adversaries, churn, faults) and flips the
  chain into replica mode. In parallel mode every decision that spans
  workers — publisher choice, churn victims, dial lists, delegator
  sets — draws from dedicated named entity streams, so each worker
  derives the identical plan without coordination.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from bisect import insort
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..adversaries.base import SPAM_MARKER
from ..adversaries.engine import AdversaryEngine
from ..adversaries.strategies import build_strategy
from ..attacks.spam import FloodSpammer
from ..baselines.relay_baselines import BaselineNetwork
from ..core.peer import WakuRlnRelayPeer
from ..core.protocol import WakuRlnRelayNetwork
from ..errors import RateLimitError, RegistrationError
from ..sim.simulator import Simulator, quiescent_gc
from ..waku.message import DEFAULT_PUBSUB_TOPIC, WakuMessage
from ..watchtower import WatchtowerService
from ..watchtower.service import watchtower_dial_plan
from .parallel import drive_forked, drive_in_process
from .result import ScenarioResult
from .spec import ScenarioSpec

#: Honest payload marker; spam carries the agents'
#: :data:`~repro.adversaries.base.SPAM_MARKER` (one shared constant,
#: so the delivery classifier cannot drift from the emitters).
HONEST_MARKER = b"MSG|"

#: Metrics counters copied verbatim into ``ScenarioResult.counters``.
_COUNTER_PREFIXES = ("validator.", "rln.")
_COUNTER_NAMES = (
    "gossipsub.published",
    "gossipsub.delivered",
    "gossipsub.rejected",
    "gossipsub.ignored",
    "gossipsub.duplicates",
)


class ChurnPlan:
    """Every churn decision of a parallel run, fixed before it starts.

    Serial churn decides as it goes: each leave draws its victim from
    the shared stream against the *live* peer list. Under window
    isolation that list is partition-dependent state, so parallel runs
    precompute the whole schedule from one dedicated entity stream
    (``entity_rng("churn")``) over the roster — every worker derives
    the identical plan, arms only the events whose subject it owns,
    and declares the rest as ghosts.
    """

    __slots__ = ("joins", "leaves", "leave_time_of")

    def __init__(self) -> None:
        #: ``(time, k, joiner_id, neighbors, topic_names)``.
        self.joins: List[Tuple[float, int, str, List[str], Tuple[str, ...]]] = []
        #: ``(time, j, victim_id)`` — successful leaves only.
        self.leaves: List[Tuple[float, int, str]] = []
        #: victim id -> leave time (watchtower dial filtering).
        self.leave_time_of: Dict[str, float] = {}


class ExpectedTracker:
    """Plan-derived live honest-subscriber counts per topic.

    Serial runs maintain ``_honest_subscribers`` by mutating it inside
    join/leave handlers — partition-dependent state under isolation (a
    worker only executes its own churn events). The tracker rebuilds
    the same time series from the churn plan: a sorted per-topic delta
    list applied up to the querying event's timestamp. Same-time ties
    are safe because churn origins (``churn-join:k``/``churn-leave:j``)
    sort before publisher origins (``peer-N``) in the kernel's
    ``(time, origin, seq)`` order, matching the ``<=`` cut here.
    """

    def __init__(self, base: Dict[str, int]) -> None:
        self._value = dict(base)
        self._deltas: Dict[str, List[Tuple[float, int]]] = {}
        self._cursor: Dict[str, int] = {}

    def add(self, topic: str, time: float, delta: int) -> None:
        insort(self._deltas.setdefault(topic, []), (time, delta))
        self._cursor.setdefault(topic, 0)

    def value(self, topic: str, now: float) -> int:
        deltas = self._deltas.get(topic)
        if not deltas:
            return self._value.get(topic, 0)
        cursor = self._cursor[topic]
        value = self._value[topic]
        while cursor < len(deltas) and deltas[cursor][0] <= now:
            value += deltas[cursor][1]
            cursor += 1
        self._cursor[topic] = cursor
        self._value[topic] = value
        return value


class ScenarioRunner:
    """One scenario execution; create fresh per run."""

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        self._pins: Optional[Dict[str, int]] = None
        if spec.parallel_workers:
            # Globals that execute as shard-0 events (the adversary
            # engine, watchtower delegation) mutate their subjects
            # directly, so those subjects must be co-resident with
            # shard 0 — pin the adversary tail and the services there.
            self._pins = {}
            tail = spec.adversaries.total_count
            for index in range(spec.peers - tail, spec.peers):
                self._pins[f"peer-{index}"] = 0
            if spec.watchtowers is not None:
                for service_id in spec.watchtowers.service_ids():
                    self._pins[service_id] = 0
        #: Effective worker count (0 = serial mode).
        self.workers = (
            min(spec.parallel_workers, spec.shards)
            if spec.parallel_workers
            else 0
        )
        roster = [f"peer-{i}" for i in range(spec.peers)]
        #: Barrier-fed cumulative spam-delivery count (parallel mode):
        #: the engine's probe reads this instead of the live recorder
        #: sum, so adaptive adversaries see the same value at the same
        #: tick on every shard/worker cell.
        self._spam_feed = 0
        #: Forked-mode overrides, merged in from the worker bundles
        #: (None = read the live objects, i.e. serial / in-process).
        self._wt_override: Optional[tuple] = None
        self._peers_final_override: Optional[int] = None
        self._peer_slashes_override: Optional[int] = None
        self._memo_override: Optional[Tuple[int, int]] = None
        self._subtree_override: Optional[int] = None
        self._nullifier_override: Optional[Tuple[int, int]] = None
        #: node_id -> [honest deliveries, spam deliveries]
        self._received: Dict[str, List[int]] = {}
        #: Every adversary — legacy burst spammers and engine agents —
        #: occupies the tail of the initial peer list.
        total_adversaries = spec.adversaries.total_count
        self._adversary_ids: Set[str] = (
            set(roster[len(roster) - total_adversaries :])
            if total_adversaries
            else set()
        )
        self._publisher_ids: Set[str] = set()
        self._honest_published = 0
        #: Sum over published messages of honest peers alive at publish
        #: time — the delivery-rate denominator. Under churn the rate
        #: can slightly exceed 1: late joiners may still pick up older
        #: messages through IHAVE/IWANT gossip.
        self._expected_deliveries = 0
        self._joined = 0
        self._left = 0
        #: topic -> ids of peers subscribed (the primary holds everyone).
        self._topic_subscribers: Dict[str, Set[str]] = {
            DEFAULT_PUBSUB_TOPIC: set(roster)
        }
        #: topic -> live honest subscriber count (the per-publish
        #: delivery-expectation denominator, maintained incrementally
        #: so a publish costs O(1), not O(peers)). Parallel runs with
        #: churn use the plan-derived tracker instead — live mutation
        #: is partition-dependent.
        self._honest_subscribers: Dict[str, int] = {
            DEFAULT_PUBSUB_TOPIC: spec.peers - len(self._adversary_ids)
        }
        self._open_topics: Set[str] = {
            t.name for t in spec.topics if not t.rln_protected
        }
        #: Per-topic aggregates over honest receivers / publishers.
        self._topic_counts: Dict[str, List[int]] = {
            name: [0, 0] for name in spec.topic_names
        }
        self._topic_published: Dict[str, int] = {
            name: 0 for name in spec.topic_names
        }
        self._topic_expected: Dict[str, int] = {
            name: 0 for name in spec.topic_names
        }
        for topic in spec.topics:
            self._topic_subscribers[topic.name] = set()
            self._honest_subscribers[topic.name] = 0
        #: Delegated enforcement (populated by :meth:`_build_watchtowers`).
        self._watchtowers: List[WatchtowerService] = []
        self._watchtower_dir: Optional[str] = None
        #: Offender pks any validator in the network detected
        #: (double-signal evidence), slashed on-chain or not.
        self._detected_pks: Set[int] = set()
        #: Parallel churn machinery (None until :meth:`_prepare`).
        self._churn_plan: Optional[ChurnPlan] = None
        self._expected: Optional[ExpectedTracker] = None
        #: joiner id -> planned extra-topic names (parallel ``_on_join``
        #: applies these instead of drawing coins).
        self._join_topics: Dict[str, Tuple[str, ...]] = {}
        self.net: Optional[WakuRlnRelayNetwork] = None
        if self.workers <= 1:
            # Serial and single-worker parallel build here; forked
            # parallel defers — each worker (and the coordinator)
            # materializes its own ownership slice after the fork.
            self._materialize(None)

    # -- construction -----------------------------------------------------------

    def _materialize(self, owned: Optional[FrozenSet[int]]) -> None:
        """Build the network for one ownership set and wire topics.

        ``owned=None`` builds everything (serial / in-process
        parallel); a frozenset narrows construction to those shards
        before any entity exists (build-per-worker), including the
        coordinator's empty set.
        """
        spec = self.spec
        # Building thousands of peers allocates millions of long-lived
        # objects; keep the collector from rescanning the growing graph.
        with quiescent_gc():
            self.net = WakuRlnRelayNetwork(
                peer_count=spec.peers,
                config=spec.build_config(),
                seed=spec.seed,
                degree=spec.degree,
                block_interval=spec.block_interval,
                shards=spec.shards,
                parallel=bool(spec.parallel_workers),
                parallel_window=spec.parallel_window,
                shard_pins=self._pins,
                pre_registered=spec.pre_registered,
                owned_shards=owned,
            )
        if spec.streaming_metrics:
            # Before any sample lands: histograms become bounded
            # streaming accumulators for the whole run.
            self.net.metrics.use_streaming()
        if spec.parallel_workers:
            self._wire_roster_parallel()
        else:
            for peer in self.net.peers:
                self._wire_topics(peer, self.net.simulator.rng)
                self._attach_recorder(peer)
                if spec.watchtowers is not None:
                    peer.on_evidence(self._note_evidence)
        self.net.on_peer_added(self._on_join)

    # -- wiring ----------------------------------------------------------------

    def _wire_topics(self, peer: WakuRlnRelayPeer, rng) -> None:
        """Subscribe ``peer`` to the spec's extra topics
        (seed-deterministic per-topic coin flips). Serial path only —
        the shared-stream draws are the historical sequence, bit for
        bit."""
        for topic in self.spec.topics:
            if topic.subscribe_fraction <= 0:
                continue
            if (
                topic.subscribe_fraction < 1.0
                and rng.random() >= topic.subscribe_fraction
            ):
                continue
            if topic.rln_protected:
                peer.join_rln_topic(topic.name)
            else:
                peer.join_open_topic(topic.name)
            self._topic_subscribers[topic.name].add(peer.node_id)
            if peer.node_id not in self._adversary_ids:
                self._honest_subscribers[topic.name] += 1

    def _wire_roster_parallel(self) -> None:
        """Roster-wide topic wiring from per-entity streams.

        Every worker flips the identical coins for the *whole* roster
        (subscription maps are global facts the publish path reads),
        then joins/instruments only the peers it materialized. Coins
        come from a dedicated ``topic:{node_id}`` stream — drawing
        from the peer's main entity stream would interleave with its
        keypair and start-jitter draws."""
        spec = self.spec
        net = self.net
        sim = net.simulator
        for node_id in net.roster:
            chosen = []
            coins = None
            for topic in spec.topics:
                fraction = topic.subscribe_fraction
                if fraction <= 0:
                    continue
                if fraction < 1.0:
                    if coins is None:
                        # Ephemeral: one coin stream per roster entry
                        # on every worker — caching them would cost
                        # O(all peers) RSS per worker.
                        coins = sim.ephemeral_rng(f"topic:{node_id}")
                    if coins.random() >= fraction:
                        continue
                chosen.append(topic)
            for topic in chosen:
                self._topic_subscribers[topic.name].add(node_id)
                if node_id not in self._adversary_ids:
                    self._honest_subscribers[topic.name] += 1
            peer = net.peer_named(node_id)
            if peer is not None:
                with sim.build_context(node_id):
                    for topic in chosen:
                        if topic.rln_protected:
                            peer.join_rln_topic(topic.name)
                        else:
                            peer.join_open_topic(topic.name)
                self._attach_recorder(peer)
                if spec.watchtowers is not None:
                    peer.on_evidence(self._note_evidence)

    def _on_join(self, peer: WakuRlnRelayPeer) -> None:
        """Churn joiner: same topic wiring + recorders as the initial
        population (joiners are always honest — adversaries come from
        the initial peer list's tail). Parallel joiners apply their
        *planned* topic set — the coins were already flipped inside
        the churn plan, identically on every worker."""
        self._topic_subscribers[DEFAULT_PUBSUB_TOPIC].add(peer.node_id)
        if self.spec.parallel_workers:
            for name in self._join_topics.get(peer.node_id, ()):
                if name in self._open_topics:
                    peer.join_open_topic(name)
                else:
                    peer.join_rln_topic(name)
                self._topic_subscribers[name].add(peer.node_id)
        else:
            self._honest_subscribers[DEFAULT_PUBSUB_TOPIC] += 1
            self._wire_topics(peer, self.net.simulator.rng)
        self._attach_recorder(peer)
        if self.spec.watchtowers is not None:
            peer.on_evidence(self._note_evidence)

    def _note_evidence(self, evidence) -> None:
        """Any validator in the network detected a double-signal; the
        offender pk feeds the ``missed_slashes`` accounting."""
        self._detected_pks.add(int(evidence.commitment.element))

    def _attach_recorder(self, peer: WakuRlnRelayPeer) -> None:
        counts = self._received.setdefault(peer.node_id, [0, 0])
        node_id = peer.node_id

        def record(topic: str, payload: bytes, _msg_id: str) -> None:
            if payload.startswith(SPAM_MARKER):
                kind = 1
            elif payload.startswith(HONEST_MARKER):
                kind = 0
            else:
                return
            counts[kind] += 1
            if node_id not in self._adversary_ids:
                by_topic = self._topic_counts.get(topic)
                if by_topic is not None:
                    by_topic[kind] += 1

        peer.on_topic_payload(record)

    def _honest_peers(self) -> List[WakuRlnRelayPeer]:
        return [
            p for p in self.net.peers if p.node_id not in self._adversary_ids
        ]

    def _spam_delivered_total(self) -> int:
        """Cumulative spam deliveries to honest peers (engine probe)."""
        return sum(
            counts[1]
            for nid, counts in self._received.items()
            if nid not in self._adversary_ids
        )

    # -- processes ---------------------------------------------------------------

    def _publish_topics_for(self, peer: WakuRlnRelayPeer):
        """(topics, weights) this publisher multiplexes over: the
        primary (weight 1.0) plus every extra topic it subscribes to."""
        topics = [DEFAULT_PUBSUB_TOPIC]
        weights = [1.0]
        for topic in self.spec.topics:
            if (
                topic.traffic_weight > 0
                and peer.node_id in self._topic_subscribers[topic.name]
            ):
                topics.append(topic.name)
                weights.append(topic.traffic_weight)
        return topics, weights

    def _count_expected(self, topic: str) -> int:
        """Honest peers currently alive and subscribed to ``topic`` —
        one published message's delivery potential. O(1) amortized:
        serial maintains the count through wiring and churn handlers;
        parallel-with-churn replays the plan's delta schedule."""
        if self._expected is not None:
            return self._expected.value(topic, self.net.simulator.now)
        return self._honest_subscribers[topic]

    def _schedule_traffic(self) -> None:
        traffic = self.spec.traffic
        if traffic.messages_per_epoch <= 0 or traffic.active_fraction <= 0:
            return
        epoch_length = self.net.config.epoch_length
        interval = epoch_length / traffic.messages_per_epoch
        if self.spec.parallel_workers:
            # Publisher choice and start offsets from dedicated
            # streams: every worker computes the same publisher set
            # (the churn plan needs it) but only schedules — and only
            # draws offsets for — the publishers it owns, from private
            # per-publisher streams so skipping ghosts shifts nothing.
            sim = self.net.simulator
            honest_ids = [
                nid
                for nid in self.net.roster
                if nid not in self._adversary_ids
            ]
            count = max(
                1, round(len(honest_ids) * traffic.active_fraction)
            )
            chosen = sim.entity_rng("traffic").sample(
                honest_ids, min(count, len(honest_ids))
            )
            self._publisher_ids = set(chosen)
            for node_id in chosen:
                peer = self.net.peer_named(node_id)
                if peer is None:
                    continue
                offset = sim.entity_rng(f"traffic:{node_id}").uniform(
                    0, interval
                )
                with sim.build_context(node_id):
                    self._arm_publisher(
                        peer, traffic.start + offset, interval
                    )
            return
        honest = self._honest_peers()
        count = max(1, round(len(honest) * traffic.active_fraction))
        rng = self.net.simulator.rng
        publishers = rng.sample(honest, min(count, len(honest)))
        self._publisher_ids = {p.node_id for p in publishers}
        for peer in publishers:
            self._arm_publisher(
                peer, traffic.start + rng.uniform(0, interval), interval
            )

    def _arm_publisher(
        self, peer: WakuRlnRelayPeer, start: float, interval: float
    ) -> None:
        filler = b"x" * max(0, self.spec.traffic.payload_bytes - 24)
        sequence = [0]

        def publish(_sim: Simulator, target=peer, seq=sequence) -> None:
            topics, weights = self._publish_topics_for(target)
            if len(topics) == 1:
                topic = topics[0]
            else:
                # The publisher's own stream: the shared rng on
                # the lockstep kernels (identical draws to the
                # historical behaviour), a private per-entity
                # stream on the windowed kernel.
                topic = _sim.entity_rng(target.node_id).choices(
                    topics, weights
                )[0]
            payload = (
                HONEST_MARKER
                + f"{target.node_id}|{seq[0]}".encode()
                + filler
            )
            try:
                if topic in self._open_topics:
                    # Open topics carry plain Waku traffic — no
                    # proof, no rate limit.
                    target.relay.publish(
                        WakuMessage(payload=payload), topic=topic
                    )
                else:
                    target.publish(payload, pubsub_topic=topic)
            except (RateLimitError, RegistrationError):
                return  # own limit hit, or not registered yet
            seq[0] += 1
            self._honest_published += 1
            expected = self._count_expected(topic)
            self._expected_deliveries += expected
            self._topic_published[topic] += 1
            self._topic_expected[topic] += expected

        self.net.simulator.schedule(
            start,
            lambda sim, fn=publish, nid=peer.node_id: self._periodic(
                sim, fn, interval, nid
            ),
            label=f"traffic:{peer.node_id}",
            shard=peer.node_id,
        )

    def _periodic(
        self, sim: Simulator, fn, interval: float, shard=None
    ) -> None:
        fn(sim)
        sim.schedule(
            interval,
            lambda s: self._periodic(s, fn, interval, shard),
            "traffic",
            shard=shard,
        )

    def _schedule_adversaries(self) -> Optional[AdversaryEngine]:
        """Enroll every adversary (strategy groups + legacy burst
        spammers) into one engine and launch it.

        Parallel mode: the tail peers are pinned to shard 0, so only
        shard 0's owner holds them and builds the engine. Every other
        worker replays the *funding* side effect — the agents' wallet
        balances are direct chain-account state every replica must
        agree on — and skips the engine (strategies consume no RNG, so
        there is no stream to keep aligned)."""
        mix = self.spec.adversaries
        groups = mix.effective_groups()
        if not groups:
            return None
        net = self.net
        stake = net.config.stake_wei
        if self.spec.parallel_workers and 0 not in net.simulator.owned:
            tail_ids = net.roster[len(net.roster) - mix.total_count :]
            cursor = 0
            for group in groups:
                budget_wei = group.budget_stakes * stake
                for _ in range(group.count):
                    node_id = tail_ids[cursor]
                    cursor += 1
                    account = net.chain.get_account(f"eoa:{node_id}")
                    account.balance = max(0, budget_wei - stake)
            return None
        engine = AdversaryEngine(
            net,
            start=mix.start,
            # Parallel runs feed the probe at barriers (a worker only
            # sees its own peers' deliveries live); the lockstep
            # kernels read the recorders directly.
            spam_delivered_probe=(
                (lambda: self._spam_feed)
                if self.spec.parallel_workers
                else self._spam_delivered_total
            ),
            max_series_samples=(
                self.spec.series_max_points
                if self.spec.streaming_metrics
                else None
            ),
        )
        tail = net.peers[len(net.peers) - mix.total_count :]

        def enroll() -> None:
            cursor = 0
            for group in groups:
                for _ in range(group.count):
                    peer = tail[cursor]
                    cursor += 1
                    # An explicit params-level burst wins over the
                    # group default (both reach the factory as the
                    # soft `burst`).
                    params = dict(group.params)
                    burst = params.pop("burst", group.burst)
                    engine.add_agent(
                        peer,
                        build_strategy(
                            group.strategy, burst=burst, **params
                        ),
                        budget_wei=group.budget_stakes * stake,
                        target_topics=group.target_topics,
                    )
            engine.launch()

        if self.spec.parallel_workers:
            # The engine's tick and the agents' topic-subscribe
            # broadcasts must key on one partition-invariant origin.
            with net.simulator.build_context("adversary-engine"):
                enroll()
        else:
            enroll()
        return engine

    def _watchtower_dial_filter(self, neighbor: str, now: float) -> bool:
        """Is ``neighbor`` still dialable at ``now``? Parallel dial
        plans draw from the static roster, so a restarting service must
        skip peers the churn plan removed — by the plan's clock, which
        every worker shares, not by partition-local network state."""
        plan = self._churn_plan
        if plan is None:
            return True
        left_at = plan.leave_time_of.get(neighbor)
        return left_at is None or left_at > now

    def _build_watchtowers(self) -> None:
        """Start the delegated-enforcement services and enroll the
        delegating light peers (round-robin across services).

        Parallel mode: services are pinned to shard 0. The owner
        builds them for real; every other worker replays the shared
        facts — the service's chain account, its overlay endpoint and
        dial links, and each delegator's fee transfer — then flips
        slash reporting off on the delegators it owns."""
        wspec = self.spec.watchtowers
        if wspec is None:
            return
        net = self.net
        if wspec.topics:
            topics = list(wspec.topics)
        else:
            # Default: every RLN-protected topic in the scenario.
            topics = [DEFAULT_PUBSUB_TOPIC] + [
                t.name for t in self.spec.topics if t.rln_protected
            ]
        if self.spec.parallel_workers:
            sim = net.simulator
            owns_services = 0 in sim.owned
            if owns_services:
                self._watchtower_dir = tempfile.mkdtemp(
                    prefix="watchtower-"
                )
                for service_id in wspec.service_ids():
                    service = WatchtowerService(
                        net,
                        service_id,
                        store_path=os.path.join(
                            self._watchtower_dir, f"{service_id}.sqlite"
                        ),
                        topics=topics,
                        reward_cut=wspec.reward_cut,
                        delegation_fee_wei=wspec.delegation_fee_wei,
                        sync_interval=wspec.sync_interval,
                        degree=wspec.degree,
                    )
                    service.dial_filter = self._watchtower_dial_filter
                    with sim.build_context(service_id):
                        service.start()
                    self._watchtowers.append(service)
            else:
                for service_id in wspec.service_ids():
                    net.chain.create_account(f"eoa:{service_id}", 0)
                    net.network.attach_remote(service_id)
                    # Mirror the owner's build-time dials (the plan is
                    # a shared entity stream) so owned peers hold
                    # their half of each link.
                    for neighbor in watchtower_dial_plan(
                        net, service_id, wspec.degree
                    ):
                        net.network.connect(service_id, neighbor)
            honest_ids = [
                nid
                for nid in net.roster
                if nid not in self._adversary_ids
            ]
            if wspec.delegate_fraction >= 1.0:
                delegators = honest_ids
            else:
                count = round(len(honest_ids) * wspec.delegate_fraction)
                delegators = sim.entity_rng("wt-delegate").sample(
                    honest_ids, min(count, len(honest_ids))
                )
            service_ids = wspec.service_ids()
            for index, node_id in enumerate(delegators):
                service_id = service_ids[index % len(service_ids)]
                if owns_services:
                    self._watchtowers[
                        index % len(self._watchtowers)
                    ].delegate_id(node_id, f"eoa:{node_id}")
                else:
                    net.chain.transfer_value(
                        f"eoa:{node_id}",
                        f"eoa:{service_id}",
                        wspec.delegation_fee_wei,
                    )
                peer = net.peer_named(node_id)
                if peer is not None:
                    peer.disable_slash_reporting()
            return
        self._watchtower_dir = tempfile.mkdtemp(prefix="watchtower-")
        for service_id in wspec.service_ids():
            service = WatchtowerService(
                net,
                service_id,
                store_path=os.path.join(
                    self._watchtower_dir, f"{service_id}.sqlite"
                ),
                topics=topics,
                reward_cut=wspec.reward_cut,
                delegation_fee_wei=wspec.delegation_fee_wei,
                sync_interval=wspec.sync_interval,
                degree=wspec.degree,
            )
            service.start()
            self._watchtowers.append(service)
        honest = self._honest_peers()
        if wspec.delegate_fraction >= 1.0:
            delegators = honest
        else:
            count = round(len(honest) * wspec.delegate_fraction)
            delegators = net.simulator.rng.sample(
                honest, min(count, len(honest))
            )
        for index, peer in enumerate(delegators):
            self._watchtowers[index % len(self._watchtowers)].delegate(
                peer
            )

    def _schedule_faults(self) -> None:
        """Arm the spec's crash/restart fault plans.

        Parallel mode: only the worker owning the service holds a live
        object to crash; it keys both events on a per-fault build
        context so the schedule is partition-invariant, and shards
        them on the service id (pinned to 0) so crash descendants
        originate from the service's own counter."""
        if not self.spec.faults:
            return
        sim = self.net.simulator
        by_id = {s.service_id: s for s in self._watchtowers}
        if self.spec.parallel_workers:
            for fault in self.spec.faults:
                service = by_id.get(fault.target)
                if service is None:
                    continue  # another worker owns it
                with sim.build_context(f"fault:{fault.target}"):
                    sim.schedule(
                        fault.crash_at,
                        lambda _sim, svc=service: svc.crash(),
                        label=f"fault-crash:{fault.target}",
                        shard=fault.target,
                    )
                    if fault.restart_at is not None:
                        sim.schedule(
                            fault.restart_at,
                            lambda _sim, svc=service: svc.restart(),
                            label=f"fault-restart:{fault.target}",
                            shard=fault.target,
                        )
            return
        for fault in self.spec.faults:
            service = by_id[fault.target]
            sim.schedule(
                fault.crash_at,
                lambda _sim, svc=service: svc.crash(),
                label=f"fault-crash:{fault.target}",
            )
            if fault.restart_at is not None:
                sim.schedule(
                    fault.restart_at,
                    lambda _sim, svc=service: svc.restart(),
                    label=f"fault-restart:{fault.target}",
                )

    # -- churn -------------------------------------------------------------------

    def _schedule_churn(self) -> None:
        """Serial churn: live decisions against the shared stream
        (the historical draw sequence, bit for bit)."""
        churn = self.spec.churn
        if not churn.active:
            return
        sim = self.net.simulator

        if churn.join_interval and churn.max_joins:

            def join(_sim: Simulator) -> None:
                if self._joined >= churn.max_joins:
                    return
                self.net.add_peer()
                self._joined += 1
                if self._joined < churn.max_joins:
                    sim.schedule(churn.join_interval, join, "churn-join")

            sim.schedule(
                churn.start + churn.join_interval, join, "churn-join"
            )

        if churn.leave_interval and churn.max_leaves:

            def leave(_sim: Simulator) -> None:
                if self._left >= churn.max_leaves:
                    return
                candidates = [
                    p.node_id
                    for p in self._honest_peers()
                    if p.node_id not in self._publisher_ids
                ]
                if len(candidates) > 1:
                    victim = sim.rng.choice(candidates)
                    self.net.remove_peer(victim)
                    # Victims are always honest (candidates exclude
                    # adversaries), so each drop is an honest one.
                    for name, subscribers in (
                        self._topic_subscribers.items()
                    ):
                        if victim in subscribers:
                            subscribers.discard(victim)
                            self._honest_subscribers[name] -= 1
                    self._left += 1
                if self._left < churn.max_leaves:
                    sim.schedule(churn.leave_interval, leave, "churn-leave")

            sim.schedule(
                churn.start + churn.leave_interval, leave, "churn-leave"
            )

    def _plan_churn(self) -> Optional[ChurnPlan]:
        """Precompute every parallel churn decision (see ChurnPlan).

        The plan walks both grids chronologically (joins before leaves
        at ties, matching the serial scheduling order), maintaining
        the alive list the way the live run would: roster order,
        joiners appended, victims removed. Leave attempts that find at
        most one candidate draw nothing and remove no one — the grid
        keeps ticking until the success quota or the horizon, exactly
        like the serial rescheduling loop."""
        churn = self.spec.churn
        if not self.spec.parallel_workers or not churn.active:
            return None
        spec = self.spec
        net = self.net
        jr = net.simulator.entity_rng("churn")
        duration = spec.duration
        plan = ChurnPlan()
        alive: List[str] = list(net.roster)
        grid: List[Tuple[float, int, int]] = []
        if churn.join_interval and churn.max_joins:
            t = churn.start + churn.join_interval
            k = 0
            while k < churn.max_joins and t <= duration:
                grid.append((t, 0, k))
                k += 1
                t += churn.join_interval
        if churn.leave_interval and churn.max_leaves:
            t = churn.start + churn.leave_interval
            j = 0
            while t <= duration:
                grid.append((t, 1, j))
                j += 1
                t += churn.leave_interval
        grid.sort()
        successes = 0
        for t, tag, index in grid:
            if tag == 0:
                joiner = f"peer-{spec.peers + index}"
                fanout = (
                    net._degree
                    if net._degree is not None
                    else len(alive)
                )
                neighbors = jr.sample(alive, min(fanout, len(alive)))
                names = []
                for topic in spec.topics:
                    fraction = topic.subscribe_fraction
                    if fraction <= 0:
                        continue
                    if fraction < 1.0 and jr.random() >= fraction:
                        continue
                    names.append(topic.name)
                plan.joins.append(
                    (t, index, joiner, neighbors, tuple(names))
                )
                alive.append(joiner)
            else:
                if successes >= churn.max_leaves:
                    continue
                candidates = [
                    nid
                    for nid in alive
                    if nid not in self._adversary_ids
                    and nid not in self._publisher_ids
                ]
                if len(candidates) > 1:
                    victim = jr.choice(candidates)
                    alive.remove(victim)
                    plan.leaves.append((t, successes, victim))
                    plan.leave_time_of[victim] = t
                    successes += 1
        return plan

    def _arm_churn(self) -> None:
        """Arm the plan's events on the shards this worker owns;
        declare every foreign joiner as a ghost so its registration
        transaction and overlay endpoint exist on this replica."""
        plan = self._churn_plan
        if plan is None:
            return
        net = self.net
        sim = net.simulator
        shard_plan = sim.plan
        owned = sim.owned
        for t, k, joiner, neighbors, names in plan.joins:
            self._join_topics[joiner] = names
            if shard_plan.shard_of(joiner) in owned:
                with sim.build_context(f"churn-join:{k}"):
                    sim.schedule(
                        t,
                        lambda _sim, nid=joiner, dial=neighbors: (
                            self._parallel_join(nid, dial)
                        ),
                        label=f"churn-join:{joiner}",
                        shard=joiner,
                    )
            else:
                net.declare_ghost(joiner)
                net.network.set_remote_presence(
                    joiner,
                    t,
                    plan.leave_time_of.get(joiner, float("inf")),
                )
        for t, j, victim in plan.leaves:
            if shard_plan.shard_of(victim) in owned:
                with sim.build_context(f"churn-leave:{j}"):
                    sim.schedule(
                        t,
                        lambda _sim, nid=victim: self._parallel_leave(
                            nid
                        ),
                        label=f"churn-leave:{victim}",
                        shard=victim,
                    )
            elif victim not in self._join_topics:
                # Initial-roster ghost churning out elsewhere: its
                # remote endpoint stops being dialable at the plan's
                # leave time (joiner victims set their window above).
                net.network.set_remote_presence(victim, 0.0, t)

    def _parallel_join(self, node_id: str, neighbors: List[str]) -> None:
        self.net.add_peer(node_id=node_id, neighbors=list(neighbors))
        self._joined += 1

    def _parallel_leave(self, node_id: str) -> None:
        self.net.remove_peer(node_id)
        self._left += 1

    def _build_expected_tracker(self) -> None:
        """Turn the churn plan into the per-topic delivery-expectation
        schedule (parallel only; without churn the static wiring
        counts are already layout-invariant)."""
        plan = self._churn_plan
        if plan is None:
            return
        tracker = ExpectedTracker(self._honest_subscribers)
        for t, _k, _joiner, _neighbors, names in plan.joins:
            tracker.add(DEFAULT_PUBSUB_TOPIC, t, 1)
            for name in names:
                tracker.add(name, t, 1)
        for t, _j, victim in plan.leaves:
            tracker.add(DEFAULT_PUBSUB_TOPIC, t, -1)
            for name, subscribers in self._topic_subscribers.items():
                if name == DEFAULT_PUBSUB_TOPIC:
                    continue
                if victim in subscribers:
                    tracker.add(name, t, -1)
            planned = self._join_topics.get(victim)
            if planned:
                for name in planned:
                    tracker.add(name, t, -1)
        self._expected = tracker

    # -- baseline comparison ------------------------------------------------------

    def _run_baseline(self) -> Dict[str, float]:
        """Throw the equivalent flood at an unprotected relay network.

        Each adversary group maps to flooders at its *resolved* burst
        rate (params-level burst override included, exactly as
        :meth:`_schedule_adversaries` resolves it) over its attack
        window: the declared epochs for ``burst-flood``, the whole
        scenario for persistent strategies. Adaptive strategies change
        burst mid-attack, so for them the nominal burst makes this an
        approximation, not like-for-like.

        Fully self-contained and deterministic in ``(spec, seed)`` —
        parallel runs execute it once, on the coordinator, after the
        barrier drive."""
        spec = self.spec
        mix = spec.adversaries
        baseline = BaselineNetwork(
            peer_count=spec.peers, seed=spec.seed, degree=spec.degree
        )
        deliveries = baseline.collect_deliveries()
        baseline.start()
        baseline.run(2.0)
        epoch_length = spec.build_config().epoch_length
        flooders = []
        for group in mix.effective_groups():
            params = dict(group.params)
            burst = params.pop("burst", group.burst)
            rate = max(burst, 1) / epoch_length
            if group.strategy == "burst-flood":
                window = max(int(params.get("epochs", 1)), 1) * epoch_length
            else:
                window = max(spec.duration - mix.start, epoch_length)
            for _ in range(max(group.count, 1)):
                flooder = FloodSpammer(
                    baseline,
                    f"peer-{len(flooders)}",
                    rate_per_second=rate,
                )
                flooders.append(flooder)
                flooder.run(window)
        if not flooders:
            # compare_baseline without adversaries: one reference
            # flooder at the legacy mix parameters.
            flooder = FloodSpammer(
                baseline,
                "peer-0",
                rate_per_second=max(mix.burst, 1) / epoch_length,
            )
            flooders.append(flooder)
            flooder.run(max(mix.epochs, 1) * epoch_length)
        baseline.run(spec.duration)
        attacker_ids = {f.node_id for f in flooders}
        honest = {
            nid: msgs
            for nid, msgs in deliveries.items()
            if nid not in attacker_ids
        }
        spam_counts = [
            sum(1 for m in msgs if m.startswith(SPAM_MARKER))
            for msgs in honest.values()
        ]
        total = sum(spam_counts)
        return {
            "baseline_spam_sent": float(sum(f.sent for f in flooders)),
            "baseline_spam_delivered": float(total),
            "baseline_spam_per_honest_peer": (
                total / len(spam_counts) if spam_counts else 0.0
            ),
        }

    # -- execution ------------------------------------------------------------------

    def _prepare(self) -> Optional[AdversaryEngine]:
        """Arm every process on an already materialized network and
        flip the chain into replica mode (parallel paths only).

        Build steps (registration mining, watchtower delegation, agent
        funding) mutate the chain directly and identically on every
        cell; the chain then switches to replica mode so every runtime
        mutation joins the globally ordered barrier op stream. Blocks
        are produced by :meth:`~repro.eth.chain.Blockchain.replica_apply`
        on the block grid, so the periodic miner stays off."""
        net = self.net
        with quiescent_gc():
            net.register_all()
            self._build_watchtowers()
            net.start(mine_blocks=False)
            self._schedule_traffic()
            engine = self._schedule_adversaries()
            self._churn_plan = self._plan_churn()
            self._arm_churn()
            self._build_expected_tracker()
            self._schedule_faults()
            net.chain.enter_replica_mode(net.simulator.consume_order_key)
        return engine

    def _run_windowed(self):
        """Drive the run on the windowed kernel behind barrier sync."""
        if self.workers <= 1:
            engine = self._prepare()
            report = drive_in_process(self, engine)
            self.net.stop()
            for service in self._watchtowers:
                service.stop()
            return report
        return drive_forked(self, self.workers)

    def run(self) -> ScenarioResult:
        spec = self.spec
        started_wall = time.perf_counter()

        if spec.parallel_workers:
            attack_report = self._run_windowed()
        else:
            net = self.net
            with quiescent_gc():
                net.register_all()
                self._build_watchtowers()
                net.start()
                self._schedule_traffic()
                engine = self._schedule_adversaries()
                self._schedule_churn()
                self._schedule_faults()
                net.run(spec.duration)
                net.stop()
                for service in self._watchtowers:
                    service.stop()
            attack_report = (
                engine.report() if engine is not None else None
            )
        net = self.net

        honest_receivers = [
            nid for nid in self._received if nid not in self._adversary_ids
        ]
        honest_delivered = sum(
            self._received[nid][0] for nid in honest_receivers
        )
        spam_delivered = sum(
            self._received[nid][1] for nid in honest_receivers
        )
        # A publisher delivers its own message locally, so each honest
        # message can reach the honest peers alive when it was sent.
        expected = self._expected_deliveries
        metrics = net.metrics
        chain_events = net.chain.events_since(0)
        members_slashed = sum(
            1 for e in chain_events if e.name == "MemberRemoved"
        )
        # Delegated-enforcement accounting (all zero without services).
        watchtower_summary: Dict[str, Dict[str, object]] = {}
        watchtower_rewards = 0
        delegation_fees = 0
        recovery_time = 0.0
        watchtower_submitted = 0
        missed_slashes = 0
        if self._watchtowers or self._wt_override is not None:
            if self._wt_override is not None:
                # Forked parallel run: summaries and evidence shipped
                # from the worker that owned the services (this
                # process holds no live service objects).
                rows, evidence = self._wt_override
            else:
                rows = []
                evidence = set()
                for service in self._watchtowers:
                    rows.append((service.service_id, service.summary()))
                    evidence.update(service.store.evidence_pks())
                    service.close()
            detected = set(self._detected_pks) | set(evidence)
            for service_id, summary in rows:
                watchtower_summary[service_id] = summary
                watchtower_rewards += summary["rewards_wei"]
                delegation_fees += summary["fees_wei"]
                recovery_time += summary["recovery_time"]
                watchtower_submitted += summary["submitted"]
            slashed_pks = {
                e.args["pk"]
                for e in chain_events
                if e.name == "MemberRemoved"
            }
            missed_slashes = len(detected - slashed_pks)
        if self._watchtower_dir is not None:
            shutil.rmtree(self._watchtower_dir, ignore_errors=True)
        counters = {
            name: value
            for name, value in sorted(metrics.counters.items())
            if name.startswith(_COUNTER_PREFIXES) or name in _COUNTER_NAMES
        }
        extras: Dict[str, float] = {}
        if net.verification_cache is not None:
            if self._memo_override is not None:
                hits, misses = self._memo_override
                total_lookups = hits + misses
                extras["verification_cache_hit_rate"] = (
                    hits / total_lookups if total_lookups else 0.0
                )
            else:
                extras["verification_cache_hit_rate"] = (
                    net.verification_cache.hit_rate
                )
        if net.membership_store is not None:
            if not spec.parallel_workers:
                # How much replica hashing the shared store absorbed:
                # each deduped event would have cost O(depth) hashes
                # in an independent replica. (Parallel runs skip
                # these: each worker holds a private store, so the
                # sharing counters are per-partition artifacts, not
                # run facts.)
                store_stats = net.membership_store.stats()
                extras["membership_events"] = float(store_stats["events"])
                extras["membership_events_deduped"] = float(
                    store_stats["events_deduped"]
                )
                extras["membership_forks"] = float(store_stats["forks"])
                if net.config.membership_sub_depth is not None:
                    # Sharded registry only: how much of the
                    # tree-of-trees was actually built. Gated on the
                    # opt-in flag so flat runs keep their extras keys
                    # (and fingerprints) as-is.
                    extras["membership_subtrees_materialized"] = float(
                        store_stats["materialized_subtrees"]
                    )
            elif net.config.membership_sub_depth is not None:
                # Parallel: WHICH subtrees get built is a run fact
                # (the union of every worker's materialized index
                # sets equals the single-store set); HOW MANY events
                # each store deduped is not — so only this extra
                # survives the mode switch.
                if self._subtree_override is not None:
                    extras["membership_subtrees_materialized"] = float(
                        self._subtree_override
                    )
                else:
                    extras["membership_subtrees_materialized"] = float(
                        sum(
                            len(indices)
                            for indices in (
                                net.membership_store.materialized_indices()
                            ).values()
                        )
                    )
        if net.config.eager_nullifier_gc:
            # Epoch-grid GC is opt-in; when on, report how much
            # nullifier state it reclaimed and what stayed live across
            # every peer and topic (the O(active peers x window) bound).
            if self._nullifier_override is not None:
                pruned, live = self._nullifier_override
            else:
                pruned = 0
                live = 0
                for peer in net.peers:
                    for validator in peer.rln_topics.values():
                        pruned += (
                            validator.nullifier_map.auto_pruned_entries
                        )
                        live += validator.nullifier_map.entry_count
            extras["nullifier_entries_pruned"] = float(pruned)
            extras["nullifier_entries_live"] = float(live)
        if spec.compare_baseline:
            extras.update(self._run_baseline())
        topic_summary: Dict[str, Dict[str, float]] = {}
        if spec.topics:
            for name in spec.topic_names:
                delivered, spam = self._topic_counts[name]
                topic_expected = self._topic_expected[name]
                topic_summary[name] = {
                    "subscribers": float(self._count_expected(name)),
                    "honest_published": float(self._topic_published[name]),
                    "honest_delivered": float(delivered),
                    "delivery_rate": (
                        delivered / topic_expected if topic_expected else 0.0
                    ),
                    "spam_delivered": float(spam),
                }

        # Slashing settles on-chain during the run; read the final
        # flow of funds straight off the chain. Every slashed stake
        # splits into burn + reporter reward (contract invariant), so
        # rewards are measured as the unburnt remainder of lost stakes
        # rather than re-derived from the burn fraction.
        stake_lost = members_slashed * net.contract.stake_wei
        reporter_rewards = stake_lost - net.chain.burnt_wei
        series: Dict[str, List[float]] = (
            attack_report.series_dict() if attack_report else {}
        )
        spam_published = attack_report.spam_sent if attack_report else 0
        if attack_report:
            cost = attack_report.cost_per_delivered_spam(spam_delivered)
            if cost != float("inf"):
                extras["cost_per_delivered_spam_wei"] = cost
            latencies = attack_report.slash_latencies
            if latencies:
                extras["mean_slash_latency"] = sum(latencies) / len(
                    latencies
                )
        peer_slashes = (
            self._peer_slashes_override
            if self._peer_slashes_override is not None
            else sum(
                p.slashes_submitted
                for p in (net.peers + net.departed)
            )
        )

        return ScenarioResult(
            scenario=spec.name,
            seed=spec.seed,
            peers_started=spec.peers,
            peers_final=(
                self._peers_final_override
                if self._peers_final_override is not None
                else len(net.peers)
            ),
            joined=self._joined,
            left=self._left,
            honest_published=self._honest_published,
            honest_delivered=honest_delivered,
            delivery_rate=honest_delivered / expected if expected else 0.0,
            spam_published=spam_published,
            spam_delivered=spam_delivered,
            spam_per_honest_peer=(
                spam_delivered / len(honest_receivers)
                if honest_receivers
                else 0.0
            ),
            slashes_submitted=watchtower_submitted + peer_slashes,
            members_slashed=members_slashed,
            stake_burnt=net.chain.burnt_wei,
            reporter_rewards=reporter_rewards,
            attacker_spend=(
                attack_report.spend_wei if attack_report else 0
            ),
            identity_rotations=(
                attack_report.rotations if attack_report else 0
            ),
            watchtower_rewards=watchtower_rewards,
            delegation_fees=delegation_fees,
            missed_slashes=missed_slashes,
            recovery_time=recovery_time,
            watchtowers=watchtower_summary,
            series=series,
            topics=topic_summary,
            proof_verifications=metrics.counter("rln.proof_verifications"),
            verification_cache_hits=metrics.counter("rln.proof_cache_hits"),
            counters=counters,
            sim_time=net.simulator.now,
            events_processed=net.simulator.events_processed,
            wall_clock_seconds=time.perf_counter() - started_wall,
            extras=extras,
        )


def run_scenario(
    spec: ScenarioSpec,
    peers: Optional[int] = None,
    duration: Optional[float] = None,
    seed: Optional[int] = None,
    shards: Optional[int] = None,
    parallel_workers: Optional[int] = None,
) -> ScenarioResult:
    """Run ``spec`` (optionally rescaled) and return its result."""
    return ScenarioRunner(
        spec.scaled(peers, duration, seed, shards, parallel_workers)
    ).run()
