"""Execute a :class:`ScenarioSpec` end-to-end.

The runner assembles the full stack — discrete-event simulator, latency
network, GossipSub overlay, Waku-Relay nodes, RLN membership contract
and slashing — through :class:`~repro.core.protocol.WakuRlnRelayNetwork`,
drives the spec's traffic/adversary/churn processes on the simulated
clock, and condenses everything into one
:class:`~repro.scenarios.result.ScenarioResult`.

Adversaries run inside an :class:`~repro.adversaries.AdversaryEngine`:
slashing settles through the membership contract *during* the run, and
the engine's per-epoch economics samples surface as the result's
``series`` (the cost-of-attack curve).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from typing import Dict, List, Optional, Set

from ..adversaries.base import SPAM_MARKER
from ..adversaries.engine import AdversaryEngine
from ..adversaries.strategies import build_strategy
from ..attacks.spam import FloodSpammer
from ..baselines.relay_baselines import BaselineNetwork
from ..core.peer import WakuRlnRelayPeer
from ..core.protocol import WakuRlnRelayNetwork
from ..errors import RateLimitError, RegistrationError
from ..sim.simulator import Simulator, quiescent_gc
from ..waku.message import DEFAULT_PUBSUB_TOPIC, WakuMessage
from ..watchtower import WatchtowerService
from .parallel import drive_forked, drive_in_process
from .result import ScenarioResult
from .spec import ScenarioSpec

#: Honest payload marker; spam carries the agents'
#: :data:`~repro.adversaries.base.SPAM_MARKER` (one shared constant,
#: so the delivery classifier cannot drift from the emitters).
HONEST_MARKER = b"MSG|"

#: Metrics counters copied verbatim into ``ScenarioResult.counters``.
_COUNTER_PREFIXES = ("validator.", "rln.")
_COUNTER_NAMES = (
    "gossipsub.published",
    "gossipsub.delivered",
    "gossipsub.rejected",
    "gossipsub.ignored",
    "gossipsub.duplicates",
)


class ScenarioRunner:
    """One scenario execution; create fresh per run."""

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        pins: Optional[Dict[str, int]] = None
        if spec.parallel_workers:
            # Globals that execute as shard-0 events (the adversary
            # engine, watchtower delegation) mutate their subjects
            # directly, so those subjects must be co-resident with
            # shard 0 — pin the adversary tail and the services there.
            pins = {}
            tail = spec.adversaries.total_count
            for index in range(spec.peers - tail, spec.peers):
                pins[f"peer-{index}"] = 0
            if spec.watchtowers is not None:
                for service_id in spec.watchtowers.service_ids():
                    pins[service_id] = 0
        # Building thousands of peers allocates millions of long-lived
        # objects; keep the collector from rescanning the growing graph.
        with quiescent_gc():
            self.net = WakuRlnRelayNetwork(
                peer_count=spec.peers,
                config=spec.build_config(),
                seed=spec.seed,
                degree=spec.degree,
                block_interval=spec.block_interval,
                shards=spec.shards,
                parallel=bool(spec.parallel_workers),
                parallel_window=spec.parallel_window,
                shard_pins=pins,
                pre_registered=spec.pre_registered,
            )
        if spec.streaming_metrics:
            # Before any sample lands: histograms become bounded
            # streaming accumulators for the whole run.
            self.net.metrics.use_streaming()
        #: Barrier-fed cumulative spam-delivery count (parallel mode):
        #: the engine's probe reads this instead of the live recorder
        #: sum, so adaptive adversaries see the same value at the same
        #: tick on every shard/worker cell.
        self._spam_feed = 0
        #: Forked-mode override for watchtower aggregation, shipped
        #: from the shard-0 worker: ``(rows, evidence_pks)``.
        self._wt_override: Optional[tuple] = None
        #: node_id -> [honest deliveries, spam deliveries]
        self._received: Dict[str, List[int]] = {}
        #: Every adversary — legacy burst spammers and engine agents —
        #: occupies the tail of the initial peer list.
        total_adversaries = spec.adversaries.total_count
        self._adversary_ids: Set[str] = {
            p.node_id
            for p in self.net.peers[
                len(self.net.peers) - total_adversaries :
            ]
        } if total_adversaries else set()
        self._publisher_ids: Set[str] = set()
        self._honest_published = 0
        #: Sum over published messages of honest peers alive at publish
        #: time — the delivery-rate denominator. Under churn the rate
        #: can slightly exceed 1: late joiners may still pick up older
        #: messages through IHAVE/IWANT gossip.
        self._expected_deliveries = 0
        self._joined = 0
        self._left = 0
        #: topic -> ids of peers subscribed (the primary holds everyone).
        self._topic_subscribers: Dict[str, Set[str]] = {
            DEFAULT_PUBSUB_TOPIC: {p.node_id for p in self.net.peers}
        }
        #: topic -> live honest subscriber count (the per-publish
        #: delivery-expectation denominator, maintained incrementally
        #: so a publish costs O(1), not O(peers)).
        self._honest_subscribers: Dict[str, int] = {
            DEFAULT_PUBSUB_TOPIC: len(self.net.peers)
            - len(self._adversary_ids)
        }
        self._open_topics: Set[str] = {
            t.name for t in spec.topics if not t.rln_protected
        }
        #: Per-topic aggregates over honest receivers / publishers.
        self._topic_counts: Dict[str, List[int]] = {
            name: [0, 0] for name in spec.topic_names
        }
        self._topic_published: Dict[str, int] = {
            name: 0 for name in spec.topic_names
        }
        self._topic_expected: Dict[str, int] = {
            name: 0 for name in spec.topic_names
        }
        for topic in spec.topics:
            self._topic_subscribers[topic.name] = set()
            self._honest_subscribers[topic.name] = 0
        #: Delegated enforcement (populated in :meth:`run` when the
        #: spec configures watchtowers).
        self._watchtowers: List[WatchtowerService] = []
        self._watchtower_dir: Optional[str] = None
        #: Offender pks any validator in the network detected
        #: (double-signal evidence), slashed on-chain or not.
        self._detected_pks: Set[int] = set()
        for peer in self.net.peers:
            self._wire_topics(peer, self.net.simulator.rng)
            self._attach_recorder(peer)
            if spec.watchtowers is not None:
                peer.on_evidence(self._note_evidence)
        self.net.on_peer_added(self._on_join)

    # -- wiring ----------------------------------------------------------------

    def _wire_topics(self, peer: WakuRlnRelayPeer, rng) -> None:
        """Subscribe ``peer`` to the spec's extra topics
        (seed-deterministic per-topic coin flips)."""
        for topic in self.spec.topics:
            if topic.subscribe_fraction <= 0:
                continue
            if (
                topic.subscribe_fraction < 1.0
                and rng.random() >= topic.subscribe_fraction
            ):
                continue
            if topic.rln_protected:
                peer.join_rln_topic(topic.name)
            else:
                peer.join_open_topic(topic.name)
            self._topic_subscribers[topic.name].add(peer.node_id)
            if peer.node_id not in self._adversary_ids:
                self._honest_subscribers[topic.name] += 1

    def _on_join(self, peer: WakuRlnRelayPeer) -> None:
        """Churn joiner: same topic wiring + recorders as the initial
        population (joiners are always honest — adversaries come from
        the initial peer list's tail)."""
        self._topic_subscribers[DEFAULT_PUBSUB_TOPIC].add(peer.node_id)
        self._honest_subscribers[DEFAULT_PUBSUB_TOPIC] += 1
        self._wire_topics(peer, self.net.simulator.rng)
        self._attach_recorder(peer)
        if self.spec.watchtowers is not None:
            peer.on_evidence(self._note_evidence)

    def _note_evidence(self, evidence) -> None:
        """Any validator in the network detected a double-signal; the
        offender pk feeds the ``missed_slashes`` accounting."""
        self._detected_pks.add(int(evidence.commitment.element))

    def _attach_recorder(self, peer: WakuRlnRelayPeer) -> None:
        counts = self._received.setdefault(peer.node_id, [0, 0])
        node_id = peer.node_id

        def record(topic: str, payload: bytes, _msg_id: str) -> None:
            if payload.startswith(SPAM_MARKER):
                kind = 1
            elif payload.startswith(HONEST_MARKER):
                kind = 0
            else:
                return
            counts[kind] += 1
            if node_id not in self._adversary_ids:
                by_topic = self._topic_counts.get(topic)
                if by_topic is not None:
                    by_topic[kind] += 1

        peer.on_topic_payload(record)

    def _honest_peers(self) -> List[WakuRlnRelayPeer]:
        return [
            p for p in self.net.peers if p.node_id not in self._adversary_ids
        ]

    def _spam_delivered_total(self) -> int:
        """Cumulative spam deliveries to honest peers (engine probe)."""
        return sum(
            counts[1]
            for nid, counts in self._received.items()
            if nid not in self._adversary_ids
        )

    # -- processes ---------------------------------------------------------------

    def _publish_topics_for(self, peer: WakuRlnRelayPeer):
        """(topics, weights) this publisher multiplexes over: the
        primary (weight 1.0) plus every extra topic it subscribes to."""
        topics = [DEFAULT_PUBSUB_TOPIC]
        weights = [1.0]
        for topic in self.spec.topics:
            if (
                topic.traffic_weight > 0
                and peer.node_id in self._topic_subscribers[topic.name]
            ):
                topics.append(topic.name)
                weights.append(topic.traffic_weight)
        return topics, weights

    def _count_expected(self, topic: str) -> int:
        """Honest peers currently alive and subscribed to ``topic`` —
        one published message's delivery potential. O(1): the count is
        maintained through wiring and churn."""
        return self._honest_subscribers[topic]

    def _schedule_traffic(self) -> None:
        traffic = self.spec.traffic
        if traffic.messages_per_epoch <= 0 or traffic.active_fraction <= 0:
            return
        honest = self._honest_peers()
        count = max(1, round(len(honest) * traffic.active_fraction))
        rng = self.net.simulator.rng
        publishers = rng.sample(honest, min(count, len(honest)))
        self._publisher_ids = {p.node_id for p in publishers}
        epoch_length = self.net.config.epoch_length
        interval = epoch_length / traffic.messages_per_epoch
        filler = b"x" * max(0, self.spec.traffic.payload_bytes - 24)

        for peer in publishers:
            sequence = [0]

            def publish(_sim: Simulator, target=peer, seq=sequence) -> None:
                topics, weights = self._publish_topics_for(target)
                if len(topics) == 1:
                    topic = topics[0]
                else:
                    # The publisher's own stream: the shared rng on
                    # the lockstep kernels (identical draws to the
                    # historical behaviour), a private per-entity
                    # stream on the windowed kernel.
                    topic = _sim.entity_rng(target.node_id).choices(
                        topics, weights
                    )[0]
                payload = (
                    HONEST_MARKER
                    + f"{target.node_id}|{seq[0]}".encode()
                    + filler
                )
                try:
                    if topic in self._open_topics:
                        # Open topics carry plain Waku traffic — no
                        # proof, no rate limit.
                        target.relay.publish(
                            WakuMessage(payload=payload), topic=topic
                        )
                    else:
                        target.publish(payload, pubsub_topic=topic)
                except (RateLimitError, RegistrationError):
                    return  # own limit hit, or not registered yet
                seq[0] += 1
                self._honest_published += 1
                expected = self._count_expected(topic)
                self._expected_deliveries += expected
                self._topic_published[topic] += 1
                self._topic_expected[topic] += expected

            self.net.simulator.schedule(
                traffic.start + rng.uniform(0, interval),
                lambda sim, fn=publish, nid=peer.node_id: self._periodic(
                    sim, fn, interval, nid
                ),
                label=f"traffic:{peer.node_id}",
                shard=peer.node_id,
            )

    def _periodic(
        self, sim: Simulator, fn, interval: float, shard=None
    ) -> None:
        fn(sim)
        sim.schedule(
            interval,
            lambda s: self._periodic(s, fn, interval, shard),
            "traffic",
            shard=shard,
        )

    def _schedule_adversaries(self) -> Optional[AdversaryEngine]:
        """Enroll every adversary (strategy groups + legacy burst
        spammers) into one engine and launch it."""
        mix = self.spec.adversaries
        groups = mix.effective_groups()
        if not groups:
            return None
        engine = AdversaryEngine(
            self.net,
            start=mix.start,
            # Parallel runs feed the probe at barriers (a worker only
            # sees its own peers' deliveries live); the lockstep
            # kernels read the recorders directly.
            spam_delivered_probe=(
                (lambda: self._spam_feed)
                if self.spec.parallel_workers
                else self._spam_delivered_total
            ),
            max_series_samples=(
                self.spec.series_max_points
                if self.spec.streaming_metrics
                else None
            ),
        )
        stake = self.net.config.stake_wei
        tail = self.net.peers[len(self.net.peers) - mix.total_count :]
        cursor = 0
        for group in groups:
            for _ in range(group.count):
                peer = tail[cursor]
                cursor += 1
                # An explicit params-level burst wins over the group
                # default (both reach the factory as the soft `burst`).
                params = dict(group.params)
                burst = params.pop("burst", group.burst)
                engine.add_agent(
                    peer,
                    build_strategy(group.strategy, burst=burst, **params),
                    budget_wei=group.budget_stakes * stake,
                    target_topics=group.target_topics,
                )
        engine.launch()
        return engine

    def _build_watchtowers(self) -> None:
        """Start the delegated-enforcement services and enroll the
        delegating light peers (round-robin across services)."""
        wspec = self.spec.watchtowers
        if wspec is None:
            return
        self._watchtower_dir = tempfile.mkdtemp(prefix="watchtower-")
        if wspec.topics:
            topics = list(wspec.topics)
        else:
            # Default: every RLN-protected topic in the scenario.
            topics = [DEFAULT_PUBSUB_TOPIC] + [
                t.name for t in self.spec.topics if t.rln_protected
            ]
        for service_id in wspec.service_ids():
            service = WatchtowerService(
                self.net,
                service_id,
                store_path=os.path.join(
                    self._watchtower_dir, f"{service_id}.sqlite"
                ),
                topics=topics,
                reward_cut=wspec.reward_cut,
                delegation_fee_wei=wspec.delegation_fee_wei,
                sync_interval=wspec.sync_interval,
                degree=wspec.degree,
            )
            service.start()
            self._watchtowers.append(service)
        honest = self._honest_peers()
        if wspec.delegate_fraction >= 1.0:
            delegators = honest
        else:
            count = round(len(honest) * wspec.delegate_fraction)
            delegators = self.net.simulator.rng.sample(
                honest, min(count, len(honest))
            )
        for index, peer in enumerate(delegators):
            self._watchtowers[index % len(self._watchtowers)].delegate(
                peer
            )

    def _schedule_faults(self) -> None:
        """Arm the spec's crash/restart fault plans."""
        if not self.spec.faults:
            return
        sim = self.net.simulator
        by_id = {s.service_id: s for s in self._watchtowers}
        for fault in self.spec.faults:
            service = by_id[fault.target]
            sim.schedule(
                fault.crash_at,
                lambda _sim, svc=service: svc.crash(),
                label=f"fault-crash:{fault.target}",
            )
            if fault.restart_at is not None:
                sim.schedule(
                    fault.restart_at,
                    lambda _sim, svc=service: svc.restart(),
                    label=f"fault-restart:{fault.target}",
                )

    def _schedule_churn(self) -> None:
        churn = self.spec.churn
        if not churn.active:
            return
        sim = self.net.simulator

        if churn.join_interval and churn.max_joins:

            def join(_sim: Simulator) -> None:
                if self._joined >= churn.max_joins:
                    return
                self.net.add_peer()
                self._joined += 1
                if self._joined < churn.max_joins:
                    sim.schedule(churn.join_interval, join, "churn-join")

            sim.schedule(
                churn.start + churn.join_interval, join, "churn-join"
            )

        if churn.leave_interval and churn.max_leaves:

            def leave(_sim: Simulator) -> None:
                if self._left >= churn.max_leaves:
                    return
                candidates = [
                    p.node_id
                    for p in self._honest_peers()
                    if p.node_id not in self._publisher_ids
                ]
                if len(candidates) > 1:
                    victim = sim.rng.choice(candidates)
                    self.net.remove_peer(victim)
                    # Victims are always honest (candidates exclude
                    # adversaries), so each drop is an honest one.
                    for name, subscribers in (
                        self._topic_subscribers.items()
                    ):
                        if victim in subscribers:
                            subscribers.discard(victim)
                            self._honest_subscribers[name] -= 1
                    self._left += 1
                if self._left < churn.max_leaves:
                    sim.schedule(churn.leave_interval, leave, "churn-leave")

            sim.schedule(
                churn.start + churn.leave_interval, leave, "churn-leave"
            )

    # -- baseline comparison ------------------------------------------------------

    def _run_baseline(self) -> Dict[str, float]:
        """Throw the equivalent flood at an unprotected relay network.

        Each adversary group maps to flooders at its *resolved* burst
        rate (params-level burst override included, exactly as
        :meth:`_schedule_adversaries` resolves it) over its attack
        window: the declared epochs for ``burst-flood``, the whole
        scenario for persistent strategies. Adaptive strategies change
        burst mid-attack, so for them the nominal burst makes this an
        approximation, not like-for-like.
        """
        spec = self.spec
        mix = spec.adversaries
        baseline = BaselineNetwork(
            peer_count=spec.peers, seed=spec.seed, degree=spec.degree
        )
        deliveries = baseline.collect_deliveries()
        baseline.start()
        baseline.run(2.0)
        epoch_length = spec.build_config().epoch_length
        flooders = []
        for group in mix.effective_groups():
            params = dict(group.params)
            burst = params.pop("burst", group.burst)
            rate = max(burst, 1) / epoch_length
            if group.strategy == "burst-flood":
                window = max(int(params.get("epochs", 1)), 1) * epoch_length
            else:
                window = max(spec.duration - mix.start, epoch_length)
            for _ in range(max(group.count, 1)):
                flooder = FloodSpammer(
                    baseline,
                    f"peer-{len(flooders)}",
                    rate_per_second=rate,
                )
                flooders.append(flooder)
                flooder.run(window)
        if not flooders:
            # compare_baseline without adversaries: one reference
            # flooder at the legacy mix parameters.
            flooder = FloodSpammer(
                baseline,
                "peer-0",
                rate_per_second=max(mix.burst, 1) / epoch_length,
            )
            flooders.append(flooder)
            flooder.run(max(mix.epochs, 1) * epoch_length)
        baseline.run(spec.duration)
        attacker_ids = {f.node_id for f in flooders}
        honest = {
            nid: msgs
            for nid, msgs in deliveries.items()
            if nid not in attacker_ids
        }
        spam_counts = [
            sum(1 for m in msgs if m.startswith(SPAM_MARKER))
            for msgs in honest.values()
        ]
        total = sum(spam_counts)
        return {
            "baseline_spam_sent": float(sum(f.sent for f in flooders)),
            "baseline_spam_delivered": float(total),
            "baseline_spam_per_honest_peer": (
                total / len(spam_counts) if spam_counts else 0.0
            ),
        }

    # -- execution ------------------------------------------------------------------

    def _run_windowed(self):
        """Drive the run on the windowed kernel behind barrier sync.

        Build steps (registration mining, watchtower delegation, agent
        funding) mutate the chain directly and identically on every
        cell; the chain then switches to replica mode so every runtime
        mutation joins the globally ordered barrier op stream. Blocks
        are produced by :meth:`~repro.eth.chain.Blockchain.replica_apply`
        on the block grid, so the periodic miner stays off."""
        spec = self.spec
        net = self.net
        sim = net.simulator
        with quiescent_gc():
            net.register_all()
            self._build_watchtowers()
            net.start(mine_blocks=False)
            self._schedule_traffic()
            engine = self._schedule_adversaries()
            net.chain.enter_replica_mode(sim.consume_order_key)
            workers = min(spec.parallel_workers, spec.shards)
            if workers <= 1:
                report = drive_in_process(self, engine)
                net.stop()
                for service in self._watchtowers:
                    service.stop()
            else:
                report = drive_forked(self, engine, workers)
        return report

    def run(self) -> ScenarioResult:
        spec = self.spec
        started_wall = time.perf_counter()
        net = self.net

        if spec.parallel_workers:
            attack_report = self._run_windowed()
        else:
            with quiescent_gc():
                net.register_all()
                self._build_watchtowers()
                net.start()
                self._schedule_traffic()
                engine = self._schedule_adversaries()
                self._schedule_churn()
                self._schedule_faults()
                net.run(spec.duration)
                net.stop()
                for service in self._watchtowers:
                    service.stop()
            attack_report = (
                engine.report() if engine is not None else None
            )

        honest_receivers = [
            nid for nid in self._received if nid not in self._adversary_ids
        ]
        honest_delivered = sum(
            self._received[nid][0] for nid in honest_receivers
        )
        spam_delivered = sum(
            self._received[nid][1] for nid in honest_receivers
        )
        # A publisher delivers its own message locally, so each honest
        # message can reach the honest peers alive when it was sent.
        expected = self._expected_deliveries
        metrics = net.metrics
        chain_events = net.chain.events_since(0)
        members_slashed = sum(
            1 for e in chain_events if e.name == "MemberRemoved"
        )
        # Delegated-enforcement accounting (all zero without services).
        watchtower_summary: Dict[str, Dict[str, object]] = {}
        watchtower_rewards = 0
        delegation_fees = 0
        recovery_time = 0.0
        watchtower_submitted = 0
        missed_slashes = 0
        if self._watchtowers:
            if self._wt_override is not None:
                # Forked parallel run: summaries and evidence shipped
                # from the worker that owned the services (this
                # process's service objects are stale fork copies).
                rows, evidence = self._wt_override
            else:
                rows = []
                evidence = set()
                for service in self._watchtowers:
                    rows.append((service.service_id, service.summary()))
                    evidence.update(service.store.evidence_pks())
                    service.close()
            detected = set(self._detected_pks) | set(evidence)
            for service_id, summary in rows:
                watchtower_summary[service_id] = summary
                watchtower_rewards += summary["rewards_wei"]
                delegation_fees += summary["fees_wei"]
                recovery_time += summary["recovery_time"]
                watchtower_submitted += summary["submitted"]
            slashed_pks = {
                e.args["pk"]
                for e in chain_events
                if e.name == "MemberRemoved"
            }
            missed_slashes = len(detected - slashed_pks)
        if self._watchtower_dir is not None:
            shutil.rmtree(self._watchtower_dir, ignore_errors=True)
        counters = {
            name: value
            for name, value in sorted(metrics.counters.items())
            if name.startswith(_COUNTER_PREFIXES) or name in _COUNTER_NAMES
        }
        extras: Dict[str, float] = {}
        if net.verification_cache is not None:
            extras["verification_cache_hit_rate"] = (
                net.verification_cache.hit_rate
            )
        if net.membership_store is not None and not spec.parallel_workers:
            # How much replica hashing the shared store absorbed: each
            # deduped event would have cost O(depth) hashes in an
            # independent replica. (Parallel runs skip these: forked
            # workers each hold a private store copy, so the sharing
            # counters are per-partition artifacts, not run facts.)
            store_stats = net.membership_store.stats()
            extras["membership_events"] = float(store_stats["events"])
            extras["membership_events_deduped"] = float(
                store_stats["events_deduped"]
            )
            extras["membership_forks"] = float(store_stats["forks"])
            if net.config.membership_sub_depth is not None:
                # Sharded registry only: how much of the tree-of-trees
                # was actually built. Gated on the opt-in flag so flat
                # runs keep their extras keys (and fingerprints) as-is.
                extras["membership_subtrees_materialized"] = float(
                    store_stats["materialized_subtrees"]
                )
        if net.config.eager_nullifier_gc:
            # Epoch-grid GC is opt-in; when on, report how much
            # nullifier state it reclaimed and what stayed live across
            # every peer and topic (the O(active peers x window) bound).
            pruned = 0
            live = 0
            for peer in net.peers:
                for validator in peer.rln_topics.values():
                    pruned += validator.nullifier_map.auto_pruned_entries
                    live += validator.nullifier_map.entry_count
            extras["nullifier_entries_pruned"] = float(pruned)
            extras["nullifier_entries_live"] = float(live)
        if spec.compare_baseline:
            extras.update(self._run_baseline())
        topic_summary: Dict[str, Dict[str, float]] = {}
        if spec.topics:
            for name in spec.topic_names:
                delivered, spam = self._topic_counts[name]
                topic_expected = self._topic_expected[name]
                topic_summary[name] = {
                    "subscribers": float(self._count_expected(name)),
                    "honest_published": float(self._topic_published[name]),
                    "honest_delivered": float(delivered),
                    "delivery_rate": (
                        delivered / topic_expected if topic_expected else 0.0
                    ),
                    "spam_delivered": float(spam),
                }

        # Slashing settles on-chain during the run; read the final
        # flow of funds straight off the chain. Every slashed stake
        # splits into burn + reporter reward (contract invariant), so
        # rewards are measured as the unburnt remainder of lost stakes
        # rather than re-derived from the burn fraction.
        stake_lost = members_slashed * net.contract.stake_wei
        reporter_rewards = stake_lost - net.chain.burnt_wei
        series: Dict[str, List[float]] = (
            attack_report.series_dict() if attack_report else {}
        )
        spam_published = attack_report.spam_sent if attack_report else 0
        if attack_report:
            cost = attack_report.cost_per_delivered_spam(spam_delivered)
            if cost != float("inf"):
                extras["cost_per_delivered_spam_wei"] = cost
            latencies = attack_report.slash_latencies
            if latencies:
                extras["mean_slash_latency"] = sum(latencies) / len(
                    latencies
                )

        return ScenarioResult(
            scenario=spec.name,
            seed=spec.seed,
            peers_started=spec.peers,
            peers_final=len(net.peers),
            joined=self._joined,
            left=self._left,
            honest_published=self._honest_published,
            honest_delivered=honest_delivered,
            delivery_rate=honest_delivered / expected if expected else 0.0,
            spam_published=spam_published,
            spam_delivered=spam_delivered,
            spam_per_honest_peer=(
                spam_delivered / len(honest_receivers)
                if honest_receivers
                else 0.0
            ),
            slashes_submitted=watchtower_submitted + sum(
                p.slashes_submitted
                for p in (net.peers + net.departed)
            ),
            members_slashed=members_slashed,
            stake_burnt=net.chain.burnt_wei,
            reporter_rewards=reporter_rewards,
            attacker_spend=(
                attack_report.spend_wei if attack_report else 0
            ),
            identity_rotations=(
                attack_report.rotations if attack_report else 0
            ),
            watchtower_rewards=watchtower_rewards,
            delegation_fees=delegation_fees,
            missed_slashes=missed_slashes,
            recovery_time=recovery_time,
            watchtowers=watchtower_summary,
            series=series,
            topics=topic_summary,
            proof_verifications=metrics.counter("rln.proof_verifications"),
            verification_cache_hits=metrics.counter("rln.proof_cache_hits"),
            counters=counters,
            sim_time=net.simulator.now,
            events_processed=net.simulator.events_processed,
            wall_clock_seconds=time.perf_counter() - started_wall,
            extras=extras,
        )


def run_scenario(
    spec: ScenarioSpec,
    peers: Optional[int] = None,
    duration: Optional[float] = None,
    seed: Optional[int] = None,
    shards: Optional[int] = None,
    parallel_workers: Optional[int] = None,
) -> ScenarioResult:
    """Run ``spec`` (optionally rescaled) and return its result."""
    return ScenarioRunner(
        spec.scaled(peers, duration, seed, shards, parallel_workers)
    ).run()
