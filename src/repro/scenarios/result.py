"""Uniform metrics object every scenario run produces.

All fields except ``wall_clock_seconds`` are deterministic for a given
``(spec, seed)`` — equality and :meth:`ScenarioResult.fingerprint`
exclude wall-clock so two runs of the same scenario compare equal even
though the host machine's speed differs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ScenarioResult:
    """What one scenario run measured."""

    scenario: str
    seed: int
    peers_started: int
    peers_final: int
    joined: int
    left: int
    #: Honest traffic.
    honest_published: int
    honest_delivered: int
    delivery_rate: float
    #: Adversarial traffic.
    spam_published: int
    spam_delivered: int
    spam_per_honest_peer: float
    #: Enforcement.
    slashes_submitted: int
    members_slashed: int
    #: Verification work (the hot path the cache batches away).
    proof_verifications: int
    verification_cache_hits: int
    #: Slashing economics, settled on-chain *during* the run.
    stake_burnt: int = 0
    reporter_rewards: int = 0
    #: Adversary-engine economics (0 / empty without engine agents).
    attacker_spend: int = 0
    identity_rotations: int = 0
    #: Delegated enforcement (all zero / empty without watchtowers;
    #: the keys then stay out of to_dict so historical fingerprints
    #: are untouched). Wei amounts are exact integers.
    watchtower_rewards: int = 0
    delegation_fees: int = 0
    #: Offenders the network detected but never slashed on-chain.
    missed_slashes: int = 0
    #: Total simulated seconds watchtowers spent recovering after
    #: restarts (replay + resubmission until evidence settled).
    recovery_time: float = 0.0
    #: Per-service breakdown: service id -> summary figures.
    watchtowers: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: Column-oriented per-epoch series from the adversary engine
    #: (keys like ``t``, ``attacker_cost_wei``, ``spam_delivered``).
    series: Dict[str, List[float]] = field(default_factory=dict)
    #: Per-topic breakdown for multi-topic scenarios (empty otherwise):
    #: topic -> {honest_published, honest_delivered, delivery_rate,
    #: spam_delivered, subscribers}.
    topics: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Selected validator/router counters (validator.*, gossipsub.*).
    counters: Dict[str, int] = field(default_factory=dict)
    sim_time: float = 0.0
    events_processed: int = 0
    #: Host-dependent; excluded from equality and the fingerprint.
    wall_clock_seconds: float = field(default=0.0, compare=False)
    #: Scenario-specific extra measurements (e.g. baseline comparison).
    extras: Dict[str, float] = field(default_factory=dict)

    def to_dict(self, include_wall_clock: bool = True) -> Dict[str, object]:
        out: Dict[str, object] = {
            "scenario": self.scenario,
            "seed": self.seed,
            "peers_started": self.peers_started,
            "peers_final": self.peers_final,
            "joined": self.joined,
            "left": self.left,
            "honest_published": self.honest_published,
            "honest_delivered": self.honest_delivered,
            "delivery_rate": round(self.delivery_rate, 6),
            "spam_published": self.spam_published,
            "spam_delivered": self.spam_delivered,
            "spam_per_honest_peer": round(self.spam_per_honest_peer, 6),
            "slashes_submitted": self.slashes_submitted,
            "members_slashed": self.members_slashed,
            "stake_burnt": self.stake_burnt,
            "reporter_rewards": self.reporter_rewards,
            "attacker_spend": self.attacker_spend,
            "identity_rotations": self.identity_rotations,
            "proof_verifications": self.proof_verifications,
            "verification_cache_hits": self.verification_cache_hits,
            "series": {
                key: [round(v, 6) for v in values]
                for key, values in sorted(self.series.items())
            },
            "topics": {
                name: {k: round(v, 6) for k, v in sorted(stats.items())}
                for name, stats in sorted(self.topics.items())
            },
            "counters": dict(sorted(self.counters.items())),
            "sim_time": self.sim_time,
        }
        if self.watchtowers:
            out["watchtower_rewards"] = self.watchtower_rewards
            out["delegation_fees"] = self.delegation_fees
            out["missed_slashes"] = self.missed_slashes
            out["recovery_time"] = round(self.recovery_time, 6)
            out["watchtowers"] = {
                name: dict(sorted(stats.items()))
                for name, stats in sorted(self.watchtowers.items())
            }
        out.update({
            "events_processed": self.events_processed,
            "extras": {k: round(v, 6) for k, v in sorted(self.extras.items())},
        })
        if include_wall_clock:
            out["wall_clock_seconds"] = self.wall_clock_seconds
        return out

    def fingerprint(self) -> str:
        """Stable digest of the deterministic fields; two runs of the
        same scenario+seed must produce the same fingerprint."""
        canonical = json.dumps(
            self.to_dict(include_wall_clock=False), sort_keys=True
        )
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def format(self) -> str:
        """Human-readable report for the CLI."""
        lines = [f"scenario: {self.scenario} (seed {self.seed})"]
        data = self.to_dict()
        data.pop("scenario")
        data.pop("seed")
        counters = data.pop("counters")
        extras = data.pop("extras")
        series = data.pop("series")
        topics = data.pop("topics")
        watchtowers = data.pop("watchtowers", None)
        for key, value in data.items():
            lines.append(f"  {key:<26} {value}")
        if watchtowers:
            lines.append("  watchtower services:")
            for name, stats in watchtowers.items():
                lines.append(f"    {name}:")
                for key, value in stats.items():
                    lines.append(f"      {key:<22} {value}")
        if topics:
            lines.append("  per-topic breakdown:")
            columns = (
                "subscribers",
                "honest_published",
                "honest_delivered",
                "delivery_rate",
                "spam_delivered",
            )
            lines.append(
                "    " + f"{'topic':<28}" + "  ".join(
                    f"{c:>17}" for c in columns
                )
            )
            for name, stats in topics.items():
                lines.append(
                    "    "
                    + f"{name:<28}"
                    + "  ".join(
                        f"{stats.get(c, 0):>17g}" for c in columns
                    )
                )
        if series:
            lines.append("  attack economics series (per engine epoch):")
            keys = [k for k in ("t", "spam_sent", "spam_delivered",
                                "registrations", "attacker_cost_wei",
                                "stake_burnt_wei") if k in series]
            lines.append("    " + "  ".join(f"{k:>18}" for k in keys))
            for row in zip(*(series[k] for k in keys)):
                lines.append(
                    "    " + "  ".join(f"{v:>18g}" for v in row)
                )
        if extras:
            lines.append("  extras:")
            for key, value in extras.items():
                lines.append(f"    {key:<24} {value}")
        interesting = {
            k: v
            for k, v in counters.items()
            if k.startswith("validator.") or k == "gossipsub.rejected"
        }
        if interesting:
            lines.append("  validator counters:")
            for key, value in interesting.items():
                lines.append(f"    {key:<24} {value}")
        lines.append(f"  fingerprint              {self.fingerprint()}")
        return "\n".join(lines)
