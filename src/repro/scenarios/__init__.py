"""Declarative scenario harness for large-scale adversarial runs.

Compose topology, traffic, adversaries and churn into named,
seed-deterministic workloads::

    from repro.scenarios import run_scenario, scenario

    result = run_scenario(scenario("burst-spammer"), peers=200)
    print(result.format())

or from the command line::

    python -m repro.analysis run-scenario burst-spammer --peers 200
"""

from .registry import (
    all_scenarios,
    register_scenario,
    scenario,
    scenario_names,
)
from .result import ScenarioResult
from .runner import ScenarioRunner, run_scenario
from .spec import (
    AdversaryGroup,
    AdversaryMix,
    ChurnModel,
    FaultPlan,
    ScenarioSpec,
    TopicSpec,
    TrafficModel,
    WatchtowerSpec,
)

__all__ = [
    "AdversaryGroup",
    "AdversaryMix",
    "ChurnModel",
    "FaultPlan",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioSpec",
    "TopicSpec",
    "TrafficModel",
    "WatchtowerSpec",
    "all_scenarios",
    "register_scenario",
    "run_scenario",
    "scenario",
    "scenario_names",
]
