"""Named scenario registry.

Built-in scenarios cover the paper's claims from different angles:
steady honest traffic, single and coordinated rate-limit violators,
heavy peer churn, group-synchronization staleness, and a side-by-side
with the unprotected baseline. Applications (and tests) register their
own with :func:`register_scenario`; everything registered is runnable
via ``python -m repro.analysis run-scenario <name>``.
"""

from __future__ import annotations

from typing import Dict, Iterable

from ..errors import ScenarioError
from .spec import (
    AdversaryGroup,
    AdversaryMix,
    ChurnModel,
    FaultPlan,
    ScenarioSpec,
    TopicSpec,
    TrafficModel,
    WatchtowerSpec,
)

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add ``spec`` under its name; refuses silent redefinition."""
    if spec.name in _REGISTRY and not replace:
        raise ScenarioError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def scenario(name: str) -> ScenarioSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        ) from None


def scenario_names() -> list:
    return sorted(_REGISTRY)


def all_scenarios() -> Iterable[ScenarioSpec]:
    return [_REGISTRY[name] for name in scenario_names()]


#: Cache size the built-ins use; large enough that one attack round's
#: distinct signals all fit, so each proof is verified once network-wide.
_CACHE = {"verification_cache_size": 65536}


register_scenario(
    ScenarioSpec(
        name="honest-steady",
        description=(
            "Every peer honest; half publish one message per epoch. "
            "Measures baseline delivery rate and verification load."
        ),
        peers=200,
        duration=120.0,
        traffic=TrafficModel(messages_per_epoch=1.0, active_fraction=0.5),
        config_overrides=_CACHE,
    )
)

register_scenario(
    ScenarioSpec(
        name="burst-spammer",
        description=(
            "One registered member bursts 5 messages/epoch for 3 epochs. "
            "The network must contain the spam to the first honest hop "
            "and slash the member."
        ),
        peers=200,
        duration=90.0,
        traffic=TrafficModel(messages_per_epoch=0.5, active_fraction=0.3),
        adversaries=AdversaryMix(spammer_count=1, burst=5, epochs=3),
        config_overrides=_CACHE,
    )
)

register_scenario(
    ScenarioSpec(
        name="coordinated-multi-spammer",
        description=(
            "Five colluding members burst simultaneously — the paper's "
            "worst case for nullifier-map growth and slashing races "
            "(every router may claim the same reward)."
        ),
        peers=200,
        duration=90.0,
        traffic=TrafficModel(messages_per_epoch=0.5, active_fraction=0.3),
        adversaries=AdversaryMix(spammer_count=5, burst=4, epochs=3),
        config_overrides=_CACHE,
    )
)

register_scenario(
    ScenarioSpec(
        name="high-churn",
        description=(
            "Peers continuously join (register + sync from the event "
            "log) and leave while honest traffic flows; delivery must "
            "degrade gracefully, never collapse."
        ),
        peers=150,
        duration=150.0,
        traffic=TrafficModel(messages_per_epoch=0.5, active_fraction=0.3),
        churn=ChurnModel(
            join_interval=6.0,
            leave_interval=8.0,
            max_joins=15,
            max_leaves=10,
        ),
        config_overrides=_CACHE,
    )
)

register_scenario(
    ScenarioSpec(
        name="stale-root-sync-lag",
        description=(
            "Rapid membership growth against a tiny root window and "
            "slow event-log polling: publishers prove against roots "
            "that slide out of routers' windows, exercising the "
            "UNKNOWN_ROOT rejection path (paper: group-sync race)."
        ),
        peers=100,
        duration=150.0,
        block_interval=5.0,
        traffic=TrafficModel(messages_per_epoch=1.0, active_fraction=0.5),
        churn=ChurnModel(join_interval=4.0, max_joins=25),
        config_overrides={
            **_CACHE,
            "root_window": 2,
            "sync_interval": 12.0,
        },
    )
)

register_scenario(
    ScenarioSpec(
        name="rotating-sybil-economics",
        description=(
            "Two rotating sybils on a budget of 6 stakes each: spam, "
            "get slashed on-chain mid-run, buy a fresh identity, "
            "repeat until broke. The result's series is the paper's "
            "cost-of-attack curve: attacker cost climbs monotonically "
            "while delivered spam stays bounded per identity."
        ),
        peers=150,
        duration=150.0,
        block_interval=5.0,
        traffic=TrafficModel(messages_per_epoch=0.5, active_fraction=0.3),
        adversaries=AdversaryMix(
            groups=(
                AdversaryGroup(
                    strategy="rotating-sybil",
                    count=2,
                    budget_stakes=6,
                    burst=4,
                ),
            ),
        ),
        config_overrides=_CACHE,
    )
)

register_scenario(
    ScenarioSpec(
        name="adaptive-flood",
        description=(
            "Adaptive attackers tune burst size to the observed slash "
            "latency (fast slashing halves the burst, impunity grows "
            "it) and rotate identities while funds remain — the "
            "strongest rational flooder the economics must beat."
        ),
        peers=150,
        duration=150.0,
        block_interval=5.0,
        traffic=TrafficModel(messages_per_epoch=0.5, active_fraction=0.3),
        adversaries=AdversaryMix(
            groups=(
                AdversaryGroup(
                    strategy="adaptive-backoff",
                    count=2,
                    budget_stakes=5,
                    burst=8,
                ),
            ),
        ),
        config_overrides=_CACHE,
    )
)

register_scenario(
    ScenarioSpec(
        name="low-and-slow-probe",
        description=(
            "An attacker at the legal one-message-per-epoch rate that "
            "only periodically emits a second message, probing "
            "detection while spending minimal stake; the economics "
            "series shows even minimal violations cost whole stakes."
        ),
        peers=150,
        duration=150.0,
        block_interval=5.0,
        traffic=TrafficModel(messages_per_epoch=0.5, active_fraction=0.3),
        adversaries=AdversaryMix(
            groups=(
                AdversaryGroup(
                    strategy="low-and-slow",
                    count=2,
                    budget_stakes=3,
                    params={"probe_every": 3},
                ),
            ),
        ),
        config_overrides=_CACHE,
    )
)

register_scenario(
    ScenarioSpec(
        name="multi-topic-churn",
        description=(
            "A genuinely multiplexed mesh: four content topics with "
            "skewed traffic weights and partial subscriptions over one "
            "gossip overlay, churn underneath, and an attacker bursting "
            "into the busiest secondary topic. Per-topic RLN groups "
            "must rate-limit and slash independently while the batched "
            "heartbeat keeps per-topic bookkeeping cheap."
        ),
        peers=600,
        duration=120.0,
        traffic=TrafficModel(messages_per_epoch=0.5, active_fraction=0.4),
        topics=(
            TopicSpec("/waku/2/market/proto", traffic_weight=3.0,
                      subscribe_fraction=0.7),
            TopicSpec("/waku/2/chat/proto", traffic_weight=1.5,
                      subscribe_fraction=0.5),
            TopicSpec("/waku/2/firehose/proto", traffic_weight=0.5,
                      subscribe_fraction=0.25, rln_protected=False),
        ),
        adversaries=AdversaryMix(
            groups=(
                AdversaryGroup(
                    strategy="rotating-sybil",
                    count=2,
                    budget_stakes=5,
                    burst=4,
                    target_topics=("/waku/2/market/proto",),
                ),
            ),
        ),
        churn=ChurnModel(
            join_interval=8.0,
            leave_interval=10.0,
            max_joins=12,
            max_leaves=8,
        ),
        config_overrides=_CACHE,
    )
)

register_scenario(
    ScenarioSpec(
        name="multi-topic-5k",
        description=(
            "The 5k-peer profile the batched gossip bookkeeping "
            "unlocks: 5000 peers, six topics, light per-peer traffic "
            "and one adaptive attacker per busy topic. Tier-1 smokes "
            "it tiny; the full scale runs behind -m slow."
        ),
        peers=5000,
        duration=60.0,
        traffic=TrafficModel(messages_per_epoch=0.25, active_fraction=0.1),
        topics=(
            TopicSpec("/waku/2/market/proto", traffic_weight=2.0,
                      subscribe_fraction=0.5),
            TopicSpec("/waku/2/chat/proto", traffic_weight=2.0,
                      subscribe_fraction=0.4),
            TopicSpec("/waku/2/news/proto", traffic_weight=1.0,
                      subscribe_fraction=0.3),
            TopicSpec("/waku/2/status/proto", traffic_weight=1.0,
                      subscribe_fraction=0.2),
            TopicSpec("/waku/2/firehose/proto", traffic_weight=0.5,
                      subscribe_fraction=0.1, rln_protected=False),
        ),
        adversaries=AdversaryMix(
            groups=(
                AdversaryGroup(
                    strategy="adaptive-backoff",
                    count=2,
                    budget_stakes=4,
                    burst=6,
                    target_topics=("/waku/2/market/proto",),
                ),
                AdversaryGroup(
                    strategy="burst-flood",
                    count=2,
                    budget_stakes=4,
                    burst=5,
                    params={"epochs": 3},
                    target_topics=("/waku/2/chat/proto",),
                ),
            ),
        ),
        config_overrides=_CACHE,
    )
)

register_scenario(
    ScenarioSpec(
        name="city-scale-50k",
        description=(
            "City-scale deployment on the sharded kernel: 50000 peers "
            "partitioned into 8 event-queue shards, three busy topics, "
            "very light per-peer traffic and a pair of adaptive "
            "attackers. Fingerprints are shard-count invariant; "
            "shard_stats() reports the cross-shard traffic fraction. "
            "Tier-1 smokes it tiny; the full scale runs behind -m slow."
        ),
        peers=50000,
        duration=30.0,
        shards=8,
        traffic=TrafficModel(messages_per_epoch=0.1, active_fraction=0.04),
        topics=(
            TopicSpec("/waku/2/market/proto", traffic_weight=2.0,
                      subscribe_fraction=0.3),
            TopicSpec("/waku/2/chat/proto", traffic_weight=1.0,
                      subscribe_fraction=0.2),
            TopicSpec("/waku/2/firehose/proto", traffic_weight=0.5,
                      subscribe_fraction=0.05, rln_protected=False),
        ),
        adversaries=AdversaryMix(
            groups=(
                AdversaryGroup(
                    strategy="adaptive-backoff",
                    count=2,
                    budget_stakes=4,
                    burst=6,
                    target_topics=("/waku/2/market/proto",),
                ),
            ),
        ),
        config_overrides=_CACHE,
    )
)

register_scenario(
    ScenarioSpec(
        name="million-id-city",
        description=(
            "Million-identity membership on the sharded registry: "
            "950k pre-registered (dormant) identities seeded at "
            "genesis plus 50000 live peers, depth-20 tree split into "
            "1024 sub-trees of 1024 leaves under a root-of-roots. "
            "Epoch-grid nullifier GC and streaming metrics keep peer "
            "and measurement state bounded over the run. Traffic and "
            "adversaries mirror city-scale-50k so the two are "
            "comparable; extras report sub-trees materialized and "
            "nullifier entries pruned/live. Tier-1 smokes it tiny; "
            "the full scale runs behind -m slow."
        ),
        peers=50000,
        duration=30.0,
        shards=8,
        pre_registered=950_000,
        streaming_metrics=True,
        traffic=TrafficModel(messages_per_epoch=0.1, active_fraction=0.04),
        topics=(
            TopicSpec("/waku/2/market/proto", traffic_weight=2.0,
                      subscribe_fraction=0.3),
            TopicSpec("/waku/2/chat/proto", traffic_weight=1.0,
                      subscribe_fraction=0.2),
            TopicSpec("/waku/2/firehose/proto", traffic_weight=0.5,
                      subscribe_fraction=0.05, rln_protected=False),
        ),
        adversaries=AdversaryMix(
            groups=(
                AdversaryGroup(
                    strategy="adaptive-backoff",
                    count=2,
                    budget_stakes=4,
                    burst=6,
                    target_topics=("/waku/2/market/proto",),
                ),
            ),
        ),
        config_overrides={
            **_CACHE,
            # 2^20 = 1,048,576 slots: fits 950k dormant + 50k live +
            # adversary rotations. sub_depth 10 -> 1024-leaf sub-trees.
            "merkle_depth": 20,
            "membership_sub_depth": 10,
            "eager_nullifier_gc": True,
        },
    )
)

register_scenario(
    ScenarioSpec(
        name="delegated-enforcement",
        description=(
            "Every honest peer delegates slash enforcement to one "
            "watchtower service for a flat fee and turns its own "
            "reporting off. Rotating sybils spam and rotate; the "
            "watchtower alone detects the double-signals from its "
            "event-sourced store, submits the slashes and splits each "
            "reporter reward with its delegators."
        ),
        peers=150,
        duration=150.0,
        block_interval=5.0,
        traffic=TrafficModel(messages_per_epoch=0.5, active_fraction=0.3),
        adversaries=AdversaryMix(
            groups=(
                AdversaryGroup(
                    strategy="rotating-sybil",
                    count=2,
                    budget_stakes=4,
                    burst=4,
                ),
            ),
        ),
        watchtowers=WatchtowerSpec(count=1),
        config_overrides=_CACHE,
    )
)

register_scenario(
    ScenarioSpec(
        name="delegated-enforcement-crash",
        description=(
            "Crash-fault recovery: the only watchtower dies early in "
            "the attack and restarts later from its persisted SQLite "
            "store — replaying the chain from the committed cursor, "
            "catching up on membership events that fired while it was "
            "down and resubmitting whatever evidence never settled. "
            "Offenders must still end up slashed exactly once."
        ),
        peers=150,
        duration=100.0,
        block_interval=5.0,
        traffic=TrafficModel(messages_per_epoch=0.5, active_fraction=0.3),
        adversaries=AdversaryMix(
            groups=(
                AdversaryGroup(
                    strategy="burst-flood",
                    count=2,
                    budget_stakes=1,
                    burst=4,
                    params={"epochs": 2},
                ),
            ),
        ),
        watchtowers=WatchtowerSpec(count=1),
        faults=(
            FaultPlan("watchtower-0", crash_at=10.0, restart_at=25.0),
        ),
        config_overrides=_CACHE,
    )
)

register_scenario(
    ScenarioSpec(
        name="delegated-enforcement-races",
        description=(
            "Two watchtowers compete for the same slash rewards: both "
            "detect every double-signal and both submit, but the "
            "contract accepts only the first transaction per offender "
            "— the loser's reverts ('unknown member') and its evidence "
            "resolves to a lost race. Exactly one successful slash per "
            "offender, deterministically."
        ),
        peers=150,
        duration=120.0,
        block_interval=5.0,
        traffic=TrafficModel(messages_per_epoch=0.5, active_fraction=0.3),
        adversaries=AdversaryMix(
            groups=(
                AdversaryGroup(
                    strategy="rotating-sybil",
                    count=2,
                    budget_stakes=3,
                    burst=4,
                ),
            ),
        ),
        watchtowers=WatchtowerSpec(count=2),
        config_overrides=_CACHE,
    )
)

register_scenario(
    ScenarioSpec(
        name="mixed-baseline-comparison",
        description=(
            "The burst-spammer attack run against Waku-RLN-Relay and, "
            "with identical parameters, against an unprotected relay; "
            "the result's extras record the baseline's spam reach."
        ),
        peers=100,
        duration=90.0,
        traffic=TrafficModel(messages_per_epoch=0.5, active_fraction=0.3),
        adversaries=AdversaryMix(spammer_count=2, burst=5, epochs=3),
        compare_baseline=True,
        config_overrides=_CACHE,
    )
)
