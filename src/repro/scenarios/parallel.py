"""Barrier drivers for window-isolated parallel scenario runs.

Two drivers share one barrier protocol — identical barrier times,
identical chain-op ordering, identical spam-probe feed — which is what
makes the worker axis of the equivalence matrix hold: a forked run
*is* the in-process run with serialization boundaries inserted.

In-process (``workers == 1``): one
:class:`~repro.sim.parallel_stack.WindowedStackSimulator` owns every
shard. Each barrier drains the chain outbox, sorts it on the
partition-invariant ``(time, origin, seq)`` key and applies it back to
the single chain (a replica fed by itself).

Forked (``workers > 1``): the stack is built once and ``os.fork``-ed
per worker — copy-on-write clones of the fully built network. Each
child narrows its kernel to a contiguous shard group; the parent owns
no shards and coordinates: it routes cross-worker port packets by
destination shard, merges every worker's chain ops into one globally
sorted stream that all replicas (its own included) apply, and feeds
the barrier-synced spam-delivery probe. Everything on the pipes is a
plain picklable tuple — no closures cross a process boundary.

After the final barrier the parent verifies every worker's chain
fingerprint against its own replica (divergence is a hard error, not a
statistic) and merges the workers' measurement state back into the
runner, so result aggregation downstream is mode-blind.
"""

from __future__ import annotations

import os
import pickle
import traceback
from collections import defaultdict
from hashlib import blake2b
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from ..errors import SimulationError
from ..eth.chain import Blockchain, ReplicaOp
from ..sim.parallel_stack import PortPacket

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..adversaries.engine import AdversaryEngine
    from ..adversaries.report import AttackReport
    from .runner import ScenarioRunner


def barrier_times(
    duration: float, window: float
) -> Iterator[Tuple[float, float, bool]]:
    """Yield ``(t_prev, t_end, final)`` barrier windows covering
    ``[0, duration]``. Every driver derives its windows from here, so
    barrier times are bit-identical across worker counts."""
    t = 0.0
    while t < duration:
        t_end = min(t + window, duration)
        yield t, t_end, t_end >= duration
        t = t_end


def contiguous_groups(shards: int, workers: int) -> List[range]:
    """Split ``range(shards)`` into ``workers`` contiguous groups."""
    base, extra = divmod(shards, workers)
    groups: List[range] = []
    start = 0
    for index in range(workers):
        size = base + (1 if index < extra else 0)
        groups.append(range(start, start + size))
        start += size
    return groups


def chain_fingerprint(chain: Blockchain) -> Tuple[int, int, int, str]:
    """Compact digest of a replica's entire observable chain state."""
    digest = blake2b(digest_size=16)
    for event in chain.event_log:
        digest.update(
            repr(
                (
                    event.name,
                    sorted(event.args.items()),
                    event.block_number,
                    event.log_index,
                )
            ).encode()
        )
    return (
        len(chain.blocks),
        chain.burnt_wei,
        len(chain.event_log),
        digest.hexdigest(),
    )


# -- in-process driver --------------------------------------------------------


def drive_in_process(
    runner: "ScenarioRunner", engine: Optional["AdversaryEngine"]
) -> Optional["AttackReport"]:
    """Drive all shards on this process through the barrier protocol."""
    net = runner.net
    sim = net.simulator
    chain = net.chain
    duration = runner.spec.duration
    for _t_prev, t_end, final in barrier_times(duration, sim.window):
        sim.run_window(t_end, final=final)
        ops = chain.order_ops(chain.drain_outbox())
        chain.replica_apply(ops, t_end)
        if sim.drain_exports():
            raise SimulationError(
                "in-process driver owns every shard; nothing may export"
            )
        runner._spam_feed = runner._spam_delivered_total()
    return engine.report() if engine is not None else None


# -- forked driver ------------------------------------------------------------


def _send(pipe, message: object) -> None:
    pickle.dump(message, pipe, protocol=pickle.HIGHEST_PROTOCOL)
    pipe.flush()


def _recv(pipe):
    message = pickle.load(pipe)
    if message[0] == "error":
        raise SimulationError(
            f"parallel worker failed:\n{message[1]}"
        )
    return message


def _spam_partial(runner: "ScenarioRunner") -> int:
    """This worker's spam deliveries: only owned peers' recorders ever
    fire here, so the full-population sum *is* the partial."""
    return runner._spam_delivered_total()


def _child_bundle(
    runner: "ScenarioRunner",
    engine: Optional["AdversaryEngine"],
    group: range,
) -> Dict[str, object]:
    net = runner.net
    bundle: Dict[str, object] = {
        "received": runner._received,
        "topic_counts": runner._topic_counts,
        "topic_published": runner._topic_published,
        "topic_expected": runner._topic_expected,
        "honest_published": runner._honest_published,
        "expected_deliveries": runner._expected_deliveries,
        "detected_pks": runner._detected_pks,
        "slashes": {
            p.node_id: p.slashes_submitted for p in net.peers
        },
        "counters": dict(net.metrics.counters),
        "events_processed": net.simulator.events_processed,
        "chain_fp": chain_fingerprint(net.chain),
        "report": None,
        "watchtowers": None,
    }
    if 0 in group:
        # Shard 0 hosts every pinned global: the adversary engine's
        # agents and the watchtower services, so this worker alone
        # holds their live measurement state.
        if engine is not None:
            bundle["report"] = engine.report()
        rows = []
        evidence = set()
        for service in runner._watchtowers:
            rows.append((service.service_id, service.summary()))
            evidence.update(service.store.evidence_pks())
            service.close()
        bundle["watchtowers"] = (rows, evidence)
    return bundle


def _child_loop(
    runner: "ScenarioRunner",
    engine: Optional["AdversaryEngine"],
    group: range,
    down,
    up,
) -> None:
    net = runner.net
    sim = net.simulator
    chain = net.chain
    sim.restrict_to(frozenset(group))
    if 0 in group and runner._watchtowers:
        # Stores were closed before the fork (a sqlite connection must
        # not cross one); the owning worker reconnects.
        for service in runner._watchtowers:
            service.store.open()
    while True:
        message = pickle.load(down)
        kind = message[0]
        if kind in ("window", "flush"):
            if kind == "window":
                _, t_prev, t_end, final, packets, ops, feed = message
                chain.replica_apply(ops, t_prev)
                runner._spam_feed = feed
            else:
                _, t_end, packets = message
                final = True
            if packets:
                sim.inject(packets)
            sim.run_window(t_end, final=final)
            _send(
                up,
                (
                    "ok",
                    sim.drain_exports(),
                    chain.drain_outbox(),
                    _spam_partial(runner),
                ),
            )
        elif kind == "finish":
            _, t_final, ops = message
            chain.replica_apply(ops, t_final)
            _send(up, ("done", _child_bundle(runner, engine, group)))
            return
        else:  # pragma: no cover - protocol misuse
            raise SimulationError(f"unknown coordinator message {kind!r}")


def drive_forked(
    runner: "ScenarioRunner",
    engine: Optional["AdversaryEngine"],
    workers: int,
) -> Optional["AttackReport"]:
    """Fork ``workers`` children, each owning a contiguous shard
    group, and coordinate them barrier by barrier. Returns the attack
    report (shipped from the shard-0 worker) and merges all worker
    measurement state into ``runner``."""
    net = runner.net
    sim = net.simulator
    chain = net.chain
    duration = runner.spec.duration
    groups = contiguous_groups(sim.plan.shard_count, workers)
    owner_of: Dict[int, int] = {}
    for index, group in enumerate(groups):
        for shard in group:
            owner_of[shard] = index

    counters_base = dict(net.metrics.counters)
    events_base = sim.events_processed
    for service in runner._watchtowers:
        service.store.close()

    children: List[Tuple[int, object, object]] = []
    for group in groups:
        down_r, down_w = os.pipe()
        up_r, up_w = os.pipe()
        pid = os.fork()
        if pid == 0:
            status = 1
            try:
                os.close(down_w)
                os.close(up_r)
                for _pid, sibling_down, sibling_up in children:
                    sibling_down.close()
                    sibling_up.close()
                down = os.fdopen(down_r, "rb")
                up = os.fdopen(up_w, "wb")
                try:
                    _child_loop(runner, engine, group, down, up)
                    status = 0
                except BaseException:
                    try:
                        _send(up, ("error", traceback.format_exc()))
                    except Exception:
                        pass
            finally:
                os._exit(status)
        os.close(down_r)
        os.close(up_w)
        children.append(
            (pid, os.fdopen(down_w, "wb"), os.fdopen(up_r, "rb"))
        )

    try:
        packets_for: List[List[PortPacket]] = [[] for _ in groups]
        ops: List[ReplicaOp] = []
        feed = 0

        def collect() -> List[ReplicaOp]:
            """Gather one round of replies: route exports, sum the
            spam probe, return the round's raw ops."""
            nonlocal feed
            gathered: List[ReplicaOp] = []
            feed = 0
            for _pid, _down, up in children:
                _kind, exports, child_ops, spam = _recv(up)
                gathered.extend(child_ops)
                feed += spam
                for packet in exports:
                    if packet[2] > duration:
                        # Lands after the run ends — the in-process
                        # driver leaves these in the heap unexecuted.
                        continue
                    packets_for[owner_of[packet[0]]].append(packet)
            return gathered

        for t_prev, t_end, final in barrier_times(duration, sim.window):
            for index, (_pid, down, _up) in enumerate(children):
                _send(
                    down,
                    (
                        "window",
                        t_prev,
                        t_end,
                        final,
                        packets_for[index],
                        ops,
                        feed,
                    ),
                )
            chain.replica_apply(ops, t_prev)
            packets_for = [[] for _ in groups]
            ops = chain.order_ops(collect())

        # Flush round: cross-worker packets landing at exactly
        # t == duration were produced inside the final (inclusive)
        # window; the in-process driver executes them in that same
        # window, so forked workers must get one more chance to. The
        # flush's ops join the final window's batch — in-process they
        # drain together.
        for index, (_pid, down, _up) in enumerate(children):
            _send(down, ("flush", duration, packets_for[index]))
        packets_for = [[] for _ in groups]
        ops = chain.order_ops(ops + collect())

        for _pid, down, _up in children:
            _send(down, ("finish", duration, ops))
        chain.replica_apply(ops, duration)

        bundles = []
        for _pid, _down, up in children:
            _kind, bundle = _recv(up)
            bundles.append(bundle)
    finally:
        for pid, down, up in children:
            try:
                down.close()
                up.close()
            except Exception:
                pass
            os.waitpid(pid, 0)

    return _merge(runner, bundles, counters_base, events_base, duration)


def _merge(
    runner: "ScenarioRunner",
    bundles: List[Dict[str, object]],
    counters_base: Dict[str, int],
    events_base: int,
    duration: float,
) -> Optional["AttackReport"]:
    net = runner.net
    sim = net.simulator
    parent_fp = chain_fingerprint(net.chain)
    for bundle in bundles:
        if bundle["chain_fp"] != parent_fp:
            raise SimulationError(
                "replica chains diverged across workers: "
                f"{bundle['chain_fp']} != {parent_fp}"
            )

    # Event-level state: each datum was produced on exactly one worker
    # (recorders fire on the receiver's shard, publishers count on
    # their own), so plain sums/unions reassemble the global totals.
    for bundle in bundles:
        for node_id, row in bundle["received"].items():
            mine = runner._received.setdefault(node_id, [0, 0])
            mine[0] += row[0]
            mine[1] += row[1]
        for name, row in bundle["topic_counts"].items():
            totals = runner._topic_counts[name]
            totals[0] += row[0]
            totals[1] += row[1]
        for name, value in bundle["topic_published"].items():
            runner._topic_published[name] += value
        for name, value in bundle["topic_expected"].items():
            runner._topic_expected[name] += value
        runner._honest_published += bundle["honest_published"]
        runner._expected_deliveries += bundle["expected_deliveries"]
        runner._detected_pks |= bundle["detected_pks"]

    slash_totals: Dict[str, int] = defaultdict(int)
    for bundle in bundles:
        for node_id, count in bundle["slashes"].items():
            slash_totals[node_id] += count
    for peer in net.peers:
        peer.slashes_submitted = slash_totals.get(peer.node_id, 0)

    # Counters forked with a shared build-time baseline; the total is
    # the baseline plus every worker's delta beyond it.
    merged: Dict[str, int] = defaultdict(int)
    merged.update(counters_base)
    for bundle in bundles:
        for name, value in bundle["counters"].items():
            merged[name] += value - counters_base.get(name, 0)
    net.metrics.counters.clear()
    net.metrics.counters.update(merged)

    sim.events_processed = events_base + sum(
        bundle["events_processed"] - events_base for bundle in bundles
    )
    sim.now = duration

    report = None
    for bundle in bundles:
        if bundle["report"] is not None:
            report = bundle["report"]
        if bundle["watchtowers"] is not None:
            runner._wt_override = bundle["watchtowers"]
    return report
