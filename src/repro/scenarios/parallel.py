"""Barrier drivers for window-isolated parallel scenario runs.

Two drivers share one barrier protocol — identical barrier times,
identical chain-op ordering, identical memo-commit points, identical
spam-probe feed — which is what makes the worker axis of the
equivalence matrix hold: a forked run *is* the in-process run with
serialization boundaries inserted.

In-process (``workers == 1``): one
:class:`~repro.sim.parallel_stack.WindowedStackSimulator` owns every
shard. Each barrier drains the chain outbox, sorts it on the
partition-invariant ``(time, origin, seq)`` key, applies it back to
the single chain (a replica fed by itself), and commits the window's
verification-memo delta.

Forked (``workers > 1``): the coordinator forks *before building
anything* and each child materializes only the shards it owns
(build-per-worker) — a worker's peak RSS scales with its roster slice,
not with the whole deployment. The coordinator itself materializes the
empty ownership set: a ghost-only skeleton whose chain replays the
deterministic build and then serves as the reference replica. After
their private builds, children surrender the cross-worker packets
their build produced (topic-subscription broadcasts to remote
endpoints) in a one-shot ``ready`` exchange, and the barrier loop
begins: the coordinator routes exported port packets by destination
shard, merges every worker's chain ops into one globally sorted stream
that all replicas (its own included) apply, merges every worker's
verification-memo delta into one batch all caches commit, and feeds
the barrier-synced spam-delivery probe. Everything on the pipes is a
plain picklable tuple — no closures cross a process boundary.

After the final barrier the coordinator verifies every worker's chain
fingerprint against its own replica (divergence is a hard error, not a
statistic) and merges the workers' measurement state back into the
runner, so result aggregation downstream is mode-blind.
"""

from __future__ import annotations

import os
import pickle
import resource
import shutil
import traceback
from collections import defaultdict
from hashlib import blake2b
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from ..errors import SimulationError
from ..eth.chain import Blockchain, ReplicaOp
from ..sim.parallel_stack import PortPacket

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..adversaries.report import AttackReport
    from .runner import ScenarioRunner

#: Peak RSS (``ru_maxrss`` units — KiB on Linux) of every worker of the
#: most recent parallel drive in this process: one entry per forked
#: child, or a single entry for an in-process drive. A module global
#: rather than a result extra because memory footprint is a property of
#: the host process layout, not of the simulated run — putting it in
#: the result would break cross-mode fingerprint equality.
LAST_RUN_WORKER_RSS: List[int] = []


def barrier_times(
    duration: float, window: float
) -> Iterator[Tuple[float, float, bool]]:
    """Yield ``(t_prev, t_end, final)`` barrier windows covering
    ``[0, duration]``. Every driver derives its windows from here, so
    barrier times are bit-identical across worker counts."""
    t = 0.0
    while t < duration:
        t_end = min(t + window, duration)
        yield t, t_end, t_end >= duration
        t = t_end


def contiguous_groups(shards: int, workers: int) -> List[range]:
    """Split ``range(shards)`` into ``workers`` contiguous groups."""
    base, extra = divmod(shards, workers)
    groups: List[range] = []
    start = 0
    for index in range(workers):
        size = base + (1 if index < extra else 0)
        groups.append(range(start, start + size))
        start += size
    return groups


def chain_fingerprint(chain: Blockchain) -> Tuple[int, int, int, str]:
    """Compact digest of a replica's entire observable chain state."""
    digest = blake2b(digest_size=16)
    for event in chain.event_log:
        digest.update(
            repr(
                (
                    event.name,
                    sorted(event.args.items()),
                    event.block_number,
                    event.log_index,
                )
            ).encode()
        )
    return (
        len(chain.blocks),
        chain.burnt_wei,
        len(chain.event_log),
        digest.hexdigest(),
    )


def _record_rss(values: List[int]) -> None:
    LAST_RUN_WORKER_RSS[:] = values


# -- in-process driver --------------------------------------------------------


def drive_in_process(
    runner: "ScenarioRunner", engine
) -> Optional["AttackReport"]:
    """Drive all shards on this process through the barrier protocol."""
    net = runner.net
    sim = net.simulator
    chain = net.chain
    cache = net.verification_cache
    duration = runner.spec.duration
    for _t_prev, t_end, final in barrier_times(duration, sim.window):
        sim.run_window(t_end, final=final)
        ops = chain.order_ops(chain.drain_outbox())
        chain.replica_apply(ops, t_end)
        if cache is not None:
            # Single worker: this window's memo delta is already the
            # merged batch.
            cache.commit(cache.drain())
        if sim.drain_exports():
            raise SimulationError(
                "in-process driver owns every shard; nothing may export"
            )
        runner._spam_feed = runner._spam_delivered_total()
    _record_rss([resource.getrusage(resource.RUSAGE_SELF).ru_maxrss])
    return engine.report() if engine is not None else None


# -- forked driver ------------------------------------------------------------


def _send(pipe, message: object) -> None:
    pickle.dump(message, pipe, protocol=pickle.HIGHEST_PROTOCOL)
    pipe.flush()


def _recv(pipe):
    try:
        message = pickle.load(pipe)
    except EOFError:
        raise SimulationError(
            "parallel worker closed its pipe without reporting an error"
        )
    if message[0] == "error":
        raise SimulationError(
            f"parallel worker failed:\n{message[1]}"
        )
    return message


def _send_to(child, message: object) -> None:
    """Send to one child, surfacing its traceback if it already died
    (a bare BrokenPipeError would mask the real failure)."""
    _pid, down, up = child
    try:
        _send(down, message)
    except BrokenPipeError:
        _recv(up)  # raises with the child's shipped traceback
        raise SimulationError(
            "parallel worker exited without reporting an error"
        )


def _spam_partial(runner: "ScenarioRunner") -> int:
    """This worker's spam deliveries: only owned peers' recorders ever
    fire here, so the full-population sum *is* the partial."""
    return runner._spam_delivered_total()


def _child_bundle(runner: "ScenarioRunner", engine, group: range):
    net = runner.net
    spec = runner.spec
    config = net.config
    bundle: Dict[str, object] = {
        "received": runner._received,
        "topic_counts": runner._topic_counts,
        "topic_published": runner._topic_published,
        "topic_expected": runner._topic_expected,
        "honest_published": runner._honest_published,
        "expected_deliveries": runner._expected_deliveries,
        "detected_pks": runner._detected_pks,
        "joined": runner._joined,
        "left": runner._left,
        # Live peers this worker owns; workers partition the live
        # population, so the global count is the plain sum.
        "peers_final": len(net.peers),
        # Departed peers submitted slashes too before churning out.
        "slashes": sum(
            p.slashes_submitted for p in net.peers + net.departed
        ),
        "counters": dict(net.metrics.counters),
        "events_processed": net.simulator.events_processed,
        "chain_fp": chain_fingerprint(net.chain),
        "memo": (
            (net.verification_cache.hits, net.verification_cache.misses)
            if net.verification_cache is not None
            else None
        ),
        "subtrees": (
            net.membership_store.materialized_indices()
            if net.membership_store is not None
            and config.membership_sub_depth is not None
            else None
        ),
        "nullifier": None,
        # Streaming histogram accumulators are O(1) per metric, so
        # shipping them is cheap; plain histograms hold full sample
        # lists and stay local (nothing downstream of a parallel run
        # reads them).
        "streams": (
            dict(net.metrics.histograms)
            if spec.streaming_metrics
            else None
        ),
        "ru_maxrss": resource.getrusage(
            resource.RUSAGE_SELF
        ).ru_maxrss,
        "report": None,
        "watchtowers": None,
    }
    if config.eager_nullifier_gc:
        pruned = 0
        live = 0
        for peer in net.peers:
            for validator in peer.rln_topics.values():
                pruned += validator.nullifier_map.auto_pruned_entries
                live += validator.nullifier_map.entry_count
        bundle["nullifier"] = (pruned, live)
    if 0 in group:
        # Shard 0 hosts every pinned global: the adversary engine's
        # agents and the watchtower services, so this worker alone
        # holds their live measurement state.
        if engine is not None:
            bundle["report"] = engine.report()
        rows = []
        evidence = set()
        for service in runner._watchtowers:
            rows.append((service.service_id, service.summary()))
            evidence.update(service.store.evidence_pks())
            service.close()
        bundle["watchtowers"] = (rows, evidence)
    return bundle


def _child_loop(runner: "ScenarioRunner", group: range, down, up) -> None:
    # Build-per-worker: nothing exists yet in this process beyond the
    # runner's pure spec state — materialize only the owned shards,
    # then arm every process on them.
    runner._materialize(frozenset(group))
    engine = runner._prepare()
    net = runner.net
    sim = net.simulator
    chain = net.chain
    cache = net.verification_cache
    # Build-time cross-worker packets (subscription broadcasts from
    # owned peers to remote endpoints) queued as exports; hand them to
    # the coordinator for routing into the first window.
    _send(up, ("ready", sim.drain_exports()))
    while True:
        message = pickle.load(down)
        kind = message[0]
        if kind in ("window", "flush"):
            if kind == "window":
                _, t_prev, t_end, final, packets, ops, memo, feed = (
                    message
                )
                chain.replica_apply(ops, t_prev)
                if cache is not None and memo:
                    # The previous window's merged memo delta — every
                    # worker commits the identical batch, so committed
                    # snapshots stay bit-identical.
                    cache.commit(memo)
                runner._spam_feed = feed
            else:
                _, t_end, packets = message
                final = True
            if packets:
                sim.inject(packets)
            sim.run_window(t_end, final=final)
            _send(
                up,
                (
                    "ok",
                    sim.drain_exports(),
                    chain.drain_outbox(),
                    cache.drain() if cache is not None else [],
                    _spam_partial(runner),
                ),
            )
        elif kind == "finish":
            _, t_final, ops = message
            chain.replica_apply(ops, t_final)
            _send(up, ("done", _child_bundle(runner, engine, group)))
            if runner._watchtower_dir is not None:
                # The sqlite stores live in this child's temp dir; the
                # coordinator never sees the path.
                shutil.rmtree(runner._watchtower_dir, ignore_errors=True)
            return
        else:  # pragma: no cover - protocol misuse
            raise SimulationError(f"unknown coordinator message {kind!r}")


def drive_forked(
    runner: "ScenarioRunner", workers: int
) -> Optional["AttackReport"]:
    """Fork ``workers`` children — each building and owning a
    contiguous shard group — and coordinate them barrier by barrier.
    Returns the attack report (shipped from the shard-0 worker) and
    merges all worker measurement state into ``runner``."""
    groups = contiguous_groups(runner.spec.shards, workers)
    owner_of: Dict[int, int] = {}
    for index, group in enumerate(groups):
        for shard in group:
            owner_of[shard] = index

    # Fork before anything is built: children inherit only the
    # runner's pure spec state, so each worker's footprint is its own
    # construction, not a copy-on-write image of the whole deployment.
    children: List[Tuple[int, object, object]] = []
    for group in groups:
        down_r, down_w = os.pipe()
        up_r, up_w = os.pipe()
        pid = os.fork()
        if pid == 0:
            status = 1
            try:
                os.close(down_w)
                os.close(up_r)
                for _pid, sibling_down, sibling_up in children:
                    sibling_down.close()
                    sibling_up.close()
                down = os.fdopen(down_r, "rb")
                up = os.fdopen(up_w, "wb")
                try:
                    _child_loop(runner, group, down, up)
                    status = 0
                except BaseException:
                    try:
                        _send(up, ("error", traceback.format_exc()))
                    except Exception:
                        pass
            finally:
                os._exit(status)
        os.close(down_r)
        os.close(up_w)
        children.append(
            (pid, os.fdopen(down_w, "wb"), os.fdopen(up_r, "rb"))
        )

    try:
        # The coordinator's own build: the empty ownership set — every
        # roster entry a ghost, the chain a full replica of the
        # deterministic build, no peers, no scheduled processes, and
        # therefore nothing to export.
        runner._materialize(frozenset())
        runner._prepare()
        net = runner.net
        sim = net.simulator
        chain = net.chain
        duration = runner.spec.duration
        if sim.drain_exports():
            raise SimulationError(
                "coordinator owns no shards; its build may not export"
            )

        packets_for: List[List[PortPacket]] = [[] for _ in groups]
        for _pid, _down, up in children:
            _kind, exports = _recv(up)
            for packet in exports:
                if packet[2] > duration:
                    continue
                packets_for[owner_of[packet[0]]].append(packet)

        ops: List[ReplicaOp] = []
        memo: list = []
        feed = 0

        def collect(commit_memo: bool) -> List[ReplicaOp]:
            """Gather one round of replies: route exports, merge memo
            deltas, sum the spam probe, return the round's raw ops."""
            nonlocal feed, memo
            gathered: List[ReplicaOp] = []
            deltas: list = []
            feed = 0
            for _pid, _down, up in children:
                _kind, exports, child_ops, child_memo, spam = _recv(up)
                gathered.extend(child_ops)
                deltas.extend(child_memo)
                feed += spam
                for packet in exports:
                    if packet[2] > duration:
                        # Lands after the run ends — the in-process
                        # driver leaves these in the heap unexecuted.
                        continue
                    packets_for[owner_of[packet[0]]].append(packet)
            # Flush/final deltas are unobservable (no window reads
            # after them) and the in-process driver commits per
            # window, so only per-window deltas ship onward.
            memo = deltas if commit_memo else []
            return gathered

        for t_prev, t_end, final in barrier_times(duration, sim.window):
            round_memo = memo
            for index, child in enumerate(children):
                _send_to(
                    child,
                    (
                        "window",
                        t_prev,
                        t_end,
                        final,
                        packets_for[index],
                        ops,
                        round_memo,
                        feed,
                    ),
                )
            chain.replica_apply(ops, t_prev)
            packets_for = [[] for _ in groups]
            ops = chain.order_ops(collect(commit_memo=True))

        # Flush round: cross-worker packets landing at exactly
        # t == duration were produced inside the final (inclusive)
        # window; the in-process driver executes them in that same
        # window, so forked workers must get one more chance to. The
        # flush's ops join the final window's batch — in-process they
        # drain together.
        for index, child in enumerate(children):
            _send_to(child, ("flush", duration, packets_for[index]))
        packets_for = [[] for _ in groups]
        ops = chain.order_ops(ops + collect(commit_memo=False))

        for child in children:
            _send_to(child, ("finish", duration, ops))
        chain.replica_apply(ops, duration)

        bundles = []
        for _pid, _down, up in children:
            _kind, bundle = _recv(up)
            bundles.append(bundle)
    finally:
        for pid, down, up in children:
            try:
                down.close()
                up.close()
            except Exception:
                pass
            os.waitpid(pid, 0)

    return _merge(runner, bundles, duration)


def _merge(
    runner: "ScenarioRunner",
    bundles: List[Dict[str, object]],
    duration: float,
) -> Optional["AttackReport"]:
    net = runner.net
    sim = net.simulator
    parent_fp = chain_fingerprint(net.chain)
    for bundle in bundles:
        if bundle["chain_fp"] != parent_fp:
            raise SimulationError(
                "replica chains diverged across workers: "
                f"{bundle['chain_fp']} != {parent_fp}"
            )

    # Event-level state: each datum was produced on exactly one worker
    # (recorders fire on the receiver's shard, publishers count on
    # their own), so plain sums/unions reassemble the global totals.
    # The coordinator built no peers, so its own contribution is zero
    # everywhere.
    for bundle in bundles:
        for node_id, row in bundle["received"].items():
            mine = runner._received.setdefault(node_id, [0, 0])
            mine[0] += row[0]
            mine[1] += row[1]
        for name, row in bundle["topic_counts"].items():
            totals = runner._topic_counts[name]
            totals[0] += row[0]
            totals[1] += row[1]
        for name, value in bundle["topic_published"].items():
            runner._topic_published[name] += value
        for name, value in bundle["topic_expected"].items():
            runner._topic_expected[name] += value
        runner._honest_published += bundle["honest_published"]
        runner._expected_deliveries += bundle["expected_deliveries"]
        runner._detected_pks |= bundle["detected_pks"]
        runner._joined += bundle["joined"]
        runner._left += bundle["left"]

    runner._peers_final_override = sum(
        bundle["peers_final"] for bundle in bundles
    )
    runner._peer_slashes_override = sum(
        bundle["slashes"] for bundle in bundles
    )

    # Build-per-worker: every counter increment — build-time wiring
    # included — happened on exactly one worker, so the totals are the
    # plain sums; the coordinator's ghost-only build counted nothing.
    merged: Dict[str, int] = defaultdict(int)
    for bundle in bundles:
        for name, value in bundle["counters"].items():
            merged[name] += value
    net.metrics.counters.clear()
    net.metrics.counters.update(merged)

    for bundle in bundles:
        if bundle["streams"]:
            for name, stream in bundle["streams"].items():
                net.metrics.histograms[name].merge(stream)

    if bundles[0]["memo"] is not None:
        runner._memo_override = (
            sum(bundle["memo"][0] for bundle in bundles),
            sum(bundle["memo"][1] for bundle in bundles),
        )
    if bundles[0]["subtrees"] is not None:
        by_domain: Dict[str, frozenset] = {}
        for bundle in bundles:
            for domain, indices in bundle["subtrees"].items():
                by_domain[domain] = (
                    by_domain.get(domain, frozenset()) | indices
                )
        runner._subtree_override = sum(
            len(indices) for indices in by_domain.values()
        )
    if bundles[0]["nullifier"] is not None:
        runner._nullifier_override = (
            sum(bundle["nullifier"][0] for bundle in bundles),
            sum(bundle["nullifier"][1] for bundle in bundles),
        )

    sim.events_processed = sum(
        bundle["events_processed"] for bundle in bundles
    )
    sim.now = duration
    _record_rss([bundle["ru_maxrss"] for bundle in bundles])

    report = None
    for bundle in bundles:
        if bundle["report"] is not None:
            report = bundle["report"]
        if bundle["watchtowers"] is not None:
            runner._wt_override = bundle["watchtowers"]
    return report
