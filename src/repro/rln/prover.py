"""Signal creation — the publisher side of the RLN framework."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..crypto.hashing import hash_bytes_to_field
from ..crypto.keys import MembershipKeyPair
from ..crypto.merkle import MerkleProof
from ..crypto.zksnark import groth16
from ..crypto.zksnark.groth16 import ProvingKey
from ..errors import ProofError
from .circuit import RLN_CIRCUIT_ID, RLN_PUBLIC_INPUTS, RlnStatement
from .nullifier import external_nullifier
from .signal import RlnSignal


def rln_keys(
    num_constraints: Optional[int] = None, seed: Optional[bytes] = None
):
    """Run the RLN circuit's trusted setup; returns ``(pk, vk)``.

    All peers in one deployment must share the same setup (as they would
    share the ceremony output in production), so create this once per
    simulation and hand it to every prover/verifier.
    """
    return groth16.trusted_setup(
        RLN_CIRCUIT_ID, RLN_PUBLIC_INPUTS, num_constraints, seed
    )


@dataclass
class RlnProver:
    """Builds :class:`RlnSignal`s for one member.

    The prover is deliberately *stateless about rate limits*: enforcing
    "one message per epoch" on the honest path is the job of the peer
    layer (:mod:`repro.core.peer`), and *not* enforcing it here is what
    lets the test suite and the attack models produce double-signals.
    """

    keypair: MembershipKeyPair
    proving_key: ProvingKey
    mode: str = field(default="native")

    def create_signal(
        self,
        message: bytes,
        epoch: int,
        merkle_proof: MerkleProof,
        domain: Optional[str] = None,
        rng=None,
    ) -> RlnSignal:
        """Create the signal ``(m, e, phi, [sk], pi)`` for ``message``.

        ``merkle_proof`` must authenticate this member's commitment
        against the group root the routers currently accept; the caller
        (peer layer) obtains it from its synced :class:`LocalGroup`.
        """
        if merkle_proof.leaf != self.keypair.commitment.element:
            raise ProofError(
                "merkle proof does not authenticate this member's commitment"
            )
        ext = external_nullifier(epoch, domain)
        x = hash_bytes_to_field(message)
        statement = RlnStatement.build(
            secret=self.keypair.secret.element,
            ext_nullifier=ext,
            x=x,
            merkle_proof=merkle_proof,
        )
        proof = groth16.prove(self.proving_key, statement, self.mode, rng)
        return RlnSignal(
            message=message,
            epoch=epoch,
            external_nullifier=ext,
            internal_nullifier=statement.internal_nullifier,
            share=statement.share(),
            merkle_root=statement.merkle_root,
            proof=proof,
        )
