"""Spam detection and secret recovery from double-signals.

When one member publishes two *different* messages in the same epoch,
both signals carry the same internal nullifier but two distinct points
of the member's rate-limit line — enough to reconstruct ``sk`` (paper
Section II). Whoever reconstructs it can submit it to the membership
contract, which removes the member, burns part of the stake and pays
the remainder to the reporter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..crypto.field import Fr
from ..crypto.hashing import hash1
from ..crypto.keys import IdentityCommitment, IdentitySecret
from ..crypto.shamir import recover_secret_from_double_signal
from ..errors import ShamirError
from .signal import RlnSignal


@dataclass(frozen=True)
class SlashingEvidence:
    """Everything needed to slash a spammer on-chain."""

    recovered_secret: IdentitySecret
    commitment: IdentityCommitment
    epoch: int
    internal_nullifier: Fr
    signal_a: RlnSignal
    signal_b: RlnSignal


def detect_double_signal(
    signal_a: RlnSignal, signal_b: RlnSignal
) -> Optional[SlashingEvidence]:
    """Try to recover a spammer's secret from a pair of signals.

    Returns ``None`` when the pair is *not* a rate violation: different
    epochs/domains, different members (distinct nullifiers), or the very
    same message seen twice (gossip routinely delivers duplicates — one
    message is one share, and one share reveals nothing).
    """
    if signal_a.external_nullifier != signal_b.external_nullifier:
        return None
    if signal_a.internal_nullifier != signal_b.internal_nullifier:
        return None
    try:
        secret_value = recover_secret_from_double_signal(
            signal_a.share, signal_b.share
        )
    except ShamirError:
        return None  # identical share abscissae: duplicate, not spam
    secret = IdentitySecret(secret_value)
    return SlashingEvidence(
        recovered_secret=secret,
        commitment=IdentityCommitment(hash1(secret_value)),
        epoch=signal_a.epoch,
        internal_nullifier=signal_a.internal_nullifier,
        signal_a=signal_a,
        signal_b=signal_b,
    )
