"""Local (off-chain) membership group state.

Section III's central design choice: the contract stores only a flat,
ordered list of public keys, while **every peer maintains the Merkle
tree locally**, updating it from contract events ("Group
Synchronization"). :class:`LocalGroup` is that local replica.

It also keeps a small window of recent roots. Proof verification
accepts any root in the window, which tolerates the unavoidable race
between a publisher proving against root ``r_k`` and a router that has
already applied the ``k+1``-th membership event.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from ..constants import DEFAULT_MERKLE_DEPTH
from ..crypto.field import Fr
from ..crypto.keys import IdentityCommitment
from ..crypto.merkle import MerkleProof, MerkleTree
from ..crypto.merkle_forest import CanonicalShardedTree
from ..crypto.merkle_shared import CanonicalMerkleTree, SharedMerkleView
from ..errors import MemberNotFoundError, SyncError

#: How many historical roots a router accepts by default.
DEFAULT_ROOT_WINDOW = 8

#: Anything LocalGroup can use as its tree.
MembershipTree = Union[MerkleTree, SharedMerkleView]


class LocalGroup:
    """A peer's local replica of the RLN membership tree.

    ``tree`` selects the storage strategy: by default every replica
    owns an independent :class:`MerkleTree` (the paper's literal
    reading); a deployment running a :class:`MembershipStore` instead
    hands each replica a :class:`SharedMerkleView` of the one canonical
    copy-on-write tree, which makes a membership event cost O(depth)
    hashes once network-wide instead of once per replica. Either way
    the replica's observable behaviour is identical — the store's
    property tests prove bit-equal roots, root windows and decisions.
    """

    def __init__(
        self,
        depth: int = DEFAULT_MERKLE_DEPTH,
        root_window: int = DEFAULT_ROOT_WINDOW,
        tree: Optional[MembershipTree] = None,
    ) -> None:
        self.tree: MembershipTree = (
            MerkleTree(depth) if tree is None else tree
        )
        self.root_window = root_window
        self._recent_roots: "OrderedDict[Fr, None]" = OrderedDict()
        self._remember_root(self.tree.root)
        #: Number of membership events applied; used to detect gaps.
        self.applied_events = 0

    # -- root bookkeeping ----------------------------------------------------

    def _remember_root(self, root: Fr) -> None:
        self._recent_roots[root] = None
        self._recent_roots.move_to_end(root)
        while len(self._recent_roots) > self.root_window:
            self._recent_roots.popitem(last=False)

    @property
    def root(self) -> Fr:
        return self.tree.root

    def recent_roots(self) -> List[Fr]:
        """Roots currently accepted for proof verification, oldest first."""
        return list(self._recent_roots)

    def is_acceptable_root(self, root: Fr) -> bool:
        return root in self._recent_roots

    # -- event application -----------------------------------------------------

    def apply_registration(
        self, commitment: IdentityCommitment, event_index: int
    ) -> int:
        """Apply a MemberRegistered event; returns the new leaf index.

        ``event_index`` is the contract's event sequence number; applying
        events out of order would silently fork the local tree from the
        canonical one, so a gap raises :class:`SyncError` instead.
        """
        self._check_sequence(event_index)
        leaf_index = self.tree.synced_insert(commitment.element)
        self.applied_events += 1
        self._remember_root(self.tree.root)
        return leaf_index

    def apply_registration_batch(
        self, commitments, event_index: int
    ) -> int:
        """Apply one MembersRegistered *batch* event (genesis
        registration); returns the first assigned leaf index.

        The whole batch is a single entry in the contract's event
        sequence. The tree hands back the roots of the last
        ``root_window`` intermediate states, so the remembered window
        after a batch is byte-identical to applying the same
        registrations one by one — the root-window regression suite
        pins this.
        """
        self._check_sequence(event_index)
        values = [
            c.element if isinstance(c, IdentityCommitment) else Fr(c)
            for c in commitments
        ]
        first_index, tail_roots = self.tree.synced_insert_batch(
            values, self.root_window
        )
        self.applied_events += 1
        for root in tail_roots:
            self._remember_root(root)
        return first_index

    def two_level_proof(self, leaf_index: int):
        """Sharded authentication path (sub-tree hop + top hop).

        Only meaningful when the replica's tree is backed by a sharded
        canonical tree; ``flatten()`` of the result is exactly
        :meth:`merkle_proof` of the same leaf.
        """
        return self.tree.two_level_proof(leaf_index)

    def apply_removal(self, leaf_index: int, event_index: int) -> None:
        """Apply a MemberRemoved (slashing) event."""
        self._check_sequence(event_index)
        self.tree.synced_update(leaf_index, Fr.zero())
        self.applied_events += 1
        self._remember_root(self.tree.root)

    def replicate_from(self, other: "LocalGroup") -> None:
        """Adopt another replica's synced state wholesale.

        Group synchronization is deterministic — every honest replica
        that applied the same event prefix holds the same tree and root
        window — so a freshly bootstrapped peer may copy an up-to-date
        replica instead of replaying the whole event log. Behaviourally
        identical to applying the same events one by one, including the
        remembered intermediate roots.
        """
        if other.tree.depth != self.tree.depth:
            raise SyncError(
                f"cannot replicate a depth-{other.tree.depth} tree into a "
                f"depth-{self.tree.depth} replica"
            )
        if other.root_window != self.root_window:
            raise SyncError("replicas disagree on the root-window size")
        self.tree = other.tree.clone()
        self._recent_roots = OrderedDict(other._recent_roots)
        self.applied_events = other.applied_events

    def _check_sequence(self, event_index: int) -> None:
        if event_index != self.applied_events:
            raise SyncError(
                f"membership event {event_index} applied out of order "
                f"(expected {self.applied_events})"
            )

    # -- queries ---------------------------------------------------------------

    @property
    def member_count(self) -> int:
        """Slots assigned so far (slashed members keep their slot)."""
        return self.tree.leaf_count

    def index_of(self, commitment: IdentityCommitment) -> int:
        """Leaf index of a commitment; raises if absent (e.g. slashed)."""
        index = self.tree.find_leaf(commitment.element)
        if index is None:
            raise MemberNotFoundError(
                f"commitment {commitment.element!r} is not in the local tree"
            )
        return index

    def contains(self, commitment: IdentityCommitment) -> bool:
        return self.tree.find_leaf(commitment.element) is not None

    def merkle_proof(self, leaf_index: int) -> MerkleProof:
        """Authentication path for a member's leaf (publisher side)."""
        return self.tree.proof(leaf_index)

    def storage_bytes(self) -> int:
        return self.tree.storage_bytes()


class MembershipStore:
    """Deployment-wide shared membership-tree store.

    One :class:`~repro.crypto.merkle_shared.CanonicalMerkleTree` per
    (deployment, domain); every replica created through
    :meth:`local_group` holds a copy-on-write view of its domain's
    canonical tree. The first replica to apply a membership event pays
    the O(depth) hashing; every other replica's application of the same
    event is a pointer advance (counted in ``events_deduped``), and a
    replica that diverges forks into private storage without ever
    touching its siblings (counted in ``forks``).

    Toggled per deployment by ``ProtocolConfig.shared_membership_store``
    in the same spirit as PR 3's ``batched_bookkeeping`` flag; with the
    flag off, peers fall back to fully independent replicas.
    """

    def __init__(
        self,
        depth: int = DEFAULT_MERKLE_DEPTH,
        root_window: int = DEFAULT_ROOT_WINDOW,
        sub_depth: Optional[int] = None,
    ) -> None:
        if sub_depth is not None and not 0 < sub_depth < depth:
            raise ValueError(
                f"membership sub-tree depth must satisfy "
                f"0 < {sub_depth} < {depth}"
            )
        self.depth = depth
        self.root_window = root_window
        #: When set, canonical trees are sharded into 2^(depth -
        #: sub_depth) sub-trees of depth ``sub_depth`` under a
        #: root-of-roots (see :mod:`repro.crypto.merkle_forest`) —
        #: root-equivalent to the flat tree, with bulk genesis builds
        #: and lazy sub-tree interiors.
        self.sub_depth = sub_depth
        self._canonicals: Dict[str, CanonicalMerkleTree] = {}

    def canonical(self, domain: str = "") -> CanonicalMerkleTree:
        """The canonical tree for ``domain`` (created on first use)."""
        tree = self._canonicals.get(domain)
        if tree is None:
            if self.sub_depth is not None:
                tree = CanonicalShardedTree(self.depth, self.sub_depth)
            else:
                tree = CanonicalMerkleTree(self.depth)
            self._canonicals[domain] = tree
        return tree

    def view(self, domain: str = "") -> SharedMerkleView:
        """A fresh (empty, version-0) view of ``domain``'s tree."""
        return SharedMerkleView(self.canonical(domain))

    def local_group(self, domain: str = "") -> LocalGroup:
        """A replica backed by the shared store."""
        return LocalGroup(
            self.depth, self.root_window, tree=self.view(domain)
        )

    @property
    def domains(self) -> List[str]:
        return sorted(self._canonicals)

    def digest(self) -> Dict[str, Tuple[int, int, int]]:
        """Per-domain canonical-state digests — what parallel workers
        compare at the final barrier to assert their independently
        event-sourced stores converged."""
        return {
            domain: tree.state_digest()
            for domain, tree in sorted(self._canonicals.items())
        }

    def materialized_indices(self) -> Dict[str, FrozenSet[int]]:
        """Per-domain indices of the materialized sub-tree interiors.

        Empty for flat canonical trees. Unlike the ``stats()`` counts
        (per-store artifacts under parallel partitioning), the union of
        these sets across workers equals the single-store set — the
        partition-invariant form of the laziness measurement."""
        return {
            domain: tree.materialized_subtree_indices()
            for domain, tree in sorted(self._canonicals.items())
            if hasattr(tree, "materialized_subtree_indices")
        }

    def stats(self) -> Dict[str, int]:
        """Aggregate sharing counters across all domains."""
        canonicals = self._canonicals.values()
        return {
            "domains": len(self._canonicals),
            "events": sum(c.version for c in canonicals),
            "events_deduped": sum(c.events_deduped for c in canonicals),
            "forks": sum(c.forks for c in canonicals),
            "shared_bytes": sum(c.storage_bytes() for c in canonicals),
            # Zero for flat canonical trees; sharded trees report how
            # many sub-tree interiors were actually built (memory
            # tracks the active slice, not the full capacity).
            "materialized_subtrees": sum(
                getattr(c, "materialized_subtrees", 0) for c in canonicals
            ),
        }
