"""Local (off-chain) membership group state.

Section III's central design choice: the contract stores only a flat,
ordered list of public keys, while **every peer maintains the Merkle
tree locally**, updating it from contract events ("Group
Synchronization"). :class:`LocalGroup` is that local replica.

It also keeps a small window of recent roots. Proof verification
accepts any root in the window, which tolerates the unavoidable race
between a publisher proving against root ``r_k`` and a router that has
already applied the ``k+1``-th membership event.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from ..constants import DEFAULT_MERKLE_DEPTH
from ..crypto.field import Fr
from ..crypto.keys import IdentityCommitment
from ..crypto.merkle import MerkleProof, MerkleTree
from ..errors import MemberNotFoundError, SyncError

#: How many historical roots a router accepts by default.
DEFAULT_ROOT_WINDOW = 8


class LocalGroup:
    """A peer's local replica of the RLN membership tree."""

    def __init__(
        self,
        depth: int = DEFAULT_MERKLE_DEPTH,
        root_window: int = DEFAULT_ROOT_WINDOW,
    ) -> None:
        self.tree = MerkleTree(depth)
        self.root_window = root_window
        self._recent_roots: "OrderedDict[Fr, None]" = OrderedDict()
        self._remember_root(self.tree.root)
        #: Number of membership events applied; used to detect gaps.
        self.applied_events = 0

    # -- root bookkeeping ----------------------------------------------------

    def _remember_root(self, root: Fr) -> None:
        self._recent_roots[root] = None
        self._recent_roots.move_to_end(root)
        while len(self._recent_roots) > self.root_window:
            self._recent_roots.popitem(last=False)

    @property
    def root(self) -> Fr:
        return self.tree.root

    def recent_roots(self) -> List[Fr]:
        """Roots currently accepted for proof verification, oldest first."""
        return list(self._recent_roots)

    def is_acceptable_root(self, root: Fr) -> bool:
        return root in self._recent_roots

    # -- event application -----------------------------------------------------

    def apply_registration(
        self, commitment: IdentityCommitment, event_index: int
    ) -> int:
        """Apply a MemberRegistered event; returns the new leaf index.

        ``event_index`` is the contract's event sequence number; applying
        events out of order would silently fork the local tree from the
        canonical one, so a gap raises :class:`SyncError` instead.
        """
        self._check_sequence(event_index)
        leaf_index = self.tree.insert(commitment.element)
        self.applied_events += 1
        self._remember_root(self.tree.root)
        return leaf_index

    def apply_removal(self, leaf_index: int, event_index: int) -> None:
        """Apply a MemberRemoved (slashing) event."""
        self._check_sequence(event_index)
        self.tree.delete(leaf_index)
        self.applied_events += 1
        self._remember_root(self.tree.root)

    def replicate_from(self, other: "LocalGroup") -> None:
        """Adopt another replica's synced state wholesale.

        Group synchronization is deterministic — every honest replica
        that applied the same event prefix holds the same tree and root
        window — so a freshly bootstrapped peer may copy an up-to-date
        replica instead of replaying the whole event log. Behaviourally
        identical to applying the same events one by one, including the
        remembered intermediate roots.
        """
        if other.tree.depth != self.tree.depth:
            raise SyncError(
                f"cannot replicate a depth-{other.tree.depth} tree into a "
                f"depth-{self.tree.depth} replica"
            )
        if other.root_window != self.root_window:
            raise SyncError("replicas disagree on the root-window size")
        self.tree = other.tree.clone()
        self._recent_roots = OrderedDict(other._recent_roots)
        self.applied_events = other.applied_events

    def _check_sequence(self, event_index: int) -> None:
        if event_index != self.applied_events:
            raise SyncError(
                f"membership event {event_index} applied out of order "
                f"(expected {self.applied_events})"
            )

    # -- queries ---------------------------------------------------------------

    @property
    def member_count(self) -> int:
        """Slots assigned so far (slashed members keep their slot)."""
        return self.tree.leaf_count

    def index_of(self, commitment: IdentityCommitment) -> int:
        """Leaf index of a commitment; raises if absent (e.g. slashed)."""
        index = self.tree.find_leaf(commitment.element)
        if index is None:
            raise MemberNotFoundError(
                f"commitment {commitment.element!r} is not in the local tree"
            )
        return index

    def contains(self, commitment: IdentityCommitment) -> bool:
        return self.tree.find_leaf(commitment.element) is not None

    def merkle_proof(self, leaf_index: int) -> MerkleProof:
        """Authentication path for a member's leaf (publisher side)."""
        return self.tree.proof(leaf_index)

    def storage_bytes(self) -> int:
        return self.tree.storage_bytes()
