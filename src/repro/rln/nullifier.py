"""External and internal nullifier derivation.

The *external nullifier* is the application-wide value for which each
member may signal exactly once; Waku-RLN-Relay instantiates it with the
current epoch (Section III: "We use epoch as the external nulliﬁer").
An optional domain tag binds the nullifier to an application (the RLN
proposal's "voting booth"), so the same identity can signal in multiple
applications without cross-application rate-limit interference.

The *internal nullifier* ``phi = H(H(sk, e))`` is the member's unique,
unlinkable fingerprint for an external nullifier ``e``; two signals with
equal ``phi`` in one epoch constitute double-signaling.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

from ..crypto.field import Fr
from ..crypto.hashing import get_hash_backend, hash1, hash2, hash_bytes_to_field


@lru_cache(maxsize=4096)
def _external_nullifier_cached(backend: str, epoch: int, domain: str) -> Fr:
    # Keyed by the active backend name so a backend switch never serves
    # stale digests; Fr is immutable, so sharing the instance is safe.
    return hash2(
        hash_bytes_to_field(domain.encode(), "rln-domain"), Fr(epoch)
    )


def external_nullifier(epoch: int, domain: Optional[str] = None) -> Fr:
    """External nullifier for ``epoch``, optionally domain-separated.

    Without a domain this is just the epoch index embedded in the field,
    exactly as the paper specifies; with a domain it is
    ``H(H(domain), epoch)``. Every router re-derives this for every
    signal it checks, and (epoch, domain) pairs repeat heavily inside an
    epoch, so the derivation is memoised per backend.
    """
    if domain is None:
        return Fr(epoch)
    return _external_nullifier_cached(get_hash_backend(), epoch, domain)


def line_coefficient(secret: Fr, ext_nullifier: Fr) -> Fr:
    """The epoch-bound Shamir slope ``a1 = H(sk, e)``."""
    return hash2(Fr(secret), Fr(ext_nullifier))


def internal_nullifier(secret: Fr, ext_nullifier: Fr) -> Fr:
    """``phi = H(H(sk, e))`` — the member's per-epoch fingerprint."""
    return hash1(line_coefficient(secret, ext_nullifier))
