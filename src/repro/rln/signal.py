"""The RLN signal: ``(m, e, phi, [sk], pi)``.

Section II of the paper defines a signal as the message ``m``, the
external nullifier ``e``, the internal nullifier ``phi``, one Shamir
share ``[sk]`` of the sender's secret, and a zkSNARK proof ``pi`` that
all of these were derived from a secret key committed in the membership
tree. The signal deliberately contains **no PII**: no sender identifier,
no signature, no address — anonymity comes from this absence plus the
zero-knowledge property of ``pi``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..constants import KEY_SIZE_BYTES, PROOF_SIZE_BYTES
from ..crypto.field import Fr
from ..crypto.shamir import Share
from ..crypto.zksnark.groth16 import Proof
from ..errors import SerializationError


@dataclass(frozen=True)
class RlnSignal:
    """One rate-limited, membership-proved, anonymous message."""

    message: bytes
    epoch: int
    external_nullifier: Fr
    internal_nullifier: Fr
    share: Share
    merkle_root: Fr
    proof: Proof

    def public_inputs(self) -> Tuple[Fr, ...]:
        """The zkSNARK public inputs, in circuit order:
        ``(root, e, x, y, phi)``."""
        return (
            self.merkle_root,
            self.external_nullifier,
            self.share.x,
            self.share.y,
            self.internal_nullifier,
        )

    @property
    def overhead_bytes(self) -> int:
        """Bytes the RLN fields add on top of the raw message payload:
        epoch (8) + e, phi, x, y, root (5 x 32) + proof (128)."""
        return 8 + 5 * KEY_SIZE_BYTES + PROOF_SIZE_BYTES

    def to_bytes(self) -> bytes:
        """Canonical wire encoding (length-prefixed message + fields)."""
        header = len(self.message).to_bytes(4, "big")
        return (
            header
            + self.message
            + self.epoch.to_bytes(8, "big")
            + self.external_nullifier.to_bytes()
            + self.internal_nullifier.to_bytes()
            + self.share.x.to_bytes()
            + self.share.y.to_bytes()
            + self.merkle_root.to_bytes()
            + self.proof.to_bytes()
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "RlnSignal":
        if len(data) < 4:
            raise SerializationError("truncated RLN signal")
        msg_len = int.from_bytes(data[:4], "big")
        offset = 4
        expected = offset + msg_len + 8 + 5 * KEY_SIZE_BYTES + PROOF_SIZE_BYTES
        if len(data) != expected:
            raise SerializationError(
                f"RLN signal must be {expected} bytes, got {len(data)}"
            )
        message = data[offset : offset + msg_len]
        offset += msg_len
        epoch = int.from_bytes(data[offset : offset + 8], "big")
        offset += 8

        def read_fr() -> Fr:
            nonlocal offset
            value = Fr.from_bytes(data[offset : offset + KEY_SIZE_BYTES])
            offset += KEY_SIZE_BYTES
            return value

        ext = read_fr()
        phi = read_fr()
        x = read_fr()
        y = read_fr()
        root = read_fr()
        proof = Proof.from_bytes(data[offset:])
        return cls(
            message=message,
            epoch=epoch,
            external_nullifier=ext,
            internal_nullifier=phi,
            share=Share(x=x, y=y),
            merkle_root=root,
            proof=proof,
        )
