"""The RLN relation as a provable statement.

The statement proved with every signal (paper Section II):

    Given public ``(root, e, x, y, phi)``, I know a secret ``sk`` and a
    Merkle path such that:

    1. ``pk = H(sk)`` is a leaf of the membership tree with root
       ``root``                                 (membership);
    2. ``a1 = H(sk, e)`` and ``y = sk + a1 * x``  (the revealed point
       really lies on my rate-limit line)        (share correctness);
    3. ``phi = H(a1)``                            (nullifier correctness).

:class:`RlnStatement` implements both proving paths accepted by the
simulated Groth16 backend:

* :meth:`check_witness` — the relation evaluated directly with the
  active hash backend (fast; used in large network simulations);
* :meth:`synthesize` — a genuine R1CS built from Poseidon/Merkle gadgets
  (requires the ``poseidon`` hash backend, since the in-circuit hash is
  the real Poseidon permutation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..crypto.field import Fr
from ..crypto.hashing import get_hash_backend, hash1, hash2
from ..crypto.merkle import MerkleProof
from ..crypto.shamir import Share
from ..crypto.zksnark.gadgets import merkle_path_gadget, poseidon_hash_gadget
from ..crypto.zksnark.r1cs import ConstraintSystem
from ..errors import CircuitError

#: Public-input count of the RLN circuit: (root, e, x, y, phi).
RLN_PUBLIC_INPUTS = 5

#: Identifier binding proving/verifying keys to this circuit.
RLN_CIRCUIT_ID = "rln-v1"


@dataclass(frozen=True)
class RlnStatement:
    """One instance of the RLN relation (publics + witness)."""

    # public
    merkle_root: Fr
    ext_nullifier: Fr
    x: Fr
    y: Fr
    internal_nullifier: Fr
    # witness
    secret: Fr
    merkle_proof: MerkleProof

    @classmethod
    def build(
        cls,
        secret: Fr,
        ext_nullifier: Fr,
        x: Fr,
        merkle_proof: MerkleProof,
    ) -> "RlnStatement":
        """Derive the public outputs honestly from the witness."""
        a1 = hash2(secret, ext_nullifier)
        return cls(
            merkle_root=merkle_proof.compute_root(),
            ext_nullifier=Fr(ext_nullifier),
            x=Fr(x),
            y=Fr(secret) + a1 * Fr(x),
            internal_nullifier=hash1(a1),
            secret=Fr(secret),
            merkle_proof=merkle_proof,
        )

    def share(self) -> Share:
        return Share(x=self.x, y=self.y)

    # -- Statement protocol ------------------------------------------------

    def public_inputs(self) -> Tuple[Fr, ...]:
        return (
            self.merkle_root,
            self.ext_nullifier,
            self.x,
            self.y,
            self.internal_nullifier,
        )

    def check_witness(self) -> bool:
        """Evaluate the relation natively under the active hash backend."""
        pk = hash1(self.secret)
        if self.merkle_proof.leaf != pk:
            return False
        if self.merkle_proof.compute_root() != self.merkle_root:
            return False
        a1 = hash2(self.secret, self.ext_nullifier)
        if self.y != self.secret + a1 * self.x:
            return False
        return self.internal_nullifier == hash1(a1)

    def synthesize(self) -> ConstraintSystem:
        """Build the full R1CS for this instance.

        The in-circuit hash is the genuine Poseidon permutation, so the
        instance's publics must have been derived under the ``poseidon``
        backend; synthesising under another backend raises immediately
        rather than failing deep inside a constraint.
        """
        if get_hash_backend() != "poseidon":
            raise CircuitError(
                "R1CS synthesis requires the 'poseidon' hash backend "
                f"(active: {get_hash_backend()!r}); "
                "call set_hash_backend('poseidon') before building statements"
            )
        cs = ConstraintSystem()
        root = cs.alloc_public("root", self.merkle_root)
        ext = cs.alloc_public("external_nullifier", self.ext_nullifier)
        x = cs.alloc_public("x", self.x)
        y = cs.alloc_public("y", self.y)
        phi = cs.alloc_public("internal_nullifier", self.internal_nullifier)

        sk = cs.alloc("sk", self.secret)

        # 1. membership: pk = H(sk) sits in the tree under `root`
        pk = poseidon_hash_gadget(cs, [sk], "pk")
        bits = [
            cs.alloc(f"path_bit_{i}", Fr(bit))
            for i, bit in enumerate(self.merkle_proof.path_bits)
        ]
        siblings = [
            cs.alloc(f"sibling_{i}", value)
            for i, value in enumerate(self.merkle_proof.siblings)
        ]
        computed_root = merkle_path_gadget(cs, pk, bits, siblings, "membership")
        cs.enforce_equal(computed_root, root, "membership.root")

        # 2. share correctness: y = sk + H(sk, e) * x
        a1 = poseidon_hash_gadget(cs, [sk, ext], "a1")
        a1_times_x = cs.mul(a1, x, "share.a1x")
        cs.enforce_equal(sk.lc() + a1_times_x.lc(), y, "share.y")

        # 3. nullifier correctness: phi = H(a1)
        computed_phi = poseidon_hash_gadget(cs, [a1], "phi")
        cs.enforce_equal(computed_phi, phi, "nullifier.phi")
        return cs
