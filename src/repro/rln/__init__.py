"""Rate-Limiting Nullifier framework: signals, proofs, detection."""

from .circuit import RLN_CIRCUIT_ID, RLN_PUBLIC_INPUTS, RlnStatement
from .membership import DEFAULT_ROOT_WINDOW, LocalGroup, MembershipStore
from .nullifier import external_nullifier, internal_nullifier, line_coefficient
from .prover import RlnProver, rln_keys
from .signal import RlnSignal
from .slashing import SlashingEvidence, detect_double_signal
from .verifier import RlnVerifier, SignalCheck, VerificationCache

__all__ = [
    "RlnStatement",
    "RLN_CIRCUIT_ID",
    "RLN_PUBLIC_INPUTS",
    "LocalGroup",
    "MembershipStore",
    "DEFAULT_ROOT_WINDOW",
    "external_nullifier",
    "internal_nullifier",
    "line_coefficient",
    "RlnProver",
    "rln_keys",
    "RlnSignal",
    "RlnVerifier",
    "SignalCheck",
    "VerificationCache",
    "SlashingEvidence",
    "detect_double_signal",
]
