"""Signal verification — the router side of the RLN framework.

A routing peer checks three things about every incoming signal (paper
Section III, "Routing and Slashing"); this module implements the two
cryptographic ones, leaving the epoch-window check to
:mod:`repro.core.validator` where the local clock lives:

1. the zkSNARK proof verifies against the signal's public inputs;
2. the proof's Merkle root is one the verifier's synced group accepts;
3. the revealed share abscissa really is ``H(m)`` — otherwise a spammer
   could publish two messages while leaking two points of a *different*
   line, defeating slashing.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional, Tuple

from ..crypto.field import Fr
from ..crypto.hashing import hash_bytes_to_field
from ..crypto.zksnark import groth16
from ..crypto.zksnark.groth16 import VerifyingKey
from ..sim.metrics import MetricsRegistry
from .nullifier import external_nullifier
from .signal import RlnSignal

#: Default capacity of a :class:`VerificationCache`.
DEFAULT_VERIFICATION_CACHE_SIZE = 4096


class SignalCheck(Enum):
    """Outcome of verifying one signal."""

    VALID = "valid"
    INVALID_PROOF = "invalid_proof"
    UNKNOWN_ROOT = "unknown_root"
    BAD_SHARE_BINDING = "bad_share_binding"
    BAD_EXTERNAL_NULLIFIER = "bad_external_nullifier"


class PureCheck(Enum):
    """Progress of the *stateless* checks for one distinct signal.

    These checks — external-nullifier derivation, share/message binding
    and the zkSNARK pairing check — depend only on the signal itself
    (plus the deployment's verifying key and domain), so their outcome
    is identical at every router and can be computed once network-wide.
    The root-window, epoch-window and nullifier-map checks are per-router
    state and are never cached.
    """

    BAD_EXTERNAL_NULLIFIER = "bad_external_nullifier"
    BAD_SHARE_BINDING = "bad_share_binding"
    #: Nullifier + binding passed; the proof itself not yet verified
    #: (first router rejected the root before reaching the proof).
    BINDING_OK = "binding_ok"
    VALID = "valid"
    INVALID_PROOF = "invalid_proof"


@dataclass
class SignalEntry:
    """One distinct signal's cached parse + pure-check progress.

    ``signal`` is ``None`` for raw bytes that failed to deserialize
    (malformed spam is also worth remembering network-wide).
    """

    signal: Optional[RlnSignal]
    state: Optional[PureCheck] = None


class VerificationCache:
    """Bounded LRU memo of per-signal verification work.

    Routers may *share* one cache: every peer of a deployment holds the
    same verifying key and domain, so the deserialized signal and the
    outcome of its stateless checks (:class:`PureCheck`) are
    network-global facts. A signal verified by the first honest router
    costs every later router a dictionary lookup instead of field
    parsing, two hashes and a pairing check — the batched-verification
    fast path that makes 5k-peer scenarios tractable.

    Verifiers with different *domain* tags (one RLN group per topic)
    may share a cache safely: every key is namespaced by the verifier's
    domain, so a signal replayed from one topic onto another never
    reuses the first topic's memoised outcome. Do **not** share a cache
    between verifiers with different verifying keys.
    """

    def __init__(
        self, max_entries: int = DEFAULT_VERIFICATION_CACHE_SIZE
    ) -> None:
        if max_entries < 1:
            raise ValueError("cache needs room for at least one entry")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[object, SignalEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: object) -> Optional[SignalEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: object, entry: SignalEntry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _pure_key(signal: RlnSignal) -> Tuple:
    """Cache key for a signal reached without its wire encoding."""
    return (signal.epoch, signal.message, *signal.public_inputs(), signal.proof)


@dataclass
class RlnVerifier:
    """Verifies signals against a synced view of the membership group.

    ``root_predicate`` decides whether a Merkle root is acceptable —
    typically :meth:`LocalGroup.is_acceptable_root` of the router's
    replica. ``domain`` must match the publishers' domain tag.

    ``cache`` (optional, usually shared by every router of a deployment)
    memoises the stateless checks; ``metrics`` counts raw zkSNARK
    verifications and cache reuse under ``rln.proof_verifications`` /
    ``rln.proof_cache_hits``.
    """

    verifying_key: VerifyingKey
    root_predicate: Callable[[Fr], bool]
    domain: Optional[str] = None
    cache: Optional[VerificationCache] = None
    metrics: Optional[MetricsRegistry] = None

    def check(
        self, signal: RlnSignal, entry: Optional[SignalEntry] = None
    ) -> SignalCheck:
        """Classify a signal; :data:`SignalCheck.VALID` means relayable
        (pending the epoch/nullifier-map checks at the peer layer).

        Check order is identical with and without a cache: nullifier,
        share binding, root window, proof — so enabling the cache never
        changes an outcome, only the work done to reach it.
        """
        if entry is None:
            if self.cache is not None:
                key = (self.domain, *_pure_key(signal))
                entry = self.cache.get(key)
                if entry is None:
                    entry = SignalEntry(signal)
                    self.cache.put(key, entry)
            else:
                entry = SignalEntry(signal)

        state = entry.state
        if state is None:
            state = self._check_binding(signal)
            entry.state = state
        if state is PureCheck.BAD_EXTERNAL_NULLIFIER:
            return SignalCheck.BAD_EXTERNAL_NULLIFIER
        if state is PureCheck.BAD_SHARE_BINDING:
            return SignalCheck.BAD_SHARE_BINDING
        if not self.root_predicate(signal.merkle_root):
            return SignalCheck.UNKNOWN_ROOT
        if state is PureCheck.BINDING_OK:
            state = (
                PureCheck.VALID
                if self._verify_proof(signal)
                else PureCheck.INVALID_PROOF
            )
            entry.state = state
        elif self.metrics is not None:
            # Only count a hit when the memoised proof outcome actually
            # replaced a pairing check this router would have run (the
            # naive path never verifies signals it rejects earlier).
            self.metrics.increment("rln.proof_cache_hits")
        return (
            SignalCheck.VALID
            if state is PureCheck.VALID
            else SignalCheck.INVALID_PROOF
        )

    def wire_cache_key(self, raw_signal: bytes) -> Tuple:
        """Cache key for a signal's wire bytes, namespaced by this
        verifier's domain (the memoised checks are domain-dependent)."""
        return (self.domain, raw_signal)

    def _check_binding(self, signal: RlnSignal) -> PureCheck:
        if signal.external_nullifier != external_nullifier(
            signal.epoch, self.domain
        ):
            return PureCheck.BAD_EXTERNAL_NULLIFIER
        if signal.share.x != hash_bytes_to_field(signal.message):
            return PureCheck.BAD_SHARE_BINDING
        return PureCheck.BINDING_OK

    def _verify_proof(self, signal: RlnSignal) -> bool:
        if self.metrics is not None:
            self.metrics.increment("rln.proof_verifications")
        return groth16.verify(
            self.verifying_key, signal.proof, signal.public_inputs()
        )

    def is_valid(self, signal: RlnSignal) -> bool:
        return self.check(signal) is SignalCheck.VALID
