"""Signal verification — the router side of the RLN framework.

A routing peer checks three things about every incoming signal (paper
Section III, "Routing and Slashing"); this module implements the two
cryptographic ones, leaving the epoch-window check to
:mod:`repro.core.validator` where the local clock lives:

1. the zkSNARK proof verifies against the signal's public inputs;
2. the proof's Merkle root is one the verifier's synced group accepts;
3. the revealed share abscissa really is ``H(m)`` — otherwise a spammer
   could publish two messages while leaking two points of a *different*
   line, defeating slashing.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional

from ..crypto.field import Fr
from ..crypto.hashing import hash_bytes_to_field
from ..crypto.zksnark import groth16
from ..crypto.zksnark.groth16 import VerifyingKey
from .nullifier import external_nullifier
from .signal import RlnSignal


class SignalCheck(Enum):
    """Outcome of verifying one signal."""

    VALID = "valid"
    INVALID_PROOF = "invalid_proof"
    UNKNOWN_ROOT = "unknown_root"
    BAD_SHARE_BINDING = "bad_share_binding"
    BAD_EXTERNAL_NULLIFIER = "bad_external_nullifier"


@dataclass
class RlnVerifier:
    """Verifies signals against a synced view of the membership group.

    ``root_predicate`` decides whether a Merkle root is acceptable —
    typically :meth:`LocalGroup.is_acceptable_root` of the router's
    replica. ``domain`` must match the publishers' domain tag.
    """

    verifying_key: VerifyingKey
    root_predicate: Callable[[Fr], bool]
    domain: Optional[str] = None

    def check(self, signal: RlnSignal) -> SignalCheck:
        """Classify a signal; :data:`SignalCheck.VALID` means relayable
        (pending the epoch/nullifier-map checks at the peer layer)."""
        if signal.external_nullifier != external_nullifier(
            signal.epoch, self.domain
        ):
            return SignalCheck.BAD_EXTERNAL_NULLIFIER
        if signal.share.x != hash_bytes_to_field(signal.message):
            return SignalCheck.BAD_SHARE_BINDING
        if not self.root_predicate(signal.merkle_root):
            return SignalCheck.UNKNOWN_ROOT
        if not groth16.verify(
            self.verifying_key, signal.proof, signal.public_inputs()
        ):
            return SignalCheck.INVALID_PROOF
        return SignalCheck.VALID

    def is_valid(self, signal: RlnSignal) -> bool:
        return self.check(signal) is SignalCheck.VALID
