"""Signal verification — the router side of the RLN framework.

A routing peer checks three things about every incoming signal (paper
Section III, "Routing and Slashing"); this module implements the two
cryptographic ones, leaving the epoch-window check to
:mod:`repro.core.validator` where the local clock lives:

1. the zkSNARK proof verifies against the signal's public inputs;
2. the proof's Merkle root is one the verifier's synced group accepts;
3. the revealed share abscissa really is ``H(m)`` — otherwise a spammer
   could publish two messages while leaking two points of a *different*
   line, defeating slashing.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional, Tuple

from ..crypto.field import Fr
from ..crypto.hashing import hash_bytes_to_field
from ..crypto.zksnark import groth16
from ..crypto.zksnark.groth16 import VerifyingKey
from ..sim.metrics import MetricsRegistry
from .nullifier import external_nullifier
from .signal import RlnSignal

#: Default capacity of a :class:`VerificationCache`.
DEFAULT_VERIFICATION_CACHE_SIZE = 4096


class SignalCheck(Enum):
    """Outcome of verifying one signal."""

    VALID = "valid"
    INVALID_PROOF = "invalid_proof"
    UNKNOWN_ROOT = "unknown_root"
    BAD_SHARE_BINDING = "bad_share_binding"
    BAD_EXTERNAL_NULLIFIER = "bad_external_nullifier"


class PureCheck(Enum):
    """Progress of the *stateless* checks for one distinct signal.

    These checks — external-nullifier derivation, share/message binding
    and the zkSNARK pairing check — depend only on the signal itself
    (plus the deployment's verifying key and domain), so their outcome
    is identical at every router and can be computed once network-wide.
    The root-window, epoch-window and nullifier-map checks are per-router
    state and are never cached.
    """

    BAD_EXTERNAL_NULLIFIER = "bad_external_nullifier"
    BAD_SHARE_BINDING = "bad_share_binding"
    #: Nullifier + binding passed; the proof itself not yet verified
    #: (first router rejected the root before reaching the proof).
    BINDING_OK = "binding_ok"
    VALID = "valid"
    INVALID_PROOF = "invalid_proof"


@dataclass
class SignalEntry:
    """One distinct signal's cached parse + pure-check progress.

    ``signal`` is ``None`` for raw bytes that failed to deserialize
    (malformed spam is also worth remembering network-wide).
    """

    signal: Optional[RlnSignal]
    state: Optional[PureCheck] = None


class VerificationCache:
    """Bounded LRU memo of per-signal verification work.

    Routers may *share* one cache: every peer of a deployment holds the
    same verifying key and domain, so the deserialized signal and the
    outcome of its stateless checks (:class:`PureCheck`) are
    network-global facts. A signal verified by the first honest router
    costs every later router a dictionary lookup instead of field
    parsing, two hashes and a pairing check — the batched-verification
    fast path that makes 5k-peer scenarios tractable.

    Verifiers with different *domain* tags (one RLN group per topic)
    may share a cache safely: every key is namespaced by the verifier's
    domain, so a signal replayed from one topic onto another never
    reuses the first topic's memoised outcome. Do **not** share a cache
    between verifiers with different verifying keys.
    """

    def __init__(
        self, max_entries: int = DEFAULT_VERIFICATION_CACHE_SIZE
    ) -> None:
        if max_entries < 1:
            raise ValueError("cache needs room for at least one entry")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[object, SignalEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: object) -> Optional[SignalEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: object, entry: SignalEntry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


#: Merge rank of a memoised pure-check state: a barrier merge keeps the
#: most advanced outcome for a key. ``None`` (parsed, nothing checked)
#: < ``BINDING_OK`` (binding checked, proof pending) < any terminal
#: outcome.
_STATE_RANK = {
    None: 0,
    PureCheck.BINDING_OK: 1,
    PureCheck.BAD_EXTERNAL_NULLIFIER: 2,
    PureCheck.BAD_SHARE_BINDING: 2,
    PureCheck.VALID: 2,
    PureCheck.INVALID_PROOF: 2,
}

#: One barrier-memo write: ``(write_key, cache_key, entry)`` where
#: ``write_key`` is a partition-invariant ``(time, origin, seq)`` tuple.
MemoOp = Tuple[Tuple, object, SignalEntry]


class BarrierMemoCache:
    """A :class:`VerificationCache` for the window-isolated kernel.

    Sharing a plain LRU between routers on different shards would leak
    intra-window state across the isolation boundary: whether router B
    gets a hit would depend on whether router A ran in the same process
    earlier in the same window — i.e. on the shard/worker layout. This
    variant restores sharing without the leak:

    * **Reads see only the committed snapshot** — the state as of the
      last barrier, identical on every worker. A hit hands back a
      *copy*, so the verifier's in-place state advancement never
      mutates the snapshot mid-window.
    * **Writes buffer as pending ops** keyed by the simulator's
      partition-invariant ``(time, origin, seq)`` counter (the same
      one the chain replica orders its ops with). :meth:`drain`
      snapshots them at the barrier; :meth:`commit` applies a merged
      batch in write-key order with most-progress-wins conflict
      resolution, so every worker's committed snapshot evolves
      identically whatever subset of the writes it produced itself.
    * **Eviction is FIFO in commit order** (no move-to-end on reads):
      read recency is layout-dependent under isolation, insertion
      order after a sorted merge is not.

    The cost of soundness is one window of staleness — a signal first
    verified in window N saves work from window N+1 on.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_VERIFICATION_CACHE_SIZE,
        key_source: Optional[Callable[[], Tuple]] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("cache needs room for at least one entry")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._committed: "OrderedDict[object, SignalEntry]" = OrderedDict()
        self._pending: list = []
        self._key_source = key_source if key_source is not None else tuple

    def __len__(self) -> int:
        return len(self._committed)

    def get(self, key: object) -> Optional[SignalEntry]:
        committed = self._committed.get(key)
        if committed is None:
            self.misses += 1
            return None
        self.hits += 1
        entry = SignalEntry(committed.signal, committed.state)
        # Re-record the copy as a pending write: if the verifier
        # advances it this window (BINDING_OK -> VALID), the progress
        # ships at the barrier like any first-time write.
        self._pending.append((self._key_source(), key, entry))
        return entry

    def put(self, key: object, entry: SignalEntry) -> None:
        self._pending.append((self._key_source(), key, entry))

    def drain(self) -> "list[MemoOp]":
        """Snapshot and clear this window's writes (barrier exchange).

        Entries are copied at drain time so the delta captures any
        in-place advancement the verifier did after the ``put``, and
        later mutation of a still-referenced entry cannot reach into
        a committed snapshot.
        """
        pending, self._pending = self._pending, []
        return [
            (wkey, key, SignalEntry(entry.signal, entry.state))
            for wkey, key, entry in pending
        ]

    def commit(self, ops: "list[MemoOp]") -> None:
        """Apply one barrier's merged write batch to the snapshot."""
        committed = self._committed
        for _wkey, key, entry in sorted(ops, key=lambda op: op[0]):
            current = committed.get(key)
            if current is None:
                committed[key] = SignalEntry(entry.signal, entry.state)
            elif _STATE_RANK[entry.state] > _STATE_RANK[current.state]:
                current.signal = entry.signal
                current.state = entry.state
        while len(committed) > self.max_entries:
            committed.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _pure_key(signal: RlnSignal) -> Tuple:
    """Cache key for a signal reached without its wire encoding."""
    return (signal.epoch, signal.message, *signal.public_inputs(), signal.proof)


@dataclass
class RlnVerifier:
    """Verifies signals against a synced view of the membership group.

    ``root_predicate`` decides whether a Merkle root is acceptable —
    typically :meth:`LocalGroup.is_acceptable_root` of the router's
    replica. ``domain`` must match the publishers' domain tag.

    ``cache`` (optional, usually shared by every router of a deployment)
    memoises the stateless checks; ``metrics`` counts raw zkSNARK
    verifications and cache reuse under ``rln.proof_verifications`` /
    ``rln.proof_cache_hits``.
    """

    verifying_key: VerifyingKey
    root_predicate: Callable[[Fr], bool]
    domain: Optional[str] = None
    cache: Optional[VerificationCache] = None
    metrics: Optional[MetricsRegistry] = None

    def check(
        self, signal: RlnSignal, entry: Optional[SignalEntry] = None
    ) -> SignalCheck:
        """Classify a signal; :data:`SignalCheck.VALID` means relayable
        (pending the epoch/nullifier-map checks at the peer layer).

        Check order is identical with and without a cache: nullifier,
        share binding, root window, proof — so enabling the cache never
        changes an outcome, only the work done to reach it.
        """
        if entry is None:
            if self.cache is not None:
                key = (self.domain, *_pure_key(signal))
                entry = self.cache.get(key)
                if entry is None:
                    entry = SignalEntry(signal)
                    self.cache.put(key, entry)
            else:
                entry = SignalEntry(signal)

        state = entry.state
        if state is None:
            state = self._check_binding(signal)
            entry.state = state
        if state is PureCheck.BAD_EXTERNAL_NULLIFIER:
            return SignalCheck.BAD_EXTERNAL_NULLIFIER
        if state is PureCheck.BAD_SHARE_BINDING:
            return SignalCheck.BAD_SHARE_BINDING
        if not self.root_predicate(signal.merkle_root):
            return SignalCheck.UNKNOWN_ROOT
        if state is PureCheck.BINDING_OK:
            state = (
                PureCheck.VALID
                if self._verify_proof(signal)
                else PureCheck.INVALID_PROOF
            )
            entry.state = state
        elif self.metrics is not None:
            # Only count a hit when the memoised proof outcome actually
            # replaced a pairing check this router would have run (the
            # naive path never verifies signals it rejects earlier).
            self.metrics.increment("rln.proof_cache_hits")
        return (
            SignalCheck.VALID
            if state is PureCheck.VALID
            else SignalCheck.INVALID_PROOF
        )

    def wire_cache_key(self, raw_signal: bytes) -> Tuple:
        """Cache key for a signal's wire bytes, namespaced by this
        verifier's domain (the memoised checks are domain-dependent)."""
        return (self.domain, raw_signal)

    def _check_binding(self, signal: RlnSignal) -> PureCheck:
        if signal.external_nullifier != external_nullifier(
            signal.epoch, self.domain
        ):
            return PureCheck.BAD_EXTERNAL_NULLIFIER
        if signal.share.x != hash_bytes_to_field(signal.message):
            return PureCheck.BAD_SHARE_BINDING
        return PureCheck.BINDING_OK

    def _verify_proof(self, signal: RlnSignal) -> bool:
        if self.metrics is not None:
            self.metrics.increment("rln.proof_verifications")
        return groth16.verify(
            self.verifying_key, signal.proof, signal.public_inputs()
        )

    def is_valid(self, signal: RlnSignal) -> bool:
        return self.check(signal) is SignalCheck.VALID
