"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while the
sub-classes keep failures diagnosable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class FieldError(ReproError):
    """Invalid prime-field operation (bad element, division by zero, ...)."""


class SerializationError(ReproError):
    """A value could not be encoded to, or decoded from, bytes."""


class MerkleError(ReproError):
    """Invalid Merkle-tree operation (tree full, bad index, bad proof)."""


class ShamirError(ReproError):
    """Invalid secret-sharing operation (duplicate share x, bad degree)."""


class CircuitError(ReproError):
    """R1CS construction or witness-generation failure."""


class ProofError(ReproError):
    """zkSNARK proving failed (unsatisfied constraints, bad witness)."""


class VerificationError(ReproError):
    """zkSNARK or signal verification failed."""


class ContractError(ReproError):
    """Smart-contract call reverted."""


class InsufficientStakeError(ContractError):
    """Registration attempted with less than the required stake."""

    def __init__(self, required: int, offered: int) -> None:
        super().__init__(
            f"membership requires a stake of {required} wei, got {offered}"
        )
        self.required = required
        self.offered = offered


class MemberNotFoundError(ContractError):
    """A slashing or lookup call referenced an unknown member."""


class ChainError(ReproError):
    """Blockchain simulation failure (unknown account, bad nonce, ...)."""


class OutOfGasError(ChainError):
    """A transaction exceeded its gas limit."""


class SimulationError(ReproError):
    """Discrete-event simulator misuse (time going backwards, ...)."""


class NetworkError(ReproError):
    """Network-layer failure (unknown node, no link, ...)."""


class GossipError(ReproError):
    """GossipSub router misuse (unknown topic, not subscribed, ...)."""


class RateLimitError(ReproError):
    """A local publisher attempted to exceed its own rate limit."""

    def __init__(self, epoch: int) -> None:
        super().__init__(f"already published one message in epoch {epoch}")
        self.epoch = epoch


class RegistrationError(ReproError):
    """Peer registration with the membership group failed."""


class SyncError(ReproError):
    """Local membership tree is out of sync with the contract."""


class ScenarioError(ReproError):
    """Invalid scenario specification or unknown scenario name."""


class ScenarioSpecError(ScenarioError):
    """A scenario spec field is invalid for the requested execution mode.

    Carries the full list of offending fields so a CLI can show every
    problem at once instead of failing on the first.
    """

    def __init__(self, message: str, problems=()):
        super().__init__(message)
        self.problems = tuple(problems)
