"""Ablations of the design choices DESIGN.md §5 calls out.

* epoch length ``T`` — the rate-limit/latency trade-off and its effect
  on ``Thr = D/T`` and nullifier-map memory;
* router root window — tolerance to publisher/router tree-sync races
  under membership churn;
* flood-publish vs mesh-only publishing — latency vs bandwidth;
* mesh degree ``D`` — propagation latency vs duplicate load.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from ..core.config import ProtocolConfig
from ..core.protocol import WakuRlnRelayNetwork
from ..crypto.keys import MembershipKeyPair
from ..gossipsub.params import GossipSubParams
from ..rln.membership import LocalGroup
from ..rln.prover import RlnProver, rln_keys
from ..rln.verifier import RlnVerifier, SignalCheck
from ..sim.metrics import Histogram

Headers = Sequence[str]
Rows = List[Sequence]


def epoch_length_ablation(
    epoch_lengths: Sequence[float] = (1.0, 5.0, 10.0, 30.0, 60.0),
    max_delay: float = 20.0,
    senders: int = 20,
    horizon: float = 120.0,
) -> Tuple[Headers, Rows]:
    """Effect of ``T`` on honest throughput, Thr and nullifier memory.

    Short epochs allow more honest messages per second but widen the
    acceptance window (Thr = D/T grows), which multiplies the number of
    epochs a router must remember.
    """
    headers = (
        "epoch T (s)",
        "thr = ceil(D/T)",
        "honest msgs/s (per member)",
        "nullifier epochs retained",
        "entries @ steady state",
    )
    rows: Rows = []
    for t in epoch_lengths:
        config = ProtocolConfig(epoch_length=t, max_network_delay=max_delay)
        retained = config.thr + 1  # current + thr past epochs
        rows.append(
            (
                t,
                config.thr,
                1.0 / t,
                retained,
                retained * senders,
            )
        )
    del horizon
    return headers, rows


def root_window_ablation(
    windows: Sequence[int] = (1, 2, 4, 8),
    churn_events: int = 6,
    seed: int = 21,
) -> Tuple[Headers, Rows]:
    """Acceptance of proofs made against stale roots, by window size.

    A publisher proves against its current tree; while the proof is in
    flight, up to ``k`` membership events may land. A router accepting
    only the latest root (window 1) drops every such message.
    """
    headers = ("root window", *[f"staleness {k}" for k in range(churn_events)])
    rng = random.Random(seed)
    pk, vk = rln_keys(seed=b"ablation-roots")
    rows: Rows = []
    for window in windows:
        group = LocalGroup(depth=10, root_window=window)
        member = MembershipKeyPair.generate(rng)
        index = group.apply_registration(member.commitment, 0)
        prover = RlnProver(keypair=member, proving_key=pk)
        verifier = RlnVerifier(
            verifying_key=vk, root_predicate=group.is_acceptable_root
        )
        outcomes = []
        # Re-prove at each staleness level: proof made now, validated
        # after k further registrations.
        for k in range(churn_events):
            proof = group.merkle_proof(index)
            signal = prover.create_signal(
                f"staleness-{k}".encode(), epoch=k, merkle_proof=proof
            )
            for _ in range(k):
                newcomer = MembershipKeyPair.generate(rng)
                group.apply_registration(
                    newcomer.commitment, group.applied_events
                )
            outcomes.append(
                "accept"
                if verifier.check(signal) is SignalCheck.VALID
                else "drop"
            )
        rows.append((window, *outcomes))
    return headers, rows


def _propagation_run(
    peer_count: int,
    gossip: GossipSubParams,
    seed: int,
    messages: int = 10,
) -> Tuple[float, float, int, int]:
    """(mean latency, p99, duplicates, bytes sent) for one config."""
    config = ProtocolConfig(gossip=gossip)
    net = WakuRlnRelayNetwork(
        peer_count=peer_count, seed=seed, config=config, degree=6
    )
    net.register_all()
    net.start()
    net.run(5.0)
    latencies = Histogram()
    sent_at = {}

    def on_delivery(payload: bytes, _mid: str) -> None:
        if payload in sent_at:
            latencies.observe(net.simulator.now - sent_at[payload])

    for peer in net.peers:
        peer.on_payload(on_delivery)
    epoch = config.epoch_length
    rng = random.Random(seed)
    for m in range(messages):
        publisher = net.peers[rng.randrange(peer_count)]
        payload = f"abl-{m}".encode()

        def publish(_sim, p=publisher, data=payload):
            sent_at[data] = net.simulator.now
            try:
                p.publish(data)
            except Exception:
                pass

        net.simulator.schedule(m * epoch + 0.3, publish)
    net.run(messages * epoch + 30.0)
    return (
        latencies.mean,
        latencies.percentile(99),
        net.metrics.counter("gossipsub.duplicates"),
        net.metrics.counter("gossipsub.bytes_sent"),
    )


def flood_publish_ablation(
    peer_count: int = 30, seed: int = 22
) -> Tuple[Headers, Rows]:
    """Flood-publish (default) vs mesh-only publishing."""
    headers = ("publish mode", "mean latency (s)", "p99 (s)", "duplicates", "bytes sent")
    rows: Rows = []
    for flood in (True, False):
        mean, p99, dupes, sent = _propagation_run(
            peer_count, GossipSubParams(flood_publish=flood), seed
        )
        rows.append(
            ("flood-publish" if flood else "mesh-only", mean, p99, dupes, sent)
        )
    return headers, rows


def mesh_degree_ablation(
    degrees: Sequence[int] = (3, 6, 10),
    peer_count: int = 30,
    seed: int = 24,
) -> Tuple[Headers, Rows]:
    """Mesh degree D: lower latency at higher duplicate/bandwidth cost."""
    headers = ("D", "mean latency (s)", "p99 (s)", "duplicates", "bytes sent")
    rows: Rows = []
    for d in degrees:
        gossip = GossipSubParams(
            d=d,
            d_lo=max(1, d - 2),
            d_hi=d + 4,
            d_score=max(1, d - 2),
            flood_publish=False,
        )
        mean, p99, dupes, sent = _propagation_run(
            peer_count, gossip, seed
        )
        rows.append((d, mean, p99, dupes, sent))
    return headers, rows
