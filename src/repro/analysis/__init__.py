"""Experiment harness: one runner per table/figure of the paper."""

from .chain_experiments import (
    economics_experiment,
    gas_cost_experiment,
    gas_vs_depth_experiment,
    propagation_experiment,
)
from .crypto_experiments import (
    key_material_experiment,
    merkle_storage_experiment,
    paper_reference_row,
    proof_generation_experiment,
    proof_verification_experiment,
)
from .ablations import (
    epoch_length_ablation,
    flood_publish_ablation,
    mesh_degree_ablation,
    root_window_ablation,
)
from .reporting import (
    experiment_payload,
    format_experiment,
    format_table,
    human_bytes,
    validate_experiment_payload,
)
from .scaling import network_scaling_experiment
from .spam_experiments import (
    nullifier_map_experiment,
    routing_overhead_experiment,
    spam_protection_experiment,
)

__all__ = [
    "proof_generation_experiment",
    "proof_verification_experiment",
    "key_material_experiment",
    "merkle_storage_experiment",
    "paper_reference_row",
    "gas_cost_experiment",
    "gas_vs_depth_experiment",
    "propagation_experiment",
    "economics_experiment",
    "spam_protection_experiment",
    "routing_overhead_experiment",
    "nullifier_map_experiment",
    "format_table",
    "format_experiment",
    "experiment_payload",
    "validate_experiment_payload",
    "human_bytes",
    "epoch_length_ablation",
    "root_window_ablation",
    "flood_publish_ablation",
    "mesh_degree_ablation",
    "network_scaling_experiment",
]
