"""Network-size scaling: propagation latency and coverage vs peers.

Gossip propagation grows with the overlay diameter — O(log N) hops for
random-regular meshes — so doubling the network should cost roughly one
extra hop of latency, not double. This sweep backs the paper's
implicit scalability story (a routing protocol for open, large p2p
networks).
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from ..core.config import ProtocolConfig
from ..core.protocol import WakuRlnRelayNetwork
from ..net.topology import diameter
from ..sim.metrics import Histogram

Headers = Sequence[str]
Rows = List[Sequence]


def network_scaling_experiment(
    peer_counts: Sequence[int] = (10, 20, 40, 80),
    messages: int = 8,
    seed: int = 41,
) -> Tuple[Headers, Rows]:
    """Latency/coverage as the network grows (degree-6 overlay)."""
    headers = (
        "peers",
        "overlay diameter",
        "mean latency (s)",
        "p99 latency (s)",
        "coverage",
        "duplicates/msg",
    )
    rows: Rows = []
    for count in peer_counts:
        config = ProtocolConfig()
        net = WakuRlnRelayNetwork(
            peer_count=count, seed=seed, config=config, degree=6
        )
        net.register_all()
        net.start()
        net.run(5.0)
        latencies = Histogram()
        sent_at = {}
        receipts = {}

        def on_delivery(payload: bytes, _mid: str) -> None:
            if payload in sent_at:
                latencies.observe(net.simulator.now - sent_at[payload])
                receipts[payload] = receipts.get(payload, 0) + 1

        for peer in net.peers:
            peer.on_payload(on_delivery)
        rng = random.Random(seed)
        epoch = config.epoch_length
        for m in range(messages):
            publisher = net.peers[rng.randrange(count)]
            payload = f"scale-{m}".encode()

            def publish(_sim, p=publisher, data=payload):
                sent_at[data] = net.simulator.now
                try:
                    p.publish(data)
                except Exception:
                    pass

            net.simulator.schedule(m * epoch + 0.4, publish)
        net.run(messages * epoch + 30.0)
        delivered = sum(receipts.values())
        # Every peer including the publisher (local delivery) counts.
        expected = count * len(sent_at)
        coverage = delivered / expected if expected else 0.0
        duplicates = net.metrics.counter("gossipsub.duplicates") / max(
            1, len(sent_at)
        )
        rows.append(
            (
                count,
                diameter(net.network),
                latencies.mean,
                latencies.percentile(99),
                f"{coverage:.1%}",
                duplicates,
            )
        )
    return headers, rows
