"""Experiments E1–E4: zkSNARK timing, key material, tree storage.

Each function returns ``(headers, rows)`` so benchmarks can print the
same table the paper's Section IV summarises. Columns labelled
*modeled* come from the calibrated :class:`PerformanceModel` (the
paper's iPhone 8 numbers); columns labelled *measured* are wall-clock
measurements of this Python implementation.
"""

from __future__ import annotations

import random
import time
from typing import List, Sequence, Tuple

from ..constants import (
    KEY_SIZE_BYTES,
    PAPER_FULL_TREE_STORAGE_BYTES,
    PAPER_OPTIMIZED_TREE_STORAGE_BYTES,
    PAPER_PROOF_GENERATION_SECONDS,
    PAPER_PROOF_VERIFICATION_SECONDS,
    PROOF_SIZE_BYTES,
)
from ..crypto.field import Fr
from ..crypto.hashing import set_hash_backend
from ..crypto.keys import MembershipKeyPair
from ..crypto.merkle import MerkleTree
from ..crypto.merkle_optimized import FrontierMerkleTree
from ..crypto.zksnark import groth16
from ..crypto.zksnark.timing import PerformanceModel, rln_constraint_count
from ..rln.circuit import RlnStatement
from ..rln.prover import RlnProver, rln_keys
from ..rln.verifier import RlnVerifier

Headers = Sequence[str]
Rows = List[Sequence]


def _member_with_tree(depth: int, seed: int = 1):
    rng = random.Random(seed)
    tree = MerkleTree(depth)
    pair = MembershipKeyPair.generate(rng)
    index = tree.insert(pair.commitment.element)
    # Populate a handful of other members so paths are non-trivial.
    for _ in range(min(30, tree.capacity - 1)):
        tree.insert(MembershipKeyPair.generate(rng).commitment.element)
    return pair, tree, index


def proof_generation_experiment(
    depths: Sequence[int] = (10, 16, 20, 26, 32),
    model: PerformanceModel = PerformanceModel(),
    measure_r1cs: bool = True,
) -> Tuple[Headers, Rows]:
    """E1 — proof generation vs tree depth (paper: ~0.5 s at depth 32)."""
    headers = (
        "depth",
        "group size",
        "constraints",
        "modeled prove (s)",
        "measured native (s)",
        "measured r1cs (s)",
    )
    rows: Rows = []
    pk, _vk = rln_keys(seed=b"e1")
    for depth in depths:
        pair, tree, index = _member_with_tree(depth)
        prover = RlnProver(keypair=pair, proving_key=pk)
        start = time.perf_counter()
        prover.create_signal(b"bench", 1, tree.proof(index))
        native_s = time.perf_counter() - start

        r1cs_s = float("nan")
        if measure_r1cs:
            set_hash_backend("poseidon")
            try:
                p_pair, p_tree, p_index = _member_with_tree(depth)
                statement = RlnStatement.build(
                    secret=p_pair.secret.element,
                    ext_nullifier=Fr(1),
                    x=Fr(12345),
                    merkle_proof=p_tree.proof(p_index),
                )
                start = time.perf_counter()
                groth16.prove(pk, statement, mode="r1cs")
                r1cs_s = time.perf_counter() - start
            finally:
                set_hash_backend("blake2b")
        rows.append(
            (
                depth,
                f"2^{depth}",
                rln_constraint_count(depth),
                model.prove_seconds(depth),
                native_s,
                r1cs_s,
            )
        )
    return headers, rows


def proof_verification_experiment(
    depths: Sequence[int] = (10, 16, 20, 26, 32),
    model: PerformanceModel = PerformanceModel(),
    repetitions: int = 200,
) -> Tuple[Headers, Rows]:
    """E2 — verification is constant in group size (paper: ~30 ms)."""
    headers = (
        "depth",
        "group size",
        "modeled verify (s)",
        "measured verify (s)",
    )
    rows: Rows = []
    pk, vk = rln_keys(seed=b"e2")
    for depth in depths:
        pair, tree, index = _member_with_tree(depth)
        prover = RlnProver(keypair=pair, proving_key=pk)
        signal = prover.create_signal(b"bench", 1, tree.proof(index))
        verifier = RlnVerifier(
            verifying_key=vk, root_predicate=lambda root, t=tree: root == t.root
        )
        start = time.perf_counter()
        for _ in range(repetitions):
            assert verifier.is_valid(signal)
        measured = (time.perf_counter() - start) / repetitions
        rows.append(
            (depth, f"2^{depth}", model.verify_seconds_for(depth), measured)
        )
    return headers, rows


def key_material_experiment() -> Tuple[Headers, Rows]:
    """E3 — persisted key/proof sizes (paper: 32 B keys, 3.89 MB pk)."""
    headers = ("artifact", "size (bytes)", "paper value (bytes)")
    rng = random.Random(5)
    pair = MembershipKeyPair.generate(rng)
    pk, _vk = rln_keys(
        num_constraints=rln_constraint_count(20), seed=b"e3"
    )
    tree = MerkleTree(8)
    index = tree.insert(pair.commitment.element)
    prover = RlnProver(keypair=pair, proving_key=pk)
    signal = prover.create_signal(b"size probe", 1, tree.proof(index))
    rows: Rows = [
        ("identity secret key", len(pair.secret.to_bytes()), KEY_SIZE_BYTES),
        (
            "identity public key",
            len(pair.commitment.to_bytes()),
            KEY_SIZE_BYTES,
        ),
        ("zkSNARK proof", len(signal.proof.to_bytes()), PROOF_SIZE_BYTES),
        ("prover key (modeled, depth 20)", pk.size_bytes, 4_078_960),
        (
            "per-message RLN overhead",
            signal.overhead_bytes,
            8 + 5 * 32 + 128,
        ),
    ]
    return headers, rows


def merkle_storage_experiment(
    depths: Sequence[int] = (10, 16, 20, 24),
    populated_members: int = 512,
) -> Tuple[Headers, Rows]:
    """E4 — full vs frontier tree storage (paper: 67 MB vs 0.128 KB)."""
    headers = (
        "depth",
        "full tree (bytes)",
        "frontier (bytes)",
        "ratio",
        "paper full",
        "paper optimized",
    )
    rows: Rows = []
    for depth in depths:
        full = MerkleTree(depth)
        frontier = FrontierMerkleTree(depth)
        members = min(populated_members, full.capacity)
        for i in range(members):
            leaf = Fr(i + 1)
            full.insert(leaf)
            frontier.insert(leaf)
        full_bytes = full.full_storage_bytes()
        frontier_bytes = frontier.storage_bytes()
        rows.append(
            (
                depth,
                full_bytes,
                frontier_bytes,
                full_bytes / frontier_bytes,
                PAPER_FULL_TREE_STORAGE_BYTES if depth == 20 else "-",
                PAPER_OPTIMIZED_TREE_STORAGE_BYTES if depth == 20 else "-",
            )
        )
    return headers, rows


def paper_reference_row() -> Tuple[Headers, Rows]:
    """The paper's raw Section IV numbers, for side-by-side reporting."""
    headers = ("quantity", "paper value")
    rows: Rows = [
        ("proof generation, 2^32 group", f"{PAPER_PROOF_GENERATION_SECONDS} s"),
        ("proof verification", f"{PAPER_PROOF_VERIFICATION_SECONDS} s"),
        ("key size", f"{KEY_SIZE_BYTES} B"),
        ("depth-20 tree, naive", f"{PAPER_FULL_TREE_STORAGE_BYTES} B"),
        ("depth-20 tree, optimized", f"{PAPER_OPTIMIZED_TREE_STORAGE_BYTES} B"),
    ]
    return headers, rows
