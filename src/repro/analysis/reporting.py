"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Any, List, Sequence


def format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    if isinstance(value, int) and abs(value) >= 10_000:
        return f"{value:,}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned ASCII table."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    def line(parts: Sequence[str]) -> str:
        return "  ".join(p.ljust(w) for p, w in zip(parts, widths)).rstrip()

    separator = "  ".join("-" * w for w in widths)
    out: List[str] = [line(headers), separator]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def format_experiment(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    note: str = "",
) -> str:
    """A titled experiment block, ready for the terminal or a report."""
    parts = [f"== {title} ==", format_table(headers, rows)]
    if note:
        parts.append(note)
    return "\n".join(parts) + "\n"


def human_bytes(size: float) -> str:
    """1234567 -> '1.23 MB' (decimal units, as the paper uses)."""
    for unit in ("B", "KB", "MB", "GB"):
        if abs(size) < 1000:
            return f"{size:.3g} {unit}"
        size /= 1000
    return f"{size:.3g} TB"
