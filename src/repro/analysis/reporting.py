"""Plain-text table rendering and machine-readable experiment payloads."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

#: Schema version stamped into every experiment JSON payload.
EXPERIMENT_SCHEMA_VERSION = 1

#: JSON-representable scalar cell types (tables may also hold "-" etc.).
_SCALAR_TYPES = (str, int, float, bool, type(None))


def format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    if isinstance(value, int) and abs(value) >= 10_000:
        return f"{value:,}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned ASCII table."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    def line(parts: Sequence[str]) -> str:
        return "  ".join(p.ljust(w) for p, w in zip(parts, widths)).rstrip()

    separator = "  ".join("-" * w for w in widths)
    out: List[str] = [line(headers), separator]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def format_experiment(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    note: str = "",
) -> str:
    """A titled experiment block, ready for the terminal or a report."""
    parts = [f"== {title} ==", format_table(headers, rows)]
    if note:
        parts.append(note)
    return "\n".join(parts) + "\n"


def experiment_payload(
    name: str,
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    note: str = "",
    meta: Dict[str, Any] | None = None,
) -> Dict[str, Any]:
    """The machine-readable twin of :func:`format_experiment`.

    Benchmarks persist this next to their .txt tables
    (``benchmarks/results/<name>.json``) so perf numbers — scale,
    wall-clock, hash counts, cache hit rates — accumulate as a
    parseable trajectory instead of prose. ``meta`` carries
    benchmark-specific key figures (e.g. speedup factors) that a tracker
    should not have to re-derive from table cells.
    """
    payload = {
        "schema_version": EXPERIMENT_SCHEMA_VERSION,
        "name": name,
        "title": title,
        "headers": list(headers),
        "rows": [list(row) for row in rows],
        "note": note,
        "meta": dict(meta or {}),
    }
    validate_experiment_payload(payload)
    return payload


def validate_experiment_payload(payload: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``payload`` matches the schema.

    Checked at write time by every benchmark and at tier-1 time over the
    committed ``benchmarks/results/*.json`` files, so a drifting bench
    script cannot silently corrupt the recorded perf trajectory.
    """

    def fail(message: str) -> None:
        raise ValueError(f"experiment payload invalid: {message}")

    if not isinstance(payload, dict):
        fail("payload must be an object")
    required = {
        "schema_version", "name", "title", "headers", "rows", "note", "meta"
    }
    missing = required - payload.keys()
    if missing:
        fail(f"missing keys {sorted(missing)}")
    if payload["schema_version"] != EXPERIMENT_SCHEMA_VERSION:
        fail(f"unknown schema_version {payload['schema_version']!r}")
    for key in ("name", "title", "note"):
        if not isinstance(payload[key], str):
            fail(f"{key} must be a string")
    if not payload["name"]:
        fail("name must be non-empty")
    headers = payload["headers"]
    if not isinstance(headers, list) or not headers:
        fail("headers must be a non-empty list")
    if not all(isinstance(h, str) for h in headers):
        fail("headers must be strings")
    rows = payload["rows"]
    if not isinstance(rows, list):
        fail("rows must be a list")
    for i, row in enumerate(rows):
        if not isinstance(row, list) or len(row) != len(headers):
            fail(f"row {i} must be a list of {len(headers)} cells")
        for cell in row:
            if not isinstance(cell, _SCALAR_TYPES):
                fail(f"row {i} holds non-scalar cell {cell!r}")
    meta = payload["meta"]
    if not isinstance(meta, dict):
        fail("meta must be an object")
    for key, value in meta.items():
        if not isinstance(key, str) or not isinstance(value, _SCALAR_TYPES):
            fail(f"meta entry {key!r} must map a string to a scalar")
    # Optional well-known meta field: benchmarks that measure memory
    # record their tracemalloc peak here so the perf trajectory can
    # track footprint alongside wall-clock.
    if "peak_memory_bytes" in meta:
        peak = meta["peak_memory_bytes"]
        if not isinstance(peak, int) or isinstance(peak, bool) or peak < 0:
            fail("meta.peak_memory_bytes must be a non-negative integer")


def human_bytes(size: float) -> str:
    """1234567 -> '1.23 MB' (decimal units, as the paper uses)."""
    for unit in ("B", "KB", "MB", "GB"):
        if abs(size) < 1000:
            return f"{size:.3g} {unit}"
        size /= 1000
    return f"{size:.3g} TB"
