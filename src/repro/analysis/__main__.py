"""Run every experiment and print its table.

Usage::

    python -m repro.analysis                        # all experiments
    python -m repro.analysis e1 e5 e7               # a subset
    python -m repro.analysis list-scenarios         # scenario registry
    python -m repro.analysis list-strategies        # adversary strategies
    python -m repro.analysis run-scenario burst-spammer --peers 200
    python -m repro.analysis run-scenario rotating-sybil-economics

The output of a full run is what EXPERIMENTS.md records.
"""

from __future__ import annotations

import json
import sys

from . import (
    economics_experiment,
    epoch_length_ablation,
    flood_publish_ablation,
    mesh_degree_ablation,
    network_scaling_experiment,
    root_window_ablation,
    format_experiment,
    gas_cost_experiment,
    gas_vs_depth_experiment,
    key_material_experiment,
    merkle_storage_experiment,
    nullifier_map_experiment,
    paper_reference_row,
    proof_generation_experiment,
    proof_verification_experiment,
    propagation_experiment,
    routing_overhead_experiment,
    spam_protection_experiment,
)

EXPERIMENTS = {
    "e1": (
        "E1: proof generation vs group size (paper: ~0.5 s at 2^32)",
        proof_generation_experiment,
    ),
    "e2": (
        "E2: proof verification, constant in group size (paper: ~30 ms)",
        proof_verification_experiment,
    ),
    "e3": ("E3: key material sizes (paper: 32 B keys)", key_material_experiment),
    "e4": (
        "E4: membership tree storage (paper: 67 MB vs 0.128 KB at depth 20)",
        merkle_storage_experiment,
    ),
    "e5": (
        "E5: registration/deletion gas, registry vs on-chain tree",
        gas_cost_experiment,
    ),
    "e5b": (
        "E5b: on-chain tree gas grows with depth; registry does not",
        gas_vs_depth_experiment,
    ),
    "e6": (
        "E6: propagation latency, off-chain gossip vs on-chain mining",
        propagation_experiment,
    ),
    "e7": (
        "E7: spam reach under attack, vs PoW / peer-scoring / plain",
        spam_protection_experiment,
    ),
    "e8": (
        "E8: per-message computational overhead by device class",
        routing_overhead_experiment,
    ),
    "e9": (
        "E9: nullifier-map memory bounded by Thr window",
        nullifier_map_experiment,
    ),
    "e10": ("E10: slashing economics", economics_experiment),
    "ref": ("Paper reference values (Section IV)", paper_reference_row),
    "a1": ("Ablation: epoch length T", epoch_length_ablation),
    "a2": ("Ablation: root window vs staleness", root_window_ablation),
    "a3": ("Ablation: flood-publish vs mesh-only", flood_publish_ablation),
    "a4": ("Ablation: mesh degree D", mesh_degree_ablation),
    "scale": ("Scaling: propagation vs network size", network_scaling_experiment),
}


def _explain_parallel(spec, workers) -> int:
    """Dry-run: print the shard/worker plan a parallel run would use,
    without building or running anything. Everything shown is derived
    from the spec alone — the same pins, block plan and contiguous
    worker groups the runner computes."""
    from ..scenarios.parallel import contiguous_groups
    from ..sim.latency import UniformLatency
    from ..sim.shards import ShardPlan

    workers = min(workers, spec.shards)
    roster = [f"peer-{i}" for i in range(spec.peers)]
    pins = {}
    tail = spec.adversaries.total_count
    for index in range(spec.peers - tail, spec.peers):
        pins[f"peer-{index}"] = 0
    service_ids = ()
    if spec.watchtowers is not None:
        service_ids = spec.watchtowers.service_ids()
        for service_id in service_ids:
            pins[service_id] = 0
    plan = ShardPlan.blocked(roster, spec.shards, pins=pins)
    window = spec.parallel_window
    if window is None:
        window = UniformLatency(base_seconds=0.03).min_latency()
    barriers = max(1, -(-spec.duration // window))
    print(f"scenario          {spec.name}")
    print(f"peers             {spec.peers}")
    print(f"shards            {spec.shards}")
    print(f"workers           {workers}" + (" (in-process)" if workers <= 1 else " (forked)"))
    print(f"barrier window    {window}s  ({int(barriers)} barriers over {spec.duration}s)")
    if spec.pre_registered:
        print(f"pre-registered    {spec.pre_registered} genesis identities")
    by_shard = {s: 0 for s in range(spec.shards)}
    for node_id in roster:
        by_shard[plan.shard_of(node_id)] += 1
    for index, group in enumerate(contiguous_groups(spec.shards, workers)):
        peers_owned = sum(by_shard[s] for s in group)
        shards_text = (
            f"shard {group.start}"
            if len(group) == 1
            else f"shards {group.start}-{group.stop - 1}"
        )
        extras = []
        if 0 in group:
            if tail:
                extras.append(f"{tail} adversaries (pinned)")
            if service_ids:
                extras.append(
                    f"{len(service_ids)} watchtowers (pinned)"
                )
        suffix = f"  + {', '.join(extras)}" if extras else ""
        print(
            f"  worker {index}        {shards_text}: "
            f"{peers_owned} peers{suffix}"
        )
    problems = spec.parallel_rejections()
    if problems:
        print("parallel-incompatible features:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("all features parallel-capable")
    return 0


def _run_scenario_command(argv) -> int:
    """``run-scenario <name> [--peers N] [--duration S] [--seed K]
    [--shards N] [--workers N] [--json] [--explain-parallel]``

    ``--workers`` opts into the window-isolated parallel mode
    (``ScenarioSpec.parallel_workers``; forked workers when > 1 and
    shards allow). ``--explain-parallel`` prints the shard/worker plan
    and exits without running."""
    from ..errors import ScenarioError, ScenarioSpecError
    from ..scenarios import run_scenario, scenario, scenario_names

    if not argv:
        print(f"usage: run-scenario <name>; choose from {scenario_names()}")
        return 1
    name, flags = argv[0], argv[1:]
    overrides = {
        "peers": None, "duration": None, "seed": None, "shards": None,
        "workers": None,
    }
    as_json = False
    explain = False
    i = 0
    while i < len(flags):
        flag = flags[i]
        if flag == "--json":
            as_json = True
            i += 1
            continue
        if flag == "--explain-parallel":
            explain = True
            i += 1
            continue
        key = flag.lstrip("-")
        if key not in overrides or i + 1 >= len(flags):
            print(f"unknown or valueless flag {flag!r}")
            return 1
        caster = float if key == "duration" else int
        try:
            overrides[key] = caster(flags[i + 1])
        except ValueError:
            print(f"flag {flag!r} expects a number, got {flags[i + 1]!r}")
            return 1
        i += 2
    workers = overrides.pop("workers")
    if explain:
        # The plan is computed from the spec without entering parallel
        # mode, so incompatible features are listed rather than raised.
        spec = scenario(name).scaled(
            peers=overrides["peers"],
            duration=overrides["duration"],
            seed=overrides["seed"],
            shards=overrides["shards"],
        )
        return _explain_parallel(spec, workers or spec.parallel_workers or 1)
    try:
        result = run_scenario(
            scenario(name), parallel_workers=workers, **overrides
        )
    except ScenarioSpecError as exc:
        # The typed rejection aggregates every offending feature.
        print(str(exc))
        for problem in exc.problems:
            print(f"  - {problem}")
        return 1
    except ScenarioError as exc:
        print(str(exc))
        return 1
    print(json.dumps(result.to_dict()) if as_json else result.format())
    return 0


def _list_scenarios() -> int:
    from ..scenarios import all_scenarios

    for spec in all_scenarios():
        print(f"{spec.name}")
        print(f"    peers={spec.peers} duration={spec.duration}s")
        print(f"    {spec.description}")
    return 0


def _list_strategies() -> int:
    """Adversary strategies usable in an ``AdversaryGroup``."""
    from ..adversaries.strategies import strategy_summaries

    for name, doc in strategy_summaries():
        print(f"{name}")
        print(f"    {doc}")
    return 0


def main(argv) -> int:
    if argv and argv[0] == "run-scenario":
        return _run_scenario_command(argv[1:])
    if argv and argv[0] == "list-scenarios":
        return _list_scenarios()
    if argv and argv[0] == "list-strategies":
        return _list_strategies()
    selected = [a.lower() for a in argv] or list(EXPERIMENTS)
    unknown = [s for s in selected if s not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; choose from {list(EXPERIMENTS)}")
        return 1
    for key in selected:
        title, runner = EXPERIMENTS[key]
        headers, rows = runner()
        print(format_experiment(title, headers, rows))
    return 0


def _reexec_with_stable_hashing() -> None:
    """Pin ``PYTHONHASHSEED`` so scenario runs are reproducible *across*
    processes, not just within one.

    Gossip meshes are sets of peer ids; their iteration order decides
    the order in which per-link latencies are drawn from the seeded RNG,
    and that order follows Python's (normally randomised) string
    hashing. Seeding alone therefore only fixes results within a single
    interpreter — the CLI re-executes itself once with deterministic
    hashing so ``run-scenario`` fingerprints are stable run-to-run.
    """
    import os

    if os.environ.get("PYTHONHASHSEED") == "0":
        return
    env = dict(os.environ, PYTHONHASHSEED="0")
    os.execve(
        sys.executable,
        [sys.executable, "-m", "repro.analysis", *sys.argv[1:]],
        env,
    )


if __name__ == "__main__":
    _reexec_with_stable_hashing()
    raise SystemExit(main(sys.argv[1:]))
