"""Run every experiment and print its table.

Usage::

    python -m repro.analysis            # all experiments
    python -m repro.analysis e1 e5 e7   # a subset

The output of a full run is what EXPERIMENTS.md records.
"""

from __future__ import annotations

import sys

from . import (
    economics_experiment,
    epoch_length_ablation,
    flood_publish_ablation,
    mesh_degree_ablation,
    network_scaling_experiment,
    root_window_ablation,
    format_experiment,
    gas_cost_experiment,
    gas_vs_depth_experiment,
    key_material_experiment,
    merkle_storage_experiment,
    nullifier_map_experiment,
    paper_reference_row,
    proof_generation_experiment,
    proof_verification_experiment,
    propagation_experiment,
    routing_overhead_experiment,
    spam_protection_experiment,
)

EXPERIMENTS = {
    "e1": (
        "E1: proof generation vs group size (paper: ~0.5 s at 2^32)",
        proof_generation_experiment,
    ),
    "e2": (
        "E2: proof verification, constant in group size (paper: ~30 ms)",
        proof_verification_experiment,
    ),
    "e3": ("E3: key material sizes (paper: 32 B keys)", key_material_experiment),
    "e4": (
        "E4: membership tree storage (paper: 67 MB vs 0.128 KB at depth 20)",
        merkle_storage_experiment,
    ),
    "e5": (
        "E5: registration/deletion gas, registry vs on-chain tree",
        gas_cost_experiment,
    ),
    "e5b": (
        "E5b: on-chain tree gas grows with depth; registry does not",
        gas_vs_depth_experiment,
    ),
    "e6": (
        "E6: propagation latency, off-chain gossip vs on-chain mining",
        propagation_experiment,
    ),
    "e7": (
        "E7: spam reach under attack, vs PoW / peer-scoring / plain",
        spam_protection_experiment,
    ),
    "e8": (
        "E8: per-message computational overhead by device class",
        routing_overhead_experiment,
    ),
    "e9": (
        "E9: nullifier-map memory bounded by Thr window",
        nullifier_map_experiment,
    ),
    "e10": ("E10: slashing economics", economics_experiment),
    "ref": ("Paper reference values (Section IV)", paper_reference_row),
    "a1": ("Ablation: epoch length T", epoch_length_ablation),
    "a2": ("Ablation: root window vs staleness", root_window_ablation),
    "a3": ("Ablation: flood-publish vs mesh-only", flood_publish_ablation),
    "a4": ("Ablation: mesh degree D", mesh_degree_ablation),
    "scale": ("Scaling: propagation vs network size", network_scaling_experiment),
}


def main(argv) -> int:
    selected = [a.lower() for a in argv] or list(EXPERIMENTS)
    unknown = [s for s in selected if s not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; choose from {list(EXPERIMENTS)}")
        return 1
    for key in selected:
        title, runner = EXPERIMENTS[key]
        headers, rows = runner()
        print(format_experiment(title, headers, rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
