"""Experiments E7–E9: spam protection vs baselines, routing overhead,
nullifier-map behaviour."""

from __future__ import annotations

import random
import time
from typing import List, Sequence, Tuple

from ..attacks.spam import FloodSpammer, PowSpammer, RlnSpammer, SybilArmy
from ..baselines.pow import (
    ATTACKER_RIG,
    DESKTOP,
    IOT_DEVICE,
    PHONE,
    mine_envelope,
    verify_envelope,
)
from ..baselines.relay_baselines import (
    BaselineNetwork,
    PowRelayNetwork,
    scoring_network,
)
from ..core.config import ProtocolConfig
from ..core.nullifier_map import NullifierMap
from ..core.protocol import WakuRlnRelayNetwork
from ..crypto.keys import MembershipKeyPair
from ..crypto.merkle import MerkleTree
from ..rln.prover import RlnProver, rln_keys

Headers = Sequence[str]
Rows = List[Sequence]

SPAM = b"SPAM"


def _spam_stats(deliveries, exclude_ids) -> Tuple[float, int]:
    """(mean spam deliveries per honest peer, total spam deliveries)."""
    honest = {
        nid: msgs for nid, msgs in deliveries.items() if nid not in exclude_ids
    }
    # PoW payloads carry envelope framing before the marker, so match
    # containment rather than prefix.
    counts = [
        sum(1 for m in msgs if SPAM in m) for msgs in honest.values()
    ]
    total = sum(counts)
    return (total / len(counts) if counts else 0.0), total


def spam_protection_experiment(
    peer_count: int = 40,
    attack_epochs: int = 5,
    burst: int = 5,
    seed: int = 23,
) -> Tuple[Headers, Rows]:
    """E7 — the same flooding adversary against all four systems.

    Reports how much spam honest peers actually received, and whether
    the system removed the attacker globally.
    """
    rows: Rows = []
    epoch_len = ProtocolConfig().epoch_length
    duration = attack_epochs * epoch_len + 30.0

    # --- Waku-RLN-Relay -----------------------------------------------------
    net = WakuRlnRelayNetwork(peer_count=peer_count, seed=seed)
    net.register_all()
    deliveries = net.collect_deliveries()
    net.start()
    net.run(2.0)
    spammer = RlnSpammer(net.peer(0), burst=burst)
    spammer.run(net, attack_epochs)
    net.run(duration)
    mean_spam, total_spam = _spam_stats(deliveries, {net.peer(0).node_id})
    rows.append(
        (
            "Waku-RLN-Relay",
            spammer.sent,
            total_spam,
            mean_spam,
            "yes (slashed + stake lost)"
            if not net.peer(0).is_registered
            else "no",
        )
    )

    # --- unprotected relay ----------------------------------------------------
    plain = BaselineNetwork(peer_count=peer_count, seed=seed)
    plain_deliveries = plain.collect_deliveries()
    plain.start()
    plain.run(2.0)
    flooder = FloodSpammer(
        plain, "peer-0", rate_per_second=burst / epoch_len
    )
    flooder.run(duration - 30.0)
    plain.run(duration)
    mean_spam, total_spam = _spam_stats(plain_deliveries, {"peer-0"})
    rows.append(
        ("plain relay (no protection)", flooder.sent, total_spam, mean_spam, "no")
    )

    # --- peer-scoring baseline ---------------------------------------------------
    # Botnet variant: every Sybil has its own IP (the paper's
    # "inexpensive attack where millions of bots can be deployed").
    for shared_ip, label, verdict in (
        (None, "peer scoring + Sybil botnet", "no (bots are free to rejoin)"),
        (
            "203.0.113.7",
            "peer scoring + single-IP Sybils",
            "no (graylisted, but free to re-IP)",
        ),
    ):
        scored = scoring_network(peer_count=peer_count, seed=seed)
        scored_deliveries = scored.collect_deliveries()
        scored.start()
        scored.run(2.0)
        army = SybilArmy(
            scored,
            bot_count=8,
            rate_per_bot=burst / epoch_len,
            shared_ip=shared_ip,
        )
        army.deploy()
        army.run(duration - 30.0)
        scored.run(duration)
        mean_spam, total_spam = _spam_stats(
            scored_deliveries, set(army.bots)
        )
        rows.append((label, len(army.bots), total_spam, mean_spam, verdict))

    # --- PoW baseline ---------------------------------------------------------------
    pow_net = PowRelayNetwork(
        peer_count=peer_count, seed=seed, difficulty_bits=18, mining_bits=6
    )
    pow_deliveries = pow_net.collect_deliveries()
    pow_net.start()
    pow_net.run(2.0)
    pow_spammer = PowSpammer(pow_net, "peer-0", device=ATTACKER_RIG)
    # Cap the schedule: an attacker rig sustains ~190 msg/s at 18 bits.
    pow_spammer.run(min(duration - 30.0, 2.0))
    pow_net.run(duration)
    mean_spam, total_spam = _spam_stats(pow_deliveries, {"peer-0"})
    rows.append(
        (
            f"Whisper PoW (18 bits, attacker rig)",
            pow_spammer.sent,
            total_spam,
            mean_spam,
            "no (work is the only cost)",
        )
    )

    headers = (
        "system",
        "spam sent",
        "spam delivered (total)",
        "spam per honest peer",
        "attacker removed?",
    )
    return headers, rows


def routing_overhead_experiment(
    repetitions: int = 300,
) -> Tuple[Headers, Rows]:
    """E8 — per-message cost on the publisher and the router.

    Modeled costs use the paper's calibrated numbers; measured costs are
    this implementation's wall-clock. PoW publisher cost depends on the
    device, which is the paper's resource-restriction argument.
    """
    config = ProtocolConfig()
    model = config.performance_model
    headers = (
        "system",
        "publisher cost/msg (s)",
        "router cost/msg (s)",
        "notes",
    )
    # RLN: measured native proving + measured validation.
    pk, vk = rln_keys(seed=b"e8")
    rng = random.Random(8)
    tree = MerkleTree(20)
    pair = MembershipKeyPair.generate(rng)
    index = tree.insert(pair.commitment.element)
    prover = RlnProver(keypair=pair, proving_key=pk)
    start = time.perf_counter()
    signal = prover.create_signal(b"overhead", 1, tree.proof(index))
    prove_measured = time.perf_counter() - start

    from ..rln.verifier import RlnVerifier

    verifier = RlnVerifier(
        verifying_key=vk, root_predicate=lambda r: r == tree.root
    )
    start = time.perf_counter()
    for _ in range(repetitions):
        verifier.is_valid(signal)
    verify_measured = (time.perf_counter() - start) / repetitions

    rows: Rows = [
        (
            "RLN (paper model, phone)",
            model.prove_seconds(20),
            model.verify_seconds,
            "prove once per epoch; verify constant",
        ),
        (
            "RLN (this implementation)",
            prove_measured,
            verify_measured,
            "simulated Groth16",
        ),
    ]
    # PoW: modeled mining per device; verification is one hash.
    envelope, _ = mine_envelope(b"overhead", 6, rng=rng)
    start = time.perf_counter()
    for _ in range(repetitions):
        verify_envelope(envelope, 6)
    pow_verify = (time.perf_counter() - start) / repetitions
    for device in (DESKTOP, PHONE, IOT_DEVICE):
        rows.append(
            (
                f"Whisper PoW 18 bits ({device.name})",
                device.expected_mining_seconds(18),
                pow_verify,
                "mine EVERY message",
            )
        )
    rows.append(
        ("plain relay", 0.0, 0.0, "no admission control")
    )
    return headers, rows


def nullifier_map_experiment(
    epochs: int = 40,
    senders_per_epoch: int = 30,
    thr: int = 2,
) -> Tuple[Headers, Rows]:
    """E9 — nullifier-map memory stays bounded by the Thr window."""
    pk, _vk = rln_keys(seed=b"e9")
    rng = random.Random(9)
    tree = MerkleTree(12)
    provers = []
    for _ in range(senders_per_epoch):
        pair = MembershipKeyPair.generate(rng)
        index = tree.insert(pair.commitment.element)
        provers.append(
            (RlnProver(keypair=pair, proving_key=pk), index)
        )
    nmap = NullifierMap(thr=thr)
    unbounded = NullifierMap(thr=thr)
    headers = (
        "epoch",
        "entries (pruned)",
        "bytes (pruned)",
        "entries (never pruned)",
    )
    rows: Rows = []
    report_at = {1, epochs // 4, epochs // 2, 3 * epochs // 4, epochs - 1}
    for epoch in range(epochs):
        for prover, index in provers:
            signal = prover.create_signal(
                f"e{epoch}".encode(), epoch, tree.proof(index)
            )
            nmap.observe(signal)
            unbounded.observe(signal)
        nmap.prune(current_epoch=epoch)
        if epoch in report_at:
            rows.append(
                (
                    epoch,
                    nmap.entry_count,
                    nmap.storage_bytes(),
                    unbounded.entry_count,
                )
            )
    return headers, rows
