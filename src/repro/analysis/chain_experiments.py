"""Experiments E5, E6, E10: gas costs, propagation latency, economics."""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..baselines.onchain_messaging import OnChainMessagingSystem
from ..core.config import ProtocolConfig
from ..core.economics import build_report
from ..core.protocol import WakuRlnRelayNetwork
from ..crypto.keys import MembershipKeyPair
from ..eth.chain import Blockchain
from ..eth.contracts import MembershipRegistry, OnChainTreeContract
from ..sim.metrics import Histogram

Headers = Sequence[str]
Rows = List[Sequence]

STAKE = 10**18


def _measure_contract(contract, member_count: int) -> Tuple[int, int]:
    """(register gas, slash gas) with ``member_count`` existing members."""
    chain = Blockchain()
    chain.deploy(contract)
    rng = random.Random(99)
    pairs = [MembershipKeyPair.generate(rng) for _ in range(member_count + 1)]
    for i, pair in enumerate(pairs[:member_count]):
        chain.create_account(f"m{i}", balance=2 * STAKE)
        receipt = chain.call_now(
            f"m{i}",
            contract.address,
            "register",
            int(pair.commitment.element),
            value=STAKE,
        )
        assert receipt.success, receipt.error
    chain.create_account("probe", balance=4 * STAKE)
    register_receipt = chain.call_now(
        "probe",
        contract.address,
        "register",
        int(pairs[member_count].commitment.element),
        value=STAKE,
    )
    assert register_receipt.success, register_receipt.error
    slash_receipt = chain.call_now(
        "probe",
        contract.address,
        "slash",
        int(pairs[member_count].secret.element),
    )
    assert slash_receipt.success, slash_receipt.error
    return register_receipt.gas_used, slash_receipt.gas_used


def gas_cost_experiment(
    member_counts: Sequence[int] = (0, 16, 64, 256),
    depth: int = 20,
) -> Tuple[Headers, Rows]:
    """E5 — registry (paper) vs on-chain tree (original RLN) gas."""
    headers = (
        "existing members",
        "registry reg",
        "registry slash",
        "tree reg",
        "tree slash",
        "reg ratio",
    )
    rows: Rows = []
    for count in member_counts:
        reg_gas, reg_slash = _measure_contract(
            MembershipRegistry("m", stake_wei=STAKE), count
        )
        tree_gas, tree_slash = _measure_contract(
            OnChainTreeContract("m", depth=depth, stake_wei=STAKE), count
        )
        rows.append(
            (
                count,
                reg_gas,
                reg_slash,
                tree_gas,
                tree_slash,
                tree_gas / reg_gas,
            )
        )
    return headers, rows


def gas_vs_depth_experiment(
    depths: Sequence[int] = (10, 16, 20, 26, 32),
) -> Tuple[Headers, Rows]:
    """E5b — on-chain tree cost scales with depth; registry does not."""
    headers = ("depth", "registry reg", "tree reg", "ratio")
    registry_gas, _ = _measure_contract(
        MembershipRegistry("m", stake_wei=STAKE), 4
    )
    rows: Rows = []
    for depth in depths:
        tree_gas, _ = _measure_contract(
            OnChainTreeContract("m", depth=depth, stake_wei=STAKE), 4
        )
        rows.append((depth, registry_gas, tree_gas, tree_gas / registry_gas))
    return headers, rows


def propagation_experiment(
    peer_count: int = 50,
    messages: int = 20,
    block_interval: float = 13.0,
    seed: int = 3,
    model_crypto_latency: bool = True,
) -> Tuple[Headers, Rows]:
    """E6 — off-chain gossip vs on-chain mining latency.

    Off-chain: messages propagate over the RLN relay network (including
    modeled proving/verification cost when enabled). On-chain: each
    message is a transaction that becomes visible when mined.
    """
    config = ProtocolConfig(model_crypto_latency=model_crypto_latency)
    net = WakuRlnRelayNetwork(
        peer_count=peer_count,
        seed=seed,
        config=config,
        block_interval=block_interval,
    )
    net.register_all()
    net.start()
    net.run(5.0)

    latencies = Histogram()
    publish_times = {}
    expected_receivers = peer_count - 1

    def on_delivery(payload: bytes, _mid: str) -> None:
        sent_at = publish_times.get(payload)
        if sent_at is not None:
            latencies.observe(net.simulator.now - sent_at)

    for peer in net.peers:
        peer.on_payload(on_delivery)

    rng = random.Random(seed)
    epoch = net.config.epoch_length
    for m in range(messages):
        publisher = net.peers[rng.randrange(peer_count)]
        payload = f"prop-{m}".encode()

        def publish(_sim, p=publisher, data=payload):
            publish_times[data] = net.simulator.now
            try:
                p.publish(data)
            except Exception:
                pass  # publisher already used its epoch slot

        net.simulator.schedule(m * epoch + 0.5, publish, label="prop")
    net.run(messages * epoch + 60.0)

    onchain = OnChainMessagingSystem(block_interval=block_interval)
    onchain_lat = Histogram()
    now = 0.0
    rng = random.Random(seed + 1)
    next_block = block_interval
    for m in range(messages):
        now += rng.uniform(0, 2 * block_interval / max(1, messages // 4))
        onchain.post(payload_hash=m + 1, epoch=int(now), now=now)
        while next_block <= now:
            onchain.mine(next_block)
            next_block += block_interval
    while onchain.deliveries != [] and len(onchain.deliveries) < messages:
        onchain.mine(next_block)
        next_block += block_interval
    for delivery in onchain.deliveries:
        onchain_lat.observe(delivery.latency)

    headers = (
        "system",
        "mean latency (s)",
        "p99 latency (s)",
        "max (s)",
        "deliveries",
    )
    rows: Rows = [
        (
            "Waku-RLN-Relay (off-chain gossip)",
            latencies.mean,
            latencies.percentile(99),
            latencies.maximum,
            latencies.count,
        ),
        (
            f"on-chain signals ({block_interval:.0f}s blocks)",
            onchain_lat.mean,
            onchain_lat.percentile(99),
            onchain_lat.maximum,
            onchain_lat.count,
        ),
    ]
    del expected_receivers
    return headers, rows


def economics_experiment(
    spammer_count: int = 3,
    peer_count: int = 20,
    seed: int = 17,
) -> Tuple[Headers, Rows]:
    """E10 — the attacker always pays: every spamming identity loses
    its stake; reporters collect the rewards."""
    net = WakuRlnRelayNetwork(peer_count=peer_count, seed=seed)
    initial = {p.node_id: p.balance for p in net.peers}
    net.register_all()
    net.start()
    net.run(5.0)
    spammer_ids = [net.peers[i].node_id for i in range(spammer_count)]
    for i in range(spammer_count):
        spammer = net.peers[i]
        spammer.publish(b"s1-%d" % i)
        spammer.publish(b"s2-%d" % i, bypass_rate_limit=True)
    net.run(60.0)
    report = build_report(net.chain, net.contract, net.peers, initial)
    stake = net.config.stake_wei
    reporters = [
        l
        for l in report.ledgers
        if l.node_id not in spammer_ids and l.net_flow > -stake
    ]
    headers = ("quantity", "value (wei)", "value (ETH)")
    attacker_loss = report.attackers_net_loss(spammer_ids)
    reward_total = sum(l.net_flow + stake for l in reporters)
    rows: Rows = [
        ("stake per member", stake, stake / 1e18),
        ("attackers", spammer_count, ""),
        ("total attacker loss", attacker_loss, attacker_loss / 1e18),
        ("total burnt", report.total_burnt, report.total_burnt / 1e18),
        ("total reporter rewards", reward_total, reward_total / 1e18),
        ("rewarded reporters", len(reporters), ""),
    ]
    return headers, rows
