"""GossipSub wire objects.

A single :class:`RpcPacket` envelope carries any combination of message
publications, control messages (IHAVE/IWANT/GRAFT/PRUNE) and
subscription changes, as in the libp2p protobuf schema. Packets contain
**no origin information** — only the previous hop is visible to a
receiver, which is the property Waku-Relay's anonymity builds on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Dict, List, Tuple


def payload_to_bytes(payload: Any) -> bytes:
    """Canonical byte view of a payload (bytes or ``to_bytes()`` objects)."""
    if isinstance(payload, (bytes, bytearray)):
        return bytes(payload)
    # Guard against primitives: int.to_bytes() would silently "work".
    if not isinstance(payload, (int, float, str, bool)):
        to_bytes = getattr(payload, "to_bytes", None)
        if callable(to_bytes):
            return to_bytes()
    raise TypeError(
        f"payload of type {type(payload).__name__} is not byte-serializable"
    )


def compute_message_id(topic: str, payload: Any) -> str:
    """Content-addressed message ID: ``H(topic || payload)``.

    Deriving IDs from content only (never from a sender identity) keeps
    the routing layer anonymous and makes duplicate elimination
    origin-blind.
    """
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(topic.encode())
    hasher.update(b"\x00")
    hasher.update(payload_to_bytes(payload))
    return hasher.hexdigest()


@dataclass(frozen=True)
class GossipMessage:
    """One published message in flight."""

    msg_id: str
    topic: str
    payload: Any

    # One message object is shared by every router that relays it, and
    # each hop's bandwidth accounting asks for the size — cache the
    # byte-serialisation once per message, not once per hop.
    @cached_property
    def size_bytes(self) -> int:
        return len(payload_to_bytes(self.payload))


@dataclass
class RpcPacket:
    """The union envelope exchanged between gossipsub routers."""

    publish: List[GossipMessage] = field(default_factory=list)
    #: topic -> advertised message IDs
    ihave: Dict[str, List[str]] = field(default_factory=dict)
    iwant: List[str] = field(default_factory=list)
    graft: List[str] = field(default_factory=list)
    #: topic -> backoff seconds the receiver must respect
    prune: List[Tuple[str, float]] = field(default_factory=list)
    #: Peer Exchange (v1.1): topic -> alternative peers offered with a
    #: PRUNE, so the pruned peer can heal its mesh elsewhere.
    px: Dict[str, List[str]] = field(default_factory=dict)
    subscribe: List[str] = field(default_factory=list)
    unsubscribe: List[str] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not (
            self.publish
            or self.ihave
            or self.iwant
            or self.graft
            or self.prune
            or self.subscribe
            or self.unsubscribe
        )

    @property
    def size_bytes(self) -> int:
        """Rough wire size for bandwidth accounting.

        Computed once per send on the hot path, so plain loops instead
        of ``sum(...)`` generator expressions — most fields are empty
        for a typical packet and skip in a single truth test.
        """
        size = 8  # envelope framing
        for message in self.publish:
            size += 16 + len(message.topic) + message.size_bytes
        if self.ihave:
            for topic, ids in self.ihave.items():
                size += len(topic) + 16 * len(ids)
        if self.iwant:
            size += 16 * len(self.iwant)
        for topic in self.graft:
            size += len(topic)
        for topic, _ in self.prune:
            size += len(topic) + 8
        if self.px:
            for topic, peers in self.px.items():
                size += len(topic)
                for peer in peers:
                    size += len(peer)
        for topic in self.subscribe:
            size += len(topic)
        for topic in self.unsubscribe:
            size += len(topic)
        return size
