"""Message cache (mcache) and seen-cache for the gossipsub router."""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from .rpc import GossipMessage


class MessageCache:
    """Sliding-window cache backing IHAVE/IWANT gossip.

    Holds the last ``history_length`` heartbeat windows of messages; the
    most recent ``gossip_length`` windows are advertised in IHAVE. The
    router calls :meth:`shift` once per heartbeat.
    """

    def __init__(self, history_length: int = 5, gossip_length: int = 3) -> None:
        if gossip_length > history_length:
            raise ValueError("gossip window cannot exceed history window")
        self.history_length = history_length
        self.gossip_length = gossip_length
        self._messages: Dict[str, GossipMessage] = {}
        self._windows: deque[List[str]] = deque([[]])

    def put(self, message: GossipMessage) -> None:
        if message.msg_id in self._messages:
            return
        self._messages[message.msg_id] = message
        self._windows[0].append(message.msg_id)

    def get(self, msg_id: str) -> Optional[GossipMessage]:
        return self._messages.get(msg_id)

    def gossip_ids(self, topic: str) -> List[str]:
        """Message IDs for ``topic`` within the gossip window."""
        out: List[str] = []
        for window in list(self._windows)[: self.gossip_length]:
            for msg_id in window:
                message = self._messages.get(msg_id)
                if message is not None and message.topic == topic:
                    out.append(msg_id)
        return out

    def shift(self) -> None:
        """Advance one heartbeat; drop messages older than the history."""
        self._windows.appendleft([])
        while len(self._windows) > self.history_length:
            expired = self._windows.pop()
            for msg_id in expired:
                self._messages.pop(msg_id, None)

    def __len__(self) -> int:
        return len(self._messages)


class SeenCache:
    """Time-based duplicate suppression.

    Gossip floods produce many duplicate deliveries; each message ID is
    remembered for ``ttl`` simulated seconds.
    """

    def __init__(self, ttl: float = 120.0) -> None:
        self.ttl = ttl
        self._expiry: "Dict[str, float]" = {}

    def witness(self, msg_id: str, now: float) -> bool:
        """Record ``msg_id``; returns True when it was seen already."""
        self._sweep(now)
        seen = msg_id in self._expiry
        self._expiry[msg_id] = now + self.ttl
        return seen

    def __contains__(self, msg_id: str) -> bool:
        return msg_id in self._expiry

    def _sweep(self, now: float) -> None:
        if len(self._expiry) < 4096:
            return
        expired = [m for m, t in self._expiry.items() if t <= now]
        for msg_id in expired:
            del self._expiry[msg_id]

    def __len__(self) -> int:
        return len(self._expiry)
