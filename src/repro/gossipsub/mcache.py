"""Message cache (mcache) and seen-cache for the gossipsub router."""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, List, Optional, Tuple

from .rpc import GossipMessage


class MessageCache:
    """Sliding-window cache backing IHAVE/IWANT gossip.

    Holds the last ``history_length`` heartbeat windows of messages; the
    most recent ``gossip_length`` windows are advertised in IHAVE. The
    router calls :meth:`shift` once per heartbeat.

    Windows are indexed **per topic**, so :meth:`gossip_ids` touches
    only the queried topic's IDs (in insertion order) and an idle topic
    costs a dict miss — on a multiplexed mesh the heartbeat's gossip
    emission is O(own traffic), not O(all traffic x topics).
    :meth:`shift` is amortised O(1) per cached message: each ID is
    appended once and dropped once.
    """

    def __init__(self, history_length: int = 5, gossip_length: int = 3) -> None:
        if gossip_length > history_length:
            raise ValueError("gossip window cannot exceed history window")
        self.history_length = history_length
        self.gossip_length = gossip_length
        self._messages: Dict[str, GossipMessage] = {}
        #: Newest window first; each window maps topic -> message IDs
        #: in insertion order.
        self._windows: deque[Dict[str, List[str]]] = deque([{}])

    def put(self, message: GossipMessage) -> None:
        if message.msg_id in self._messages:
            return
        self._messages[message.msg_id] = message
        self._windows[0].setdefault(message.topic, []).append(message.msg_id)

    def get(self, msg_id: str) -> Optional[GossipMessage]:
        return self._messages.get(msg_id)

    def gossip_ids(self, topic: str) -> List[str]:
        """Message IDs for ``topic`` within the gossip window."""
        out: List[str] = []
        for i in range(min(self.gossip_length, len(self._windows))):
            ids = self._windows[i].get(topic)
            if ids:
                out.extend(ids)
        return out

    def shift(self) -> None:
        """Advance one heartbeat; drop messages older than the history."""
        self._windows.appendleft({})
        while len(self._windows) > self.history_length:
            expired = self._windows.pop()
            for ids in expired.values():
                for msg_id in ids:
                    self._messages.pop(msg_id, None)

    def __len__(self) -> int:
        return len(self._messages)


class SeenCache:
    """Time-based duplicate suppression.

    Gossip floods produce many duplicate deliveries; each message ID is
    remembered for ``ttl`` simulated seconds (re-witnessing extends the
    window). Expiry is amortised: every :meth:`witness` pops the few
    entries whose time has come off a min-heap, so the cache never does
    an O(n) sweep and its memory tracks the live working set.
    """

    def __init__(self, ttl: float = 120.0) -> None:
        self.ttl = ttl
        self._expiry: Dict[str, float] = {}
        #: (expiry, msg_id) min-heap with exactly ONE entry per live ID.
        #: A re-witness only updates the dict; when the entry's queued
        #: time surfaces, the sweep re-queues it at the true expiry.
        #: The alternative — push per witness — grows the heap with
        #: every duplicate delivery, which on a gossip flood means the
        #: heap tracks total traffic instead of the live working set.
        self._heap: List[Tuple[float, str]] = []

    def witness(self, msg_id: str, now: float) -> bool:
        """Record ``msg_id``; returns True when it was seen already."""
        self._sweep(now)
        seen = msg_id in self._expiry
        self._expiry[msg_id] = now + self.ttl
        if not seen:
            heapq.heappush(self._heap, (now + self.ttl, msg_id))
        return seen

    def __contains__(self, msg_id: str) -> bool:
        return msg_id in self._expiry

    def _sweep(self, now: float) -> None:
        heap = self._heap
        expiry_map = self._expiry
        while heap and heap[0][0] <= now:
            queued, msg_id = heap[0]
            actual = expiry_map.get(msg_id)
            if actual is None:
                heapq.heappop(heap)
            elif actual <= now:
                heapq.heappop(heap)
                del expiry_map[msg_id]
            else:
                # Re-witnessed since it was queued: push the entry back
                # down the heap at its real expiry.
                heapq.heapreplace(heap, (actual, msg_id))

    def __len__(self) -> int:
        return len(self._expiry)
