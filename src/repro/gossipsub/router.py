"""The GossipSub v1.1 router.

Implements the full message path of the libp2p spec: mesh overlays per
topic with GRAFT/PRUNE maintenance and backoff, fanout for unsubscribed
publishers, lazy gossip (IHAVE/IWANT) over a sliding message cache,
flood-publishing, per-topic validators, duplicate suppression and peer
scoring with gossip/publish/graylist thresholds and opportunistic
grafting.

One router instance is one network node; it talks to neighbours through
:class:`repro.net.network.Network` and drives its heartbeat off the
shared discrete-event simulator.

Heartbeat ownership and cost
----------------------------

The heartbeat owns all periodic state: mesh membership repair, score
decay ticks, fanout expiry, IHAVE emission, the mcache window shift and
backoff expiry. Everything else (mesh joins/leaves, score events) is
edge-triggered by RPC handling.

With ``GossipSubParams.batched_bookkeeping`` (the default) the
heartbeat does O(changed) work: score decay is a global-clock tick
(counters materialise lazily on access), mesh maintenance only visits
topics marked *dirty* by an actual change (a GRAFT/PRUNE, a link-down
notification from the network, a mesh out of its degree bounds, or a
mesh member entering the score tracker's suspect set), and backoffs
expire through a heap instead of an unbounded dict. Every
``full_sweep_interval`` heartbeats a self-healing full pass over all
subscribed topics runs, which is also when opportunistic grafting
happens. With ``batched_bookkeeping=False`` the router performs the
reference per-heartbeat sweep over every (topic, peer) pair; protocol
outcomes are bit-identical in both modes — the batched path only skips
work it can prove is a no-op.
"""

from __future__ import annotations

import heapq
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..errors import GossipError
from ..net.network import Network, NodeId
from ..sim.metrics import MetricsRegistry
from .mcache import MessageCache, SeenCache
from .params import GossipSubParams
from .rpc import GossipMessage, RpcPacket, compute_message_id
from .score import PeerScoreParams, PeerScoreTracker


class ValidationResult(Enum):
    """Outcome of a topic validator for one message."""

    ACCEPT = "accept"  # deliver + forward
    IGNORE = "ignore"  # drop silently (no score penalty)
    REJECT = "reject"  # drop + P4 penalty for the forwarding peer


#: Validator callback: (payload, previous_hop) -> ValidationResult.
Validator = Callable[[Any, NodeId], ValidationResult]

#: Application delivery callback: (topic, payload, msg_id, previous_hop).
DeliveryCallback = Callable[[str, Any, str, NodeId], None]


class GossipSubRouter:
    """A gossipsub v1.1 node.

    Public state an embedder may read (but should mutate only through
    the subscribe/publish API):

    * ``subscriptions`` — topics this node is subscribed to;
    * ``mesh`` — topic -> full-message mesh members (subset of current
      neighbours; repaired by the heartbeat);
    * ``fanout`` — topic -> publish targets for topics we publish to
      without subscribing; expires ``fanout_ttl`` seconds after the
      last publish;
    * ``topic_peers`` — topic -> peers known (from RPC) to subscribe.
    """

    def __init__(
        self,
        node_id: NodeId,
        network: Network,
        params: Optional[GossipSubParams] = None,
        score_params: Optional[PeerScoreParams] = None,
        metrics: Optional[MetricsRegistry] = None,
        processing_delay: float = 0.0,
    ) -> None:
        self.node_id = node_id
        self.network = network
        self.params = params or GossipSubParams()
        #: Simulated seconds of local work (e.g. zkSNARK verification)
        #: applied to each inbound RPC that carries message publications.
        self.processing_delay = processing_delay
        self.metrics = metrics if metrics is not None else network.metrics
        # Pre-bound counter dict: the registry method costs a call frame
        # per bump, and the delivery path bumps several per packet.
        self._counters = self.metrics.counters
        self.scores = PeerScoreTracker(
            score_params or PeerScoreParams(),
            lazy=self.params.batched_bookkeeping,
        )

        self.subscriptions: Set[str] = set()
        self.mesh: Dict[str, Set[NodeId]] = {}
        self.fanout: Dict[str, Set[NodeId]] = {}
        self._fanout_expiry: Dict[str, float] = {}
        #: topic -> peers we know are subscribed (learned from RPC).
        self.topic_peers: Dict[str, Set[NodeId]] = {}
        #: (peer, topic) -> expiry; a GRAFT before expiry is a protocol
        #: violation (P7). Entries expire lazily through ``_backoff_heap``.
        self._backoff: Dict[Tuple[NodeId, str], float] = {}
        self._backoff_heap: List[Tuple[float, NodeId, str]] = []
        #: Topics whose mesh needs maintenance on the next heartbeat.
        self._dirty_topics: Set[str] = set()
        self._heartbeat_count = 0

        self.mcache = MessageCache(self.params.mcache_len, self.params.mcache_gossip)
        self.seen = SeenCache(self.params.seen_ttl)
        self.validators: Dict[str, Validator] = {}
        self.delivery_callbacks: List[DeliveryCallback] = []
        self._heartbeat_cancel: Optional[Callable[[], None]] = None

        network.attach(self)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Begin heartbeating; call after the topology is wired."""
        if self._heartbeat_cancel is not None:
            return
        self._heartbeat_cancel = self.network.simulator.schedule_periodic(
            self.params.heartbeat_interval,
            lambda _sim: self.heartbeat(),
            label=f"heartbeat:{self.node_id}",
            jitter=0.1,
            stagger=True,
            rng=self.network.simulator.entity_rng(self.node_id),
            shard=self.node_id,
        )

    def stop(self) -> None:
        if self._heartbeat_cancel is not None:
            self._heartbeat_cancel()
            self._heartbeat_cancel = None

    @property
    def now(self) -> float:
        return self.network.simulator.now

    def peers(self) -> List[NodeId]:
        """Current direct neighbours (sorted)."""
        return self.network.neighbors(self.node_id)

    def on_link_down(self, peer: NodeId) -> None:
        """Network hook: a link of ours disappeared (churn).

        Eviction itself still happens on the next heartbeat — exactly
        when the reference sweep would notice — this only marks the
        affected topics dirty so the batched path looks at them.
        """
        for topic, mesh in self.mesh.items():
            if peer in mesh:
                self._dirty_topics.add(topic)

    # -- subscriptions ------------------------------------------------------------

    def subscribe(self, topic: str) -> None:
        """Join ``topic``: announce to neighbours and start building a
        mesh (fanout peers for the topic are adopted immediately)."""
        if topic in self.subscriptions:
            return
        self.subscriptions.add(topic)
        self.mesh.setdefault(topic, set())
        self._dirty_topics.add(topic)
        # Adopt fanout peers if we were publishing to this topic already.
        for peer in sorted(self.fanout.pop(topic, ())):
            self._graft_peer(peer, topic)
        self._fanout_expiry.pop(topic, None)
        self._broadcast_control(RpcPacket(subscribe=[topic]))

    def unsubscribe(self, topic: str) -> None:
        """Leave ``topic``: PRUNE every mesh member (with backoff and
        Peer Exchange) and announce the unsubscription."""
        if topic not in self.subscriptions:
            return
        self.subscriptions.discard(topic)
        for peer in sorted(self.mesh.get(topic, ())):
            self._prune_peer(peer, topic)
        self.mesh.pop(topic, None)
        self._dirty_topics.discard(topic)
        self._broadcast_control(RpcPacket(unsubscribe=[topic]))

    def announce_to(self, peer: NodeId) -> None:
        """Tell a (new) neighbour which topics we are subscribed to."""
        if self.subscriptions:
            self._send(peer, RpcPacket(subscribe=sorted(self.subscriptions)))

    def add_validator(self, topic: str, validator: Validator) -> None:
        """Install the validator consulted for every message on
        ``topic`` (one per topic; later calls replace)."""
        self.validators[topic] = validator

    def on_delivery(self, callback: DeliveryCallback) -> None:
        self.delivery_callbacks.append(callback)

    # -- publishing -------------------------------------------------------------------

    def publish(self, topic: str, payload: Any) -> str:
        """Publish a payload; returns the message ID.

        Targets are the mesh (when subscribed), the fanout (when not),
        or — with ``flood_publish`` — every known topic peer above the
        publish threshold.
        """
        msg_id = compute_message_id(topic, payload)
        message = GossipMessage(msg_id=msg_id, topic=topic, payload=payload)
        self.seen.witness(msg_id, self.now)
        self.mcache.put(message)
        self.metrics.increment("gossipsub.published")

        targets: Set[NodeId]
        if self.params.flood_publish:
            threshold = self.scores.params.publish_threshold
            targets = {
                peer
                for peer in self.topic_peers.get(topic, set())
                if self.scores.score(peer, self.now) >= threshold
            }
        elif topic in self.subscriptions:
            targets = set(self.mesh.get(topic, set()))
        else:
            targets = self._fanout_targets(topic)
        packet = RpcPacket(publish=[message])
        # Sorted: set order leaks the interpreter's hash seed into the
        # send sequence (and so into delivery order network-wide).
        for peer in sorted(targets):
            self._send(peer, packet)
        # A publisher counts as having delivered its own message.
        self._deliver_locally(message, from_peer=self.node_id)
        return msg_id

    def _fanout_targets(self, topic: str) -> Set[NodeId]:
        """Fanout peers for an unsubscribed topic, building the set on
        first use; every publish pushes the expiry ``fanout_ttl`` out,
        so a steady publisher reuses one fanout set indefinitely."""
        peers = self.fanout.get(topic)
        if not peers:
            candidates = self._gossip_eligible_peers(topic)
            peers = set(candidates[: self.params.d])
            self.fanout[topic] = peers
        self._fanout_expiry[topic] = self.now + self.params.fanout_ttl
        return peers

    # -- packet handling -----------------------------------------------------------------

    def deliver(self, from_peer: NodeId, packet: Any) -> None:
        """Network entry point (NetworkNode protocol)."""
        if not isinstance(packet, RpcPacket):
            raise GossipError(f"unexpected packet type {type(packet).__name__}")
        if self.processing_delay > 0 and packet.publish:
            self.network.simulator.schedule(
                self.processing_delay,
                lambda _sim: self._process(from_peer, packet),
                label=f"validate:{self.node_id}",
                shard=self.node_id,
            )
            return
        self._process(from_peer, packet)

    def _process(self, from_peer: NodeId, packet: RpcPacket) -> None:
        self.scores.add_peer(from_peer)
        # Graylisting compares against a negative threshold, and a
        # non-suspect provably scores >= 0 — only suspects need the
        # real score computed on this per-RPC path.
        if self.scores.maybe_negative(from_peer) and (
            self.scores.score(from_peer, self.now)
            < self.scores.params.graylist_threshold
        ):
            self._counters["gossipsub.graylisted_rpc"] += 1
            return
        for topic in packet.subscribe:
            self.topic_peers.setdefault(topic, set()).add(from_peer)
        for topic in packet.unsubscribe:
            self.topic_peers.get(topic, set()).discard(from_peer)
            mesh = self.mesh.get(topic)
            if mesh is not None and from_peer in mesh:
                mesh.discard(from_peer)
                self._dirty_topics.add(topic)
        for message in packet.publish:
            self._handle_publish(message, from_peer)
        if packet.ihave:
            self._handle_ihave(packet.ihave, from_peer)
        if packet.iwant:
            self._handle_iwant(packet.iwant, from_peer)
        for topic in packet.graft:
            self._handle_graft(topic, from_peer)
        for topic, backoff in packet.prune:
            self._handle_prune(
                topic, from_peer, backoff, packet.px.get(topic, [])
            )

    def _handle_publish(self, message: GossipMessage, from_peer: NodeId) -> None:
        topic = message.topic
        counters = self._counters
        counters["gossipsub.received"] += 1
        if self.seen.witness(message.msg_id, self.now):
            self.scores.duplicate_message(from_peer, topic)
            counters["gossipsub.duplicates"] += 1
            return
        result = self._validate(message, from_peer)
        if result is ValidationResult.REJECT:
            self.scores.reject_message(from_peer, topic)
            counters["gossipsub.rejected"] += 1
            return
        if result is ValidationResult.IGNORE:
            counters["gossipsub.ignored"] += 1
            return
        self.scores.first_message(from_peer, topic)
        self.mcache.put(message)
        self._deliver_locally(message, from_peer)
        self._forward(message, exclude={from_peer})

    def _validate(
        self, message: GossipMessage, from_peer: NodeId
    ) -> ValidationResult:
        validator = self.validators.get(message.topic)
        if validator is None:
            return ValidationResult.ACCEPT
        return validator(message.payload, from_peer)

    def _deliver_locally(self, message: GossipMessage, from_peer: NodeId) -> None:
        if message.topic not in self.subscriptions:
            return
        self._counters["gossipsub.delivered"] += 1
        for callback in self.delivery_callbacks:
            callback(message.topic, message.payload, message.msg_id, from_peer)

    def _forward(self, message: GossipMessage, exclude: Set[NodeId]) -> None:
        topic = message.topic
        targets = set(self.mesh.get(topic, set())) - exclude
        if not targets:
            return
        packet = RpcPacket(publish=[message])
        # One packet fans out to the whole mesh; size it once. Sorted
        # so the forward order never depends on the set hash order.
        size = packet.size_bytes
        for peer in sorted(targets):
            self._send(peer, packet, size)

    def _handle_ihave(
        self, ihave: Dict[str, List[str]], from_peer: NodeId
    ) -> None:
        # Ignore gossip from peers scored below the gossip threshold
        # (negative, so non-suspects pass without a score computation).
        if self.scores.maybe_negative(from_peer) and (
            self.scores.score(from_peer, self.now)
            < self.scores.params.gossip_threshold
        ):
            return
        wanted: List[str] = []
        for topic, ids in ihave.items():
            if topic not in self.subscriptions:
                continue
            for msg_id in ids:
                if msg_id not in self.seen and msg_id not in wanted:
                    wanted.append(msg_id)
        wanted = wanted[: self.params.max_iwant_per_heartbeat]
        if wanted:
            self.metrics.increment("gossipsub.iwant_sent", len(wanted))
            self._send(from_peer, RpcPacket(iwant=wanted))

    def _handle_iwant(self, iwant: List[str], from_peer: NodeId) -> None:
        found = [
            message
            for msg_id in iwant
            if (message := self.mcache.get(msg_id)) is not None
        ]
        if found:
            self.metrics.increment("gossipsub.iwant_served", len(found))
            self._send(from_peer, RpcPacket(publish=found))

    def _handle_graft(self, topic: str, from_peer: NodeId) -> None:
        if topic not in self.subscriptions:
            self._send(
                from_peer,
                RpcPacket(prune=[(topic, self.params.prune_backoff)]),
            )
            return
        if self._in_backoff(from_peer, topic):
            # GRAFTing while backoffed is a protocol violation (P7).
            self.scores.behaviour_penalty(from_peer)
            self._send(
                from_peer,
                RpcPacket(prune=[(topic, self.params.prune_backoff)]),
            )
            return
        if self.scores.score(from_peer, self.now) < 0:
            self._send(
                from_peer,
                RpcPacket(prune=[(topic, self.params.prune_backoff)]),
            )
            return
        self.mesh.setdefault(topic, set()).add(from_peer)
        self._dirty_topics.add(topic)
        self.scores.graft(from_peer, topic, self.now)
        self.topic_peers.setdefault(topic, set()).add(from_peer)

    def _handle_prune(
        self,
        topic: str,
        from_peer: NodeId,
        backoff: float,
        px: Optional[List[NodeId]] = None,
    ) -> None:
        mesh = self.mesh.get(topic)
        if mesh is not None and from_peer in mesh:
            mesh.discard(from_peer)
            self._dirty_topics.add(topic)
        self.scores.prune(from_peer, topic, self.now)
        self._set_backoff(
            from_peer, topic, max(backoff, self.params.prune_backoff)
        )
        # Peer Exchange: accept suggestions only from well-scored peers
        # (a graylist-adjacent peer could otherwise steer our mesh).
        if px and (
            self.scores.score(from_peer, self.now)
            >= self.scores.params.accept_px_threshold
        ):
            self._connect_px(topic, px)

    def _connect_px(self, topic: str, suggestions: List[NodeId]) -> None:
        """Dial PX-suggested peers and exchange subscriptions."""
        for peer in suggestions[: self.params.px_peers]:
            if peer == self.node_id or peer not in self.network:
                continue
            if not self.network.are_connected(self.node_id, peer):
                self.network.connect(self.node_id, peer)
                self.metrics.increment("gossipsub.px_dials")
            self.topic_peers.setdefault(topic, set()).add(peer)
            self.announce_to(peer)

    # -- mesh maintenance -----------------------------------------------------------------

    def _in_backoff(self, peer: NodeId, topic: str) -> bool:
        return self._backoff.get((peer, topic), 0.0) > self.now

    def _set_backoff(self, peer: NodeId, topic: str, duration: float) -> None:
        expiry = self.now + duration
        self._backoff[(peer, topic)] = expiry
        heapq.heappush(self._backoff_heap, (expiry, peer, topic))

    def _expire_backoffs(self) -> None:
        """Drop expired backoff entries (amortised via the heap).

        Purely memory management: :meth:`_in_backoff` compares
        timestamps, so whether an expired entry is still stored never
        changes behaviour — without this the dict grows with every
        PRUNE ever received.
        """
        heap = self._backoff_heap
        while heap and heap[0][0] <= self.now:
            expiry, peer, topic = heapq.heappop(heap)
            # Only delete if this heap entry is the live one (the
            # backoff may have been extended by a later PRUNE).
            if self._backoff.get((peer, topic)) == expiry:
                del self._backoff[(peer, topic)]

    def _graft_peer(self, peer: NodeId, topic: str) -> None:
        self.mesh.setdefault(topic, set()).add(peer)
        self._dirty_topics.add(topic)
        self.scores.graft(peer, topic, self.now)
        self._send(peer, RpcPacket(graft=[topic]))

    def _prune_peer(self, peer: NodeId, topic: str) -> None:
        mesh = self.mesh.get(topic)
        if mesh is not None and peer in mesh:
            mesh.discard(peer)
            self._dirty_topics.add(topic)
        self.scores.prune(peer, topic, self.now)
        self._set_backoff(peer, topic, self.params.prune_backoff)
        # Offer Peer Exchange: well-scored alternatives from our mesh,
        # so the pruned peer can heal its degree elsewhere.
        suggestions = [
            p
            for p in sorted(self.mesh.get(topic, ()))
            if p != peer
            and (
                not self.scores.maybe_negative(p)
                or self.scores.score(p, self.now) >= 0
            )
        ][: self.params.px_peers]
        packet = RpcPacket(prune=[(topic, self.params.prune_backoff)])
        if suggestions:
            packet.px = {topic: suggestions}
        self._send(peer, packet)

    def _gossip_eligible_peers(self, topic: str) -> List[NodeId]:
        """Known topic peers that are direct neighbours, best score first."""
        neighbors = self.network.neighbor_set(self.node_id)
        # The threshold is negative; non-suspects pass without scoring
        # (the sort below computes their real score exactly once).
        # Sorted base order: score ties must break on the peer id, not
        # on the hash-seed-dependent set order (the stable sort below
        # preserves the input order within equal scores).
        candidates = [
            peer
            for peer in sorted(self.topic_peers.get(topic, ()))
            if peer in neighbors
            and (
                not self.scores.maybe_negative(peer)
                or self.scores.score(peer, self.now)
                >= self.scores.params.gossip_threshold
            )
        ]
        candidates.sort(
            key=lambda p: self.scores.score(p, self.now), reverse=True
        )
        return candidates

    def heartbeat(self) -> None:
        """Periodic maintenance: mesh balancing, gossip, cache shift.

        Every ``full_sweep_interval``-th heartbeat (including the very
        first) is a *sweep* heartbeat: all subscribed topics are
        maintained and opportunistic grafting runs. In between, batched
        mode maintains only topics that need it; the reference mode
        maintains all of them every time. Both modes run the same code
        per maintained topic, in sorted topic order, so the RNG stream
        — and therefore every downstream outcome — is identical.
        """
        self.scores.decay()
        sweep_interval = max(1, self.params.full_sweep_interval)
        sweep = self._heartbeat_count % sweep_interval == 0
        self._heartbeat_count += 1
        if sweep or not self.params.batched_bookkeeping:
            topics = sorted(self.subscriptions)
        else:
            topics = self._topics_needing_maintenance()
        for topic in topics:
            self._maintain_topic(topic)
        if sweep:
            for topic in sorted(self.subscriptions):
                self._opportunistic_graft(topic, self.mesh.get(topic, set()))
        self._expire_fanout()
        self._emit_gossip()
        self.mcache.shift()
        self._expire_backoffs()
        self.metrics.increment("gossipsub.heartbeats")

    def _topics_needing_maintenance(self) -> List[str]:
        """Subscribed topics the batched path must visit this heartbeat:
        explicitly dirtied ones, plus any whose mesh intersects the
        score tracker's suspect set (a member *might* have gone
        negative without touching this topic's mesh)."""
        suspects = self.scores.suspects()
        needy = set()
        for topic in self.subscriptions:
            if topic in self._dirty_topics:
                needy.add(topic)
            elif suspects:
                mesh = self.mesh.get(topic)
                if mesh and not suspects.isdisjoint(mesh):
                    needy.add(topic)
        return sorted(needy)

    def _maintain_topic(self, topic: str) -> None:
        """One topic's mesh repair (identical in both bookkeeping modes;
        the modes only differ in *which* topics get here)."""
        rng = self.network.simulator.entity_rng(self.node_id)
        mesh = self.mesh.setdefault(topic, set())
        self._dirty_topics.discard(topic)
        neighbors = self.network.neighbor_set(self.node_id)
        # Evict mesh members whose connection is gone (churn); they
        # re-enter through GRAFT after the backoff, and meanwhile
        # the IHAVE/IWANT gossip path covers them. (All mesh scans are
        # sorted: iteration order must not leak the hash seed into the
        # prune/send sequence.)
        for peer in [p for p in sorted(mesh) if p not in neighbors]:
            mesh.discard(peer)
            self.scores.prune(peer, topic, self.now)
            self._set_backoff(peer, topic, self.params.prune_backoff)
        # Drop negatively scored mesh members outright. Batched mode
        # pre-filters through the suspect set — a non-suspect provably
        # scores >= 0, so skipping its score() changes nothing.
        if self.params.batched_bookkeeping:
            negative = [
                p
                for p in sorted(mesh)
                if self.scores.maybe_negative(p)
                and self.scores.score(p, self.now) < 0
            ]
        else:
            negative = [
                p for p in sorted(mesh) if self.scores.score(p, self.now) < 0
            ]
        for peer in negative:
            self._prune_peer(peer, topic)
        if len(mesh) < self.params.d_lo:
            candidates = [
                peer
                for peer in self._gossip_eligible_peers(topic)
                if peer not in mesh
                and not self._in_backoff(peer, topic)
                and (
                    not self.scores.maybe_negative(peer)
                    or self.scores.score(peer, self.now) >= 0
                )
            ]
            rng.shuffle(candidates)
            for peer in candidates[: self.params.d - len(mesh)]:
                self._graft_peer(peer, topic)
        elif len(mesh) > self.params.d_hi:
            # Keep the best d_score peers, prune random others to d.
            # Ties rank by peer id so the cut never depends on the
            # hash-seed set order.
            ranked = sorted(
                mesh,
                key=lambda p: (-self.scores.score(p, self.now), p),
            )
            keep = set(ranked[: self.params.d_score])
            removable = [p for p in ranked[self.params.d_score :]]
            rng.shuffle(removable)
            while len(keep) < self.params.d and removable:
                keep.add(removable.pop())
            for peer in sorted(mesh - keep):
                self._prune_peer(peer, topic)
        # A mesh still out of bounds (no eligible candidates yet) must
        # be revisited next heartbeat, exactly like the reference sweep
        # would.
        if not self.params.d_lo <= len(mesh) <= self.params.d_hi:
            self._dirty_topics.add(topic)

    def _opportunistic_graft(self, topic: str, mesh: Set[NodeId]) -> None:
        """Graft above-median candidates when the mesh's median score
        sags below ``opportunistic_graft_threshold`` (runs on sweep
        heartbeats only; consumes no RNG)."""
        if not mesh:
            return
        scores = sorted(self.scores.score(p, self.now) for p in mesh)
        median = scores[len(scores) // 2]
        if median >= self.scores.params.opportunistic_graft_threshold:
            return
        candidates = [
            peer
            for peer in self._gossip_eligible_peers(topic)
            if peer not in mesh
            and not self._in_backoff(peer, topic)
            and self.scores.score(peer, self.now) > median
        ]
        for peer in candidates[: self.params.opportunistic_graft_peers]:
            self._graft_peer(peer, topic)

    def _expire_fanout(self) -> None:
        for topic in [
            t for t, expiry in self._fanout_expiry.items() if expiry <= self.now
        ]:
            self.fanout.pop(topic, None)
            self._fanout_expiry.pop(topic, None)

    def _emit_gossip(self) -> None:
        """Advertise recent message IDs (IHAVE) to ``d_lazy`` non-mesh
        peers per topic with gossip-window traffic."""
        rng = self.network.simulator.entity_rng(self.node_id)
        for topic in sorted(set(self.subscriptions) | set(self.fanout)):
            msg_ids = self.mcache.gossip_ids(topic)
            if not msg_ids:
                continue
            mesh = self.mesh.get(topic, set())
            candidates = [
                peer
                for peer in self._gossip_eligible_peers(topic)
                if peer not in mesh
            ]
            rng.shuffle(candidates)
            for peer in candidates[: self.params.d_lazy]:
                self.metrics.increment("gossipsub.ihave_sent")
                self._send(peer, RpcPacket(ihave={topic: list(msg_ids)}))

    # -- transport ------------------------------------------------------------------------

    def _send(
        self, peer: NodeId, packet: RpcPacket, size: Optional[int] = None
    ) -> None:
        if packet.is_empty():
            return
        counters = self.metrics.counters
        counters["gossipsub.rpc_sent"] += 1
        counters["gossipsub.bytes_sent"] += (
            packet.size_bytes if size is None else size
        )
        self.network.send(self.node_id, peer, packet)

    def _broadcast_control(self, packet: RpcPacket) -> None:
        for peer in self.peers():
            self._send(peer, packet)
