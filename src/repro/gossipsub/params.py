"""GossipSub protocol parameters (libp2p gossipsub v1.1 defaults).

Names follow the specification; values are the spec defaults scaled to
simulation time (seconds).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GossipSubParams:
    """Router-level knobs."""

    #: Target mesh degree and its acceptable bounds.
    d: int = 6
    d_lo: int = 4
    d_hi: int = 12
    #: Peers with score above the median kept during oversubscription prune.
    d_score: int = 4
    #: Lazy-gossip degree: how many non-mesh peers receive IHAVE per topic.
    d_lazy: int = 6
    heartbeat_interval: float = 1.0
    #: Message-cache history length and gossip window, in heartbeats.
    mcache_len: int = 5
    mcache_gossip: int = 3
    #: How long message IDs stay in the seen cache (seconds).
    seen_ttl: float = 120.0
    #: How long fanout state for an unsubscribed topic is kept (seconds).
    fanout_ttl: float = 60.0
    #: Backoff a peer must respect after being PRUNEd from a mesh (seconds).
    prune_backoff: float = 60.0
    #: Maximum IWANT requests sent per received IHAVE.
    max_iwant_per_heartbeat: int = 5000
    #: When True, publishers send their own messages to every known
    #: topic peer above the publish threshold, not only the mesh.
    flood_publish: bool = True
    #: Peers grafted per opportunistic-graft round when the mesh's
    #: median score is below the threshold.
    opportunistic_graft_peers: int = 2
    #: Max peers offered/accepted via Peer Exchange on PRUNE.
    px_peers: int = 16
    #: Batched heartbeat bookkeeping (the default): lazy score decay on
    #: a global clock, mesh maintenance only for topics marked dirty by
    #: an actual change, and link-down-driven eviction. ``False`` runs
    #: the reference per-heartbeat full sweeps instead. Outcomes are
    #: bit-identical either way — only the work differs (see
    #: ``benchmarks/bench_gossip_bookkeeping.py``).
    batched_bookkeeping: bool = True
    #: Every how many heartbeats the router runs the full-sweep round:
    #: opportunistic grafting plus a self-healing maintenance pass over
    #: *every* subscribed topic (both bookkeeping modes run this on the
    #: same heartbeats, which is what keeps them equivalent).
    full_sweep_interval: int = 30
