"""GossipSub v1.1: mesh pub/sub with lazy gossip and peer scoring."""

from .mcache import MessageCache, SeenCache
from .params import GossipSubParams
from .router import (
    DeliveryCallback,
    GossipSubRouter,
    ValidationResult,
    Validator,
)
from .rpc import GossipMessage, RpcPacket, compute_message_id, payload_to_bytes
from .score import PeerScoreParams, PeerScoreTracker, TopicScoreParams

__all__ = [
    "GossipSubParams",
    "GossipSubRouter",
    "ValidationResult",
    "Validator",
    "DeliveryCallback",
    "GossipMessage",
    "RpcPacket",
    "compute_message_id",
    "payload_to_bytes",
    "MessageCache",
    "SeenCache",
    "PeerScoreParams",
    "PeerScoreTracker",
    "TopicScoreParams",
]
