"""GossipSub v1.1 peer scoring.

The paper's Section I argues that scoring — the spam defence GossipSub
itself ships — is "prone to censorship and inexpensive attacks where
millions of bots can be deployed". To make that comparison honest, this
is a real implementation of the published score function:

    score(p) = sum_t w_t * (P1 + P2 + P3 + P3b + P4)_t  +  P5 + P6 + P7

with the usual components: time in mesh (P1), first-message deliveries
(P2), mesh-delivery deficit (P3), mesh-failure penalty (P3b), invalid
messages (P4), application-specific score (P5), IP colocation (P6) and
behavioural penalty (P7). Counters decay multiplicatively on every
decay tick, as in the reference implementation.

Decay bookkeeping
-----------------

Two execution modes produce **bit-identical scores**:

* *lazy* (the default): :meth:`PeerScoreTracker.decay` only advances a
  global tick counter; a peer's counters are materialised on first
  access by replaying the missed ticks (repeated multiplication with
  the same zero-floor check the sweep applies, so the floating-point
  trajectory is exactly the sweep's). Heartbeat cost becomes O(1)
  instead of O(peers x topics).
* *eager* (``lazy=False``): every ``decay()`` call sweeps all counters
  immediately — the reference behaviour the equivalence tests compare
  against.

The tracker also maintains a conservative *suspect set*: peers whose
score **could** be negative (they carry a penalty counter, a negative
app score, a colocated IP, or sit in the mesh of a topic whose
delivery-deficit penalty is armed). A peer absent from the set provably
scores >= 0, which lets the router skip the per-topic negative-score
sweep for meshes containing no suspects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from ..net.network import NodeId


@dataclass(frozen=True)
class TopicScoreParams:
    """Per-topic weights.

    As in libp2p, the delivery-deficit components (P3/P3b) default to
    weight 0 — they punish *silence*, which only makes sense on topics
    with a known steady message rate; enabling them on an idle topic
    dissolves healthy meshes. :func:`strict_topic_params` builds a
    configuration with them enabled for high-traffic experiments.

    Units: ``time_in_mesh_quantum`` and ``time_in_mesh_cap`` are in
    simulated seconds; delivery counters are message counts; decay
    factors are per decay tick (one router heartbeat).
    """

    topic_weight: float = 1.0
    # P1 — time in mesh
    time_in_mesh_weight: float = 0.01
    time_in_mesh_quantum: float = 1.0
    time_in_mesh_cap: float = 3600.0
    # P2 — first message deliveries
    first_message_deliveries_weight: float = 1.0
    first_message_deliveries_decay: float = 0.5
    first_message_deliveries_cap: float = 2000.0
    # P3 — mesh message delivery deficit (squared, negative weight)
    mesh_message_deliveries_weight: float = 0.0
    mesh_message_deliveries_decay: float = 0.5
    mesh_message_deliveries_cap: float = 100.0
    mesh_message_deliveries_threshold: float = 1.0
    mesh_message_deliveries_activation: float = 5.0
    # P3b — failure penalty carried out of the mesh (squared, negative)
    mesh_failure_penalty_weight: float = 0.0
    mesh_failure_penalty_decay: float = 0.5
    # P4 — invalid messages (squared, negative weight)
    invalid_message_deliveries_weight: float = -10.0
    invalid_message_deliveries_decay: float = 0.9

    @property
    def strict(self) -> bool:
        """True when the in-mesh delivery-deficit penalty (P3) is armed:
        a silent mesh member can then go negative with no score *event*,
        so such topics are exempt from suspect-set fast paths."""
        return self.mesh_message_deliveries_weight < 0


def strict_topic_params(
    expected_rate_per_decay: float = 1.0,
) -> TopicScoreParams:
    """Topic params with the delivery-deficit penalties armed.

    Use on topics with sustained traffic (the spam-attack experiments),
    where a mesh peer that never forwards anything should lose score.
    """
    return TopicScoreParams(
        mesh_message_deliveries_weight=-1.0,
        mesh_message_deliveries_threshold=expected_rate_per_decay,
        mesh_failure_penalty_weight=-1.0,
    )


@dataclass(frozen=True)
class PeerScoreParams:
    """Router-wide scoring parameters and thresholds.

    Thresholds are compared against the *total* peer score:
    ``gossip_threshold`` gates IHAVE/IWANT exchange,
    ``publish_threshold`` gates flood-publish targets, and
    ``graylist_threshold`` drops entire RPCs. All are <= 0; a peer with
    no history scores exactly 0.
    """

    topic_params: Dict[str, TopicScoreParams] = field(default_factory=dict)
    default_topic_params: TopicScoreParams = field(
        default_factory=TopicScoreParams
    )
    app_specific_weight: float = 1.0
    # P6 — IP colocation
    ip_colocation_factor_weight: float = -5.0
    ip_colocation_factor_threshold: int = 1
    # P7 — behavioural penalty (GRAFT flood etc.)
    behaviour_penalty_weight: float = -10.0
    behaviour_penalty_decay: float = 0.99
    behaviour_penalty_threshold: float = 0.0
    decay_interval: float = 1.0
    #: Counters below this are zeroed to stop asymptotic dribble.
    decay_to_zero: float = 0.01
    # thresholds
    gossip_threshold: float = -10.0
    publish_threshold: float = -50.0
    graylist_threshold: float = -80.0
    #: Minimum sender score for accepting Peer Exchange suggestions.
    accept_px_threshold: float = 0.0
    opportunistic_graft_threshold: float = 1.0

    def for_topic(self, topic: str) -> TopicScoreParams:
        return self.topic_params.get(topic, self.default_topic_params)


def _decay_steps(
    value: float, factor: float, steps: int, floor: float
) -> float:
    """Replay ``steps`` decay ticks on ``value``.

    Repeated multiplication (not ``factor ** steps``) so the result is
    bit-identical to the eager per-tick sweep, including the
    zero-floor cut at the exact tick the sweep would apply it.
    """
    if value == 0.0 or steps <= 0:
        return value
    if factor == 1.0:
        return 0.0 if value < floor else value
    for _ in range(steps):
        value *= factor
        if value < floor:
            return 0.0
    return value


@dataclass
class _TopicStats:
    """Per-(peer, topic) counters. ``tick`` is the decay tick the
    decaying counters were last materialised at."""

    in_mesh: bool = False
    graft_time: float = 0.0
    mesh_time: float = 0.0
    first_message_deliveries: float = 0.0
    mesh_message_deliveries: float = 0.0
    mesh_failure_penalty: float = 0.0
    invalid_message_deliveries: float = 0.0
    tick: int = 0

    @property
    def has_penalty(self) -> bool:
        return (
            self.mesh_failure_penalty > 0.0
            or self.invalid_message_deliveries > 0.0
        )


@dataclass
class _PeerStats:
    topics: Dict[str, _TopicStats] = field(default_factory=dict)
    behaviour_penalty: float = 0.0
    behaviour_tick: int = 0
    app_score: float = 0.0
    ip: Optional[str] = None


class PeerScoreTracker:
    """Maintains live score state for every known peer.

    ``lazy=True`` (default) uses the global-clock decay described in the
    module docstring; ``lazy=False`` reproduces the reference eager
    sweep. Scores are identical either way.
    """

    def __init__(self, params: PeerScoreParams, lazy: bool = True) -> None:
        self.params = params
        self.lazy = lazy
        self._peers: Dict[NodeId, _PeerStats] = {}
        #: Global decay clock; one tick per :meth:`decay` call.
        self._tick = 0
        #: ip -> peers sharing it (P6 is O(1) per score with this index).
        self._ip_peers: Dict[str, Set[NodeId]] = {}
        #: Conservative superset of peers whose score may be negative.
        self._suspects: Set[NodeId] = set()
        #: Bumped by every score-affecting event; keys the score memo.
        self._version = 0
        #: peer -> (now, tick, version, score). A score is a pure
        #: function of (peer state, now, decay tick); between events the
        #: router reads it repeatedly (graylist gates, sort keys in
        #: gossip emission and mesh maintenance), so memoising the last
        #: value per peer collapses those bursts to one computation.
        self._score_cache: Dict[NodeId, tuple] = {}

    # -- peer lifecycle -------------------------------------------------------

    def add_peer(self, peer: NodeId, ip: Optional[str] = None) -> None:
        stats = self._stats(peer)
        if ip is not None:
            self._assign_ip(peer, stats, ip)

    def remove_peer(self, peer: NodeId) -> None:
        self._version += 1
        self._score_cache.pop(peer, None)
        stats = self._peers.pop(peer, None)
        if stats is not None and stats.ip is not None:
            group = self._ip_peers.get(stats.ip)
            if group is not None:
                group.discard(peer)
                if not group:
                    del self._ip_peers[stats.ip]
        self._suspects.discard(peer)

    def known_peers(self):
        return list(self._peers)

    def _stats(self, peer: NodeId) -> _PeerStats:
        stats = self._peers.get(peer)
        if stats is None:
            stats = self._peers[peer] = _PeerStats(
                behaviour_tick=self._tick
            )
        return stats

    def _topic_stats(self, peer: NodeId, topic: str) -> _TopicStats:
        """Materialised per-topic stats (decay replayed up to now)."""
        stats = self._stats(peer)
        tstats = stats.topics.get(topic)
        if tstats is None:
            tstats = stats.topics[topic] = _TopicStats(tick=self._tick)
            return tstats
        self._materialize_topic(tstats, self.params.for_topic(topic))
        return tstats

    # -- decay ------------------------------------------------------------------------

    def _materialize_topic(
        self, tstats: _TopicStats, params: TopicScoreParams
    ) -> None:
        steps = self._tick - tstats.tick
        if steps <= 0:
            return
        floor = self.params.decay_to_zero
        tstats.first_message_deliveries = _decay_steps(
            tstats.first_message_deliveries,
            params.first_message_deliveries_decay,
            steps,
            floor,
        )
        tstats.mesh_message_deliveries = _decay_steps(
            tstats.mesh_message_deliveries,
            params.mesh_message_deliveries_decay,
            steps,
            floor,
        )
        tstats.mesh_failure_penalty = _decay_steps(
            tstats.mesh_failure_penalty,
            params.mesh_failure_penalty_decay,
            steps,
            floor,
        )
        tstats.invalid_message_deliveries = _decay_steps(
            tstats.invalid_message_deliveries,
            params.invalid_message_deliveries_decay,
            steps,
            floor,
        )
        tstats.tick = self._tick

    def _materialize_behaviour(self, stats: _PeerStats) -> None:
        steps = self._tick - stats.behaviour_tick
        if steps > 0:
            stats.behaviour_penalty = _decay_steps(
                stats.behaviour_penalty,
                self.params.behaviour_penalty_decay,
                steps,
                self.params.decay_to_zero,
            )
            stats.behaviour_tick = self._tick

    def decay(self) -> None:
        """Advance the decay clock by one tick.

        Lazy mode stops here (O(1)); eager mode immediately sweeps
        every counter of every peer, exactly like the reference
        implementation.
        """
        self._tick += 1
        if self.lazy:
            return
        for stats in self._peers.values():
            for topic, tstats in stats.topics.items():
                self._materialize_topic(tstats, self.params.for_topic(topic))
            self._materialize_behaviour(stats)

    # -- mesh events --------------------------------------------------------------

    def graft(self, peer: NodeId, topic: str, now: float) -> None:
        self._version += 1
        stats = self._topic_stats(peer, topic)
        stats.in_mesh = True
        stats.graft_time = now
        if self.params.for_topic(topic).strict:
            # A silent mesh member on a strict topic can go negative
            # with no further events; keep it under suspicion while
            # (and after) it sits in this mesh.
            self._suspects.add(peer)

    def prune(self, peer: NodeId, topic: str, now: float) -> None:
        """Peer leaves the mesh; a delivery deficit becomes P3b."""
        self._version += 1
        params = self.params.for_topic(topic)
        stats = self._topic_stats(peer, topic)
        if stats.in_mesh:
            stats.mesh_time = now - stats.graft_time
            deficit = self._delivery_deficit(stats, params)
            if deficit > 0:
                stats.mesh_failure_penalty += deficit * deficit
                self._suspects.add(peer)
        stats.in_mesh = False

    # -- delivery events ------------------------------------------------------------

    def first_message(self, peer: NodeId, topic: str) -> None:
        self._version += 1
        params = self.params.for_topic(topic)
        stats = self._topic_stats(peer, topic)
        stats.first_message_deliveries = min(
            stats.first_message_deliveries + 1,
            params.first_message_deliveries_cap,
        )
        if stats.in_mesh:
            stats.mesh_message_deliveries = min(
                stats.mesh_message_deliveries + 1,
                params.mesh_message_deliveries_cap,
            )

    def duplicate_message(self, peer: NodeId, topic: str) -> None:
        stats = self._peers.get(peer)
        tstats = stats.topics.get(topic) if stats is not None else None
        if tstats is None or not tstats.in_mesh:
            # A duplicate from outside the mesh changes nothing: the
            # counters stay untouched, and lazily creating the topic
            # entry later replays decay over zeros (still zeros). Skip
            # the version bump too — it would only evict warm score
            # memos for state that did not change.
            return
        self._version += 1
        params = self.params.for_topic(topic)
        self._materialize_topic(tstats, params)
        tstats.mesh_message_deliveries = min(
            tstats.mesh_message_deliveries + 1,
            params.mesh_message_deliveries_cap,
        )

    def reject_message(self, peer: NodeId, topic: str) -> None:
        self._version += 1
        stats = self._topic_stats(peer, topic)
        stats.invalid_message_deliveries += 1
        self._suspects.add(peer)

    def behaviour_penalty(self, peer: NodeId, amount: float = 1.0) -> None:
        self._version += 1
        stats = self._stats(peer)
        self._materialize_behaviour(stats)
        stats.behaviour_penalty += amount
        self._suspects.add(peer)

    def set_app_score(self, peer: NodeId, score: float) -> None:
        self._version += 1
        self._stats(peer).app_score = score
        if score < 0:
            self._suspects.add(peer)

    def set_ip(self, peer: NodeId, ip: str) -> None:
        self._assign_ip(peer, self._stats(peer), ip)

    def _assign_ip(self, peer: NodeId, stats: _PeerStats, ip: str) -> None:
        if stats.ip == ip:
            return
        self._version += 1
        if stats.ip is not None:
            old = self._ip_peers.get(stats.ip)
            if old is not None:
                old.discard(peer)
                if not old:
                    del self._ip_peers[stats.ip]
        stats.ip = ip
        group = self._ip_peers.setdefault(ip, set())
        group.add(peer)
        if len(group) > self.params.ip_colocation_factor_threshold:
            self._suspects.update(group)

    # -- suspects ---------------------------------------------------------------------

    def maybe_negative(self, peer: NodeId) -> bool:
        """Could this peer's score be below zero?

        False is a guarantee (the peer carries no negative component);
        True only means "compute the real score to find out". The set
        self-cleans: :meth:`score` removes a peer once every negative
        component has decayed away.
        """
        return peer in self._suspects

    def suspects(self) -> Set[NodeId]:
        """Live view of the suspect set (do not mutate)."""
        return self._suspects

    # -- scoring -----------------------------------------------------------------------

    def _delivery_deficit(
        self, tstats: _TopicStats, params: TopicScoreParams
    ) -> float:
        if tstats.mesh_time < params.mesh_message_deliveries_activation:
            return 0.0
        if (
            tstats.mesh_message_deliveries
            >= params.mesh_message_deliveries_threshold
        ):
            return 0.0
        return (
            params.mesh_message_deliveries_threshold
            - tstats.mesh_message_deliveries
        )

    def score(self, peer: NodeId, now: float = 0.0) -> float:
        cached = self._score_cache.get(peer)
        if (
            cached is not None
            and cached[1] == self._tick
            and cached[2] == self._version
            # A peer in none of our meshes has no time-dependent score
            # component (P1/P3 only tick while in-mesh), so its cached
            # value holds for any ``now`` within the same tick/version.
            and (cached[0] == now or not cached[4])
        ):
            return cached[3]
        stats = self._peers.get(peer)
        if stats is None:
            return 0.0
        total = 0.0
        #: Does any negative-capable component remain live?
        suspect = stats.app_score < 0
        #: Does the score depend on ``now`` (any in-mesh topic)?
        now_dependent = False
        for topic, tstats in stats.topics.items():
            params = self.params.for_topic(topic)
            self._materialize_topic(tstats, params)
            topic_score = 0.0
            # P1
            if tstats.in_mesh:
                now_dependent = True
                tstats.mesh_time = now - tstats.graft_time
            p1 = min(
                tstats.mesh_time / params.time_in_mesh_quantum,
                params.time_in_mesh_cap,
            )
            topic_score += p1 * params.time_in_mesh_weight
            # P2
            topic_score += (
                tstats.first_message_deliveries
                * params.first_message_deliveries_weight
            )
            # P3 (only while in mesh)
            if tstats.in_mesh:
                deficit = self._delivery_deficit(tstats, params)
                topic_score += (
                    deficit * deficit * params.mesh_message_deliveries_weight
                )
                if params.strict:
                    suspect = True
            # P3b
            topic_score += (
                tstats.mesh_failure_penalty * params.mesh_failure_penalty_weight
            )
            # P4
            p4 = tstats.invalid_message_deliveries
            topic_score += p4 * p4 * params.invalid_message_deliveries_weight
            total += topic_score * params.topic_weight
            if tstats.has_penalty:
                suspect = True
        # P5
        total += stats.app_score * self.params.app_specific_weight
        # P6 — IP colocation
        if stats.ip is not None:
            colocated = len(self._ip_peers.get(stats.ip, ()))
            excess = colocated - self.params.ip_colocation_factor_threshold
            if excess > 0:
                total += excess * excess * self.params.ip_colocation_factor_weight
                suspect = True
        # P7
        self._materialize_behaviour(stats)
        p7 = stats.behaviour_penalty
        if p7 > self.params.behaviour_penalty_threshold:
            excess = p7 - self.params.behaviour_penalty_threshold
            total += excess * excess * self.params.behaviour_penalty_weight
        if p7 > 0:
            suspect = True
        if not suspect:
            self._suspects.discard(peer)
        self._score_cache[peer] = (
            now,
            self._tick,
            self._version,
            total,
            now_dependent,
        )
        return total
