"""GossipSub v1.1 peer scoring.

The paper's Section I argues that scoring — the spam defence GossipSub
itself ships — is "prone to censorship and inexpensive attacks where
millions of bots can be deployed". To make that comparison honest, this
is a real implementation of the published score function:

    score(p) = sum_t w_t * (P1 + P2 + P3 + P3b + P4)_t  +  P5 + P6 + P7

with the usual components: time in mesh (P1), first-message deliveries
(P2), mesh-delivery deficit (P3), mesh-failure penalty (P3b), invalid
messages (P4), application-specific score (P5), IP colocation (P6) and
behavioural penalty (P7). Counters decay multiplicatively on every
decay tick, as in the reference implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..net.network import NodeId


@dataclass(frozen=True)
class TopicScoreParams:
    """Per-topic weights.

    As in libp2p, the delivery-deficit components (P3/P3b) default to
    weight 0 — they punish *silence*, which only makes sense on topics
    with a known steady message rate; enabling them on an idle topic
    dissolves healthy meshes. :func:`strict_topic_params` builds a
    configuration with them enabled for high-traffic experiments.
    """

    topic_weight: float = 1.0
    # P1 — time in mesh
    time_in_mesh_weight: float = 0.01
    time_in_mesh_quantum: float = 1.0
    time_in_mesh_cap: float = 3600.0
    # P2 — first message deliveries
    first_message_deliveries_weight: float = 1.0
    first_message_deliveries_decay: float = 0.5
    first_message_deliveries_cap: float = 2000.0
    # P3 — mesh message delivery deficit (squared, negative weight)
    mesh_message_deliveries_weight: float = 0.0
    mesh_message_deliveries_decay: float = 0.5
    mesh_message_deliveries_cap: float = 100.0
    mesh_message_deliveries_threshold: float = 1.0
    mesh_message_deliveries_activation: float = 5.0
    # P3b — failure penalty carried out of the mesh (squared, negative)
    mesh_failure_penalty_weight: float = 0.0
    mesh_failure_penalty_decay: float = 0.5
    # P4 — invalid messages (squared, negative weight)
    invalid_message_deliveries_weight: float = -10.0
    invalid_message_deliveries_decay: float = 0.9


def strict_topic_params(
    expected_rate_per_decay: float = 1.0,
) -> TopicScoreParams:
    """Topic params with the delivery-deficit penalties armed.

    Use on topics with sustained traffic (the spam-attack experiments),
    where a mesh peer that never forwards anything should lose score.
    """
    return TopicScoreParams(
        mesh_message_deliveries_weight=-1.0,
        mesh_message_deliveries_threshold=expected_rate_per_decay,
        mesh_failure_penalty_weight=-1.0,
    )


@dataclass(frozen=True)
class PeerScoreParams:
    """Router-wide scoring parameters and thresholds."""

    topic_params: Dict[str, TopicScoreParams] = field(default_factory=dict)
    default_topic_params: TopicScoreParams = field(
        default_factory=TopicScoreParams
    )
    app_specific_weight: float = 1.0
    # P6 — IP colocation
    ip_colocation_factor_weight: float = -5.0
    ip_colocation_factor_threshold: int = 1
    # P7 — behavioural penalty (GRAFT flood etc.)
    behaviour_penalty_weight: float = -10.0
    behaviour_penalty_decay: float = 0.99
    behaviour_penalty_threshold: float = 0.0
    decay_interval: float = 1.0
    #: Counters below this are zeroed to stop asymptotic dribble.
    decay_to_zero: float = 0.01
    # thresholds
    gossip_threshold: float = -10.0
    publish_threshold: float = -50.0
    graylist_threshold: float = -80.0
    #: Minimum sender score for accepting Peer Exchange suggestions.
    accept_px_threshold: float = 0.0
    opportunistic_graft_threshold: float = 1.0

    def for_topic(self, topic: str) -> TopicScoreParams:
        return self.topic_params.get(topic, self.default_topic_params)


@dataclass
class _TopicStats:
    in_mesh: bool = False
    graft_time: float = 0.0
    mesh_time: float = 0.0
    first_message_deliveries: float = 0.0
    mesh_message_deliveries: float = 0.0
    mesh_failure_penalty: float = 0.0
    invalid_message_deliveries: float = 0.0


@dataclass
class _PeerStats:
    topics: Dict[str, _TopicStats] = field(default_factory=dict)
    behaviour_penalty: float = 0.0
    app_score: float = 0.0
    ip: Optional[str] = None

    def topic(self, name: str) -> _TopicStats:
        if name not in self.topics:
            self.topics[name] = _TopicStats()
        return self.topics[name]


class PeerScoreTracker:
    """Maintains live score state for every known peer."""

    def __init__(self, params: PeerScoreParams) -> None:
        self.params = params
        self._peers: Dict[NodeId, _PeerStats] = {}

    # -- peer lifecycle -------------------------------------------------------

    def add_peer(self, peer: NodeId, ip: Optional[str] = None) -> None:
        stats = self._peers.setdefault(peer, _PeerStats())
        if ip is not None:
            stats.ip = ip

    def remove_peer(self, peer: NodeId) -> None:
        self._peers.pop(peer, None)

    def known_peers(self):
        return list(self._peers)

    def _stats(self, peer: NodeId) -> _PeerStats:
        return self._peers.setdefault(peer, _PeerStats())

    # -- mesh events --------------------------------------------------------------

    def graft(self, peer: NodeId, topic: str, now: float) -> None:
        stats = self._stats(peer).topic(topic)
        stats.in_mesh = True
        stats.graft_time = now

    def prune(self, peer: NodeId, topic: str, now: float) -> None:
        """Peer leaves the mesh; a delivery deficit becomes P3b."""
        params = self.params.for_topic(topic)
        stats = self._stats(peer).topic(topic)
        if stats.in_mesh:
            stats.mesh_time = now - stats.graft_time
            deficit = self._delivery_deficit(stats, params)
            if deficit > 0:
                stats.mesh_failure_penalty += deficit * deficit
        stats.in_mesh = False

    # -- delivery events ------------------------------------------------------------

    def first_message(self, peer: NodeId, topic: str) -> None:
        params = self.params.for_topic(topic)
        stats = self._stats(peer).topic(topic)
        stats.first_message_deliveries = min(
            stats.first_message_deliveries + 1,
            params.first_message_deliveries_cap,
        )
        if stats.in_mesh:
            stats.mesh_message_deliveries = min(
                stats.mesh_message_deliveries + 1,
                params.mesh_message_deliveries_cap,
            )

    def duplicate_message(self, peer: NodeId, topic: str) -> None:
        params = self.params.for_topic(topic)
        stats = self._stats(peer).topic(topic)
        if stats.in_mesh:
            stats.mesh_message_deliveries = min(
                stats.mesh_message_deliveries + 1,
                params.mesh_message_deliveries_cap,
            )

    def reject_message(self, peer: NodeId, topic: str) -> None:
        stats = self._stats(peer).topic(topic)
        stats.invalid_message_deliveries += 1

    def behaviour_penalty(self, peer: NodeId, amount: float = 1.0) -> None:
        self._stats(peer).behaviour_penalty += amount

    def set_app_score(self, peer: NodeId, score: float) -> None:
        self._stats(peer).app_score = score

    def set_ip(self, peer: NodeId, ip: str) -> None:
        self._stats(peer).ip = ip

    # -- decay ------------------------------------------------------------------------

    def decay(self) -> None:
        """Apply one decay tick to every decaying counter."""
        floor = self.params.decay_to_zero
        for stats in self._peers.values():
            for topic, tstats in stats.topics.items():
                params = self.params.for_topic(topic)
                tstats.first_message_deliveries *= (
                    params.first_message_deliveries_decay
                )
                tstats.mesh_message_deliveries *= (
                    params.mesh_message_deliveries_decay
                )
                tstats.mesh_failure_penalty *= params.mesh_failure_penalty_decay
                tstats.invalid_message_deliveries *= (
                    params.invalid_message_deliveries_decay
                )
                for attr in (
                    "first_message_deliveries",
                    "mesh_message_deliveries",
                    "mesh_failure_penalty",
                    "invalid_message_deliveries",
                ):
                    if getattr(tstats, attr) < floor:
                        setattr(tstats, attr, 0.0)
            stats.behaviour_penalty *= self.params.behaviour_penalty_decay
            if stats.behaviour_penalty < floor:
                stats.behaviour_penalty = 0.0

    # -- scoring -----------------------------------------------------------------------

    def _delivery_deficit(
        self, tstats: _TopicStats, params: TopicScoreParams
    ) -> float:
        if tstats.mesh_time < params.mesh_message_deliveries_activation:
            return 0.0
        if (
            tstats.mesh_message_deliveries
            >= params.mesh_message_deliveries_threshold
        ):
            return 0.0
        return (
            params.mesh_message_deliveries_threshold
            - tstats.mesh_message_deliveries
        )

    def score(self, peer: NodeId, now: float = 0.0) -> float:
        stats = self._peers.get(peer)
        if stats is None:
            return 0.0
        total = 0.0
        for topic, tstats in stats.topics.items():
            params = self.params.for_topic(topic)
            topic_score = 0.0
            # P1
            if tstats.in_mesh:
                tstats.mesh_time = now - tstats.graft_time
            p1 = min(
                tstats.mesh_time / params.time_in_mesh_quantum,
                params.time_in_mesh_cap,
            )
            topic_score += p1 * params.time_in_mesh_weight
            # P2
            topic_score += (
                tstats.first_message_deliveries
                * params.first_message_deliveries_weight
            )
            # P3 (only while in mesh)
            if tstats.in_mesh:
                deficit = self._delivery_deficit(tstats, params)
                topic_score += (
                    deficit * deficit * params.mesh_message_deliveries_weight
                )
            # P3b
            topic_score += (
                tstats.mesh_failure_penalty * params.mesh_failure_penalty_weight
            )
            # P4
            p4 = tstats.invalid_message_deliveries
            topic_score += p4 * p4 * params.invalid_message_deliveries_weight
            total += topic_score * params.topic_weight
        # P5
        total += stats.app_score * self.params.app_specific_weight
        # P6 — IP colocation
        if stats.ip is not None:
            colocated = sum(
                1 for other in self._peers.values() if other.ip == stats.ip
            )
            excess = colocated - self.params.ip_colocation_factor_threshold
            if excess > 0:
                total += excess * excess * self.params.ip_colocation_factor_weight
        # P7
        p7 = stats.behaviour_penalty
        if p7 > self.params.behaviour_penalty_threshold:
            excess = p7 - self.params.behaviour_penalty_threshold
            total += excess * excess * self.params.behaviour_penalty_weight
        return total
