"""The nullifier map: per-epoch log of seen shares.

Section III: "each routing peer locally keeps a record of the secret key
share [sk] and the internal nullifier phi of all of its incoming
messages for the past Thr epochs"; new messages are checked against it
to spot double-signaling, and entries older than the acceptance window
are garbage-collected because such messages "are considered invalid by
default" anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional, Tuple

from ..crypto.field import Fr
from ..rln.signal import RlnSignal


class NullifierCheck(Enum):
    """Classification of a signal against the map."""

    NEW = "new"  # first signal with this nullifier — record and relay
    DUPLICATE = "duplicate"  # byte-identical share seen before — ignore
    DOUBLE_SIGNAL = "double_signal"  # same nullifier, different share: spam


@dataclass(frozen=True)
class NullifierRecord:
    """What a router remembers per (epoch, internal nullifier)."""

    share_x: Fr
    share_y: Fr
    signal: RlnSignal


class NullifierMap:
    """Sliding-window map ``epoch -> internal nullifier -> record``.

    With ``auto_prune`` on, garbage collection rides the epoch grid
    itself: the moment a bucket for a *new latest* epoch is created,
    every bucket at distance > ``thr`` from it is dropped — O(1)
    amortised, no timer needed, and live state stays bounded by
    ``(2 thr + 1)`` epochs regardless of run length. Off (the default),
    pruning only happens when :meth:`prune` is called explicitly (the
    peers' periodic housekeeping timer), preserving the exact
    observation timing of earlier revisions.
    """

    def __init__(self, thr: int, auto_prune: bool = False) -> None:
        if thr < 1:
            raise ValueError("thr must be at least 1")
        self.thr = thr
        self.auto_prune = auto_prune
        self._epochs: Dict[int, Dict[Fr, NullifierRecord]] = {}
        self._max_epoch: Optional[int] = None
        #: Entries dropped by epoch-grid GC (stat; explicit prune() not
        #: included).
        self.auto_pruned_entries = 0

    # -- core operation ---------------------------------------------------------

    def observe(
        self, signal: RlnSignal
    ) -> Tuple[NullifierCheck, Optional[NullifierRecord]]:
        """Record ``signal``; classify it against previous observations.

        Returns ``(NEW, None)``, ``(DUPLICATE, prior)`` or
        ``(DOUBLE_SIGNAL, prior)`` where ``prior`` is the conflicting
        earlier record (the second Shamir share needed for slashing).
        """
        check, prior = self.peek(signal)
        if check is NullifierCheck.NEW:
            epoch = signal.epoch
            bucket = self._epochs.get(epoch)
            if bucket is None:
                bucket = self._epochs[epoch] = {}
                if self.auto_prune and (
                    self._max_epoch is None or epoch > self._max_epoch
                ):
                    self._max_epoch = epoch
                    self.auto_pruned_entries += self.prune(epoch)
            bucket[signal.internal_nullifier] = NullifierRecord(
                share_x=signal.share.x,
                share_y=signal.share.y,
                signal=signal,
            )
        return check, prior

    def peek(
        self, signal: RlnSignal
    ) -> Tuple[NullifierCheck, Optional[NullifierRecord]]:
        """Classify ``signal`` without recording it.

        A DUPLICATE means a signal with the same ``(epoch, phi, x)``
        was recorded earlier; callers wanting to skip re-verification
        must additionally compare the returned record's ``signal`` for
        full equality (same abscissa does not imply same proof bytes).
        """
        bucket = self._epochs.get(signal.epoch)
        prior = (
            bucket.get(signal.internal_nullifier)
            if bucket is not None
            else None
        )
        if prior is None:
            return NullifierCheck.NEW, None
        if prior.share_x == signal.share.x:
            return NullifierCheck.DUPLICATE, prior
        return NullifierCheck.DOUBLE_SIGNAL, prior

    # -- garbage collection --------------------------------------------------------

    def prune(self, current_epoch: int) -> int:
        """Drop epochs outside the acceptance window; returns #entries freed.

        An epoch ``e`` can still receive valid messages while
        ``|current - e| <= thr``, so everything at distance > thr goes.
        """
        expired = [
            epoch
            for epoch in self._epochs
            if abs(current_epoch - epoch) > self.thr
        ]
        freed = 0
        for epoch in expired:
            freed += len(self._epochs.pop(epoch))
        return freed

    # -- introspection ------------------------------------------------------------------

    @property
    def entry_count(self) -> int:
        return sum(len(bucket) for bucket in self._epochs.values())

    @property
    def epoch_count(self) -> int:
        return len(self._epochs)

    def epochs(self):
        return sorted(self._epochs)

    def storage_bytes(self) -> int:
        """Approximate persisted size: per entry phi + x + y (3 x 32 B)."""
        return 96 * self.entry_count
