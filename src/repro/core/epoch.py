"""Epoch arithmetic.

The external nullifier of Waku-RLN-Relay is the *epoch*: "the number of
T seconds that elapsed since the Unix epoch" (Section III). In the
simulation, "Unix time" is the discrete-event clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.simulator import Simulator


def epoch_at(time: float, epoch_length: float) -> int:
    """Epoch index containing the instant ``time``."""
    return int(time // epoch_length)


def epoch_start(epoch: int, epoch_length: float) -> float:
    """The instant at which ``epoch`` begins."""
    return epoch * epoch_length


@dataclass
class EpochTracker:
    """A peer's local view of the current epoch.

    Peers "monitor the current epoch locally"; an optional clock skew
    models devices with drifting clocks (the reason the acceptance
    window Thr exists alongside network delay).
    """

    simulator: Simulator
    epoch_length: float
    clock_skew: float = 0.0

    @property
    def local_time(self) -> float:
        return self.simulator.now + self.clock_skew

    @property
    def current_epoch(self) -> int:
        return epoch_at(self.local_time, self.epoch_length)

    def is_within_threshold(self, epoch: int, thr: int) -> bool:
        """Section III validity rule: |local epoch - msg epoch| <= Thr."""
        return abs(self.current_epoch - epoch) <= thr
