"""Protocol configuration for a Waku-RLN-Relay deployment."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..constants import (
    DEFAULT_EPOCH_LENGTH_SECONDS,
    DEFAULT_MAX_NETWORK_DELAY_SECONDS,
    DEFAULT_MEMBERSHIP_STAKE_WEI,
    DEFAULT_MERKLE_DEPTH,
    DEFAULT_SLASH_BURN_FRACTION,
)
from ..crypto.zksnark.timing import DEFAULT_PERFORMANCE_MODEL, PerformanceModel
from ..gossipsub.params import GossipSubParams
from ..rln.membership import DEFAULT_ROOT_WINDOW


@dataclass(frozen=True)
class ProtocolConfig:
    """All tunables of the protocol in one immutable object.

    ``thr`` — the epoch acceptance threshold — is *derived*, not set:
    Section III defines ``Thr = D / T`` where ``D`` is the maximum
    network delay and ``T`` the epoch length, so changing either input
    changes the window consistently.
    """

    #: Epoch length T in seconds.
    epoch_length: float = DEFAULT_EPOCH_LENGTH_SECONDS
    #: Maximum network delay D in seconds.
    max_network_delay: float = DEFAULT_MAX_NETWORK_DELAY_SECONDS
    #: Membership tree depth (group capacity = 2**depth).
    merkle_depth: int = DEFAULT_MERKLE_DEPTH
    #: Stake required to register, in wei.
    stake_wei: int = DEFAULT_MEMBERSHIP_STAKE_WEI
    #: Fraction of a slashed stake that is burnt (rest rewards reporter).
    burn_fraction: float = DEFAULT_SLASH_BURN_FRACTION
    #: Optional RLN application domain bound into external nullifiers.
    domain: Optional[str] = None
    #: "native" (fast relation check) or "r1cs" (full constraint system).
    proving_mode: str = "native"
    #: How many recent membership roots routers accept.
    root_window: int = DEFAULT_ROOT_WINDOW
    #: How often peers poll the contract event log, in seconds.
    sync_interval: float = 2.0
    #: Membership contract design: "registry" (paper) or "onchain_tree".
    contract_design: str = "registry"
    #: When True, modeled zkSNARK latencies delay publish/validation in
    #: simulated time (the paper's 0.5 s prove / 30 ms verify figures).
    model_crypto_latency: bool = False
    #: Capacity of the deployment-wide zkSNARK verification cache shared
    #: by all routers (every peer holds the same verifying key, so the
    #: pairing-check outcome for a given (publics, proof) pair is
    #: network-global). 0 disables the cache — every router verifies
    #: every signal itself, the paper's naive per-message cost model.
    verification_cache_size: int = 0
    #: Share one canonical copy-on-write membership tree per deployment
    #: domain across all replicas (each peer holds a ``SharedMerkleView``
    #: instead of an independent ``MerkleTree``): a membership event then
    #: costs O(depth) hashes once network-wide instead of once per
    #: replica. False reverts to fully independent replicas — the
    #: paper's literal reading — which the equivalence property tests
    #: prove bit-identical (same roots, root windows, decisions).
    shared_membership_store: bool = True
    #: Shard the shared canonical membership tree into fixed-capacity
    #: sub-trees of this depth under a top-level root-of-roots (the
    #: tree-of-trees registry, :mod:`repro.crypto.merkle_forest`).
    #: Root-equivalent to the flat tree at matched capacity; enables
    #: bulk genesis registration and lazy sub-tree interiors. None
    #: keeps the flat canonical tree. Requires
    #: ``shared_membership_store`` and ``0 < sub_depth < merkle_depth``.
    membership_sub_depth: Optional[int] = None
    #: Garbage-collect nullifier buckets on the epoch grid itself
    #: (drop buckets > thr epochs behind the newest *seen* epoch the
    #: moment it appears) instead of waiting for the periodic
    #: housekeeping timer. Bounds per-validator nullifier state to
    #: O(active senders x window) at any instant. Off by default: a
    #: stale signal re-sent before the timer fires classifies as a
    #: duplicate with lazy GC but as epoch-expired with eager GC, so
    #: flipping this is behaviour-visible (and fingerprint-visible).
    eager_nullifier_gc: bool = False
    performance_model: PerformanceModel = DEFAULT_PERFORMANCE_MODEL
    gossip: GossipSubParams = field(default_factory=GossipSubParams)

    def __post_init__(self) -> None:
        sub = self.membership_sub_depth
        if sub is not None and not 0 < sub < self.merkle_depth:
            raise ValueError(
                f"membership_sub_depth must satisfy 0 < {sub} < "
                f"merkle_depth ({self.merkle_depth})"
            )

    @property
    def thr(self) -> int:
        """Epoch acceptance threshold ``Thr = ceil(D / T)`` (Section III)."""
        return max(1, math.ceil(self.max_network_delay / self.epoch_length))

    @property
    def group_capacity(self) -> int:
        return 1 << self.merkle_depth
