"""The routing-peer validation pipeline (paper Section III, "Routing
and Slashing").

A routing peer applies, in order:

1. **Proof validity** — the zkSNARK verifies against the signal's
   public inputs and an acceptable membership root → otherwise REJECT
   (and the gossip layer penalises the forwarding peer, P4);
2. **Epoch window** — ``|local epoch - signal epoch| > Thr`` →
   REJECT (prevents a new member from spamming all past epochs);
3. **Nullifier map** — same nullifier + same share: duplicate → IGNORE;
   same nullifier + different share: **double-signal** → drop the
   message and emit :class:`~repro.rln.slashing.SlashingEvidence` so the
   peer can claim the on-chain reward.

The outcome feeds straight into the gossipsub validator hook, so
invalid spam never propagates beyond the first honest hop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, List, Optional

from ..errors import SerializationError
from ..rln.signal import RlnSignal
from ..rln.slashing import SlashingEvidence, detect_double_signal
from ..rln.verifier import RlnVerifier, SignalCheck, SignalEntry
from ..sim.metrics import MetricsRegistry
from .epoch import EpochTracker
from .nullifier_map import NullifierCheck, NullifierMap


class ValidationOutcome(Enum):
    """What the router should do with a message."""

    RELAY = "relay"
    REJECT_INVALID_PROOF = "reject_invalid_proof"
    REJECT_BAD_EPOCH = "reject_bad_epoch"
    REJECT_MALFORMED = "reject_malformed"
    IGNORE_DUPLICATE = "ignore_duplicate"
    DROP_SPAM = "drop_spam"


@dataclass
class ValidationReport:
    """Outcome plus any slashing evidence produced along the way."""

    outcome: ValidationOutcome
    signal: Optional[RlnSignal] = None
    evidence: Optional[SlashingEvidence] = None


#: Called whenever validation uncovers a double-signal.
SpamCallback = Callable[[SlashingEvidence], None]


@dataclass
class RlnMessageValidator:
    """Stateful per-router validator combining all Section III checks."""

    verifier: RlnVerifier
    epoch_tracker: EpochTracker
    nullifier_map: NullifierMap
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    spam_callbacks: List[SpamCallback] = field(default_factory=list)

    def on_spam(self, callback: SpamCallback) -> None:
        self.spam_callbacks.append(callback)

    def validate_bytes(self, raw_signal: Optional[bytes]) -> ValidationReport:
        """Validate a serialized signal (``None`` = missing proof field).

        With a (shared) verification cache attached, the deserialized
        signal and its stateless-check progress are memoised by the raw
        bytes, so a signal the mesh delivers to thousands of routers is
        parsed and proof-checked once network-wide.
        """
        if raw_signal is None:
            self.metrics.increment("validator.missing_proof")
            return ValidationReport(ValidationOutcome.REJECT_MALFORMED)
        cache = self.verifier.cache
        entry: Optional[SignalEntry] = None
        key = None
        if cache is not None:
            key = self.verifier.wire_cache_key(raw_signal)
            entry = cache.get(key)
        if entry is None:
            try:
                signal = RlnSignal.from_bytes(raw_signal)
            except SerializationError:
                if cache is not None:
                    cache.put(key, SignalEntry(signal=None))
                self.metrics.increment("validator.malformed")
                return ValidationReport(ValidationOutcome.REJECT_MALFORMED)
            entry = SignalEntry(signal)
            if cache is not None:
                cache.put(key, entry)
        elif entry.signal is None:
            self.metrics.increment("validator.malformed")
            return ValidationReport(ValidationOutcome.REJECT_MALFORMED)
        return self.validate(entry.signal, entry)

    def validate(
        self, signal: RlnSignal, entry: Optional[SignalEntry] = None
    ) -> ValidationReport:
        # 0. duplicate fast path: a copy of the exact signal recorded
        # for this (epoch, phi) already survived the full pipeline
        # once, so it can be ignored without re-running verification.
        # Field-for-field equality is required — a *tampered* variant
        # (same share abscissa, different y/proof bytes) must fall
        # through to the crypto checks so it is REJECTed (P4 penalty),
        # exactly as before this fast path existed.
        peeked, prior_record = self.nullifier_map.peek(signal)
        if (
            peeked is NullifierCheck.DUPLICATE
            and prior_record is not None
            and prior_record.signal == signal
        ):
            self.metrics.increment("validator.duplicates")
            self.metrics.increment("validator.duplicate_fast_path")
            return ValidationReport(ValidationOutcome.IGNORE_DUPLICATE, signal)
        # 1. cryptographic checks (proof, root, share binding).
        check = self.verifier.check(signal, entry)
        if check is not SignalCheck.VALID:
            self.metrics.increment(f"validator.{check.value}")
            return ValidationReport(
                ValidationOutcome.REJECT_INVALID_PROOF, signal
            )
        # 2. epoch window.
        if not self.epoch_tracker.is_within_threshold(
            signal.epoch, self.nullifier_map.thr
        ):
            self.metrics.increment("validator.bad_epoch")
            return ValidationReport(ValidationOutcome.REJECT_BAD_EPOCH, signal)
        # 3. nullifier map.
        result, prior = self.nullifier_map.observe(signal)
        if result is NullifierCheck.DUPLICATE:
            self.metrics.increment("validator.duplicates")
            return ValidationReport(ValidationOutcome.IGNORE_DUPLICATE, signal)
        if result is NullifierCheck.DOUBLE_SIGNAL:
            assert prior is not None
            evidence = detect_double_signal(prior.signal, signal)
            self.metrics.increment("validator.double_signals")
            if evidence is not None:
                for callback in self.spam_callbacks:
                    callback(evidence)
            return ValidationReport(
                ValidationOutcome.DROP_SPAM, signal, evidence
            )
        self.metrics.increment("validator.relayed")
        return ValidationReport(ValidationOutcome.RELAY, signal)

    def housekeeping(self) -> int:
        """Prune the nullifier map to the current acceptance window."""
        return self.nullifier_map.prune(self.epoch_tracker.current_epoch)
