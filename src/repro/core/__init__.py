"""Waku-RLN-Relay core: the paper's integrated protocol."""

from .config import ProtocolConfig
from .economics import EconomicsReport, PeerLedger, build_report
from .epoch import EpochTracker, epoch_at, epoch_start
from .nullifier_map import NullifierCheck, NullifierMap, NullifierRecord
from .peer import WakuRlnRelayPeer
from .protocol import CONTRACT_ADDRESS, WakuRlnRelayNetwork
from .validator import (
    RlnMessageValidator,
    ValidationOutcome,
    ValidationReport,
)

__all__ = [
    "ProtocolConfig",
    "EpochTracker",
    "epoch_at",
    "epoch_start",
    "NullifierMap",
    "NullifierCheck",
    "NullifierRecord",
    "RlnMessageValidator",
    "ValidationOutcome",
    "ValidationReport",
    "WakuRlnRelayPeer",
    "WakuRlnRelayNetwork",
    "CONTRACT_ADDRESS",
    "EconomicsReport",
    "PeerLedger",
    "build_report",
]
