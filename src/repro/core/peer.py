"""The integrated Waku-RLN-Relay peer.

One :class:`WakuRlnRelayPeer` owns every per-peer moving part of
Figure 1:

* an Ethereum account and the registration transaction (staking);
* a local replica of the membership tree, synced from contract events
  ("Group Synchronization");
* an RLN prover for publishing (one message per epoch, locally
  enforced on the honest path);
* the Section III routing pipeline — proof verification, epoch window,
  nullifier map — wired into the Waku-Relay validator hook;
* slashing: on detecting a double-signal it reconstructs the spammer's
  secret and submits it to the membership contract for the reward.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..crypto.field import Fr
from ..crypto.keys import IdentityCommitment, MembershipKeyPair
from ..crypto.zksnark.groth16 import ProvingKey, VerifyingKey
from ..errors import RateLimitError, RegistrationError
from ..eth.chain import Blockchain
from ..eth.cursor import EventCursor
from ..net.network import Network, NodeId
from ..rln.membership import LocalGroup, MembershipStore
from ..rln.prover import RlnProver
from ..rln.slashing import SlashingEvidence
from ..rln.verifier import RlnVerifier, VerificationCache
from ..waku.message import WakuMessage
from ..waku.relay import WakuRelayNode
from ..gossipsub.router import ValidationResult
from .config import ProtocolConfig
from .epoch import EpochTracker
from .nullifier_map import NullifierMap
from .validator import RlnMessageValidator, ValidationOutcome

#: Application handler: (payload bytes, message id).
PayloadHandler = Callable[[bytes, str], None]

#: Topic-aware application handler: (pubsub topic, payload, message id).
TopicPayloadHandler = Callable[[str, bytes, str], None]

#: Mapping from validation outcomes to gossip-layer actions. Spam and
#: duplicates are IGNOREd rather than REJECTed: the forwarding hop is
#: usually an honest router that had not yet seen the first signal, so
#: punishing it (P4) would let a spammer poison honest peers' scores.
OUTCOME_TO_GOSSIP = {
    ValidationOutcome.RELAY: ValidationResult.ACCEPT,
    ValidationOutcome.IGNORE_DUPLICATE: ValidationResult.IGNORE,
    ValidationOutcome.DROP_SPAM: ValidationResult.IGNORE,
    ValidationOutcome.REJECT_INVALID_PROOF: ValidationResult.REJECT,
    ValidationOutcome.REJECT_BAD_EPOCH: ValidationResult.REJECT,
    ValidationOutcome.REJECT_MALFORMED: ValidationResult.REJECT,
}

#: Backwards-compatible alias (pre-watchtower name).
_OUTCOME_TO_GOSSIP = OUTCOME_TO_GOSSIP


class WakuRlnRelayPeer:
    """A full Waku-RLN-Relay participant."""

    def __init__(
        self,
        node_id: NodeId,
        network: Network,
        chain: Blockchain,
        contract_address: str,
        config: ProtocolConfig,
        proving_key: ProvingKey,
        verifying_key: VerifyingKey,
        rng=None,
        initial_balance_wei: Optional[int] = None,
        clock_skew: float = 0.0,
        verification_cache: Optional[VerificationCache] = None,
        membership_store: Optional[MembershipStore] = None,
    ) -> None:
        self.node_id = node_id
        self.network = network
        self.chain = chain
        self.contract_address = contract_address
        self.config = config

        self._rng = rng
        self.keypair = MembershipKeyPair.generate(rng)
        # One membership (stake + tree) serves every topic of this peer;
        # with a deployment store the replica is a copy-on-write view of
        # the one canonical tree, otherwise it is fully independent.
        self.group = (
            membership_store.local_group(config.domain or "")
            if membership_store is not None
            else LocalGroup(config.merkle_depth, config.root_window)
        )
        self.prover = RlnProver(
            keypair=self.keypair,
            proving_key=proving_key,
            mode=config.proving_mode,
        )
        self._verifying_key = verifying_key
        self._verification_cache = verification_cache
        self.epoch_tracker = EpochTracker(
            network.simulator, config.epoch_length, clock_skew
        )
        processing_delay = (
            config.performance_model.verify_seconds
            if config.model_crypto_latency
            else 0.0
        )
        self.relay = WakuRelayNode(
            node_id,
            network,
            gossip_params=config.gossip,
            processing_delay=processing_delay,
        )
        #: pubsub topic -> its RLN validator (own nullifier map, own
        #: domain-separated external nullifiers). One RLN group per
        #: topic, as in the paper's Section III; membership (the stake
        #: and the Merkle tree) is shared across all of them.
        self.rln_topics: Dict[str, RlnMessageValidator] = {}
        self._slash_reporting = True
        self._evidence_observers: List[
            Callable[[SlashingEvidence], None]
        ] = []
        # The primary topic is RLN-protected from birth; the same host
        # may join other (free or RLN) topics on the same relay node.
        self.validator = self._join_rln_topic(self.relay.pubsub_topic)
        self.relay.on_topic_message(self._handle_waku_message)

        balance = (
            initial_balance_wei
            if initial_balance_wei is not None
            else config.stake_wei * 2
        )
        self.account = chain.create_account(f"eoa:{node_id}", balance).address

        self.leaf_index: Optional[int] = None
        self.payload_handlers: List[PayloadHandler] = []
        self.topic_payload_handlers: List[TopicPayloadHandler] = []
        self.slashes_submitted = 0
        self._slashes_reported: set = set()
        self._cursor = EventCursor(chain, contract_address)
        self._membership_events_applied = 0
        #: pubsub topic -> epoch of this peer's last honest publish
        #: (the self-enforced one-message-per-epoch-per-topic limit).
        self._last_published_epochs: Dict[str, int] = {}
        self._stop_tasks: List[Callable[[], None]] = []

    # -- topics ----------------------------------------------------------------

    def _topic_domain(self, pubsub_topic: str) -> Optional[str]:
        """RLN domain tag for ``pubsub_topic``.

        The primary topic keeps the deployment's configured domain
        (wire-compatible with single-topic deployments); every other
        RLN topic gets a domain derived from its name, so external
        nullifiers — and therefore rate limits and double-signal
        detection — are independent per topic.
        """
        if pubsub_topic == self.relay.pubsub_topic:
            return self.config.domain
        base = self.config.domain or ""
        return f"{base}|topic:{pubsub_topic}"

    def _join_rln_topic(self, pubsub_topic: str) -> RlnMessageValidator:
        verifier = RlnVerifier(
            verifying_key=self._verifying_key,
            root_predicate=self.group.is_acceptable_root,
            domain=self._topic_domain(pubsub_topic),
            cache=self._verification_cache,
            metrics=self.network.metrics,
        )
        validator = RlnMessageValidator(
            verifier=verifier,
            epoch_tracker=self.epoch_tracker,
            nullifier_map=NullifierMap(
                self.config.thr,
                auto_prune=self.config.eager_nullifier_gc,
            ),
            metrics=self.network.metrics,
        )
        if self._slash_reporting:
            validator.on_spam(self._submit_slash)
        for observer in self._evidence_observers:
            validator.on_spam(observer)
        self.rln_topics[pubsub_topic] = validator
        self.relay.join_topic(pubsub_topic)
        self.relay.add_validator(
            lambda message, topic=pubsub_topic: self._validate_waku_message(
                message, topic
            ),
            topic=pubsub_topic,
        )
        return validator

    def join_rln_topic(self, pubsub_topic: str) -> None:
        """Join ``pubsub_topic`` as a member of its RLN group.

        The topic gets its own rate limit (one message per epoch per
        topic), its own nullifier map and domain-separated external
        nullifiers; slashing evidence from any topic settles against
        the one shared membership stake. Idempotent.
        """
        if pubsub_topic in self.rln_topics:
            return
        self._join_rln_topic(pubsub_topic)

    def join_open_topic(self, pubsub_topic: str) -> None:
        """Join a topic with no RLN protection (free traffic)."""
        self.relay.join_topic(pubsub_topic)

    # -- registration & sync --------------------------------------------------

    @property
    def commitment(self) -> IdentityCommitment:
        return self.keypair.commitment

    @property
    def is_registered(self) -> bool:
        return self.leaf_index is not None

    def register(self) -> None:
        """Queue the staking/registration transaction (mined with the
        next block; the peer learns its index from the emitted event)."""
        self.chain.transact(
            self.account,
            self.contract_address,
            "register",
            int(self.commitment.element),
            value=self.config.stake_wei,
            calldata_bytes=4 + 32,
            submitted_at=self.network.simulator.now,
        )

    @property
    def _synced_log_index(self) -> int:
        """Event-log position of this peer's group sync (next unread)."""
        return self._cursor.log_index

    @_synced_log_index.setter
    def _synced_log_index(self, value: int) -> None:
        self._cursor.seek(value)

    def sync(self) -> int:
        """Apply new contract events to the local tree; returns #applied."""
        applied = 0
        for event in self._cursor.poll():
            if event.name == "MemberRegistered":
                commitment = IdentityCommitment(Fr(event.args["pk"]))
                index = self.group.apply_registration(
                    commitment, self._membership_events_applied
                )
                if commitment == self.commitment:
                    self.leaf_index = index
                self._membership_events_applied += 1
                applied += 1
            elif event.name == "MembersRegistered":
                # Genesis batch: one event, applied through the tree's
                # bulk-build path (dormant identities, so no own-slot
                # check is needed — this peer registers transactionally).
                self.group.apply_registration_batch(
                    event.args["pks"], self._membership_events_applied
                )
                self._membership_events_applied += 1
                applied += 1
            elif event.name == "MemberRemoved":
                index = event.args["index"]
                self.group.apply_removal(
                    index, self._membership_events_applied
                )
                if index == self.leaf_index:
                    self.leaf_index = None  # we were slashed
                self._membership_events_applied += 1
                applied += 1
        return applied

    def adopt_sync_state(
        self,
        reference: "WakuRlnRelayPeer",
        leaf_index: Optional[int] = None,
    ) -> int:
        """Copy an up-to-date peer's synced membership view (bootstrap
        fast path used by ``register_all``).

        Equivalent to calling :meth:`sync` over the same event log —
        group sync is deterministic — but replicating the reference's
        tree costs no hashing. ``leaf_index`` is this peer's own slot
        if the caller already knows it (``register_all`` builds one
        index for all peers; the fallback scan here is O(members)).
        Returns the number of events adopted.
        """
        adopted = (
            reference._membership_events_applied
            - self._membership_events_applied
        )
        self.group.replicate_from(reference.group)
        self._synced_log_index = reference._synced_log_index
        self._membership_events_applied = (
            reference._membership_events_applied
        )
        if leaf_index is None:
            leaf_index = self.group.tree.find_leaf(self.commitment.element)
        # Adopt the index *unconditionally*: in the adopted state this
        # commitment either sits at ``leaf_index`` or is absent (not yet
        # registered, or slashed — in which case a previously held index
        # is stale and keeping it would let the peer keep proving
        # against a zeroed leaf).
        self.leaf_index = leaf_index
        return adopted

    def rotate_identity(self) -> IdentityCommitment:
        """Discard the current RLN identity and register a fresh one.

        The sybil move the economic analysis is about: a slashed member
        cannot rejoin with its old commitment (the contract zeroed that
        slot), but nothing stops the same host from generating a new
        keypair and staking again. The new registration settles with the
        next mined block; until this peer's sync applies its own
        ``MemberRegistered`` event, :attr:`is_registered` stays False
        and publishing raises. The old identity's nullifier history is
        irrelevant to the new one — internal nullifiers derive from the
        secret key, which changes here.
        """
        self.keypair = MembershipKeyPair.generate(self._rng)
        self.prover = RlnProver(
            keypair=self.keypair,
            proving_key=self.prover.proving_key,
            mode=self.config.proving_mode,
        )
        self.leaf_index = None
        self._last_published_epochs.clear()
        self.register()
        return self.commitment

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Join the relay mesh and begin periodic sync + housekeeping."""
        self.relay.start()
        sim = self.network.simulator
        self._stop_tasks.append(
            sim.schedule_periodic(
                self.config.sync_interval,
                lambda _sim: self.sync(),
                label=f"sync:{self.node_id}",
                jitter=0.2,
                stagger=True,
                rng=sim.entity_rng(self.node_id),
                shard=self.node_id,
            )
        )
        self._stop_tasks.append(
            sim.schedule_periodic(
                self.config.epoch_length,
                lambda _sim: self._housekeeping(),
                label=f"gc:{self.node_id}",
                jitter=0.2,
                stagger=True,
                rng=sim.entity_rng(self.node_id),
                shard=self.node_id,
            )
        )

    def _housekeeping(self) -> None:
        """Prune every RLN topic's nullifier map to its window."""
        for validator in self.rln_topics.values():
            validator.housekeeping()

    def stop(self) -> None:
        self.relay.stop()
        for cancel in self._stop_tasks:
            cancel()
        self._stop_tasks.clear()

    # -- publishing -----------------------------------------------------------------

    def publish(
        self,
        payload: bytes,
        content_topic: str = "/repro/1/chat/proto",
        bypass_rate_limit: bool = False,
        pubsub_topic: Optional[str] = None,
    ) -> str:
        """Publish one rate-limited message; returns the message ID.

        ``pubsub_topic`` selects which joined RLN topic carries the
        message (default: the primary topic); the proof's external
        nullifier is bound to that topic's domain, so each topic has an
        independent one-message-per-epoch budget. Honest peers enforce
        their own limit and get :class:`RateLimitError` when exceeding
        it; adversarial simulations pass ``bypass_rate_limit=True`` to
        emit the double-signals the network is supposed to catch.
        """
        if not self.is_registered:
            raise RegistrationError(
                f"{self.node_id} is not (yet) a registered group member"
            )
        topic = pubsub_topic or self.relay.pubsub_topic
        if topic not in self.rln_topics:
            raise RegistrationError(
                f"{self.node_id} has not joined RLN topic {topic!r}"
            )
        epoch = self.epoch_tracker.current_epoch
        if (
            not bypass_rate_limit
            and self._last_published_epochs.get(topic) == epoch
        ):
            raise RateLimitError(epoch)
        signal = self.prover.create_signal(
            message=payload,
            epoch=epoch,
            merkle_proof=self.group.merkle_proof(self.leaf_index),
            domain=self._topic_domain(topic),
        )
        self._last_published_epochs[topic] = epoch
        message = WakuMessage(
            payload=payload,
            content_topic=content_topic,
            rate_limit_proof=signal.to_bytes(),
        )
        if self.config.model_crypto_latency:
            # Proof generation occupies the device before the message
            # can leave (0.5 s at depth 32 on the reference phone).
            delay = self.config.performance_model.prove_seconds(
                self.config.merkle_depth
            )
            self.network.simulator.schedule(
                delay,
                lambda _sim: self.relay.publish(message, topic=topic),
                label=f"publish:{self.node_id}",
                shard=self.node_id,
            )
            from ..gossipsub.rpc import compute_message_id

            return compute_message_id(topic, message.to_bytes())
        return self.relay.publish(message, topic=topic)

    # -- receiving --------------------------------------------------------------------

    def on_payload(self, handler: PayloadHandler) -> None:
        self.payload_handlers.append(handler)

    def on_topic_payload(self, handler: TopicPayloadHandler) -> None:
        """Like :meth:`on_payload`, with the pubsub topic as first
        argument (multi-topic workloads account deliveries per topic)."""
        self.topic_payload_handlers.append(handler)

    def _handle_waku_message(
        self, topic: str, message: WakuMessage, msg_id: str
    ) -> None:
        for handler in self.payload_handlers:
            handler(message.payload, msg_id)
        for topic_handler in self.topic_payload_handlers:
            topic_handler(topic, message.payload, msg_id)

    def _validate_waku_message(
        self, message: WakuMessage, pubsub_topic: str
    ) -> ValidationResult:
        validator = self.rln_topics[pubsub_topic]
        report = validator.validate_bytes(message.rate_limit_proof)
        return OUTCOME_TO_GOSSIP[report.outcome]

    # -- slashing ---------------------------------------------------------------------

    def on_evidence(
        self, observer: Callable[[SlashingEvidence], None]
    ) -> None:
        """Observe every double-signal this peer's validators uncover.

        Purely observational — fires whether or not the peer itself
        reports slashes (scenario runners use it to count offenders the
        network *detected*, to compare against what actually settled
        on-chain). Applies to every joined RLN topic, current and
        future.
        """
        self._evidence_observers.append(observer)
        for validator in self.rln_topics.values():
            validator.on_spam(observer)

    def disable_slash_reporting(self) -> None:
        """Stop claiming slashing rewards for detected double-signals.

        Adversary agents run this: a colluding attack operation does
        not police itself, and letting attacker wallets collect the
        reporter bounty for slashing fellow agents would refill the
        very budgets the economics are supposed to drain. Validation
        itself is unaffected — the peer still drops spam. Applies to
        every joined RLN topic, current and future.
        """
        self._slash_reporting = False
        for validator in self.rln_topics.values():
            try:
                validator.spam_callbacks.remove(self._submit_slash)
            except ValueError:
                pass  # already disabled

    def _submit_slash(self, evidence: SlashingEvidence) -> None:
        """Claim the slashing reward for a detected double-signal.

        Skips the transaction when the member is already gone from the
        local tree or we have reported it before — the on-chain call
        would revert and only waste gas.
        """
        if evidence.commitment in self._slashes_reported:
            return
        if not self.group.contains(evidence.commitment):
            return
        self._slashes_reported.add(evidence.commitment)
        self.slashes_submitted += 1
        self.chain.transact(
            self.account,
            self.contract_address,
            "slash",
            int(evidence.recovered_secret.element),
            calldata_bytes=4 + 32,
            submitted_at=self.network.simulator.now,
        )

    @property
    def balance(self) -> int:
        return self.chain.get_account(self.account).balance
