"""Economic accounting for staking and slashing.

The paper's incentive claim (Sections I and IV): spammers are
*financially punished* — part of their stake is burnt — and "those who
find spammers are rewarded", with the guarantee enforced
cryptographically (the reporter needs the reconstructed secret key,
which only a genuine double-signal reveals). This module turns chain
state into a readable report so tests and benchmarks can assert the
flow of funds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..eth.chain import Blockchain
from ..eth.contracts import MembershipContractBase
from .peer import WakuRlnRelayPeer


@dataclass(frozen=True)
class PeerLedger:
    """Net position of one peer."""

    node_id: str
    balance: int
    staked: bool
    net_flow: int  # balance - initial endowment


@dataclass(frozen=True)
class EconomicsReport:
    """System-wide view of stake flows after a simulation."""

    stake_wei: int
    burn_fraction: float
    total_burnt: int
    contract_balance: int
    ledgers: List[PeerLedger]

    @property
    def slash_reward(self) -> int:
        return self.stake_wei - int(self.stake_wei * self.burn_fraction)

    def ledger(self, node_id: str) -> PeerLedger:
        for entry in self.ledgers:
            if entry.node_id == node_id:
                return entry
        raise KeyError(node_id)

    def attackers_net_loss(self, attacker_ids: List[str]) -> int:
        """Total wei lost by the given peers (positive = lost money)."""
        return -sum(self.ledger(a).net_flow for a in attacker_ids)


def build_report(
    chain: Blockchain,
    contract: MembershipContractBase,
    peers: List[WakuRlnRelayPeer],
    initial_balances: Dict[str, int],
) -> EconomicsReport:
    """Snapshot the current flow of funds."""
    ledgers = []
    for peer in peers:
        balance = chain.get_account(peer.account).balance
        ledgers.append(
            PeerLedger(
                node_id=peer.node_id,
                balance=balance,
                staked=peer.is_registered,
                net_flow=balance - initial_balances[peer.node_id],
            )
        )
    return EconomicsReport(
        stake_wei=contract.stake_wei,
        burn_fraction=contract.burn_fraction,
        total_burnt=chain.burnt_wei,
        contract_balance=contract.balance,
        ledgers=ledgers,
    )
